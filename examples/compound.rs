//! Compound situations (paper §8.7): several anomalies at once.
//!
//! ```text
//! cargo run --release --example compound
//! ```

use dbsherlock::core::CausalModel;
use dbsherlock::prelude::*;
use dbsherlock::simulator::{compound_cases, compound_dataset, generate_corpus};

fn main() {
    let params = SherlockParams::for_merging();
    // Build one merged model per class from a small training corpus.
    println!("building causal models from the training corpus...");
    let corpus = generate_corpus(Benchmark::TpccLike, 2026);
    let mut sherlock = Sherlock::new(params.clone());
    for kind in AnomalyKind::ALL {
        let models: Vec<CausalModel> = corpus
            .iter()
            .filter(|e| e.kind == kind)
            .take(5)
            .map(|e| {
                let predicates = dbsherlock::core::generate_predicates(
                    &e.labeled.data,
                    &e.labeled.abnormal_region(),
                    &e.labeled.normal_region(),
                    &params,
                );
                CausalModel::from_feedback(kind.name(), &predicates)
            })
            .collect();
        for model in models {
            sherlock.repository_mut().add(model); // same cause -> merged
        }
    }

    // Diagnose each compound scenario and show the top-3 causes.
    for (i, (name, kinds)) in compound_cases().into_iter().enumerate() {
        let labeled = compound_dataset(Benchmark::TpccLike, &kinds, 3000 + i as u64);
        let explanation = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);
        let expected: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        println!("\n{name}");
        println!("  expected: {expected:?}");
        for (rank, cause) in explanation.all_causes.iter().take(3).enumerate() {
            let marker = if expected.contains(&cause.cause.as_str()) { "✓" } else { " " };
            println!(
                "  {} #{} {:24} confidence {:.0}%",
                marker,
                rank + 1,
                cause.cause,
                cause.confidence * 100.0
            );
        }
    }
    println!(
        "\nThe paper (§8.7): top-3 causes contain more than two-thirds of the truth on\naverage; one anomaly can mask another (e.g. congestion throttles a spike)."
    );
}
