//! The full DBSherlock workflow (paper Fig. 2) across all ten anomaly
//! classes of Table 1: train causal models on one incident of each class,
//! then diagnose fresh incidents and print the ranked causes.
//!
//! ```text
//! cargo run --release --example diagnose_anomalies
//! ```

use dbsherlock::prelude::*;

fn incident(kind: AnomalyKind, seed: u64) -> LabeledDataset {
    Scenario::new(WorkloadConfig::tpcc_default(), 170, seed)
        .with_injection(Injection::new(kind, 60, 50))
        .run()
}

fn main() {
    let mut sherlock = Sherlock::new(SherlockParams::default())
        .with_domain_knowledge(DomainKnowledge::mysql_linux());

    // Phase 1: the DBA diagnoses one incident of each class and teaches
    // DBSherlock the confirmed cause.
    println!("=== training: one confirmed diagnosis per anomaly class ===");
    for (i, kind) in AnomalyKind::ALL.into_iter().enumerate() {
        let labeled = incident(kind, 1000 + i as u64);
        let explanation = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);
        println!("  {:24} -> {:2} predicates", kind.name(), explanation.predicates.len());
        sherlock.feedback(kind.name(), &explanation.predicates);
    }

    // Phase 2: fresh incidents; DBSherlock must name the cause.
    println!("\n=== diagnosis: fresh incidents ===");
    let mut correct = 0;
    for (i, kind) in AnomalyKind::ALL.into_iter().enumerate() {
        let labeled = incident(kind, 2000 + i as u64);
        let explanation = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);
        let verdict = explanation.top_cause();
        let ok = verdict.map(|c| c.cause == kind.name()).unwrap_or(false);
        if ok {
            correct += 1;
        }
        println!(
            "  truth: {:24} diagnosed: {:24} ({})",
            kind.name(),
            verdict.map(|c| c.cause.as_str()).unwrap_or("<none above λ>"),
            if ok { "correct" } else { "WRONG" },
        );
        if let Some(cause) = verdict {
            // Show the runner-up too, as the UI would.
            if let Some(second) = explanation.causes.get(1) {
                println!(
                    "      confidence {:.0}% (runner-up: {} at {:.0}%)",
                    cause.confidence * 100.0,
                    second.cause,
                    second.confidence * 100.0
                );
            }
        }
    }
    println!("\n{correct}/10 incidents diagnosed correctly.");
}
