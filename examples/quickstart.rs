//! Quickstart: simulate a database, mark an anomaly, get an explanation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dbsherlock::prelude::*;

fn main() {
    // 1. Simulate a TPC-C-like server for 160 seconds with an I/O hog
    //    (stress-ng style) active during seconds 60..110.
    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 160, 7)
        .with_injection(Injection::new(AnomalyKind::IoSaturation, 60, 50))
        .run();
    let latency = labeled.data.numeric_by_name("txn_avg_latency_ms").unwrap();
    println!(
        "simulated {} seconds of telemetry ({} attributes)",
        labeled.data.n_rows(),
        labeled.data.schema().len()
    );
    println!(
        "average latency: normal ≈ {:.1} ms, during the anomaly ≈ {:.1} ms\n",
        mean(latency, labeled.normal_region().indices()),
        mean(latency, labeled.abnormal_region().indices()),
    );
    // The headless version of DBSherlock's performance plot (Fig. 2 step 3).
    let plot = dbsherlock::telemetry::render_plot(
        &labeled.data,
        "txn_avg_latency_ms",
        Some(&labeled.abnormal_region()),
        &dbsherlock::telemetry::PlotOptions::default(),
    )
    .unwrap();
    println!("{plot}");

    // 2. The DBA saw the latency plateau and selects it as abnormal.
    let abnormal = Region::from_range(60..110);
    let mut sherlock = Sherlock::new(SherlockParams::default());
    let explanation = sherlock.explain(&labeled.data, &abnormal, None);

    println!("DBSherlock's explanation ({} predicates):", explanation.predicates.len());
    for generated in &explanation.predicates {
        println!(
            "  {:<45} separation power {:.2}",
            generated.predicate.to_string(),
            generated.separation_power
        );
    }

    // 3. The DBA diagnoses the real cause from these clues and teaches it
    //    back to DBSherlock.
    sherlock.feedback("External I/O saturation", &explanation.predicates);

    // 4. Next time the same problem appears, DBSherlock names it directly.
    let next = Scenario::new(WorkloadConfig::tpcc_default(), 160, 99)
        .with_injection(Injection::new(AnomalyKind::IoSaturation, 40, 60))
        .run();
    let answer = sherlock.explain(&next.data, &Region::from_range(40..100), None);
    match answer.top_cause() {
        Some(cause) => println!(
            "\nNew incident diagnosed as: {} (confidence {:.0}%)",
            cause.cause,
            cause.confidence * 100.0
        ),
        None => println!("\nNo stored cause was confident enough."),
    }
}

fn mean(values: &[f64], rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|&r| values[r]).sum::<f64>() / rows.len() as f64
}
