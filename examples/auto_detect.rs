//! Automatic anomaly detection (paper §7) compared with the PerfAugur
//! baseline: find the anomalous window without any user input.
//!
//! ```text
//! cargo run --release --example auto_detect
//! ```

use dbsherlock::baselines::{perfaugur_detect, PerfAugurConfig};
use dbsherlock::prelude::*;

fn main() {
    // A ten-minute run with a network problem in the middle — long normal
    // stretches are what make the anomaly a detectable minority.
    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 640, 5)
        .with_injection(Injection::new(AnomalyKind::NetworkCongestion, 300, 60))
        .run();
    let truth = labeled.abnormal_region();
    println!("ground truth: {:?}", truth.intervals());

    // DBSherlock's detector: potential-power attribute selection + DBSCAN.
    let sherlock = Sherlock::new(SherlockParams::default());
    match sherlock.detect(&labeled.data) {
        Some(detection) => {
            println!(
                "DBSherlock detector: {:?} (IoU with truth: {:.2})",
                detection.region.intervals(),
                detection.region.iou(&truth)
            );
            let names: Vec<&str> = detection
                .selected_attrs
                .iter()
                .map(|&id| labeled.data.schema().attr(id).name.as_str())
                .collect();
            println!("  attributes with potential power > PP_t: {names:?}");

            // The detected region can be diagnosed exactly like a manual one.
            let explanation = sherlock.explain(&labeled.data, &detection.region, None);
            println!("  explanation: {}", explanation.predicates_display());
        }
        None => println!("DBSherlock detector: nothing anomalous found"),
    }

    // PerfAugur's robust window search on average latency.
    match perfaugur_detect(&labeled.data, &PerfAugurConfig::default()) {
        Some(window) => println!(
            "PerfAugur:           {:?} (IoU with truth: {:.2}, score {:.1})",
            window.region.intervals(),
            window.region.iou(&truth),
            window.score
        ),
        None => println!("PerfAugur: nothing anomalous found"),
    }
}
