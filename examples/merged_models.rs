//! Model merging (paper §6.2): how combining diagnoses of the same cause
//! produces smaller, more transferable causal models.
//!
//! ```text
//! cargo run --release --example merged_models
//! ```

use dbsherlock::core::{generate_predicates, merge_all, CausalModel};
use dbsherlock::prelude::*;

fn main() {
    // Five independent Lock Contention incidents with varying severity.
    let params = SherlockParams::for_merging(); // θ = 0.05 (§8.5)
    let mut models: Vec<CausalModel> = Vec::new();
    for i in 0..5u64 {
        let mut injection = Injection::new(AnomalyKind::LockContention, 50, 40 + 5 * i as usize);
        injection.intensity = 0.7 + 0.15 * i as f64;
        let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 170, 40 + i)
            .with_injection(injection)
            .run();
        let predicates = generate_predicates(
            &labeled.data,
            &labeled.abnormal_region(),
            &labeled.normal_region(),
            &params,
        );
        let model = CausalModel::from_feedback("Lock Contention", &predicates);
        println!("incident {}: {} predicates", i + 1, model.predicates.len());
        models.push(model);
    }

    let merged = merge_all(models.iter()).expect("five models");
    println!(
        "\nmerged model: {} predicates (from {} incidents):",
        merged.predicates.len(),
        merged.merged_from
    );
    for predicate in &merged.predicates {
        println!("  {predicate}");
    }

    // Evaluate transfer: single vs merged on an unseen, stronger incident.
    let mut test_injection = Injection::new(AnomalyKind::LockContention, 60, 45);
    test_injection.intensity = 1.25;
    let test = Scenario::new(WorkloadConfig::tpcc_default(), 170, 999)
        .with_injection(test_injection)
        .run();
    let truth = test.abnormal_region();
    let single_f1 = models[0].f1(&test.data, &truth).f1;
    let merged_f1 = merged.f1(&test.data, &truth).f1;
    let single_conf = models[0].confidence(&test.data, &truth, &test.normal_region(), &params);
    let merged_conf = merged.confidence(&test.data, &truth, &test.normal_region(), &params);
    println!("\non an unseen incident:");
    println!("  single model: F1 = {single_f1:.2}, confidence = {single_conf:.2}");
    println!("  merged model: F1 = {merged_f1:.2}, confidence = {merged_conf:.2}");
    println!(
        "\nMerging keeps only predicates common to all incidents and widens their\nboundaries, so the merged model generalizes better (paper §8.5: ~30% more\naccurate than single-dataset models)."
    );
}
