//! Raw-log preprocessing (paper Fig. 2, steps 1–2): align irregular log
//! streams into one-second tuples, save/load dbseer-style CSV, and run a
//! diagnosis on the result.
//!
//! ```text
//! cargo run --release --example preprocess_logs
//! ```

use dbsherlock::prelude::*;
use dbsherlock::telemetry::{
    align, from_csv, to_csv, Aggregation, AlignOptions, CategoricalStream, NumericStream,
};

fn main() {
    // Three "raw" log sources with different cadences, like an OS sampler
    // (4 Hz), a DBMS counter dump (1 Hz, offset), and an event log.
    let mut cpu_samples = Vec::new();
    let mut commit_events = Vec::new();
    let mut state_changes = vec![(0.0, "steady".to_string())];
    for tick in 0..120 {
        let anomalous = (60..90).contains(&tick);
        for sub in 0..4 {
            let t = tick as f64 + sub as f64 * 0.25;
            let cpu = if anomalous { 95.0 } else { 25.0 } + (t * 0.7).sin() * 3.0;
            cpu_samples.push((t, cpu));
        }
        let commits = if anomalous { 2 } else { 9 };
        for c in 0..commits {
            commit_events.push((tick as f64 + c as f64 / 10.0, 1.0));
        }
    }
    state_changes.push((60.2, "rotating".to_string()));
    state_changes.push((90.1, "steady".to_string()));

    let aligned = align(
        &[
            NumericStream {
                name: "os_cpu_usage".into(),
                agg: Aggregation::Mean,
                samples: cpu_samples,
            },
            NumericStream {
                name: "dbms_num_commits".into(),
                agg: Aggregation::Count,
                samples: commit_events,
            },
        ],
        &[CategoricalStream { name: "log_rotation_state".into(), samples: state_changes }],
        &AlignOptions::default(),
    )
    .expect("alignable streams");
    println!(
        "aligned {} raw samples into {} one-second tuples x {} attributes",
        4 * 120 + 9 * 120,
        aligned.n_rows(),
        aligned.schema().len()
    );

    // Round-trip through the dbseer-style CSV format.
    let csv = to_csv(&aligned);
    println!("CSV preview:\n{}", csv.lines().take(4).collect::<Vec<_>>().join("\n"));
    let reloaded = from_csv(&csv).expect("own CSV parses");
    assert_eq!(reloaded.n_rows(), aligned.n_rows());

    // Diagnose the reloaded dataset.
    let sherlock = Sherlock::new(SherlockParams::default());
    let explanation = sherlock.explain(&reloaded, &Region::from_range(60..90), None);
    println!("\nexplanation: {}", explanation.predicates_display());
}
