//! Property-based tests for the clustering substrate: DBSCAN results must
//! always be *valid clusterings* in the Ester et al. sense.

use dbsherlock_cluster::{dbscan, euclidean, kdist_list, Label, Point};
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(proptest::collection::vec(-10.0_f64..10.0, 2), 0..60)
}

proptest! {
    /// Every point is labeled, cluster ids are dense, and every cluster
    /// contains at least one core point.
    #[test]
    fn dbscan_output_is_well_formed(
        points in points_strategy(),
        eps in 0.1_f64..5.0,
        min_pts in 2usize..6,
    ) {
        let clustering = dbscan(&points, eps, min_pts);
        prop_assert_eq!(clustering.labels.len(), points.len());
        let sizes = clustering.sizes();
        prop_assert_eq!(sizes.len(), clustering.n_clusters);
        for (id, &size) in sizes.iter().enumerate() {
            prop_assert!(size > 0, "cluster {id} is empty");
            // At least one member must be a core point.
            let members = clustering.members(id);
            let has_core = members.iter().any(|&i| {
                points.iter().filter(|p| euclidean(&points[i], p) <= eps).count() >= min_pts
            });
            prop_assert!(has_core, "cluster {id} has no core point");
        }
    }

    /// Core points are never noise.
    #[test]
    fn core_points_are_clustered(
        points in points_strategy(),
        eps in 0.1_f64..5.0,
        min_pts in 2usize..6,
    ) {
        let clustering = dbscan(&points, eps, min_pts);
        for (i, label) in clustering.labels.iter().enumerate() {
            let neighbours =
                points.iter().filter(|p| euclidean(&points[i], p) <= eps).count();
            if neighbours >= min_pts {
                prop_assert!(*label != Label::Noise, "core point {i} marked noise");
            }
        }
    }

    /// Two core points within eps of each other share a cluster.
    #[test]
    fn mutually_close_core_points_share_cluster(
        points in points_strategy(),
        eps in 0.5_f64..5.0,
        min_pts in 2usize..5,
    ) {
        let clustering = dbscan(&points, eps, min_pts);
        let is_core = |i: usize| {
            points.iter().filter(|p| euclidean(&points[i], p) <= eps).count() >= min_pts
        };
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if is_core(i) && is_core(j) && euclidean(&points[i], &points[j]) <= eps {
                    prop_assert_eq!(
                        clustering.labels[i].cluster(),
                        clustering.labels[j].cluster(),
                        "directly-connected core points {} and {} split",
                        i, j
                    );
                }
            }
        }
    }

    /// k-dist values are non-negative, and monotone in k.
    #[test]
    fn kdist_monotone_in_k(points in points_strategy()) {
        prop_assume!(points.len() >= 4);
        let l1 = kdist_list(&points, 1);
        let l3 = kdist_list(&points, 3);
        for (a, b) in l1.iter().zip(&l3) {
            prop_assert!(*a >= 0.0);
            prop_assert!(b >= a, "k-dist must grow with k");
        }
    }
}
