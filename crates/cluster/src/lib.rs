#![warn(missing_docs)]
// Diagnosis must degrade gracefully, never panic: unwrap/expect are banned in
// library code (tests may use them freely). See sherlock-lint's panic-path rule.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Density-based clustering primitives for DBSherlock.
//!
//! The paper's automatic anomaly detection (§7) is built on DBSCAN
//! (Ester et al., KDD 1996) with `minPts = 3` and `ε = max(L_k)/4` derived
//! from the k-dist list. This crate provides exactly those pieces, plus the
//! point/distance plumbing, as an independent, reusable library.
//!
//! # Example
//!
//! ```
//! use dbsherlock_cluster::{dbscan, epsilon_from_kdist};
//!
//! // A large group near 0 and a small (3-point) group near 10.
//! let mut points: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 0.1]).collect();
//! points.extend((0..3).map(|i| vec![10.0 + i as f64 * 0.1]));
//! // The small group's 3rd-nearest neighbour lies across the gap, so
//! // max(L_3) ≈ the gap and eps = gap / 4 separates the groups.
//! let eps = epsilon_from_kdist(&points, 3).unwrap();
//! let clustering = dbscan(&points, eps, 3);
//! assert_eq!(clustering.n_clusters, 2);
//! ```

pub mod dbscan;
pub mod distance;
pub mod kdist;

pub use dbscan::{dbscan, Clustering, Label};
pub use distance::{euclidean, rows_from_columns, Point};
pub use kdist::{epsilon_from_kdist, kdist_list, kdist_of};
