//! DBSCAN density-based clustering (Ester, Kriegel, Sander, Xu — KDD 1996).
//!
//! DBSherlock's automatic anomaly detector (paper §7) clusters normalized
//! telemetry points with DBSCAN (`minPts = 3`, `ε = max(L_k) / 4` from the
//! k-dist list) and flags small clusters as candidate anomalies. This is a
//! faithful, quadratic-time implementation — the detector runs on a few
//! hundred one-second samples, where O(n²) neighbour queries are cheap and
//! an index would be noise.

use crate::distance::{euclidean, Point};

/// Cluster assignment for one input point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the cluster with the given id (0-based, dense).
    Cluster(usize),
}

impl Label {
    /// The cluster id, if this point belongs to a cluster.
    pub fn cluster(self) -> Option<usize> {
        match self {
            Label::Noise => None,
            Label::Cluster(id) => Some(id),
        }
    }
}

/// Result of a DBSCAN run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Per-point labels, parallel to the input.
    pub labels: Vec<Label>,
    /// Number of clusters found.
    pub n_clusters: usize,
}

impl Clustering {
    /// Indices of the points in cluster `id`.
    pub fn members(&self, id: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.cluster() == Some(id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Cluster sizes indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters];
        for label in &self.labels {
            if let Some(id) = label.cluster() {
                sizes[id] += 1;
            }
        }
        sizes
    }
}

/// Run DBSCAN over `points` with radius `eps` and density threshold
/// `min_pts` (a point is *core* when at least `min_pts` points — including
/// itself — lie within `eps`).
pub fn dbscan(points: &[Point], eps: f64, min_pts: usize) -> Clustering {
    let n = points.len();
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut assignment = vec![UNVISITED; n];
    let mut n_clusters = 0usize;

    let neighbours = |i: usize| -> Vec<usize> {
        (0..n).filter(|&j| euclidean(&points[i], &points[j]) <= eps).collect()
    };

    for i in 0..n {
        if assignment[i] != UNVISITED {
            continue;
        }
        let seeds = neighbours(i);
        if seeds.len() < min_pts {
            assignment[i] = NOISE;
            continue;
        }
        let cluster = n_clusters;
        n_clusters += 1;
        assignment[i] = cluster;
        let mut queue: Vec<usize> = seeds;
        let mut cursor = 0;
        while cursor < queue.len() {
            let j = queue[cursor];
            cursor += 1;
            if assignment[j] == NOISE {
                // Border point: density-reachable, joins the cluster.
                assignment[j] = cluster;
            }
            if assignment[j] != UNVISITED {
                continue;
            }
            assignment[j] = cluster;
            let j_neighbours = neighbours(j);
            if j_neighbours.len() >= min_pts {
                queue.extend(j_neighbours);
            }
        }
    }

    let labels = assignment
        .into_iter()
        .map(|a| if a == NOISE || a == UNVISITED { Label::Noise } else { Label::Cluster(a) })
        .collect();
    Clustering { labels, n_clusters }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), n: usize, spread: f64) -> Vec<Point> {
        // Deterministic ring of points around the center.
        (0..n)
            .map(|i| {
                let angle = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![center.0 + spread * angle.cos(), center.1 + spread * angle.sin()]
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut points = blob((0.0, 0.0), 10, 0.05);
        points.extend(blob((1.0, 1.0), 10, 0.05));
        let c = dbscan(&points, 0.2, 3);
        assert_eq!(c.n_clusters, 2);
        let first = c.labels[0].cluster().unwrap();
        assert!(c.labels[..10].iter().all(|l| l.cluster() == Some(first)));
        let second = c.labels[10].cluster().unwrap();
        assert_ne!(first, second);
        assert!(c.labels[10..].iter().all(|l| l.cluster() == Some(second)));
        assert_eq!(c.sizes(), vec![10, 10]);
    }

    #[test]
    fn isolated_point_is_noise() {
        let mut points = blob((0.0, 0.0), 8, 0.05);
        points.push(vec![5.0, 5.0]);
        let c = dbscan(&points, 0.2, 3);
        assert_eq!(c.labels[8], Label::Noise);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.members(0).len(), 8);
    }

    #[test]
    fn min_pts_larger_than_any_neighbourhood_yields_all_noise() {
        let points = blob((0.0, 0.0), 5, 1.0);
        let c = dbscan(&points, 0.01, 3);
        assert_eq!(c.n_clusters, 0);
        assert!(c.labels.iter().all(|&l| l == Label::Noise));
    }

    #[test]
    fn border_point_between_density_centers_joins_a_cluster() {
        // A chain: dense left group, one bridge point within eps of the
        // left core but itself not core.
        let mut points = vec![
            vec![0.0],
            vec![0.05],
            vec![0.1],  // dense core region
            vec![0.28], // border: within 0.2 of 0.1 only
        ];
        points.push(vec![0.07]);
        let c = dbscan(&points, 0.2, 4);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.labels[3].cluster(), Some(0));
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], 1.0, 3);
        assert_eq!(c.n_clusters, 0);
        assert!(c.labels.is_empty());
    }

    #[test]
    fn every_point_labeled_exactly_once() {
        let mut points = blob((0.0, 0.0), 12, 0.1);
        points.extend(blob((0.5, 0.5), 4, 0.02));
        let c = dbscan(&points, 0.15, 3);
        assert_eq!(c.labels.len(), points.len());
        let clustered: usize = c.sizes().iter().sum();
        let noise = c.labels.iter().filter(|&&l| l == Label::Noise).count();
        assert_eq!(clustered + noise, points.len());
    }
}
