//! k-dist heuristics for choosing DBSCAN's `ε`.
//!
//! Ester et al. suggest inspecting the sorted list of each point's distance
//! to its k-th nearest neighbour to pick `ε`. DBSherlock (paper §7) fixes
//! `minPts = 3`, builds the k-dist list `L_k`, and uses
//! `ε = max(L_k) / 4`, which the authors found empirically robust.

use crate::distance::{euclidean, Point};

/// Distance from point `i` to its `k`-th nearest *other* point
/// (`k = 1` means the nearest neighbour). Points with fewer than `k`
/// neighbours report the distance to their farthest neighbour; singleton
/// inputs report `0`. The per-point unit of work behind [`kdist_list`],
/// exposed so callers can fan the O(n²) scan out across threads.
pub fn kdist_of(points: &[Point], i: usize, k: usize) -> f64 {
    let n = points.len();
    let mut dists: Vec<f64> =
        (0..n).filter(|&j| j != i).map(|j| euclidean(&points[i], &points[j])).collect();
    if dists.is_empty() {
        return 0.0;
    }
    dists.sort_by(f64::total_cmp);
    let idx = k.saturating_sub(1).min(dists.len() - 1);
    dists.get(idx).copied().unwrap_or(0.0)
}

/// Distance from each point to its `k`-th nearest *other* point; see
/// [`kdist_of`].
pub fn kdist_list(points: &[Point], k: usize) -> Vec<f64> {
    (0..points.len()).map(|i| kdist_of(points, i, k)).collect()
}

/// DBSherlock's `ε` rule: `max(L_k) / 4` (paper §7, with `minPts = 3` so
/// `k = 3`). Returns `None` for inputs too small to cluster.
pub fn epsilon_from_kdist(points: &[Point], k: usize) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let lk = kdist_list(points, k);
    let max = lk.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max.is_finite() && max > 0.0 {
        Some(max / 4.0)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kdist_on_a_line() {
        let points: Vec<Point> = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let l1 = kdist_list(&points, 1);
        assert_eq!(l1, vec![1.0, 1.0, 1.0, 8.0]);
        let l2 = kdist_list(&points, 2);
        assert_eq!(l2, vec![2.0, 1.0, 2.0, 9.0]);
    }

    #[test]
    fn k_exceeding_neighbours_saturates() {
        let points: Vec<Point> = vec![vec![0.0], vec![3.0]];
        assert_eq!(kdist_list(&points, 5), vec![3.0, 3.0]);
        assert_eq!(kdist_list(&[vec![1.0]], 3), vec![0.0]);
    }

    #[test]
    fn epsilon_rule_quarters_the_max() {
        let points: Vec<Point> = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let eps = epsilon_from_kdist(&points, 1).unwrap();
        assert_eq!(eps, 2.0);
    }

    #[test]
    fn epsilon_degenerate_inputs() {
        assert_eq!(epsilon_from_kdist(&[], 3), None);
        assert_eq!(epsilon_from_kdist(&[vec![0.0]], 3), None);
        // All-identical points: max k-dist is 0 -> None.
        let same: Vec<Point> = vec![vec![1.0]; 4];
        assert_eq!(epsilon_from_kdist(&same, 3), None);
    }
}
