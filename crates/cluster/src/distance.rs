//! Point representation and distance metrics for clustering.

/// A dense point in d-dimensional space. DBSherlock's anomaly detector
/// builds these from min–max-normalized attribute columns, so coordinates
/// are typically in `[0, 1]`.
pub type Point = Vec<f64>;

/// Euclidean distance between two points of equal dimension.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Transpose normalized columns into row points: `columns[c][r]` becomes
/// coordinate `c` of point `r`.
pub fn rows_from_columns(columns: &[&[f64]]) -> Vec<Point> {
    let Some(first) = columns.first() else {
        return Vec::new();
    };
    let n = first.len();
    debug_assert!(columns.iter().all(|c| c.len() == n));
    (0..n).map(|r| columns.iter().map(|c| c[r]).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn transpose_columns() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        let pts = rows_from_columns(&[&a, &b]);
        assert_eq!(pts, vec![vec![1.0, 10.0], vec![2.0, 20.0]]);
        assert!(rows_from_columns(&[]).is_empty());
    }
}
