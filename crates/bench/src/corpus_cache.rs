//! Lazily generated, process-wide experiment corpora.
//!
//! Every experiment binary shares the same deterministic corpora (seeded
//! generation), so results are reproducible across runs and binaries
//! without writing datasets to disk. Generation is parallelized across
//! anomaly classes with scoped threads.

use std::sync::OnceLock;

use dbsherlock_simulator::{
    generate_long_corpus, standard_scenario, AnomalyKind, Benchmark, CorpusEntry, VARIATIONS,
};

/// Seed of every standard corpus (one knob to regenerate everything).
pub const CORPUS_SEED: u64 = 20160626; // SIGMOD'16 opening day

fn generate_parallel(benchmark: Benchmark) -> Vec<CorpusEntry> {
    let mut entries: Vec<Option<CorpusEntry>> =
        (0..AnomalyKind::ALL.len() * VARIATIONS.len()).map(|_| None).collect();
    let chunks: Vec<(usize, AnomalyKind)> = AnomalyKind::ALL.iter().copied().enumerate().collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(kind_idx, kind) in &chunks {
            handles.push((
                kind_idx,
                scope.spawn(move || {
                    (0..VARIATIONS.len())
                        .map(|variant| CorpusEntry {
                            kind,
                            variant,
                            labeled: standard_scenario(benchmark, kind, variant, CORPUS_SEED).run(),
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (kind_idx, handle) in handles {
            // `join` fails only if the generator thread panicked; re-raising
            // that panic on the caller is the right propagation.
            #[allow(clippy::expect_used)]
            let generated = handle.join().expect("corpus thread"); // sherlock-lint: allow(panic-path): propagates child panic
            for (variant, entry) in generated.into_iter().enumerate() {
                entries[kind_idx * VARIATIONS.len() + variant] = Some(entry);
            }
        }
    });
    // Every (kind, variant) cell is filled by exactly one thread above.
    #[allow(clippy::expect_used)]
    entries.into_iter().map(|e| e.expect("all cells generated")).collect() // sherlock-lint: allow(panic-path): static invariant
}

/// The 110-dataset TPC-C-like corpus (§8.2).
pub fn tpcc_corpus() -> &'static [CorpusEntry] {
    static CORPUS: OnceLock<Vec<CorpusEntry>> = OnceLock::new();
    CORPUS.get_or_init(|| generate_parallel(Benchmark::TpccLike))
}

/// The 110-dataset TPC-E-like corpus (Appendix A).
pub fn tpce_corpus() -> &'static [CorpusEntry] {
    static CORPUS: OnceLock<Vec<CorpusEntry>> = OnceLock::new();
    CORPUS.get_or_init(|| generate_parallel(Benchmark::TpceLike))
}

/// The ten-minute-normal corpus for automatic-detection experiments
/// (Appendix E).
pub fn long_corpus() -> &'static [CorpusEntry] {
    static CORPUS: OnceLock<Vec<CorpusEntry>> = OnceLock::new();
    CORPUS.get_or_init(|| generate_long_corpus(Benchmark::TpccLike, CORPUS_SEED))
}

/// Entries of one anomaly class, in variant order.
pub fn of_kind(corpus: &[CorpusEntry], kind: AnomalyKind) -> Vec<&CorpusEntry> {
    corpus.iter().filter(|e| e.kind == kind).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_cell() {
        let corpus = tpcc_corpus();
        assert_eq!(corpus.len(), 110);
        for kind in AnomalyKind::ALL {
            let entries = of_kind(corpus, kind);
            assert_eq!(entries.len(), 11, "{kind:?}");
            for (i, e) in entries.iter().enumerate() {
                assert_eq!(e.variant, i);
                assert!(!e.labeled.abnormal_region().is_empty());
            }
        }
    }

    #[test]
    fn corpus_is_memoized() {
        let a = tpcc_corpus().as_ptr();
        let b = tpcc_corpus().as_ptr();
        assert_eq!(a, b);
    }
}
