//! Lazily generated, process-wide experiment corpora.
//!
//! Every experiment binary shares the same deterministic corpora (seeded
//! generation), so results are reproducible across runs and binaries
//! without writing datasets to disk. Generation fans out across the
//! (anomaly kind × variant) grid through the core execution layer.

use std::sync::OnceLock;

use dbsherlock_core::{par_map_indexed, ExecPolicy};
use dbsherlock_simulator::{
    generate_long_corpus, standard_scenario, AnomalyKind, Benchmark, CorpusEntry, VARIATIONS,
};

/// Seed of every standard corpus (one knob to regenerate everything).
pub const CORPUS_SEED: u64 = 20160626; // SIGMOD'16 opening day

fn generate_parallel(benchmark: Benchmark) -> Vec<CorpusEntry> {
    let cells: Vec<(AnomalyKind, usize)> = AnomalyKind::ALL
        .iter()
        .flat_map(|&kind| (0..VARIATIONS.len()).map(move |variant| (kind, variant)))
        .collect();
    // Indexed collection keeps (kind, variant) order identical to the old
    // serial nesting, whatever the thread schedule.
    par_map_indexed(ExecPolicy::Auto, &cells, |_, &(kind, variant)| CorpusEntry {
        kind,
        variant,
        labeled: standard_scenario(benchmark, kind, variant, CORPUS_SEED).run(),
    })
}

/// The 110-dataset TPC-C-like corpus (§8.2).
pub fn tpcc_corpus() -> &'static [CorpusEntry] {
    static CORPUS: OnceLock<Vec<CorpusEntry>> = OnceLock::new();
    CORPUS.get_or_init(|| generate_parallel(Benchmark::TpccLike))
}

/// The 110-dataset TPC-E-like corpus (Appendix A).
pub fn tpce_corpus() -> &'static [CorpusEntry] {
    static CORPUS: OnceLock<Vec<CorpusEntry>> = OnceLock::new();
    CORPUS.get_or_init(|| generate_parallel(Benchmark::TpceLike))
}

/// The ten-minute-normal corpus for automatic-detection experiments
/// (Appendix E).
pub fn long_corpus() -> &'static [CorpusEntry] {
    static CORPUS: OnceLock<Vec<CorpusEntry>> = OnceLock::new();
    CORPUS.get_or_init(|| generate_long_corpus(Benchmark::TpccLike, CORPUS_SEED))
}

/// Entries of one anomaly class, in variant order.
pub fn of_kind(corpus: &[CorpusEntry], kind: AnomalyKind) -> Vec<&CorpusEntry> {
    corpus.iter().filter(|e| e.kind == kind).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_cell() {
        let corpus = tpcc_corpus();
        assert_eq!(corpus.len(), 110);
        for kind in AnomalyKind::ALL {
            let entries = of_kind(corpus, kind);
            assert_eq!(entries.len(), 11, "{kind:?}");
            for (i, e) in entries.iter().enumerate() {
                assert_eq!(e.variant, i);
                assert!(!e.labeled.abnormal_region().is_empty());
            }
        }
    }

    #[test]
    fn corpus_is_memoized() {
        let a = tpcc_corpus().as_ptr();
        let b = tpcc_corpus().as_ptr();
        assert_eq!(a, b);
    }
}
