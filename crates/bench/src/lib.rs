// Experiment drivers share the library panic policy: helpers must not panic
// outside tests (binaries under src/bin/ may). See sherlock-lint's panic-path rule.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Experiment harness reproducing every table and figure of the DBSherlock
//! paper (SIGMOD 2016).
//!
//! Each binary under `src/bin/` regenerates one artifact (see DESIGN.md's
//! experiment index); `run_all` runs the lot. Quick defaults keep a full
//! sweep in minutes; pass `--full` for paper-scale trial counts, or
//! `--repeats N` for explicit control. EXPERIMENTS.md records
//! paper-vs-measured numbers.

pub mod corpus_cache;
pub mod eval;
pub mod report;

pub use corpus_cache::{long_corpus, of_kind, tpcc_corpus, tpce_corpus, CORPUS_SEED};
pub use eval::{
    diagnose, diagnose_dataset, diagnose_named, diagnose_with_region, merged_model, predicates_for,
    random_split, repository_from, single_model, DiagnosisOutcome, Tally,
};
pub use report::{num, pct, write_json, ExperimentArgs, Table};
