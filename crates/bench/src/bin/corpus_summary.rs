//! Table 1: the ten anomaly classes and a summary of their simulated
//! telemetry signatures on the standard corpus.

use dbsherlock_bench::{num, tpcc_corpus, Table};
use dbsherlock_simulator::AnomalyKind;
use dbsherlock_telemetry::stats;

fn main() {
    let corpus = tpcc_corpus();
    let mut table = Table::new(
        "Table 1 — anomaly classes (mean latency & throughput, normal vs abnormal)",
        &["Type of anomaly", "lat N (ms)", "lat A (ms)", "tps N", "tps A", "Description"],
    );
    for kind in AnomalyKind::ALL {
        let mut lat = (Vec::new(), Vec::new());
        let mut tps = (Vec::new(), Vec::new());
        for entry in corpus.iter().filter(|e| e.kind == kind) {
            let data = &entry.labeled.data;
            let latency = data.numeric_by_name("txn_avg_latency_ms").unwrap();
            let throughput = data.numeric_by_name("txn_throughput").unwrap();
            let abnormal = entry.labeled.abnormal_region();
            for row in 0..data.n_rows() {
                if abnormal.contains(row) {
                    lat.1.push(latency[row]);
                    tps.1.push(throughput[row]);
                } else {
                    lat.0.push(latency[row]);
                    tps.0.push(throughput[row]);
                }
            }
        }
        table.row(vec![
            kind.name().to_string(),
            num(stats::mean(&lat.0)),
            num(stats::mean(&lat.1)),
            num(stats::mean(&tps.0)),
            num(stats::mean(&tps.1)),
            kind.description().chars().take(60).collect(),
        ]);
    }
    table.print();
}
