//! Diagnosis throughput under the parallel execution layer.
//!
//! The heavy-traffic entry point is [`Sherlock::explain_batch`]: many
//! independent incidents fanned out across a thread budget. This binary
//! measures explains/sec over the standard TPC-C-like corpus at 1, N/2 and
//! N threads (N = available parallelism; 4 is always included so runs on
//! different hosts share a comparable data point), checks that every thread
//! budget produces byte-identical explanations, and writes
//! `results/BENCH_throughput.json`.
//!
//! `--smoke` runs one small case and asserts a nonzero rate — the CI
//! guard that the parallel path stays alive and sane.

use std::time::Instant;

use dbsherlock_bench::{repository_from, single_model, tpcc_corpus, write_json};
use dbsherlock_core::{Case, ExecPolicy, Explanation, Sherlock, SherlockParams};
use dbsherlock_simulator::{AnomalyKind, Injection, Scenario, WorkloadConfig};
use dbsherlock_telemetry::Region;

/// Thread budgets to measure: 1, N/2, N, plus a fixed 4-thread point.
fn thread_counts() -> Vec<usize> {
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1, (n / 2).max(1), n, 4];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Fingerprint of a batch result, for the determinism cross-check.
fn fingerprint(results: &[Result<Explanation, dbsherlock_core::SherlockError>]) -> String {
    results
        .iter()
        .map(|r| match r {
            Ok(e) => {
                let causes: Vec<String> = e
                    .all_causes
                    .iter()
                    .map(|c| format!("{}:{}", c.cause, c.confidence.to_bits()))
                    .collect();
                format!("{}|{}", e.predicates_display(), causes.join(","))
            }
            Err(err) => format!("error:{err}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn smoke() {
    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 120, 7)
        .with_injection(Injection::new(AnomalyKind::CpuSaturation, 40, 40))
        .run();
    let abnormal = labeled.abnormal_region();
    let sherlock = Sherlock::new(SherlockParams::default().with_exec(ExecPolicy::Threads(2)));
    let cases = [Case::new(&labeled.data, &abnormal)];
    let start = Instant::now();
    let results = sherlock.explain_batch(&cases);
    let elapsed = start.elapsed().as_secs_f64();
    let explanation = results[0].as_ref().expect("smoke case diagnoses");
    assert!(!explanation.predicates.is_empty(), "smoke case produced no predicates");
    let rate = 1.0 / elapsed.max(f64::MIN_POSITIVE);
    assert!(rate > 0.0 && rate.is_finite(), "nonzero throughput expected, got {rate}");
    println!("throughput smoke: 1 case in {elapsed:.3}s ({rate:.1} explains/sec) — ok");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let corpus = tpcc_corpus();
    let params = SherlockParams::default();
    let models: Vec<_> = AnomalyKind::ALL
        .iter()
        .map(|&kind| {
            let entry =
                corpus.iter().find(|e| e.kind == kind && e.variant == 0).expect("corpus cell");
            single_model(entry, &params, None)
        })
        .collect();

    let regions: Vec<Region> = corpus.iter().map(|e| e.labeled.abnormal_region()).collect();
    let cases: Vec<Case<'_>> = corpus
        .iter()
        .zip(&regions)
        .map(|(entry, abnormal)| Case::new(&entry.labeled.data, abnormal))
        .collect();

    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("diagnosing {} cases, available parallelism {n}", cases.len());

    let mut rows = Vec::new();
    let mut serial_rate = 0.0_f64;
    let mut serial_print = None;
    for threads in thread_counts() {
        let exec = if threads == 1 { ExecPolicy::Serial } else { ExecPolicy::Threads(threads) };
        let mut sherlock = Sherlock::new(params.clone().with_exec(exec));
        *sherlock.repository_mut() = repository_from(models.clone());
        // Warm-up: touch every dataset once so timing excludes cold caches.
        let _ = sherlock.explain_batch(&cases[..cases.len().min(8)]);
        let start = Instant::now();
        let results = sherlock.explain_batch(&cases);
        let elapsed = start.elapsed().as_secs_f64();
        let print = fingerprint(&results);
        match &serial_print {
            None => serial_print = Some(print),
            Some(reference) => assert_eq!(
                reference, &print,
                "explain_batch output differs between serial and {threads} threads"
            ),
        }
        let rate = cases.len() as f64 / elapsed;
        if threads == 1 {
            serial_rate = rate;
        }
        let speedup = if serial_rate > 0.0 { rate / serial_rate } else { 1.0 };
        println!(
            "threads {threads:>2}: {elapsed:>7.2}s  {rate:>8.1} explains/sec  ({speedup:.2}x vs serial)"
        );
        rows.push(serde_json::json!({
            "threads": threads,
            "elapsed_s": elapsed,
            "explains_per_sec": rate,
            "speedup_vs_serial": speedup,
            "cases": cases.len(),
        }));
    }

    write_json(
        "BENCH_throughput",
        &serde_json::json!({
            // Host context up front: rates from different machines are only
            // comparable with the core count and measured budgets attached.
            "cpu_count": n,
            "available_parallelism": n,
            "thread_counts_measured": thread_counts(),
            "corpus": "tpcc",
            "deterministic_across_budgets": true,
            "rows": rows,
        }),
    );
}
