//! Figure 9 (§8.4): precision / recall / F1 of DBSherlock's predicates vs
//! PerfXplain, per anomaly class.
//!
//! Paper setup: 10 training datasets, accuracy tested on the remaining
//! one. DBSherlock's predicates come from the merged causal model of the 10
//! training datasets; PerfXplain is trained on pairs from the same 10
//! (2000 pairs, weight 0.8, 2 predicates). We rotate the held-out dataset
//! over all 11 variants and average.

use dbsherlock_baselines::{PerfXplain, PerfXplainConfig, TrainingSet};
use dbsherlock_bench::{merged_model, of_kind, pct, tpcc_corpus, write_json, Table};
use dbsherlock_core::{Accuracy, SherlockParams};
use dbsherlock_simulator::AnomalyKind;
use dbsherlock_telemetry::Region;

#[derive(Default, Clone, Copy)]
struct Sums {
    precision: f64,
    recall: f64,
    f1: f64,
    n: usize,
}

impl Sums {
    fn add(&mut self, acc: &Accuracy) {
        self.precision += acc.precision;
        self.recall += acc.recall;
        self.f1 += acc.f1;
        self.n += 1;
    }

    fn avg(&self) -> (f64, f64, f64) {
        let n = self.n.max(1) as f64;
        (self.precision / n * 100.0, self.recall / n * 100.0, self.f1 / n * 100.0)
    }
}

fn main() {
    let corpus = tpcc_corpus();
    // Merged-model generation, but with the strict separation-power floor:
    // the F1 evaluation scores the predicate conjunction as a classifier,
    // where only strongly-separating predicates transfer (DESIGN.md §1).
    let params = SherlockParams::for_merging().with_min_separation_power(0.85);
    let mut table = Table::new(
        "Figure 9 — DBSherlock predicates vs PerfXplain (averages over 11 rotations)",
        &["Test case", "P(PX)", "P(DBS)", "R(PX)", "R(DBS)", "F1(PX)", "F1(DBS)"],
    );
    let mut rows_json = Vec::new();
    let (mut dbs_total, mut px_total) = (Sums::default(), Sums::default());

    for kind in AnomalyKind::ALL {
        let entries = of_kind(corpus, kind);
        let (mut dbs, mut px) = (Sums::default(), Sums::default());
        for held_out in 0..entries.len() {
            let train: Vec<_> = entries
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != held_out)
                .map(|(_, e)| *e)
                .collect();
            let test = &entries[held_out].labeled;
            let truth = test.abnormal_region();

            // DBSherlock: merged model's predicate conjunction.
            let model = merged_model(&train, &params, None);
            dbs.add(&model.f1(&test.data, &truth));

            // PerfXplain on the same training data.
            let regions: Vec<Region> = train.iter().map(|e| e.labeled.abnormal_region()).collect();
            let sets: Vec<TrainingSet<'_>> = train
                .iter()
                .zip(&regions)
                .map(|(e, r)| TrainingSet { data: &e.labeled.data, abnormal: r })
                .collect();
            let acc = match PerfXplain::train(&sets, PerfXplainConfig::default()) {
                Some(model) => {
                    let predicted = model.predict(&test.data);
                    Accuracy::of_regions(&predicted, &truth)
                }
                None => Accuracy { precision: 0.0, recall: 0.0, f1: 0.0 },
            };
            px.add(&acc);
        }
        let (dp, dr, df) = dbs.avg();
        let (pp, pr, pf) = px.avg();
        table.row(vec![
            kind.name().to_string(),
            pct(pp),
            pct(dp),
            pct(pr),
            pct(dr),
            pct(pf),
            pct(df),
        ]);
        rows_json.push(serde_json::json!({
            "case": kind.name(),
            "dbsherlock": {"precision": dp, "recall": dr, "f1": df},
            "perfxplain": {"precision": pp, "recall": pr, "f1": pf},
        }));
        dbs_total.add(&Accuracy { precision: dp / 100.0, recall: dr / 100.0, f1: df / 100.0 });
        px_total.add(&Accuracy { precision: pp / 100.0, recall: pr / 100.0, f1: pf / 100.0 });
    }
    let (_, _, dbs_f1) = dbs_total.avg();
    let (_, _, px_f1) = px_total.avg();
    table.row(vec![
        "AVERAGE".into(),
        pct(px_total.avg().0),
        pct(dbs_total.avg().0),
        pct(px_total.avg().1),
        pct(dbs_total.avg().1),
        pct(px_f1),
        pct(dbs_f1),
    ]);
    table.print();
    println!(
        "\nPaper: DBSherlock beats PerfXplain in nearly all cases; F1 higher by 28% on average (up to 55%).\nMeasured: average F1 advantage {:.1} points ({} vs {}).",
        dbs_f1 - px_f1,
        pct(dbs_f1),
        pct(px_f1),
    );
    write_json("fig9_perfxplain", &serde_json::json!({ "rows": rows_json }));
}
