//! Table 5 (Appendix C): robustness against imperfect or tiny abnormal
//! regions.
//!
//! Leave-one-out merged-10 models diagnose the held-out dataset with the
//! user's region perturbed: 10% longer, 10% shorter, or replaced by a
//! random two-second slice of the true region (each repeated 10 times and
//! averaged, as in the paper).

use dbsherlock_bench::{
    diagnose_with_region, merged_model, of_kind, pct, repository_from, tpcc_corpus, write_json,
    ExperimentArgs, Table, Tally,
};
use dbsherlock_core::SherlockParams;
use dbsherlock_simulator::AnomalyKind;
use dbsherlock_telemetry::Region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = ExperimentArgs::parse();
    let corpus = tpcc_corpus();
    let params = SherlockParams::for_merging();
    let mut rng = StdRng::seed_from_u64(args.seed_or(0x7AB1E5));

    let configs: [(&str, f64); 4] = [
        ("Original", 0.0),
        ("10% Longer", 0.10),
        ("10% Shorter", -0.10),
        ("Two Seconds", f64::NAN),
    ];
    let mut tallies: Vec<Tally> = configs.iter().map(|_| Tally::default()).collect();

    for held_out in 0..11 {
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .map(|&kind| {
                let entries = of_kind(corpus, kind);
                let train: Vec<_> = entries
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != held_out)
                    .map(|(_, e)| *e)
                    .collect();
                merged_model(&train, &params, None)
            })
            .collect();
        let repo = repository_from(models);
        for &kind in &AnomalyKind::ALL {
            let entry = of_kind(corpus, kind)[held_out];
            let truth = entry.labeled.abnormal_region();
            let n = entry.labeled.data.n_rows();
            for (cfg_idx, &(_, fraction)) in configs.iter().enumerate() {
                // The perturbed variants are stochastic: repeat 10x (paper).
                let trials = if cfg_idx == 0 { 1 } else { 10 };
                for _ in 0..trials {
                    let region: Region = if fraction.is_nan() {
                        truth.contiguous_subregion(2, |max| rng.random_range(0..=max))
                    // sherlock-lint: allow(nan-unsafe): 0.0 is an exact sentinel from CONFIGS
                    } else if fraction == 0.0 {
                        truth.clone()
                    } else {
                        truth.perturb(fraction, n)
                    };
                    let outcome =
                        diagnose_with_region(&repo, &entry.labeled, &region, kind, &params);
                    tallies[cfg_idx].record(&outcome);
                }
            }
        }
    }

    let mut table = Table::new(
        "Table 5 — robustness against rare and imperfect input regions",
        &["Width of Abnormal Region", "Accuracy (top-1)", "Accuracy (top-2)"],
    );
    let mut rows_json = Vec::new();
    for ((label, _), tally) in configs.iter().zip(&tallies) {
        table.row(vec![label.to_string(), pct(tally.top1_pct()), pct(tally.top2_pct())]);
        rows_json.push(serde_json::json!({
            "config": label, "top1_pct": tally.top1_pct(), "top2_pct": tally.top2_pct(),
        }));
    }
    table.print();
    println!(
        "\nPaper: 94.6/99.1 original; 95.5/100 longer; 95.5/97.3 shorter; 74.6/86.4\n  with only a two-second region — accuracy barely moves under ±10% error and\n  degrades gracefully for very short regions."
    );
    write_json("table5_robustness", &serde_json::json!({ "rows": rows_json }));
}
