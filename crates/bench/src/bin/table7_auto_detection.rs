//! Table 7 (Appendix E): diagnosis accuracy when the abnormal region comes
//! from manual specification (ground truth), DBSherlock's automatic
//! detector (§7), or PerfAugur.
//!
//! Setup per the paper: ten-minute normal runs; leave-one-out merged
//! causal models built from ground-truth regions; the detectors then
//! propose the region for the held-out dataset.

use dbsherlock_baselines::{perfaugur_detect, PerfAugurConfig};
use dbsherlock_bench::{
    diagnose_with_region, long_corpus, merged_model, of_kind, pct, repository_from, write_json,
    Table, Tally,
};
use dbsherlock_core::{detect_anomaly, SherlockParams};
use dbsherlock_simulator::AnomalyKind;
use dbsherlock_telemetry::Region;

fn main() {
    let corpus = long_corpus();
    let params = SherlockParams::for_merging();
    let mut manual = Tally::default();
    let mut auto = Tally::default();
    let mut perfaugur = Tally::default();
    let mut iou_auto_sum = 0.0;
    let mut iou_pa_sum = 0.0;
    let mut n = 0usize;

    for held_out in 0..11 {
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .map(|&kind| {
                let entries = of_kind(corpus, kind);
                let train: Vec<_> = entries
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != held_out)
                    .map(|(_, e)| *e)
                    .collect();
                merged_model(&train, &params, None)
            })
            .collect();
        let repo = repository_from(models);
        for &kind in &AnomalyKind::ALL {
            let entry = of_kind(corpus, kind)[held_out];
            let truth = entry.labeled.abnormal_region();
            n += 1;

            manual.record(&diagnose_with_region(&repo, &entry.labeled, &truth, kind, &params));

            let auto_region: Region =
                detect_anomaly(&entry.labeled.data, &params).map(|d| d.region).unwrap_or_default();
            iou_auto_sum += auto_region.iou(&truth);
            auto.record(&diagnose_with_region(&repo, &entry.labeled, &auto_region, kind, &params));

            let pa_region: Region =
                perfaugur_detect(&entry.labeled.data, &PerfAugurConfig::default())
                    .map(|w| w.region)
                    .unwrap_or_default();
            iou_pa_sum += pa_region.iou(&truth);
            perfaugur.record(&diagnose_with_region(
                &repo,
                &entry.labeled,
                &pa_region,
                kind,
                &params,
            ));
        }
    }

    let mut table = Table::new(
        "Table 7 — accuracy with manual vs automatic anomaly detection",
        &["Detection strategy", "Accuracy (top-1)", "Accuracy (top-2)", "Region IoU"],
    );
    table.row(vec![
        "Manual (ground truth)".into(),
        pct(manual.top1_pct()),
        pct(manual.top2_pct()),
        "1.00".into(),
    ]);
    table.row(vec![
        "Automatic (DBSherlock, §7)".into(),
        pct(auto.top1_pct()),
        pct(auto.top2_pct()),
        format!("{:.2}", iou_auto_sum / n as f64),
    ]);
    table.row(vec![
        "PerfAugur".into(),
        pct(perfaugur.top1_pct()),
        pct(perfaugur.top2_pct()),
        format!("{:.2}", iou_pa_sum / n as f64),
    ]);
    table.print();
    println!(
        "\nPaper: manual 94.6/99.1; DBSherlock auto 90.0/95.5; PerfAugur 77.3/88.2 —\n  our detector loses little vs ground truth and beats PerfAugur's."
    );
    write_json(
        "table7_auto_detection",
        &serde_json::json!({
            "manual": {"top1_pct": manual.top1_pct(), "top2_pct": manual.top2_pct()},
            "auto": {"top1_pct": auto.top1_pct(), "top2_pct": auto.top2_pct(),
                      "iou": iou_auto_sum / n as f64},
            "perfaugur": {"top1_pct": perfaugur.top1_pct(), "top2_pct": perfaugur.top2_pct(),
                           "iou": iou_pa_sum / n as f64},
        }),
    );
}
