//! Table 3 (§8.8): the user study, reproduced with a simulated DBA.
//!
//! The paper asked 20 human participants ten multiple-choice questions
//! (one correct cause + three random wrong ones), showing a latency plot,
//! a marked anomaly region, and DBSherlock's generated predicates. Humans
//! cannot be re-run in software, so participants are modeled as noisy
//! signature matchers (see DESIGN.md): each candidate cause is scored by
//! how well the shown predicates overlap the cause's known telemetry
//! signature (attribute overlap + boundary-direction agreement), and the
//! participant picks via a softmax whose temperature encodes competency.
//! The no-predicates baseline is exact: uniform choice over four options.

use dbsherlock_bench::{
    merged_model, of_kind, predicates_for, tpcc_corpus, write_json, ExperimentArgs, Table,
};
use dbsherlock_core::{merge_predicates, CausalModel, GeneratedPredicate, SherlockParams};
use dbsherlock_simulator::AnomalyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How strongly a set of shown predicates matches a candidate cause's
/// signature model: fraction of the signature's attributes that appear in
/// the shown predicates with a mergeable (direction-consistent) boundary.
fn signature_match(shown: &[GeneratedPredicate], signature: &CausalModel) -> f64 {
    if signature.predicates.is_empty() {
        return 0.0;
    }
    let hits = signature
        .predicates
        .iter()
        .filter(|sig| {
            shown.iter().any(|g| {
                g.predicate.attr == sig.attr && merge_predicates(&g.predicate, sig).is_some()
            })
        })
        .count();
    hits as f64 / signature.predicates.len() as f64
}

fn softmax_pick(scores: &[f64], temperature: f64, rng: &mut StdRng) -> usize {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores.iter().map(|s| ((s - max) / temperature).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            return i;
        }
    }
    scores.len() - 1
}

fn main() {
    let args = ExperimentArgs::parse();
    let corpus = tpcc_corpus();
    let params = SherlockParams::for_merging();
    // Signatures: merged models per class (the "knowledge" an experienced
    // participant brings about how each problem manifests).
    let signatures: Vec<CausalModel> = AnomalyKind::ALL
        .iter()
        .map(|&k| merged_model(&of_kind(corpus, k), &params, None))
        .collect();

    // The ten questions: one per anomaly class, variant 6, with
    // DBSherlock's generated predicates for its ground-truth region.
    let questions: Vec<(AnomalyKind, Vec<GeneratedPredicate>)> = AnomalyKind::ALL
        .iter()
        .map(|&k| (k, predicates_for(&of_kind(corpus, k)[6].labeled, &params, None)))
        .collect();

    // Competency tiers -> (label, participants, softmax temperature).
    // Lower temperature = reads the predicates more reliably.
    let tiers: [(&str, usize, Option<f64>); 4] = [
        ("Baseline (No Predicates)", 1000, None),
        ("Preliminary DB Knowledge", 20, Some(0.18)),
        ("DB Usage Experience", 15, Some(0.14)),
        ("DB Research or DBA Experience", 13, Some(0.12)),
    ];

    let mut rng = StdRng::seed_from_u64(args.seed_or(0x0B5E));
    let mut table = Table::new(
        "Table 3 — simulated user study (10 questions, 4 choices each)",
        &["Background", "# participants", "Avg correct (out of 10)"],
    );
    let mut rows_json = Vec::new();
    for (label, participants, temperature) in tiers {
        let mut total_correct = 0.0;
        for _ in 0..participants {
            let mut correct = 0usize;
            for (truth, shown) in &questions {
                // One correct + three random incorrect choices.
                let mut choices = vec![*truth];
                while choices.len() < 4 {
                    let candidate = AnomalyKind::ALL[rng.random_range(0..10)];
                    if !choices.contains(&candidate) {
                        choices.push(candidate);
                    }
                }
                // Shuffle.
                for i in (1..choices.len()).rev() {
                    let j = rng.random_range(0..=i);
                    choices.swap(i, j);
                }
                let picked = match temperature {
                    None => rng.random_range(0..4),
                    Some(t) => {
                        let scores: Vec<f64> = choices
                            .iter()
                            .map(|c| {
                                let sig = signatures
                                    .iter()
                                    .find(|s| s.cause == c.name())
                                    .expect("signature per class");
                                signature_match(shown, sig)
                            })
                            .collect();
                        softmax_pick(&scores, t, &mut rng)
                    }
                };
                if choices[picked] == *truth {
                    correct += 1;
                }
            }
            total_correct += correct as f64;
        }
        let avg = total_correct / participants as f64;
        table.row(vec![
            label.to_string(),
            if temperature.is_none() { "N/A".into() } else { participants.to_string() },
            format!("{avg:.1}"),
        ]);
        rows_json.push(serde_json::json!({
            "background": label, "participants": participants, "avg_correct": avg,
        }));
    }
    table.print();
    println!(
        "\nPaper: baseline 2.5; preliminary 7.5; usage 7.8; research/DBA 7.8 —\n  predicates lift diagnosis accuracy from 25% to ~75-78%.\nSubstitution: simulated participants (noisy signature matching); see DESIGN.md."
    );
    write_json("table3_user_study", &serde_json::json!({ "rows": rows_json }));
}
