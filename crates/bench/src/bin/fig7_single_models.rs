//! Figure 7 (§8.3): margin of confidence and F1-measure of the *correct*
//! single-dataset causal model, per anomaly class.
//!
//! Paper setup: build a causal model from one dataset (θ = 0.2) and apply
//! it to all remaining 109 datasets; repeat until every dataset has been
//! the training sample. We organize the same computation as 11 trials: in
//! trial `v`, every class's model is built from its variant `v`, and the
//! ten models compete on every dataset of every other variant.

use dbsherlock_bench::Table;
use dbsherlock_bench::{
    diagnose, pct, repository_from, single_model, tpcc_corpus, write_json, Tally,
};
use dbsherlock_core::SherlockParams;
use dbsherlock_simulator::{AnomalyKind, VARIATIONS};

fn main() {
    let corpus = tpcc_corpus();
    let params = SherlockParams::default(); // θ = 0.2 (§8.3)
    let mut per_kind: Vec<(AnomalyKind, Tally, f64, usize)> =
        AnomalyKind::ALL.iter().map(|&k| (k, Tally::default(), 0.0, 0usize)).collect();

    for train_variant in 0..VARIATIONS.len() {
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .map(|&kind| {
                let entry = corpus
                    .iter()
                    .find(|e| e.kind == kind && e.variant == train_variant)
                    .expect("corpus cell");
                single_model(entry, &params, None)
            })
            .collect();
        let repo = repository_from(models.clone());
        for entry in corpus.iter().filter(|e| e.variant != train_variant) {
            let outcome = diagnose(&repo, &entry.labeled, entry.kind, &params);
            let slot = per_kind.iter_mut().find(|(k, ..)| *k == entry.kind).unwrap();
            slot.1.record(&outcome);
            // F1 of the correct model's predicates on the test dataset.
            let correct_model = models.iter().find(|m| m.cause == entry.kind.name()).unwrap();
            let f1 = correct_model.f1(&entry.labeled.data, &entry.labeled.abnormal_region()).f1;
            slot.2 += f1;
            slot.3 += 1;
        }
    }

    let mut table = Table::new(
        "Figure 7 — margin of confidence & F1 of the correct single causal model",
        &["Test case", "Margin of confidence", "F1-measure", "Top-1 acc"],
    );
    let mut rows_json = Vec::new();
    let mut overall = Tally::default();
    let (mut f1_sum, mut f1_n) = (0.0, 0usize);
    for (kind, tally, f1_total, f1_count) in &per_kind {
        let f1_pct = if *f1_count == 0 { 0.0 } else { f1_total / *f1_count as f64 * 100.0 };
        table.row(vec![
            kind.name().to_string(),
            pct(tally.mean_margin_pct()),
            pct(f1_pct),
            pct(tally.top1_pct()),
        ]);
        rows_json.push(serde_json::json!({
            "case": kind.name(),
            "margin_pct": tally.mean_margin_pct(),
            "f1_pct": f1_pct,
            "top1_pct": tally.top1_pct(),
        }));
        overall.merge(tally);
        f1_sum += f1_total;
        f1_n += f1_count;
    }
    table.row(vec![
        "AVERAGE".to_string(),
        pct(overall.mean_margin_pct()),
        pct(if f1_n == 0 { 0.0 } else { f1_sum / f1_n as f64 * 100.0 }),
        pct(overall.top1_pct()),
    ]);
    table.print();
    println!(
        "\nPaper: correct model ranks first in all 10 test cases; average margin 13.5%.\nMeasured: top-1 accuracy {} overall, average margin {}.",
        pct(overall.top1_pct()),
        pct(overall.mean_margin_pct()),
    );
    write_json("fig7_single_models", &serde_json::json!({ "rows": rows_json }));
}
