//! Table 6b (this reproduction's extension): correlational vs.
//! interventionally validated diagnosis across the expanded (single-node +
//! cluster) scenario matrix.
//!
//! Setup: one merged causal model per anomaly class — the ten Table 1
//! classes *and* the five distributed-cluster classes — all in **one**
//! repository, trained on two variants per class. Each held-out incident is
//! then diagnosed twice:
//!
//! 1. **Correlational** — DBSherlock's Eq. 3 ranking as-is; top-1 is the
//!    highest-confidence cause.
//! 2. **Intervention-validated** — the top-ranked injectable candidates are
//!    re-injected by [`ScenarioRunner`] and scored against the incident's
//!    own symptom signature; reproduced causes are promoted
//!    ([`validate_explanation`]), and top-1 is read off the promoted
//!    ranking.
//!
//! A chaos leg plants the in-band [`PANIC_INTERVENTION`] trigger as a
//! ranked candidate: its trials panic inside the real trial slots, and the
//! run must isolate every panic, still populate a verdict for the
//! candidate, and leave its neighbours untouched. The trained repository is
//! also round-tripped through a [`ModelStore`] and verified after the run.
//!
//! Output: a summary table plus `results/BENCH_intervention.json`. The
//! process exits nonzero if intervention validation loses to the
//! correlational baseline, a panic escapes its slot, a verdict is missing,
//! or a fault trial fails to recover within its retry budget — this is the
//! CI `intervention-smoke` gate.

use std::fs;
use std::path::PathBuf;

use dbsherlock_bench::{diagnose_named, pct, write_json, ExperimentArgs, Table, Tally};
use dbsherlock_core::chaos::{quiet_panics, PANIC_INTERVENTION};
use dbsherlock_core::{
    validate_explanation, CausalModel, ExecPolicy, InterventionConfig, ModelStore, Predicate,
    Sherlock, SherlockParams,
};
use dbsherlock_simulator::{
    AnomalyKind, ClusterAnomalyKind, ClusterConfig, ClusterInjection, ClusterScenario, Injection,
    Scenario, ScenarioRunner, WorkloadConfig,
};
use dbsherlock_telemetry::{Dataset, Region};

/// The standard fault window shared by training runs, held-out incidents,
/// and the intervention runner's re-runs (region-aligned by construction).
const DURATION: usize = 150;
const START: usize = 60;
const FAULT_SECS: usize = 50;

fn workload() -> WorkloadConfig {
    WorkloadConfig { terminals: 48, ..WorkloadConfig::tpcc_default() }
}

fn cluster_shape() -> ClusterConfig {
    ClusterConfig::three_node(workload())
}

/// One labeled incident of either family, reduced to what the harness
/// needs: telemetry, ground-truth regions, and the true cause's name.
struct Incident {
    cause: &'static str,
    cluster: bool,
    data: Dataset,
    abnormal: Region,
}

fn single_node_incident(kind: AnomalyKind, seed: u64) -> Incident {
    let labeled = Scenario::new(workload(), DURATION, seed)
        .with_injection(Injection::new(kind, START, FAULT_SECS))
        .run();
    let abnormal = labeled.abnormal_region();
    Incident { cause: kind.name(), cluster: false, data: labeled.data, abnormal }
}

fn cluster_incident(kind: ClusterAnomalyKind, seed: u64) -> Incident {
    let labeled = ClusterScenario::new(cluster_shape(), DURATION, seed)
        .with_injection(ClusterInjection::new(kind, START, FAULT_SECS))
        .run()
        .expect("valid standard cluster scenario");
    let abnormal = labeled.abnormal_region();
    Incident { cause: kind.name(), cluster: true, data: labeled.data, abnormal }
}

/// Train one merged model per class from `train_seeds` incidents.
fn train(sherlock: &mut Sherlock, incidents: impl Iterator<Item = Incident>) {
    for incident in incidents {
        let explanation = sherlock.explain(&incident.data, &incident.abnormal, None);
        sherlock.feedback(incident.cause, &explanation.predicates);
    }
}

fn main() {
    let args = ExperimentArgs::parse();
    let base_seed = args.seed.unwrap_or(0xD1A6);
    // Reduced matrix by default (the CI smoke gate); --full covers the
    // whole expanded catalog.
    let single_kinds: Vec<AnomalyKind> = if args.full {
        AnomalyKind::ALL.to_vec()
    } else {
        vec![
            AnomalyKind::CpuSaturation,
            AnomalyKind::NetworkCongestion,
            AnomalyKind::LockContention,
            AnomalyKind::WorkloadSpike,
        ]
    };
    let cluster_kinds: Vec<ClusterAnomalyKind> = if args.full {
        ClusterAnomalyKind::ALL.to_vec()
    } else {
        vec![ClusterAnomalyKind::ReplicationLag, ClusterAnomalyKind::NetworkPartition]
    };
    let train_variants = args.repeats.unwrap_or(2) as u64;

    // ---- Train: one merged model per class, single unified repository. ----
    let mut sherlock = Sherlock::new(SherlockParams::default());
    for v in 0..train_variants {
        train(
            &mut sherlock,
            single_kinds.iter().map(|&k| single_node_incident(k, base_seed + 100 * v + k as u64)),
        );
        train(
            &mut sherlock,
            cluster_kinds
                .iter()
                .map(|&k| cluster_incident(k, base_seed + 2000 + 100 * v + k as u64)),
        );
    }

    // ---- Held-out incidents: correlational vs intervention-validated. ----
    let single_runner = ScenarioRunner::single_node(workload())
        .with_duration(DURATION)
        .with_window(START, FAULT_SECS);
    let cluster_runner = ScenarioRunner::cluster(cluster_shape())
        .with_duration(DURATION)
        .with_window(START, FAULT_SECS);
    let cfg = InterventionConfig {
        trials: 2,
        top_k: 3,
        base_seed,
        exec: ExecPolicy::Threads(4),
        ..InterventionConfig::default()
    };

    let incidents: Vec<Incident> = single_kinds
        .iter()
        .map(|&k| single_node_incident(k, base_seed + 7000 + k as u64))
        .chain(cluster_kinds.iter().map(|&k| cluster_incident(k, base_seed + 9000 + k as u64)))
        .collect();

    let mut correlational = Tally::default();
    let mut intervened = Tally::default();
    let mut missing_verdicts = 0usize;
    let mut fault_trial_failures = 0u32;
    let mut trials_total = 0u32;
    let mut retries_total = 0u32;
    let mut per_incident = Vec::new();

    for incident in &incidents {
        let before = diagnose_named(
            sherlock.repository(),
            &incident.data,
            &incident.abnormal,
            incident.cause,
            sherlock.params(),
        );
        correlational.record(&before);

        let runner: &dyn dbsherlock_core::InterventionRunner =
            if incident.cluster { &cluster_runner } else { &single_runner };
        let mut explanation = sherlock.explain(&incident.data, &incident.abnormal, None);
        let report = validate_explanation(&mut explanation, runner, sherlock.params(), &cfg);
        if explanation.interventions.len() != report.candidates {
            missing_verdicts += 1;
        }
        fault_trial_failures += report.trial_failures;
        trials_total += report.trials_run;
        retries_total += report.retries;

        let after = explanation.all_causes.iter().position(|c| c.cause == incident.cause);
        let mut outcome = before.clone();
        outcome.correct_rank = after;
        intervened.record(&outcome);

        per_incident.push(serde_json::json!({
            "cause": incident.cause,
            "family": if incident.cluster { "cluster" } else { "single-node" },
            "correlational_rank": before.correct_rank,
            "intervened_rank": after,
            "candidates": report.candidates,
            "verdicts": explanation.interventions.iter().map(|v| serde_json::json!({
                "cause": v.cause,
                "reproduced": v.verdict.reproduced,
                "confidence": v.verdict.confidence,
                "trials": v.verdict.trials,
                "seed": v.seed,
            })).collect::<Vec<_>>(),
        }));
    }

    // ---- Chaos leg: a deliberately panicking candidate in the ranking. ----
    let mut chaos_sherlock = sherlock.clone();
    chaos_sherlock.repository_mut().add(CausalModel {
        cause: PANIC_INTERVENTION.to_string(),
        // Latency rises under every Table 1 fault, so the chaos candidate
        // ranks high enough to be selected for validation.
        predicates: vec![Predicate::gt("txn_avg_latency_ms", 0.0)],
        merged_from: 1,
    });
    let chaos_incident = &incidents[0];
    let mut chaos_explanation =
        chaos_sherlock.explain(&chaos_incident.data, &chaos_incident.abnormal, None);
    // Validate every ranked candidate so the chaos trigger is guaranteed a
    // seat regardless of where the always-true predicate ranks it.
    let chaos_cfg = InterventionConfig { top_k: chaos_explanation.all_causes.len(), ..cfg.clone() };
    let chaos_report = quiet_panics(|| {
        validate_explanation(
            &mut chaos_explanation,
            &single_runner,
            chaos_sherlock.params(),
            &chaos_cfg,
        )
    });
    let chaos_verdict = chaos_explanation
        .interventions
        .iter()
        .find(|v| v.cause == PANIC_INTERVENTION)
        .expect("verdict populated for the panicking candidate");
    let panic_escapes =
        usize::from(chaos_report.panics_isolated != cfg.trials || chaos_verdict.verdict.reproduced);

    // ---- Store leg: round-trip the trained repository and verify. ----
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sherlock-intervention-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let store = ModelStore::new(dir.join("models.bin"));
    store.save(sherlock.repository()).unwrap();
    let (loaded, _) = store.load().unwrap();
    let store_verified = loaded.models().len() == sherlock.repository().models().len();
    let _ = fs::remove_dir_all(&dir);

    // ---- Report. ----
    let mut table = Table::new(
        "Table 6b — correlational vs intervention-validated diagnosis",
        &["Pipeline", "incidents", "top-1", "top-2"],
    );
    for (name, tally) in
        [("correlational", &correlational), ("intervention-validated", &intervened)]
    {
        table.row(vec![
            name.to_string(),
            tally.total.to_string(),
            pct(tally.top1_pct()),
            pct(tally.top2_pct()),
        ]);
    }
    table.print();
    println!(
        "\n{} incidents ({} single-node, {} cluster); {} trials, {} retries, \
         {} fault-trial failures; chaos: {} panics isolated, verdict populated: {}; \
         store verified: {store_verified}",
        incidents.len(),
        single_kinds.len(),
        cluster_kinds.len(),
        trials_total,
        retries_total,
        fault_trial_failures,
        chaos_report.panics_isolated,
        !chaos_verdict.verdict.reproduced,
    );

    write_json(
        "BENCH_intervention",
        &serde_json::json!({
            "matrix": {
                "single_node_kinds": single_kinds.iter().map(|k| k.name()).collect::<Vec<_>>(),
                "cluster_kinds": cluster_kinds.iter().map(|k| k.name()).collect::<Vec<_>>(),
                "train_variants": train_variants,
                "trials_per_candidate": cfg.trials,
                "top_k": cfg.top_k,
                "full": args.full,
            },
            "correlational": {
                "top1_pct": correlational.top1_pct(),
                "top2_pct": correlational.top2_pct(),
            },
            "intervention_validated": {
                "top1_pct": intervened.top1_pct(),
                "top2_pct": intervened.top2_pct(),
            },
            "robustness": {
                "trials_run": trials_total,
                "retries": retries_total,
                "fault_trial_failures": fault_trial_failures,
                "missing_verdicts": missing_verdicts,
                "panic_escapes": panic_escapes,
                "panics_isolated": chaos_report.panics_isolated,
                "store_verified": store_verified,
            },
            "incidents": per_incident,
        }),
    );

    assert!(
        intervened.top1 >= correlational.top1,
        "intervention validation lost to the correlational baseline: {} < {}",
        intervened.top1,
        correlational.top1,
    );
    assert_eq!(missing_verdicts, 0, "a selected candidate is missing its verdict");
    assert_eq!(fault_trial_failures, 0, "a fault trial failed to recover within its retry budget");
    assert_eq!(panic_escapes, 0, "a chaos panic escaped its trial slot");
    assert!(store_verified, "model store round-trip lost models");
}
