//! Table 8 (Appendix F): confusion matrix for secondary-symptom pruning on
//! synthetic linear causal graphs with known ground truth.
//!
//! Per run: a random 7-variable SEM, a 600-tuple dataset with a 60-tuple
//! anomaly on the root causes, random domain-knowledge rules; DBSherlock's
//! pruning (κ_t = 0.15) is scored against graph-reachability ground truth.
//! The paper runs 10,000 graphs; the quick default is 1,000 (`--full` for
//! the paper count).

use dbsherlock_bench::{pct, write_json, ExperimentArgs, Table};
use dbsherlock_causal_synth::{SynthConfig, SynthInstance};
use dbsherlock_core::{generate_predicates, DomainKnowledge, Rule, SherlockParams};

fn main() {
    let args = ExperimentArgs::parse();
    let runs = args.repeats_or(1000, 10_000);
    let config = SynthConfig::default();
    let params = SherlockParams::builder()
        .theta(0.01)
        .min_separation_power(0.0)
        .build()
        .expect("permissive generation parameters are in range");

    // Confusion counts: actual = should-prune (secondary symptom)?
    let (mut tp, mut fp, mut fn_, mut tn) = (0usize, 0usize, 0usize, 0usize);
    for run in 0..runs {
        let inst = SynthInstance::generate(&config, 0x7AB8 + run as u64);
        let abnormal = inst.abnormal.clone();
        let normal = abnormal.complement(inst.dataset.n_rows());
        let raw = generate_predicates(&inst.dataset, &abnormal, &normal, &params);
        let kb = DomainKnowledge::new(
            inst.rules.iter().map(|r| Rule::new(r.cause.clone(), r.effect.clone())),
        )
        .expect("synthetic rules are consistent");
        let survivors = kb.prune(&inst.dataset, raw.clone(), &params);
        for generated in &raw {
            let attr = &generated.predicate.attr;
            let Some(should_prune) = inst.should_prune(attr) else {
                continue;
            };
            let was_pruned = !survivors.iter().any(|s| &s.predicate.attr == attr);
            match (was_pruned, should_prune) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => tn += 1,
            }
        }
    }

    // Column-normalized percentages, as Table 8 reports them.
    let col = |hit: usize, miss: usize| {
        if hit + miss == 0 {
            0.0
        } else {
            hit as f64 / (hit + miss) as f64 * 100.0
        }
    };
    let mut table = Table::new(
        format!("Table 8 — secondary-symptom pruning confusion matrix ({runs} graphs)"),
        &["", "Actual Positive", "Actual Negative"],
    );
    table.row(vec!["Pruned".into(), pct(col(tp, fn_)), pct(col(fp, tn))]);
    table.row(vec!["Not Pruned".into(), pct(col(fn_, tp)), pct(col(tn, fp))]);
    table.print();
    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 * 100.0 };
    let recall = col(tp, fn_);
    println!(
        "\nPaper: pruned 91.6% of actual positives and only 0.9% of actual negatives\n  (precision 91.6%, recall 99.1% as the paper words it).\nMeasured: recall {} of true secondary symptoms pruned, precision {} of\n  prunes correct; false-prune rate {}.",
        pct(recall),
        pct(precision),
        pct(col(fp, tn)),
    );
    write_json(
        "table8_synthetic_domain",
        &serde_json::json!({
            "runs": runs,
            "tp": tp, "fp": fp, "fn": fn_, "tn": tn,
            "pruned_of_actual_positive_pct": col(tp, fn_),
            "pruned_of_actual_negative_pct": col(fp, tn),
        }),
    );
}
