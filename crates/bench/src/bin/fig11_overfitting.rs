//! Figure 11 (Appendix B): merging 10 datasets vs 5 — over-fitting check.
//!
//! Leave-one-out cross validation: models merged from all 10 remaining
//! datasets of each class are compared against the 5-dataset merged models
//! of §8.5 on (a) the correct model's confidence, (b) the margin of
//! confidence, and (c) top-1/top-2 accuracy.

use dbsherlock_bench::{
    diagnose, merged_model, of_kind, pct, random_split, repository_from, tpcc_corpus, write_json,
    ExperimentArgs, Table, Tally,
};
use dbsherlock_core::SherlockParams;
use dbsherlock_simulator::AnomalyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExperimentArgs::parse();
    let corpus = tpcc_corpus();
    let params = SherlockParams::for_merging();

    // Merged-10: leave-one-out over all 11 variants.
    let mut ten: Vec<(AnomalyKind, Tally)> =
        AnomalyKind::ALL.iter().map(|&k| (k, Tally::default())).collect();
    for held_out in 0..11 {
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .map(|&kind| {
                let entries = of_kind(corpus, kind);
                let train: Vec<_> = entries
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != held_out)
                    .map(|(_, e)| *e)
                    .collect();
                merged_model(&train, &params, None)
            })
            .collect();
        let repo = repository_from(models);
        for &kind in &AnomalyKind::ALL {
            let entry = of_kind(corpus, kind)[held_out];
            let outcome = diagnose(&repo, &entry.labeled, kind, &params);
            ten.iter_mut().find(|(k, _)| *k == kind).unwrap().1.record(&outcome);
        }
    }

    // Merged-5 baseline: random 5/6 splits as in §8.5.
    let repeats = args.repeats_or(10, 50);
    let mut five: Vec<(AnomalyKind, Tally)> =
        AnomalyKind::ALL.iter().map(|&k| (k, Tally::default())).collect();
    let mut rng = StdRng::seed_from_u64(args.seed_or(0xF11));
    for _ in 0..repeats {
        let splits: Vec<(Vec<usize>, Vec<usize>)> =
            AnomalyKind::ALL.iter().map(|_| random_split(11, 5, &mut rng)).collect();
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .zip(&splits)
            .map(|(&kind, (train, _))| {
                let entries = of_kind(corpus, kind);
                let chosen: Vec<_> = train.iter().map(|&i| entries[i]).collect();
                merged_model(&chosen, &params, None)
            })
            .collect();
        let repo = repository_from(models);
        for (&kind, (_, test)) in AnomalyKind::ALL.iter().zip(&splits) {
            let entries = of_kind(corpus, kind);
            for &t in test {
                let outcome = diagnose(&repo, &entries[t].labeled, kind, &params);
                five.iter_mut().find(|(k, _)| *k == kind).unwrap().1.record(&outcome);
            }
        }
    }

    let mut table = Table::new(
        "Figure 11 — merged models from 5 vs 10 datasets (over-fitting check)",
        &[
            "Test case",
            "Conf (5)",
            "Conf (10)",
            "Margin (5)",
            "Margin (10)",
            "Top-1 (10)",
            "Top-2 (10)",
        ],
    );
    let mut rows_json = Vec::new();
    let (mut t5, mut t10) = (Tally::default(), Tally::default());
    for ((kind, five_t), (_, ten_t)) in five.iter().zip(&ten) {
        table.row(vec![
            kind.name().to_string(),
            pct(five_t.mean_confidence_pct()),
            pct(ten_t.mean_confidence_pct()),
            pct(five_t.mean_margin_pct()),
            pct(ten_t.mean_margin_pct()),
            pct(ten_t.top1_pct()),
            pct(ten_t.top2_pct()),
        ]);
        rows_json.push(serde_json::json!({
            "case": kind.name(),
            "confidence5_pct": five_t.mean_confidence_pct(),
            "confidence10_pct": ten_t.mean_confidence_pct(),
            "margin5_pct": five_t.mean_margin_pct(),
            "margin10_pct": ten_t.mean_margin_pct(),
            "top1_pct": ten_t.top1_pct(),
            "top2_pct": ten_t.top2_pct(),
        }));
        t5.merge(five_t);
        t10.merge(ten_t);
    }
    table.row(vec![
        "AVERAGE".into(),
        pct(t5.mean_confidence_pct()),
        pct(t10.mean_confidence_pct()),
        pct(t5.mean_margin_pct()),
        pct(t10.mean_margin_pct()),
        pct(t10.top1_pct()),
        pct(t10.top2_pct()),
    ]);
    table.print();
    println!(
        "\nPaper: confidence rises slightly with 10 datasets but margins shrink in some\n  cases (over-fitting-like saturation); top-2 still correct nearly always.\nMeasured: avg confidence {} -> {}, avg margin {} -> {}.",
        pct(t5.mean_confidence_pct()),
        pct(t10.mean_confidence_pct()),
        pct(t5.mean_margin_pct()),
        pct(t10.mean_margin_pct()),
    );
    write_json("fig11_overfitting", &serde_json::json!({ "rows": rows_json }));
}
