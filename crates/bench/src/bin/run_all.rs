//! Run every experiment binary in sequence (quick defaults).
//!
//! `cargo run --release -p dbsherlock-bench --bin run_all [-- --full]`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "corpus_summary",
    "fig7_single_models",
    "fig8_merged_models",
    "fig9_perfxplain",
    "table2_domain_knowledge",
    "fig10_compound",
    "table3_user_study",
    "table4_tpce",
    "fig11_overfitting",
    "table5_robustness",
    "table6_ablation",
    "fig12_parameters",
    "fig13_kappa",
    "table7_auto_detection",
    "table8_synthetic_domain",
];

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .expect("executable directory");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################");
        let status = Command::new(exe_dir.join(name)).args(&passthrough).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("could not launch {name}: {e} (build binaries first: cargo build --release -p dbsherlock-bench --bins)");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
