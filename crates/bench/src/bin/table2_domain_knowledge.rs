//! Table 2 (§8.6): single-causal-model accuracy with vs without the four
//! MySQL/Linux domain-knowledge rules.
//!
//! Setup mirrors §8.3 (single-dataset models, θ = 0.2); the "with"
//! configuration prunes secondary symptoms before the model is stored.

use dbsherlock_bench::{
    diagnose, pct, repository_from, single_model, tpcc_corpus, write_json, Table, Tally,
};
use dbsherlock_core::{DomainKnowledge, SherlockParams};
use dbsherlock_simulator::{AnomalyKind, VARIATIONS};

fn run(domain: Option<&DomainKnowledge>) -> Tally {
    let corpus = tpcc_corpus();
    let params = SherlockParams::default();
    let mut tally = Tally::default();
    for train_variant in 0..VARIATIONS.len() {
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .map(|&kind| {
                let entry = corpus
                    .iter()
                    .find(|e| e.kind == kind && e.variant == train_variant)
                    .expect("corpus cell");
                single_model(entry, &params, domain)
            })
            .collect();
        let repo = repository_from(models);
        for entry in corpus.iter().filter(|e| e.variant != train_variant) {
            tally.record(&diagnose(&repo, &entry.labeled, entry.kind, &params));
        }
    }
    tally
}

fn main() {
    let kb = DomainKnowledge::mysql_linux();
    let with = run(Some(&kb));
    let without = run(None);

    let mut table = Table::new(
        "Table 2 — effect of domain knowledge on single causal models",
        &["Configuration", "Accuracy (top-1)", "Accuracy (top-2)", "Avg margin"],
    );
    table.row(vec![
        "With Domain Knowledge".into(),
        pct(with.top1_pct()),
        pct(with.top2_pct()),
        pct(with.mean_margin_pct()),
    ]);
    table.row(vec![
        "Without Domain Knowledge".into(),
        pct(without.top1_pct()),
        pct(without.top2_pct()),
        pct(without.mean_margin_pct()),
    ]);
    table.print();
    println!(
        "\nPaper: 85.3% / 94.8% with, 82.7% / 93.2% without (knowledge helps by ~2-3%,\n  and DBSherlock works well even without it).\nMeasured deltas: top-1 {:+.1} points, top-2 {:+.1} points, margin {:+.1} points\n  (our simulated signatures are separable enough that top-k accuracy\n  saturates; the margin shows the effect direction instead).",
        with.top1_pct() - without.top1_pct(),
        with.top2_pct() - without.top2_pct(),
        with.mean_margin_pct() - without.mean_margin_pct(),
    );
    write_json(
        "table2_domain_knowledge",
        &serde_json::json!({
            "with": {"top1_pct": with.top1_pct(), "top2_pct": with.top2_pct(),
                      "margin_pct": with.mean_margin_pct()},
            "without": {"top1_pct": without.top1_pct(), "top2_pct": without.top2_pct(),
                         "margin_pct": without.mean_margin_pct()},
        }),
    );
}
