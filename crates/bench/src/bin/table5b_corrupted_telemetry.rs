//! Table 5b (this reproduction's extension of Appendix C): robustness
//! against *corrupted telemetry* rather than imperfect region input.
//!
//! The paper's robustness study perturbs the user's abnormal region but
//! always feeds DBSherlock pristine telemetry. Real collectors fail more
//! creatively: dropped and duplicated seconds, clock skew and jitter, stuck
//! sensors, NaN/Inf/empty cells, truncated files, and schema drift. This
//! experiment sweeps every single-fault [`FaultPlan`] over a grid of
//! intensities, pushes each held-out corpus dataset through fault injection
//! → lossy ingestion → alignment repair, re-maps the ground-truth anomaly
//! window by wall clock, and diagnoses with leave-one-out merged-10 models
//! trained on clean data — measuring how diagnosis confidence and accuracy
//! degrade as the telemetry does.
//!
//! Output: a table per fault kind plus `results/table5b_corrupted_telemetry.json`
//! with the full degradation curves.

use dbsherlock_bench::{
    diagnose_dataset, merged_model, of_kind, pct, repository_from, tpcc_corpus, write_json,
    ExperimentArgs, Table, Tally,
};
use dbsherlock_core::{Sherlock, SherlockParams};
use dbsherlock_simulator::AnomalyKind;
use dbsherlock_telemetry::faults::{FaultKind, FaultPlan};

/// Corruption intensities swept per fault kind (fraction of the targetable
/// unit affected).
const INTENSITIES: [f64; 5] = [0.0, 0.025, 0.05, 0.10, 0.25];

fn plan_seed(kind_idx: usize, fault_idx: usize, intensity_idx: usize, variant: usize) -> u64 {
    0x0007_AB5B_u64
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((kind_idx as u64) << 24)
        .wrapping_add((fault_idx as u64) << 16)
        .wrapping_add((intensity_idx as u64) << 8)
        .wrapping_add(variant as u64)
}

fn main() {
    let args = ExperimentArgs::parse();
    let corpus = tpcc_corpus();
    let params = SherlockParams::for_merging();

    // Held-out variants: a spread of anomaly durations in quick mode, the
    // full leave-one-out sweep with --full.
    let held_out_variants: Vec<usize> = if args.full { (0..11).collect() } else { vec![0, 5, 10] };

    // Per held-out variant: merged-10 models per class, trained on CLEAN
    // data (the repository was built while the collector was healthy; only
    // the incident being diagnosed is corrupted).
    let mut repos = Vec::new();
    for &held_out in &held_out_variants {
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .map(|&kind| {
                let entries = of_kind(corpus, kind);
                let train: Vec<_> = entries
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != held_out)
                    .map(|(_, e)| *e)
                    .collect();
                merged_model(&train, &params, None)
            })
            .collect();
        repos.push(repository_from(models));
    }

    // ---- Sweep: fault kind × intensity × (held-out variant × class). ----
    let mut curves = Vec::new();
    let mut clean_top1 = None;
    for (fault_idx, &fault) in FaultKind::ALL.iter().enumerate() {
        let mut points = Vec::new();
        for (intensity_idx, &intensity) in INTENSITIES.iter().enumerate() {
            let mut tally = Tally::default();
            let mut total_events = 0usize;
            let mut total_warnings = 0usize;
            let mut failures = 0usize;
            for (repo_idx, &held_out) in held_out_variants.iter().enumerate() {
                for (kind_idx, &kind) in AnomalyKind::ALL.iter().enumerate() {
                    let entry = of_kind(corpus, kind)[held_out];
                    let plan = FaultPlan::single(
                        fault,
                        intensity,
                        plan_seed(kind_idx, fault_idx, intensity_idx, held_out),
                    );
                    let corrupted = match entry.labeled.corrupted(&plan) {
                        Ok(c) => c,
                        Err(e) => {
                            // Hopeless input (e.g. the whole file truncated
                            // away): count as a miss, never a crash.
                            eprintln!("  {fault}@{intensity}: {kind:?} unrecoverable: {e}");
                            failures += 1;
                            continue;
                        }
                    };
                    total_events += corrupted.report.total();
                    total_warnings += corrupted.warnings.len();
                    let truth_region = corrupted.abnormal_region();
                    let outcome = diagnose_dataset(
                        &repos[repo_idx],
                        &corrupted.data,
                        &truth_region,
                        kind,
                        &params,
                    );
                    tally.record(&outcome);
                }
            }
            points.push(serde_json::json!({
                "intensity": intensity,
                "top1_pct": tally.top1_pct(),
                "top2_pct": tally.top2_pct(),
                "mean_confidence_pct": tally.mean_confidence_pct(),
                "mean_margin_pct": tally.mean_margin_pct(),
                "diagnoses": tally.total,
                "unrecoverable": failures,
                "corruption_events": total_events,
                "ingest_warnings": total_warnings,
            }));
            // sherlock-lint: allow(nan-unsafe): 0.0 is an exact sentinel from the sweep grid
            if intensity == 0.0 && clean_top1.is_none() {
                clean_top1 = Some(tally.top1_pct());
            }
        }
        curves.push((fault, points));
    }
    let clean_top1 = clean_top1.unwrap_or(0.0);

    // ---- Panic-safety sweep: full explain() on every class at 10%. ----
    let sherlock = Sherlock::new(params.clone());
    let mut explain_ok = 0usize;
    let mut explain_total = 0usize;
    for (fault_idx, &fault) in FaultKind::ALL.iter().enumerate() {
        for (kind_idx, &kind) in AnomalyKind::ALL.iter().enumerate() {
            explain_total += 1;
            let entry = of_kind(corpus, kind)[held_out_variants[0]];
            let plan = FaultPlan::single(fault, 0.10, plan_seed(kind_idx, fault_idx, 99, 0));
            match entry.labeled.corrupted(&plan) {
                Ok(corrupted) => {
                    let abnormal = corrupted.abnormal_region();
                    let _ = sherlock.explain(&corrupted.data, &abnormal, None);
                    explain_ok += 1;
                }
                Err(e) => eprintln!("  explain sweep: {fault} on {kind:?} unrecoverable: {e}"),
            }
        }
    }

    // ---- Report. ----
    let mut table = Table::new(
        "Table 5b — diagnosis accuracy under corrupted telemetry (merged-10 models)",
        &["Fault", "clean", "2.5%", "5%", "10%", "25%", "conf@25%"],
    );
    let mut curves_json = Vec::new();
    for (fault, points) in &curves {
        let field =
            |i: usize, key: &str| points[i].get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let top1 = |i: usize| field(i, "top1_pct");
        let conf25 = field(4, "mean_confidence_pct");
        table.row(vec![
            fault.name().to_string(),
            pct(top1(0)),
            pct(top1(1)),
            pct(top1(2)),
            pct(top1(3)),
            pct(top1(4)),
            pct(conf25),
        ]);
        curves_json.push(serde_json::json!({
            "fault": fault.name(),
            "points": points.clone(),
        }));
    }
    table.print();

    // Acceptance: at ≤5% corruption, top-1 stays within 15 points of clean.
    let mut worst_drop: f64 = 0.0;
    let mut worst_fault = "none";
    for (fault, points) in &curves {
        for point in points.iter().take(3).skip(1) {
            let drop = clean_top1 - point.get("top1_pct").and_then(|v| v.as_f64()).unwrap_or(0.0);
            if drop > worst_drop {
                worst_drop = drop;
                worst_fault = fault.name();
            }
        }
    }
    println!(
        "\nClean-pipeline baseline top-1: {}. Worst ≤5% degradation: {:.1} points ({worst_fault}).",
        pct(clean_top1),
        worst_drop,
    );
    println!(
        "explain() completed on {explain_ok}/{explain_total} (fault × class) cells at 10% intensity."
    );
    println!(
        "Every fault is injected into the *test* trace only; models are trained on clean data,\n\
         mirroring an incident striking while the collector itself is misbehaving."
    );

    write_json(
        "table5b_corrupted_telemetry",
        &serde_json::json!({
            "intensities": INTENSITIES.to_vec(),
            "held_out_variants": held_out_variants,
            "clean_top1_pct": clean_top1,
            "worst_drop_le_5pct": worst_drop,
            "explain_completed": explain_ok,
            "explain_total": explain_total,
            "curves": curves_json,
        }),
    );
}
