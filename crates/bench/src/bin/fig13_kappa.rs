//! Figure 13 (Appendix D): sensitivity of secondary-symptom pruning to the
//! independence-test threshold `κ_t`, on the synthetic SEM data of
//! Appendix F.
//!
//! For each `κ_t`, random linear causal graphs are generated; the pruning
//! decision ("this predicate is a secondary symptom") is scored against
//! graph-reachability ground truth and the average F1 is reported.

use dbsherlock_bench::{pct, write_json, ExperimentArgs, Table};
use dbsherlock_causal_synth::{SynthConfig, SynthInstance};
use dbsherlock_core::{generate_predicates, DomainKnowledge, Rule, SherlockParams};

/// Precision/recall/F1 of pruning decisions over `runs` random graphs at
/// one κ_t.
fn prune_f1(kappa_t: f64, runs: usize, seed: u64) -> (f64, f64, f64) {
    let config = SynthConfig::default();
    // Low θ and SP floor: the synthetic SEM experiment evaluates the
    // pruning decision, so predicate generation should be permissive.
    let params = SherlockParams::builder()
        .kappa_t(kappa_t)
        .theta(0.01)
        .min_separation_power(0.0)
        .build()
        .expect("sweep parameters are in range");
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for run in 0..runs {
        let inst = SynthInstance::generate(&config, seed.wrapping_add(run as u64));
        let abnormal = inst.abnormal.clone();
        let normal = abnormal.complement(inst.dataset.n_rows());
        let raw = generate_predicates(&inst.dataset, &abnormal, &normal, &params);
        let kb = DomainKnowledge::new(
            inst.rules.iter().map(|r| Rule::new(r.cause.clone(), r.effect.clone())),
        )
        .expect("synthetic rules are consistent");
        let survivors = kb.prune(&inst.dataset, raw.clone(), &params);
        for generated in &raw {
            let attr = &generated.predicate.attr;
            let Some(should_prune) = inst.should_prune(attr) else {
                continue;
            };
            let was_pruned = !survivors.iter().any(|s| &s.predicate.attr == attr);
            match (was_pruned, should_prune) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
    // `> 0.0` instead of `== 0.0`: guards the 0/0 case and maps a NaN
    // precision/recall to 0.0 rather than propagating it.
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision * 100.0, recall * 100.0, f1 * 100.0)
}

fn main() {
    let args = ExperimentArgs::parse();
    let runs = args.repeats_or(300, 2000);
    let mut table = Table::new(
        "Figure 13 — pruning F1 vs independence-test threshold (κ_t)",
        &["kappa_t", "Precision", "Recall", "F1"],
    );
    let mut rows_json = Vec::new();
    for kappa_t in [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30] {
        let (p, r, f1) = prune_f1(kappa_t, runs, 0xF13);
        table.row(vec![format!("{kappa_t}"), pct(p), pct(r), pct(f1)]);
        rows_json.push(serde_json::json!({
            "kappa_t": kappa_t, "precision_pct": p, "recall_pct": r, "f1_pct": f1,
        }));
    }
    table.print();
    println!(
        "\nPaper: F1 peaks at κ_t = 0.15 (the default); very small κ_t over-prunes\n  independent attributes, large κ_t under-prunes."
    );
    write_json("fig13_kappa", &serde_json::json!({ "runs": runs, "rows": rows_json }));
}
