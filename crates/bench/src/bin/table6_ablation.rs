//! Table 6 (Appendix D): contribution of the Partition Filtering and
//! Filling-the-Gaps steps to overall accuracy.
//!
//! Single-model setup as in §8.3, with the two steps individually and
//! jointly disabled.

use dbsherlock_bench::{diagnose, pct, repository_from, tpcc_corpus, write_json, Table, Tally};
use dbsherlock_core::{generate_predicates_ablated, AblationFlags, CausalModel, SherlockParams};
use dbsherlock_simulator::{AnomalyKind, VARIATIONS};

fn run(flags: AblationFlags) -> Tally {
    let corpus = tpcc_corpus();
    let params = SherlockParams::default();
    let mut tally = Tally::default();
    for train_variant in 0..VARIATIONS.len() {
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .map(|&kind| {
                let entry = corpus
                    .iter()
                    .find(|e| e.kind == kind && e.variant == train_variant)
                    .expect("corpus cell");
                let abnormal = entry.labeled.abnormal_region();
                let normal = entry.labeled.normal_region();
                let preds = generate_predicates_ablated(
                    &entry.labeled.data,
                    &abnormal,
                    &normal,
                    &params,
                    flags,
                );
                CausalModel::from_feedback(kind.name(), &preds)
            })
            .collect();
        let repo = repository_from(models);
        for entry in corpus.iter().filter(|e| e.variant != train_variant) {
            tally.record(&diagnose(&repo, &entry.labeled, entry.kind, &params));
        }
    }
    tally
}

fn main() {
    let rows: [(&str, AblationFlags); 4] = [
        ("Original (all 5 steps)", AblationFlags::default()),
        ("Without Filling the Gaps", AblationFlags { skip_filling: true, ..Default::default() }),
        (
            "Without Partition Filtering",
            AblationFlags { skip_filtering: true, ..Default::default() },
        ),
        (
            "Without Filling the Gaps & Partition Filtering",
            AblationFlags { skip_filtering: true, skip_filling: true },
        ),
    ];
    let mut table = Table::new(
        "Table 6 — contribution of algorithm steps",
        &["Algorithm", "Avg margin of confidence", "Accuracy (top-1)"],
    );
    let mut rows_json = Vec::new();
    for (label, flags) in rows {
        let tally = run(flags);
        table.row(vec![label.to_string(), pct(tally.mean_margin_pct()), pct(tally.top1_pct())]);
        rows_json.push(serde_json::json!({
            "algorithm": label,
            "margin_pct": tally.mean_margin_pct(),
            "top1_pct": tally.top1_pct(),
        }));
    }
    table.print();
    println!(
        "\nPaper: 37.4 margin / 94.6% with all steps; 9.3 / 10.1% without filling;\n  0.7 / 0% without filtering; 0 / 0% without both — both steps are essential."
    );
    write_json("table6_ablation", &serde_json::json!({ "rows": rows_json }));
}
