//! Table 5c (this reproduction's extension): crash recovery and panic
//! isolation for the hardened diagnosis runtime.
//!
//! Two torture chambers:
//!
//! 1. **Store torture** — a two-generation model store is corrupted with
//!    every fault the [`StoreFault`] injector knows: truncation at *every*
//!    byte offset, a bit flip at every byte, a duplicated record, and a
//!    deleted primary (the state a crash inside `save`'s rotate/rename
//!    window leaves behind). After each fault, [`ModelStore::load`] must
//!    quarantine the damage and recover the previous good generation (or
//!    the zero-length fresh-start path), never crash, never return garbage.
//! 2. **Batch poison isolation** — a 110-case `explain_batch` where 10
//!    cases carry the in-band chaos trigger [`PANIC_ATTR`], making the real
//!    model scorer panic on the real thread pool. The 10 poisoned slots
//!    must surface `Err(TaskPanicked)`; the 100 clean slots must be
//!    bit-identical to a clean serial run. A third pass blows a zero
//!    deadline and a size budget to show deterministic degradation.
//!
//! Output: a summary table plus `results/BENCH_crash_recovery.json`. The
//! process exits nonzero if a single corruption goes unrecovered or a
//! single poisoned case escapes its slot — this is the CI smoke gate.

use std::fs;
use std::path::PathBuf;

use dbsherlock_bench::{write_json, ExperimentArgs, Table};
use dbsherlock_core::chaos::{quiet_panics, PANIC_ATTR};
use dbsherlock_core::{
    Case, CausalModel, DiagnosisBudget, ExecPolicy, ModelRepository, ModelStore, Predicate,
    Sherlock, SherlockError, SherlockParams, StoreFault,
};
use dbsherlock_telemetry::{AttributeMeta, Dataset, Region, Schema, Value};

/// A model repository distinguishable by generation: `n_models` tells the
/// torture loop which generation a recovered load actually came from.
fn repo_with_models(n_models: usize) -> ModelRepository {
    let mut repo = ModelRepository::new();
    for i in 0..n_models {
        repo.add(CausalModel {
            cause: format!("cause-{i}"),
            predicates: vec![Predicate::gt("signal", 40.0 + i as f64)],
            merged_from: 1,
        });
    }
    repo
}

struct TortureOutcome {
    trials: usize,
    recovered_backup: usize,
    fresh_starts: usize,
    quarantined: usize,
    unrecovered: usize,
}

/// Inflict `fault` on a freshly prepared two-generation store and check the
/// recovery ladder. "Recovered" means the load returned either the backup's
/// generation-1 repository (1 model) or — only for faults that leave a
/// zero-length husk with no backup, which cannot happen here — a warned
/// fresh start. Anything else is an unrecovered corruption.
fn torture_once(dir: &std::path::Path, full: &[u8], fault: StoreFault) -> (bool, bool, usize) {
    let store = ModelStore::new(dir.join("models.bin"));
    fs::write(store.path(), full).unwrap();
    fault.apply(store.path()).unwrap();
    let Ok((repo, report)) = store.load() else {
        return (false, false, 0);
    };
    for grave in &report.quarantined {
        let _ = fs::remove_file(grave);
    }
    let recovered = report.recovered_from_backup && repo.models().len() == 1;
    // Byte 0 truncation leaves a zero-length file; with the backup present
    // it must still recover, so a fresh start only counts when the store
    // said so *and* warned.
    let fresh =
        !report.recovered_from_backup && repo.models().is_empty() && !report.warnings.is_empty();
    (recovered, fresh, report.quarantined.len())
}

fn store_torture(dir: &std::path::Path, faults: &[StoreFault]) -> TortureOutcome {
    // Two generations: gen 1 holds one model (the recovery target), gen 2
    // holds two (the copy being corrupted).
    let store = ModelStore::new(dir.join("models.bin"));
    store.save(&repo_with_models(1)).unwrap();
    store.save(&repo_with_models(2)).unwrap();
    let full = fs::read(store.path()).unwrap();

    let mut outcome = TortureOutcome {
        trials: 0,
        recovered_backup: 0,
        fresh_starts: 0,
        quarantined: 0,
        unrecovered: 0,
    };
    for &fault in faults {
        outcome.trials += 1;
        let (recovered, fresh, graves) = torture_once(dir, &full, fault);
        outcome.quarantined += graves;
        if recovered {
            outcome.recovered_backup += 1;
        } else if fresh {
            outcome.fresh_starts += 1;
        } else {
            outcome.unrecovered += 1;
            eprintln!("UNRECOVERED: {fault:?}");
        }
    }
    outcome
}

/// 80 rows with a signal jump in rows 30..45; `tag` varies the magnitude so
/// cases are distinct, `poisoned` adds the chaos attribute that detonates
/// the model scorer for this one case.
fn case_dataset(tag: usize, poisoned: bool) -> Dataset {
    let mut attrs = vec![AttributeMeta::numeric("signal"), AttributeMeta::numeric("steady")];
    if poisoned {
        attrs.push(AttributeMeta::numeric(PANIC_ATTR));
    }
    let schema = Schema::from_attrs(attrs).unwrap();
    let mut d = Dataset::new(schema);
    for i in 0..80 {
        let abnormal = (30..45).contains(&i);
        let jitter = ((i * 7 + tag * 13) % 10) as f64 * 0.09;
        let signal = if abnormal { 80.0 + (tag % 7) as f64 } else { 5.0 + (i % 6) as f64 } + jitter;
        let steady = 40.0 + (i % 3) as f64;
        let mut row = vec![Value::Num(signal), Value::Num(steady)];
        if poisoned {
            row.push(Value::Num(1.0));
        }
        d.push_row(i as f64, &row).unwrap();
    }
    d
}

/// Fingerprint of an explanation for bit-identical comparison.
fn fingerprint(e: &dbsherlock_core::Explanation) -> String {
    let causes: Vec<String> =
        e.all_causes.iter().map(|c| format!("{}:{:x}", c.cause, c.confidence.to_bits())).collect();
    format!("{}|{}", e.predicates_display(), causes.join(","))
}

fn main() {
    let _args = ExperimentArgs::parse();
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sherlock-crash-torture-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    // ---- Part 1: store torture. ----
    let probe_store = ModelStore::new(dir.join("models.bin"));
    probe_store.save(&repo_with_models(1)).unwrap();
    probe_store.save(&repo_with_models(2)).unwrap();
    let record_len = fs::read(probe_store.path()).unwrap().len();

    let truncations: Vec<StoreFault> = (0..record_len).map(StoreFault::TruncateAt).collect();
    let bitflips: Vec<StoreFault> =
        (0..record_len).map(|byte| StoreFault::FlipBit { byte, bit: (byte % 8) as u8 }).collect();
    let duplicates = vec![StoreFault::DuplicateRecord];
    let deletions = vec![StoreFault::DeletePrimary];

    let trunc = store_torture(&dir, &truncations);
    let flip = store_torture(&dir, &bitflips);
    let dup = store_torture(&dir, &duplicates);
    let del = store_torture(&dir, &deletions);

    let mut table = Table::new(
        "Table 5c — crash recovery: store faults vs recovery ladder",
        &[
            "Fault family",
            "trials",
            "recovered (.prev)",
            "fresh start",
            "quarantined",
            "UNRECOVERED",
        ],
    );
    for (name, o) in [
        ("truncate@k", &trunc),
        ("bit-flip@k", &flip),
        ("duplicate record", &dup),
        ("delete primary", &del),
    ] {
        table.row(vec![
            name.to_string(),
            o.trials.to_string(),
            o.recovered_backup.to_string(),
            o.fresh_starts.to_string(),
            o.quarantined.to_string(),
            o.unrecovered.to_string(),
        ]);
    }
    table.print();
    let unrecovered_total =
        trunc.unrecovered + flip.unrecovered + dup.unrecovered + del.unrecovered;

    // ---- Part 2: 110-case batch with 10 poisoned cases. ----
    const BATCH: usize = 110;
    let poisoned_at = |i: usize| i % 11 == 10; // 10 of 110
    let datasets: Vec<Dataset> = (0..BATCH).map(|i| case_dataset(i, poisoned_at(i))).collect();
    let abnormal = Region::from_range(30..45);

    let mut repo = ModelRepository::new();
    repo.add(CausalModel {
        cause: "runaway batch job".to_string(),
        predicates: vec![Predicate::gt("signal", 40.0)],
        merged_from: 1,
    });

    let params = SherlockParams::builder().exec(ExecPolicy::Threads(4)).build().unwrap();
    let mut sherlock = Sherlock::new(params);
    *sherlock.repository_mut() = repo.clone();
    let cases: Vec<Case<'_>> = datasets.iter().map(|d| Case::new(d, &abnormal)).collect();
    // The chaos panics are caught at the slot boundary, but the default
    // hook would still spam stderr once per poisoned case.
    let batch = quiet_panics(|| sherlock.explain_batch(&cases));

    // Serial clean reference for bit-identical comparison.
    let mut serial =
        Sherlock::new(SherlockParams::builder().exec(ExecPolicy::Serial).build().unwrap());
    *serial.repository_mut() = repo.clone();

    let mut isolated = 0usize;
    let mut clean_matches = 0usize;
    let mut escapes = 0usize;
    for (i, result) in batch.iter().enumerate() {
        if poisoned_at(i) {
            match result {
                Err(SherlockError::TaskPanicked { stage, .. }) if *stage == "rank" => isolated += 1,
                other => {
                    escapes += 1;
                    eprintln!("case {i}: poison escaped its slot: {other:?}");
                }
            }
        } else {
            let reference = serial.try_explain(&datasets[i], &abnormal, None).unwrap();
            match result {
                Ok(e) if fingerprint(e) == fingerprint(&reference) => clean_matches += 1,
                other => {
                    escapes += 1;
                    eprintln!("case {i}: clean case diverged from serial run: {other:?}");
                }
            }
        }
    }

    // ---- Part 3: deterministic budget degradation. ----
    let expired = SherlockParams::builder()
        .exec(ExecPolicy::Threads(4))
        .budget(DiagnosisBudget::unlimited().with_deadline_ms(0))
        .build()
        .unwrap();
    let mut blown = Sherlock::new(expired);
    *blown.repository_mut() = repo.clone();
    let deadline_errors = blown
        .explain_batch(&cases)
        .iter()
        .filter(|r| matches!(r, Err(SherlockError::DeadlineExceeded { .. })))
        .count();

    let starved = SherlockParams::builder()
        .budget(DiagnosisBudget::unlimited().with_max_rows(10))
        .build()
        .unwrap();
    let mut tiny = Sherlock::new(starved);
    *tiny.repository_mut() = repo;
    let budget_errors = tiny
        .explain_batch(&cases)
        .iter()
        .filter(|r| matches!(r, Err(SherlockError::BudgetExceeded { what: "rows", .. })))
        .count();

    let mut batch_table = Table::new(
        "Table 5c — batch hardening: 110 cases, 10 poisoned",
        &["Scenario", "cases", "expected", "observed"],
    );
    batch_table.row(vec![
        "poisoned -> TaskPanicked".into(),
        BATCH.to_string(),
        "10".into(),
        isolated.to_string(),
    ]);
    batch_table.row(vec![
        "clean == serial run".into(),
        BATCH.to_string(),
        "100".into(),
        clean_matches.to_string(),
    ]);
    batch_table.row(vec![
        "deadline 0ms -> DeadlineExceeded".into(),
        BATCH.to_string(),
        BATCH.to_string(),
        deadline_errors.to_string(),
    ]);
    batch_table.row(vec![
        "max_rows 10 -> BudgetExceeded".into(),
        BATCH.to_string(),
        BATCH.to_string(),
        budget_errors.to_string(),
    ]);
    batch_table.print();

    write_json(
        "BENCH_crash_recovery",
        &serde_json::json!({
            "record_len": record_len,
            "store": {
                "truncation": { "trials": trunc.trials, "recovered": trunc.recovered_backup,
                                "fresh": trunc.fresh_starts, "unrecovered": trunc.unrecovered },
                "bitflip": { "trials": flip.trials, "recovered": flip.recovered_backup,
                             "fresh": flip.fresh_starts, "unrecovered": flip.unrecovered },
                "duplicate": { "trials": dup.trials, "recovered": dup.recovered_backup,
                               "fresh": dup.fresh_starts, "unrecovered": dup.unrecovered },
                "delete_primary": { "trials": del.trials, "recovered": del.recovered_backup,
                                    "fresh": del.fresh_starts, "unrecovered": del.unrecovered },
                "quarantined": trunc.quarantined
                    + flip.quarantined
                    + dup.quarantined
                    + del.quarantined,
            },
            "batch": {
                "cases": BATCH,
                "poisoned": 10,
                "isolated": isolated,
                "clean_matches": clean_matches,
                "escapes": escapes,
                "deadline_errors": deadline_errors,
                "budget_errors": budget_errors,
            },
            "unrecovered_corruptions": unrecovered_total,
        }),
    );

    let _ = fs::remove_dir_all(&dir);

    println!(
        "\n{} store faults, {} recovered from .prev, {} unrecovered; \
         {isolated}/10 poisons isolated, {clean_matches}/100 clean cases bit-identical.",
        trunc.trials + flip.trials + dup.trials + del.trials,
        trunc.recovered_backup
            + flip.recovered_backup
            + dup.recovered_backup
            + del.recovered_backup,
        unrecovered_total,
    );
    assert_eq!(unrecovered_total, 0, "store corruption went unrecovered");
    assert_eq!(isolated, 10, "a poisoned case escaped its slot");
    assert_eq!(clean_matches, 100, "a clean case diverged from the serial run");
    assert_eq!(escapes, 0);
    assert_eq!(deadline_errors, BATCH, "zero deadline must fail every case");
    assert_eq!(budget_errors, BATCH, "max_rows=10 must reject every 80-row case");
}
