//! Columnar vs row-wise kernel scaling benchmark.
//!
//! Sweeps corpus size × attribute count × thread count and measures the
//! diagnosis pipeline two ways over identical synthetic telemetry:
//!
//! * **columnar** — the production path: one [`ColumnarSnapshot`] per
//!   case, typed column views, branch-light per-column kernels
//!   (`Sherlock::try_explain`).
//! * **scalar** — the retained row-wise reference shim: per-cell
//!   `value()` dispatch everywhere (`Sherlock::explain_scalar`, compiled
//!   under the core `scalar-shim` feature).
//!
//! Every measured pair is **hard-asserted bit-identical** (predicates,
//! confidences to the bit) before any timing is reported, and the
//! columnar path is additionally asserted identical across all thread
//! budgets. Reports rows/sec and explains/sec per cell and writes
//! `results/BENCH_columnar_scaling.json`.
//!
//! `--smoke` runs a tiny matrix with the same asserts and no JSON — the
//! CI guard that the two paths cannot drift apart silently.

use std::time::Instant;

use dbsherlock_bench::write_json;
use dbsherlock_core::{ExecPolicy, Explanation, Sherlock, SherlockParams};
use dbsherlock_telemetry::{AttributeMeta, Dataset, Region, Schema, Value};

/// Thread budgets to measure: 1, N/2, N, plus a fixed 4-thread point.
fn thread_counts() -> Vec<usize> {
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1, (n / 2).max(1), n, 4];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Deterministic synthetic telemetry: `attrs` numeric attributes plus one
/// categorical `state`. The first quarter of the numeric attributes carry
/// the anomaly (a level shift inside the abnormal window), the rest are
/// uncorrelated noise; one noise attribute is salted with NaNs so the
/// non-finite row skipping in both paths is actually exercised.
fn build_case(rows: usize, attrs: usize) -> (Dataset, Region) {
    let mut metas: Vec<AttributeMeta> =
        (0..attrs).map(|k| AttributeMeta::numeric(format!("m{k}"))).collect();
    metas.push(AttributeMeta::categorical("state"));
    let schema = Schema::from_attrs(metas).expect("bench schema");
    let mut d = Dataset::new(schema);
    let lo = rows / 3;
    let hi = lo + (rows / 5).max(1);
    let signal_attrs = (attrs / 4).max(1);
    for i in 0..rows {
        let abnormal = (lo..hi).contains(&i);
        let mut values: Vec<Value> = Vec::with_capacity(attrs + 1);
        for k in 0..attrs {
            let jitter = ((i * 31 + k * 17) % 97) as f64 * 0.11;
            let v = if k < signal_attrs {
                if abnormal {
                    80.0 + jitter
                } else {
                    10.0 + jitter
                }
            } else if k == signal_attrs && i % 13 == 0 {
                f64::NAN
            } else {
                ((i * 7 + k * 13) % 89) as f64
            };
            values.push(Value::Num(v));
        }
        let state = d.intern(attrs, if abnormal { "bad" } else { "ok" }).expect("intern");
        values.push(state);
        d.push_row(i as f64, &values).expect("bench row");
    }
    (d, Region::from_range(lo..hi))
}

/// Engine preloaded with causal models so the rank stage is part of every
/// measured explain, not just predicate generation.
fn engine(dataset: &Dataset, abnormal: &Region, exec: ExecPolicy) -> Sherlock {
    let mut sherlock = Sherlock::new(SherlockParams::default().with_exec(exec));
    let seed = sherlock.explain(dataset, abnormal, None);
    sherlock.feedback("injected shift", &seed.predicates);
    sherlock.feedback_with_action("red herring", &[], "restart", false);
    sherlock
}

/// Bit-exact fingerprint of one explanation.
fn fingerprint(e: &Explanation) -> String {
    let causes: Vec<String> =
        e.all_causes.iter().map(|c| format!("{}:{}", c.cause, c.confidence.to_bits())).collect();
    format!("{}|{}", e.predicates_display(), causes.join(","))
}

/// Time `explain` repetitions of a closure, returning (elapsed seconds,
/// iterations). One warm-up call sizes the iteration count so fast cells
/// are measured over several runs while slow cells don't stall the sweep.
fn measure(mut run: impl FnMut() -> Explanation) -> (f64, usize) {
    let warm = Instant::now();
    let _ = run();
    let once = warm.elapsed().as_secs_f64();
    let iters = ((0.3 / once.max(1e-9)) as usize).clamp(1, 20);
    let start = Instant::now();
    for _ in 0..iters {
        let _ = run();
    }
    (start.elapsed().as_secs_f64(), iters)
}

/// One matrix cell: assert parity, then time both paths. Returns
/// (JSON rows, columnar single-thread speedup vs scalar).
fn run_cell(rows: usize, attrs: usize, threads: &[usize]) -> (Vec<serde_json::Value>, f64) {
    let (dataset, abnormal) = build_case(rows, attrs);
    let scalar_engine = engine(&dataset, &abnormal, ExecPolicy::Serial);

    // Parity first: scalar vs columnar at every thread budget.
    let scalar_print = fingerprint(
        &scalar_engine.explain_scalar(&dataset, &abnormal, None).expect("scalar explain"),
    );
    for &t in threads {
        let exec = if t == 1 { ExecPolicy::Serial } else { ExecPolicy::Threads(t) };
        let columnar = engine(&dataset, &abnormal, exec);
        let print = fingerprint(&columnar.try_explain(&dataset, &abnormal, None).expect("explain"));
        assert_eq!(
            scalar_print, print,
            "columnar output at {t} threads diverged from the scalar shim \
             (rows {rows}, attrs {attrs})"
        );
    }

    let mut out = Vec::new();
    let (scalar_elapsed, scalar_iters) = measure(|| {
        scalar_engine.explain_scalar(&dataset, &abnormal, None).expect("scalar explain")
    });
    let scalar_rate = scalar_iters as f64 / scalar_elapsed;
    out.push(serde_json::json!({
        "rows": rows, "attrs": attrs, "threads": 1, "path": "scalar",
        "elapsed_s": scalar_elapsed, "iters": scalar_iters,
        "explains_per_sec": scalar_rate,
        "rows_per_sec": scalar_rate * rows as f64,
    }));

    let mut single_thread_speedup = 0.0;
    for &t in threads {
        let exec = if t == 1 { ExecPolicy::Serial } else { ExecPolicy::Threads(t) };
        let columnar = engine(&dataset, &abnormal, exec);
        let (elapsed, iters) =
            measure(|| columnar.try_explain(&dataset, &abnormal, None).expect("explain"));
        let rate = iters as f64 / elapsed;
        let speedup = rate / scalar_rate;
        if t == 1 {
            single_thread_speedup = speedup;
        }
        println!(
            "rows {rows:>6}  attrs {attrs:>4}  threads {t:>2}: \
             columnar {rate:>7.2} explains/sec, scalar {scalar_rate:>7.2} ({speedup:.2}x)"
        );
        out.push(serde_json::json!({
            "rows": rows, "attrs": attrs, "threads": t, "path": "columnar",
            "elapsed_s": elapsed, "iters": iters,
            "explains_per_sec": rate,
            "rows_per_sec": rate * rows as f64,
            "speedup_vs_scalar": speedup,
        }));
    }
    (out, single_thread_speedup)
}

fn smoke() {
    let (rows, attrs) = (240, 6);
    let (_, speedup) = run_cell(rows, attrs, &[1, 2]);
    assert!(speedup.is_finite() && speedup > 0.0, "degenerate smoke speedup {speedup}");
    println!("columnar_scaling smoke: parity held at 1 and 2 threads — ok");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let threads = thread_counts();
    let row_counts = [1_000usize, 10_000, 50_000];
    let attr_counts = [8usize, 32, 128];
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "columnar scaling sweep: rows {row_counts:?} × attrs {attr_counts:?} × threads {threads:?}"
    );

    let mut cells = Vec::new();
    let mut largest_speedup = 0.0;
    for &rows in &row_counts {
        for &attrs in &attr_counts {
            let (mut out, speedup) = run_cell(rows, attrs, &threads);
            cells.append(&mut out);
            if rows == row_counts[row_counts.len() - 1]
                && attrs == attr_counts[attr_counts.len() - 1]
            {
                largest_speedup = speedup;
            }
        }
    }
    println!(
        "largest config ({} rows × {} attrs): columnar {largest_speedup:.2}x scalar single-thread",
        row_counts[row_counts.len() - 1],
        attr_counts[attr_counts.len() - 1],
    );

    write_json(
        "BENCH_columnar_scaling",
        &serde_json::json!({
            "cpu_count": n,
            "thread_counts_measured": threads,
            "row_counts": row_counts,
            "attr_counts": attr_counts,
            "bit_identical_scalar_vs_columnar": true,
            "columnar_speedup_vs_scalar_single_thread_largest_config": largest_speedup,
            "rows": cells,
        }),
    );
}
