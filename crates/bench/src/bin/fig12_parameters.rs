//! Figure 12 (Appendix D): sensitivity to the number of partitions `R`,
//! the anomaly distance multiplier `δ`, and the normalized difference
//! threshold `θ`.
//!
//! Setup per the paper: merged models from 10 datasets, confidence on the
//! held-out dataset; (a) also reports total predicate-generation compute
//! time across the corpus at each `R`.

use std::time::Instant;

use dbsherlock_bench::{
    merged_model, of_kind, pct, predicates_for, tpcc_corpus, write_json, Table,
};
use dbsherlock_core::SherlockParams;
use dbsherlock_simulator::AnomalyKind;

/// Mean correct-model confidence (%) and mean predicate count under
/// `params`, via leave-one-out merged-10 models (held-out variants 2, 5
/// and 8 to keep the sweep affordable; `--full` sweeps are unnecessary —
/// the trend is stable).
fn confidence_under(params: &SherlockParams) -> (f64, f64) {
    let corpus = tpcc_corpus();
    let mut conf_sum = 0.0;
    let mut pred_sum = 0usize;
    let mut n = 0usize;
    for held_out in [2usize, 5, 8] {
        for &kind in &AnomalyKind::ALL {
            let entries = of_kind(corpus, kind);
            let train: Vec<_> = entries
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != held_out)
                .map(|(_, e)| *e)
                .collect();
            let model = merged_model(&train, params, None);
            let test = &entries[held_out].labeled;
            let conf = model.confidence(
                &test.data,
                &test.abnormal_region(),
                &test.normal_region(),
                params,
            );
            conf_sum += conf;
            pred_sum += model.predicates.len();
            n += 1;
        }
    }
    (conf_sum / n as f64 * 100.0, pred_sum as f64 / n as f64)
}

/// Wall-clock for generating predicates over one dataset per class.
fn generation_time(params: &SherlockParams) -> f64 {
    let corpus = tpcc_corpus();
    let start = Instant::now();
    for &kind in &AnomalyKind::ALL {
        for entry in of_kind(corpus, kind).iter().take(3) {
            let _ = predicates_for(&entry.labeled, params, None);
        }
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let base = SherlockParams::for_merging();

    let mut table_a = Table::new(
        "Figure 12a — number of partitions (R): confidence & compute time",
        &["R", "Avg confidence", "Generation time (s, 30 datasets)"],
    );
    let mut json_a = Vec::new();
    for r in [125usize, 250, 500, 1000, 2000] {
        let params = base.clone().with_partitions(r);
        let (conf, _) = confidence_under(&params);
        let secs = generation_time(&params);
        table_a.row(vec![r.to_string(), pct(conf), format!("{secs:.3}")]);
        json_a.push(serde_json::json!({"r": r, "confidence_pct": conf, "time_s": secs}));
    }
    table_a.print();

    let mut table_b = Table::new(
        "Figure 12b — anomaly distance multiplier (δ): confidence",
        &["delta", "Avg confidence"],
    );
    let mut json_b = Vec::new();
    for delta in [0.1, 0.5, 1.0, 5.0, 10.0] {
        let params = base.clone().with_delta(delta);
        let (conf, _) = confidence_under(&params);
        table_b.row(vec![format!("{delta}"), pct(conf)]);
        json_b.push(serde_json::json!({"delta": delta, "confidence_pct": conf}));
    }
    table_b.print();

    let mut table_c = Table::new(
        "Figure 12c — normalized difference threshold (θ): confidence & #predicates",
        &["theta", "Avg confidence", "Avg # predicates"],
    );
    let mut json_c = Vec::new();
    for theta in [0.01, 0.05, 0.1, 0.2, 0.4] {
        let params = base.clone().with_theta(theta);
        let (conf, preds) = confidence_under(&params);
        table_c.row(vec![format!("{theta}"), pct(conf), format!("{preds:.1}")]);
        json_c.push(serde_json::json!({
            "theta": theta, "confidence_pct": conf, "predicates": preds,
        }));
    }
    table_c.print();

    println!(
        "\nPaper: R > 1000 costs much more time without confidence gains; δ > 1 favours\n  specific predicates and higher confidence; larger θ prunes predicates and\n  helps slightly until θ = 0.4, where it filters almost everything."
    );
    write_json(
        "fig12_parameters",
        &serde_json::json!({"r": json_a, "delta": json_b, "theta": json_c}),
    );
}
