//! Table 5d (this reproduction's extension): the streaming daemon under
//! sustained overload and transport chaos.
//!
//! 72 tenant threads stream telemetry into one in-process [`Daemon`]
//! configured well past its comfort zone (2 workers, an 8-deep diagnosis
//! queue). The streams rotate through the chaos schedules — floods, torn
//! lines, garbage, backwards clocks, stalls, mid-stream disconnects — and
//! 8 tenants carry the in-band [`PANIC_ATTR`] trigger that detonates the
//! real model scorer inside a worker thread.
//!
//! The claims this bench gates:
//!
//! * **Zero escapes.** Every scorer panic is contained to its tenant
//!   (quarantined with a structured response); both workers are still
//!   alive when the storm ends.
//! * **Shedding is explicit.** Overload drops the *oldest* queued
//!   diagnosis and tells its requester; nothing is silently lost.
//! * **The daemon stays useful.** A fresh tenant streamed after the storm
//!   still gets an automatic explanation.
//! * **Drain is safe.** The model store saves once and re-verifies clean.
//!
//! Output: a summary table plus `results/BENCH_daemon_overload.json`. The
//! process exits nonzero on any violated claim — the CI smoke gate for
//! the daemon.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dbsherlock_bench::{write_json, ExperimentArgs, Table};
use dbsherlock_core::chaos::{quiet_panics, PANIC_ATTR};
use dbsherlock_core::{CausalModel, ModelRepository, ModelStore, Predicate};
use dbsherlock_sherlockd::chaos::{apply_schedule, IngestFault, StreamEvent};
use dbsherlock_sherlockd::daemon::{Daemon, DaemonConfig, LineOutcome, Session, Sink};
use dbsherlock_sherlockd::protocol::Response;

/// Concurrent tenant streams (the acceptance floor is 64).
const TENANTS: usize = 72;
/// Rows per clean tenant stream.
const ROWS: usize = 160;
/// The sustained anomaly every stream plants (15 rows: longer than τ/2,
/// under the 20% cluster cap for both the full stream and the ring window).
const ANOMALY: std::ops::Range<usize> = 100..115;

/// Is this tenant one of the 8 poison carriers?
fn poisoned(tenant: usize) -> bool {
    tenant % 9 == 4
}

/// Per-kind response counters, shared by every session sink.
#[derive(Debug, Default)]
struct Counters {
    ok: AtomicU64,
    warn: AtomicU64,
    error: AtomicU64,
    overloaded: AtomicU64,
    explanations: AtomicU64,
    quarantined: AtomicU64,
}

fn counting_sink(counters: &Arc<Counters>) -> Sink {
    let counters = Arc::clone(counters);
    Arc::new(move |response: &Response| {
        let slot = match response {
            Response::Ok { .. } => &counters.ok,
            Response::Warn { .. } => &counters.warn,
            Response::Error { .. } => &counters.error,
            Response::Overloaded { .. } => &counters.overloaded,
            Response::Explanation { .. } => &counters.explanations,
            Response::Quarantined { .. } => &counters.quarantined,
            Response::Stats(_) | Response::Bye => return,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    })
}

/// The clean protocol stream for one tenant. Poison carriers get an extra
/// [`PANIC_ATTR`] column so the chaos tripwire fires inside the scorer
/// once detection reaches the rank stage.
fn tenant_lines(tenant: usize) -> Vec<String> {
    let name = format!("tenant-{tenant:02}");
    let header = if poisoned(tenant) {
        format!("timestamp,signal:num,steady:num,{PANIC_ATTR}:num")
    } else {
        "timestamp,signal:num,steady:num".to_string()
    };
    let mut lines = vec![format!("tenant {name}"), header];
    for i in 0..ROWS {
        let jitter = (i as f64) * 0.37 % 1.0;
        let signal = if ANOMALY.contains(&i) { 80.0 + jitter } else { 5.0 + jitter };
        let steady = 40.0 + jitter;
        if poisoned(tenant) {
            lines.push(format!("{i},{signal},{steady},1.0"));
        } else {
            lines.push(format!("{i},{signal},{steady}"));
        }
    }
    lines
}

/// The rotating chaos assignment. Poison carriers stream clean (their
/// fault is in-band); everyone else cycles through the transport faults.
fn fault_schedule(tenant: usize) -> (&'static str, Vec<IngestFault>) {
    if poisoned(tenant) {
        return ("poison", Vec::new());
    }
    match tenant % 6 {
        0 | 1 => ("clean", Vec::new()),
        2 => ("flood", vec![IngestFault::Flood { at: 30, extra: 150 }]),
        3 => (
            "skew+garbage",
            vec![
                IngestFault::ClockSkew { at: 20, to: -999.0 },
                IngestFault::Garbage { at: 25, payload: "\u{1}\u{2}%%,,,".into() },
                IngestFault::ClockSkew { at: 90, to: 3.5 },
            ],
        ),
        4 => ("stall", vec![IngestFault::StallReader { at: 10, ms: 15 }]),
        // Late transport deaths: the anomaly has arrived, the tail is lost.
        5 if tenant.is_multiple_of(2) => {
            ("torn", vec![IngestFault::TornLine { at: 130, keep_bytes: 4 }])
        }
        _ => ("disconnect", vec![IngestFault::Disconnect { at: 140 }]),
    }
}

/// Play a compiled wire schedule against the in-process daemon, simulating
/// the transport: bytes accumulate in a buffer and only complete lines
/// reach [`Daemon::handle_line`] — so a torn line really is lost.
fn play(daemon: &Daemon, session: &mut Session, events: &[StreamEvent]) {
    let mut wire = String::new();
    for event in events {
        match event {
            StreamEvent::Send(payload) => {
                wire.push_str(payload);
                while let Some(pos) = wire.find('\n') {
                    let line: String = wire.drain(..=pos).collect();
                    if daemon.handle_line(session, line.trim_end_matches('\n')) == LineOutcome::Quit
                    {
                        return;
                    }
                }
            }
            StreamEvent::Pause(ms) => std::thread::sleep(Duration::from_millis(*ms)),
            StreamEvent::Disconnect => return,
        }
    }
}

fn main() {
    let _args = ExperimentArgs::parse();
    let dir = std::env::temp_dir().join(format!("sherlock-daemon-overload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("models.sherlock");

    // One stored model: scoring must run for the poison tripwire to fire,
    // and healthy explanations get a ranked cause.
    let mut repo = ModelRepository::new();
    repo.add(CausalModel {
        cause: "runaway batch job".to_string(),
        predicates: vec![Predicate::gt("signal", 40.0)],
        merged_from: 1,
    });
    ModelStore::new(&store_path).save(&repo).unwrap();

    // Deliberately overloaded: 2 workers and an 8-deep queue against 72
    // tenants enqueueing every 16 rows.
    let cfg = DaemonConfig {
        ring_rows: 128,
        detect_every: 16,
        min_detect_rows: 48,
        max_pending: 8,
        workers: 2,
        drain_deadline_ms: 4_000,
        store_path: Some(store_path),
        ..DaemonConfig::default()
    };
    let (daemon, startup_warnings) = Daemon::new(cfg).unwrap();
    assert!(startup_warnings.is_empty(), "{startup_warnings:?}");
    assert_eq!(daemon.n_models(), 1);
    let daemon = Arc::new(daemon);
    let workers = daemon.spawn_workers();
    let counters = Arc::new(Counters::default());

    let n_poisoned = (0..TENANTS).filter(|&t| poisoned(t)).count();
    println!(
        "storm: {TENANTS} tenants x {ROWS} rows, {n_poisoned} poison carriers, \
         2 workers, queue depth 8"
    );

    // ---- The storm: all tenants stream concurrently. ----
    let start = Instant::now();
    let escaped_clients = quiet_panics(|| {
        let mut clients = Vec::new();
        for tenant in 0..TENANTS {
            let daemon = Arc::clone(&daemon);
            let sink = counting_sink(&counters);
            let (_, faults) = fault_schedule(tenant);
            clients.push(std::thread::spawn(move || {
                let events = apply_schedule(&tenant_lines(tenant), &faults);
                let mut session = Session::new(sink);
                play(&daemon, &mut session, &events);
            }));
        }
        clients.into_iter().map(|c| c.join()).filter(Result::is_err).count()
    });
    let storm_elapsed = start.elapsed().as_secs_f64();

    // Sheds can leave poison jobs undiagnosed; force the stragglers so the
    // quarantine count is exact, not racy. Already-quarantined tenants
    // answer `code=quarantined` and nothing is re-run.
    quiet_panics(|| {
        let deadline = Instant::now() + Duration::from_secs(15);
        while daemon.stats.quarantined.load(Ordering::Relaxed) < n_poisoned as u64
            && Instant::now() < deadline
        {
            for tenant in (0..TENANTS).filter(|&t| poisoned(t)) {
                let mut session = Session::new(counting_sink(&counters));
                daemon.handle_line(&mut session, &format!("tenant tenant-{tenant:02}"));
                daemon.handle_line(&mut session, "detect");
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });
    let quarantined = daemon.stats.quarantined.load(Ordering::Relaxed);

    // ---- Post-storm liveness: a fresh tenant is served end to end. ----
    let post_counters = Arc::new(Counters::default());
    {
        let mut session = Session::new(counting_sink(&post_counters));
        daemon.handle_line(&mut session, "tenant post-storm");
        daemon.handle_line(&mut session, "timestamp,signal:num,steady:num");
        for i in 0..ROWS {
            let jitter = (i as f64) * 0.37 % 1.0;
            let signal = if ANOMALY.contains(&i) { 80.0 + jitter } else { 5.0 + jitter };
            daemon.handle_line(&mut session, &format!("{i},{signal},{}", 40.0 + jitter));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while post_counters.explanations.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
            daemon.handle_line(&mut session, "detect");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    let post_explained = post_counters.explanations.load(Ordering::Relaxed);

    // A worker that let a panic escape its job boundary is a dead thread.
    let escaped_workers = workers.iter().filter(|w| w.is_finished()).count();
    let report = daemon.drain(workers);

    let rows = daemon.stats.rows.load(Ordering::Relaxed);
    let shed = daemon.stats.shed.load(Ordering::Relaxed);
    let explanations = daemon.stats.explanations.load(Ordering::Relaxed);
    let quiet = daemon.stats.quiet.load(Ordering::Relaxed);
    let errors = daemon.stats.errors.load(Ordering::Relaxed);
    let warnings = daemon.stats.warnings.load(Ordering::Relaxed);
    let evicted = daemon.stats.evicted.load(Ordering::Relaxed);
    let completed = explanations + quiet + errors + quarantined;
    let shed_rate = shed as f64 / (shed + completed).max(1) as f64;
    let rows_per_sec = rows as f64 / storm_elapsed.max(f64::MIN_POSITIVE);
    let escapes = escaped_clients + escaped_workers;

    let mut table = Table::new(
        "Table 5d — daemon overload: 72 chaos-scheduled tenant streams, 2 workers",
        &["Metric", "value"],
    );
    for (name, value) in [
        ("tenant streams", TENANTS.to_string()),
        ("poison carriers", n_poisoned.to_string()),
        ("rows accepted", rows.to_string()),
        ("storm wall-clock (s)", format!("{storm_elapsed:.2}")),
        ("sustained rows/sec", format!("{rows_per_sec:.0}")),
        ("rows evicted (window slid)", evicted.to_string()),
        ("ingest warnings", warnings.to_string()),
        ("diagnoses shed (oldest-first)", shed.to_string()),
        ("shed rate", format!("{:.1}%", shed_rate * 100.0)),
        ("explanations", explanations.to_string()),
        ("quiet diagnoses", quiet.to_string()),
        ("diagnosis errors", errors.to_string()),
        ("tenants quarantined", format!("{quarantined} (expect {n_poisoned})")),
        ("escaped panics", escapes.to_string()),
        ("post-storm tenant served", post_explained.to_string()),
        ("drain clean", report.clean.to_string()),
        ("store verified", report.store_verified().to_string()),
    ] {
        table.row(vec![name.to_string(), value]);
    }
    table.print();

    write_json(
        "BENCH_daemon_overload",
        &serde_json::json!({
            "tenants": TENANTS,
            "rows_per_tenant": ROWS,
            "poison_carriers": n_poisoned,
            "workers": 2,
            "max_pending": 8,
            "rows_accepted": rows,
            "storm_elapsed_s": storm_elapsed,
            "sustained_rows_per_sec": rows_per_sec,
            "evicted": evicted,
            "ingest_warnings": warnings,
            "shed": shed,
            "shed_rate": shed_rate,
            "overloaded_responses": counters.overloaded.load(Ordering::Relaxed),
            "explanations": explanations,
            "quiet": quiet,
            "errors": errors,
            "quarantined": quarantined,
            "escaped_panics": escapes,
            "post_storm_explained": post_explained,
            "drain_clean": report.clean,
            "store_verified": report.store_verified(),
        }),
    );

    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "\n{rows} rows from {TENANTS} streams in {storm_elapsed:.2}s \
         ({rows_per_sec:.0} rows/sec); {shed} shed, {explanations} explained, \
         {quarantined}/{n_poisoned} poisons quarantined, {escapes} escapes."
    );
    const { assert!(TENANTS >= 64, "acceptance floor is 64 concurrent streams") };
    assert_eq!(escapes, 0, "a panic escaped its isolation boundary");
    assert_eq!(quarantined, n_poisoned as u64, "poison carriers not all quarantined");
    assert!(shed >= 1, "overload never triggered shedding — bench is not overloaded");
    assert_eq!(
        counters.overloaded.load(Ordering::Relaxed),
        shed,
        "every shed must notify its requester"
    );
    assert!(explanations >= 1, "no healthy tenant was explained");
    assert_eq!(post_explained, 1, "post-storm tenant was not served");
    assert!(report.store_verified(), "{:?}", report.verify_warnings);
}
