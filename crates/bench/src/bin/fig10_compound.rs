//! Figure 10 (§8.7): explaining compound situations — two or three
//! anomalies active simultaneously.
//!
//! Paper setup: per-class causal models merged from *every* dataset of the
//! class; explanations generated for six compound scenarios; reported are
//! the ratio of correct causes found in the top-3 shown causes and the
//! average F1-measure of the correct causes' models.

use dbsherlock_bench::{
    merged_model, of_kind, pct, repository_from, tpcc_corpus, write_json, Table, CORPUS_SEED,
};
use dbsherlock_core::SherlockParams;
use dbsherlock_simulator::{compound_cases, compound_dataset, Benchmark};

fn main() {
    let corpus = tpcc_corpus();
    let params = SherlockParams::for_merging();
    // Models merged from every dataset of each class (§8.7).
    let models: Vec<_> = dbsherlock_simulator::AnomalyKind::ALL
        .iter()
        .map(|&kind| merged_model(&of_kind(corpus, kind), &params, None))
        .collect();
    let repo = repository_from(models.clone());

    let mut table = Table::new(
        "Figure 10 — compound situations (top-3 causes shown)",
        &["Compound test case", "Correct causes found", "Avg F1 of correct causes"],
    );
    let mut rows_json = Vec::new();
    let (mut found_total, mut truth_total) = (0usize, 0usize);
    for (i, (name, kinds)) in compound_cases().into_iter().enumerate() {
        let labeled = compound_dataset(Benchmark::TpccLike, &kinds, CORPUS_SEED ^ (i as u64 + 1));
        let abnormal = labeled.abnormal_region();
        let normal = labeled.normal_region();
        let ranked = repo.rank(&labeled.data, &abnormal, &normal, &params);
        let top3: Vec<&str> = ranked.iter().take(3).map(|r| r.cause.as_str()).collect();
        let found = kinds.iter().filter(|k| top3.contains(&k.name())).count();
        found_total += found;
        truth_total += kinds.len();
        // F1 of each correct cause's model on the compound dataset.
        let f1_sum: f64 = kinds
            .iter()
            .map(|k| {
                models
                    .iter()
                    .find(|m| m.cause == k.name())
                    .map(|m| m.f1(&labeled.data, &abnormal).f1)
                    .unwrap_or(0.0)
            })
            .sum();
        let f1_avg = f1_sum / kinds.len() as f64 * 100.0;
        let ratio = found as f64 / kinds.len() as f64 * 100.0;
        table.row(vec![name.to_string(), pct(ratio), pct(f1_avg)]);
        rows_json.push(serde_json::json!({
            "case": name, "found": found, "expected": kinds.len(),
            "ratio_pct": ratio, "f1_pct": f1_avg,
            "top3": top3,
        }));
    }
    let overall = found_total as f64 / truth_total as f64 * 100.0;
    table.row(vec!["OVERALL".into(), pct(overall), String::new()]);
    table.print();
    println!(
        "\nPaper: explanations contain more than two-thirds of the correct causes on\n  average (Workload Spike is masked when combined with Network Congestion).\nMeasured: {} of correct causes appear in the top-3.",
        pct(overall),
    );
    write_json("fig10_compound", &serde_json::json!({ "rows": rows_json, "overall_pct": overall }));
}
