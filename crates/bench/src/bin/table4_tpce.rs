//! Table 4 (Appendix A): DBSherlock's accuracy on TPC-C vs TPC-E.
//!
//! Setup mirrors §8.5 (merged models from 5 random datasets, evaluated on
//! the remaining 6), run over both corpora. The read-intensive TPC-E-like
//! mix weakens the Poor Physical Design and Lock Contention signatures
//! (App. A's explanation), so top-1 accuracy drops there.

use dbsherlock_bench::{
    diagnose, merged_model, of_kind, pct, random_split, repository_from, tpcc_corpus, tpce_corpus,
    write_json, ExperimentArgs, Table, Tally,
};
use dbsherlock_core::SherlockParams;
use dbsherlock_simulator::{AnomalyKind, CorpusEntry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluate(corpus: &[CorpusEntry], repeats: usize, seed: u64) -> Tally {
    let params = SherlockParams::for_merging();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tally = Tally::default();
    for _ in 0..repeats {
        let splits: Vec<(Vec<usize>, Vec<usize>)> =
            AnomalyKind::ALL.iter().map(|_| random_split(11, 5, &mut rng)).collect();
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .zip(&splits)
            .map(|(&kind, (train, _))| {
                let entries = of_kind(corpus, kind);
                let chosen: Vec<_> = train.iter().map(|&i| entries[i]).collect();
                merged_model(&chosen, &params, None)
            })
            .collect();
        let repo = repository_from(models);
        for (&kind, (_, test)) in AnomalyKind::ALL.iter().zip(&splits) {
            let entries = of_kind(corpus, kind);
            for &t in test {
                tally.record(&diagnose(&repo, &entries[t].labeled, kind, &params));
            }
        }
    }
    tally
}

fn main() {
    let args = ExperimentArgs::parse();
    let repeats = args.repeats_or(10, 50);
    // The two corpora shuffle independently; `^ 0x2` keeps the default
    // TPC-E seed (0x7AB4E) while still deriving both from one `--seed`.
    let seed = args.seed_or(0x7AB4C);
    let tpcc = evaluate(tpcc_corpus(), repeats, seed);
    let tpce = evaluate(tpce_corpus(), repeats, seed ^ 0x2);

    let mut table = Table::new(
        "Table 4 — accuracy for TPC-C and TPC-E workloads (merged models, 5 datasets)",
        &["Type of Workload", "Accuracy (top-1)", "Accuracy (top-2)"],
    );
    table.row(vec!["TPC-C".into(), pct(tpcc.top1_pct()), pct(tpcc.top2_pct())]);
    table.row(vec!["TPC-E".into(), pct(tpce.top1_pct()), pct(tpce.top2_pct())]);
    table.print();
    println!(
        "\nPaper: TPC-C 98.0% / 99.7%; TPC-E 92.5% / 99.6% (TPC-E's read-intensity\n  blunts Poor Physical Design and Lock Contention).",
    );
    write_json(
        "table4_tpce",
        &serde_json::json!({
            "repeats": repeats,
            "tpcc": {"top1_pct": tpcc.top1_pct(), "top2_pct": tpcc.top2_pct()},
            "tpce": {"top1_pct": tpce.top1_pct(), "top2_pct": tpce.top2_pct()},
        }),
    );
}
