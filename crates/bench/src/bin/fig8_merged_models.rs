//! Figure 8 (§8.5): effectiveness of merged causal models.
//!
//! (a) margin of confidence, single (1 dataset) vs merged (5 datasets);
//! (b) % of correct explanations when the top-1 / top-2 causes are shown;
//! (c) accuracy as a function of the number of datasets merged (1–5).
//!
//! Paper setup: per class, ~50 random 5/6 train/test splits; merged models
//! use θ = 0.05 so merging has predicates to work with, single models use
//! θ = 0.2. Defaults here run 20 splits (`--full` for 50).

use dbsherlock_bench::{
    diagnose, merged_model, of_kind, pct, random_split, repository_from, single_model, tpcc_corpus,
    write_json, ExperimentArgs, Table, Tally,
};
use dbsherlock_core::SherlockParams;
use dbsherlock_simulator::AnomalyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExperimentArgs::parse();
    let repeats = args.repeats_or(20, 50);
    let corpus = tpcc_corpus();
    let single_params = SherlockParams::default();
    let merged_params = SherlockParams::for_merging();
    let mut rng = StdRng::seed_from_u64(args.seed_or(0xF168));

    // (a) + (b): merged from 5, tested on the held-out 6.
    let mut merged_tally: Vec<(AnomalyKind, Tally)> =
        AnomalyKind::ALL.iter().map(|&k| (k, Tally::default())).collect();
    let mut single_tally: Vec<(AnomalyKind, Tally)> =
        AnomalyKind::ALL.iter().map(|&k| (k, Tally::default())).collect();
    // (c): accuracy vs number of merged datasets.
    let mut by_count: Vec<Tally> = (0..5).map(|_| Tally::default()).collect();

    for _ in 0..repeats {
        // One split per class, shared across the sub-experiments.
        let splits: Vec<(Vec<usize>, Vec<usize>)> =
            AnomalyKind::ALL.iter().map(|_| random_split(11, 5, &mut rng)).collect();
        for n_merge in 1..=5 {
            let models: Vec<_> = AnomalyKind::ALL
                .iter()
                .zip(&splits)
                .map(|(&kind, (train, _))| {
                    let entries = of_kind(corpus, kind);
                    let chosen: Vec<_> = train[..n_merge].iter().map(|&i| entries[i]).collect();
                    merged_model(&chosen, &merged_params, None)
                })
                .collect();
            let repo = repository_from(models);
            for (&kind, (_, test)) in AnomalyKind::ALL.iter().zip(&splits) {
                let entries = of_kind(corpus, kind);
                for &t in test {
                    let outcome = diagnose(&repo, &entries[t].labeled, kind, &merged_params);
                    by_count[n_merge - 1].record(&outcome);
                    if n_merge == 5 {
                        merged_tally
                            .iter_mut()
                            .find(|(k, _)| *k == kind)
                            .unwrap()
                            .1
                            .record(&outcome);
                    }
                }
            }
        }
        // Single-model baseline for (a): one training dataset per class.
        let models: Vec<_> = AnomalyKind::ALL
            .iter()
            .zip(&splits)
            .map(|(&kind, (train, _))| {
                single_model(of_kind(corpus, kind)[train[0]], &single_params, None)
            })
            .collect();
        let repo = repository_from(models);
        for (&kind, (_, test)) in AnomalyKind::ALL.iter().zip(&splits) {
            let entries = of_kind(corpus, kind);
            for &t in test {
                let outcome = diagnose(&repo, &entries[t].labeled, kind, &single_params);
                single_tally.iter_mut().find(|(k, _)| *k == kind).unwrap().1.record(&outcome);
            }
        }
    }

    let mut table_a = Table::new(
        "Figure 8a — margin of confidence: single vs merged causal models",
        &["Test case", "Single (1 dataset)", "Merged (5 datasets)"],
    );
    for ((kind, single), (_, merged)) in single_tally.iter().zip(&merged_tally) {
        table_a.row(vec![
            kind.name().to_string(),
            pct(single.mean_margin_pct()),
            pct(merged.mean_margin_pct()),
        ]);
    }
    table_a.print();

    let mut table_b = Table::new(
        "Figure 8b — correct explanations with merged models (5 datasets)",
        &["Test case", "Top-1 shown", "Top-2 shown"],
    );
    let mut overall = Tally::default();
    for (kind, tally) in &merged_tally {
        table_b.row(vec![kind.name().to_string(), pct(tally.top1_pct()), pct(tally.top2_pct())]);
        overall.merge(tally);
    }
    table_b.row(vec!["AVERAGE".into(), pct(overall.top1_pct()), pct(overall.top2_pct())]);
    table_b.print();

    let mut table_c = Table::new(
        "Figure 8c — accuracy vs number of merged datasets",
        &["# datasets", "Top-1 shown", "Top-2 shown"],
    );
    for (i, tally) in by_count.iter().enumerate() {
        table_c.row(vec![format!("{}", i + 1), pct(tally.top1_pct()), pct(tally.top2_pct())]);
    }
    table_c.print();

    println!(
        "\nPaper: merging raises margins in all cases; top-1 ≈ 98%, top-2 ≈ 99.7%;\n  accuracy reaches 95% (top-1) with two datasets and 99% (top-2).\nMeasured: top-1 {} / top-2 {} with 5 datasets.",
        pct(overall.top1_pct()),
        pct(overall.top2_pct()),
    );
    write_json(
        "fig8_merged_models",
        &serde_json::json!({
            "repeats": repeats,
            "per_case": merged_tally.iter().map(|(k, t)| serde_json::json!({
                "case": k.name(),
                "margin_merged_pct": t.mean_margin_pct(),
                "top1_pct": t.top1_pct(),
                "top2_pct": t.top2_pct(),
            })).collect::<Vec<_>>(),
            "margin_single_pct": single_tally.iter().map(|(k, t)| serde_json::json!({
                "case": k.name(), "margin_pct": t.mean_margin_pct(),
            })).collect::<Vec<_>>(),
            "by_count": by_count.iter().enumerate().map(|(i, t)| serde_json::json!({
                "datasets": i + 1, "top1_pct": t.top1_pct(), "top2_pct": t.top2_pct(),
            })).collect::<Vec<_>>(),
        }),
    );
}
