//! Shared evaluation drivers: model construction, ranking, accuracy and
//! margin bookkeeping.

use dbsherlock_core::{
    generate_predicates, CausalModel, DomainKnowledge, GeneratedPredicate, ModelRepository,
    RankedCause, SherlockParams,
};
use dbsherlock_simulator::{AnomalyKind, CorpusEntry, LabeledDataset};
use dbsherlock_telemetry::Region;

/// Generate the (optionally domain-pruned) predicates for a labeled
/// dataset's ground-truth regions.
pub fn predicates_for(
    labeled: &LabeledDataset,
    params: &SherlockParams,
    domain: Option<&DomainKnowledge>,
) -> Vec<GeneratedPredicate> {
    let abnormal = labeled.abnormal_region();
    let normal = labeled.normal_region();
    let raw = generate_predicates(&labeled.data, &abnormal, &normal, params);
    match domain {
        Some(kb) => kb.prune(&labeled.data, raw, params),
        None => raw,
    }
}

/// Build a single-dataset causal model for an anomaly class (§8.3 setup).
pub fn single_model(
    entry: &CorpusEntry,
    params: &SherlockParams,
    domain: Option<&DomainKnowledge>,
) -> CausalModel {
    let predicates = predicates_for(&entry.labeled, params, domain);
    CausalModel::from_feedback(entry.kind.name(), &predicates)
}

/// Build a merged causal model for an anomaly class from several training
/// datasets (§8.5 setup; the paper uses θ = 0.05 here).
pub fn merged_model(
    entries: &[&CorpusEntry],
    params: &SherlockParams,
    domain: Option<&DomainKnowledge>,
) -> CausalModel {
    let models: Vec<CausalModel> =
        entries.iter().map(|e| single_model(e, params, domain)).collect();
    // Documented precondition: callers pass at least one training dataset.
    #[allow(clippy::expect_used)]
    // sherlock-lint: allow(panic-path): documented precondition
    dbsherlock_core::merge_all(models.iter()).expect("at least one training dataset")
}

/// Build one repository with exactly one model per anomaly class.
pub fn repository_from(models: impl IntoIterator<Item = CausalModel>) -> ModelRepository {
    let mut repo = ModelRepository::new();
    for model in models {
        // `add` would merge same-cause models; experiment setups construct
        // one per cause up front, so plain adds are equivalent.
        repo.add(model);
    }
    repo
}

/// Outcome of diagnosing one test dataset against a repository.
#[derive(Debug, Clone)]
pub struct DiagnosisOutcome {
    /// Ranked causes, best first.
    pub ranked: Vec<RankedCause>,
    /// Position of the correct cause (0 = top), if present.
    pub correct_rank: Option<usize>,
    /// Confidence of the correct cause.
    pub correct_confidence: f64,
    /// Margin: correct confidence − best incorrect confidence.
    pub margin: f64,
}

/// Diagnose `labeled` with its ground-truth abnormal region against
/// `repo`, scoring correctness for `truth` (the injected anomaly class).
pub fn diagnose(
    repo: &ModelRepository,
    labeled: &LabeledDataset,
    truth: AnomalyKind,
    params: &SherlockParams,
) -> DiagnosisOutcome {
    diagnose_with_region(repo, labeled, &labeled.abnormal_region(), truth, params)
}

/// [`diagnose`] with an explicit abnormal region (used by the robustness
/// and auto-detection experiments, Appendices C & E).
pub fn diagnose_with_region(
    repo: &ModelRepository,
    labeled: &LabeledDataset,
    abnormal: &Region,
    truth: AnomalyKind,
    params: &SherlockParams,
) -> DiagnosisOutcome {
    diagnose_dataset(repo, &labeled.data, abnormal, truth, params)
}

/// [`diagnose_with_region`] against a bare dataset — the degraded-telemetry
/// experiments diagnose corrupted traces that no longer carry their
/// [`LabeledDataset`] wrapper.
pub fn diagnose_dataset(
    repo: &ModelRepository,
    dataset: &dbsherlock_telemetry::Dataset,
    abnormal: &Region,
    truth: AnomalyKind,
    params: &SherlockParams,
) -> DiagnosisOutcome {
    diagnose_named(repo, dataset, abnormal, truth.name(), params)
}

/// [`diagnose_dataset`] with the ground-truth cause as a plain name — the
/// cluster scenario pack's causes are not [`AnomalyKind`]s, but share the
/// repository (and these tallies) with the Table 1 classes.
pub fn diagnose_named(
    repo: &ModelRepository,
    dataset: &dbsherlock_telemetry::Dataset,
    abnormal: &Region,
    truth: &str,
    params: &SherlockParams,
) -> DiagnosisOutcome {
    let abnormal = &abnormal.clip(dataset.n_rows());
    let normal = abnormal.complement(dataset.n_rows());
    let ranked = repo.rank(dataset, abnormal, &normal, params);
    let correct_rank = ranked.iter().position(|r| r.cause == truth);
    let correct_confidence =
        correct_rank.map(|i| ranked[i].confidence).unwrap_or(f64::NEG_INFINITY);
    let best_incorrect = ranked
        .iter()
        .filter(|r| r.cause != truth)
        .map(|r| r.confidence)
        .fold(f64::NEG_INFINITY, f64::max);
    let margin = if best_incorrect.is_finite() && correct_confidence.is_finite() {
        correct_confidence - best_incorrect
    } else {
        0.0
    };
    DiagnosisOutcome { ranked, correct_rank, correct_confidence, margin }
}

/// Accumulates top-k hit rates and margins over many diagnoses.
#[derive(Debug, Clone, Default)]
pub struct Tally {
    /// Diagnoses seen.
    pub total: usize,
    /// Correct cause ranked first.
    pub top1: usize,
    /// Correct cause in the top two.
    pub top2: usize,
    /// Correct cause in the top three.
    pub top3: usize,
    /// Sum of margins (correct − best incorrect).
    pub margin_sum: f64,
    /// Sum of correct-model confidences.
    pub confidence_sum: f64,
}

impl Tally {
    /// Fold one outcome in.
    pub fn record(&mut self, outcome: &DiagnosisOutcome) {
        self.total += 1;
        if let Some(rank) = outcome.correct_rank {
            if rank == 0 {
                self.top1 += 1;
            }
            if rank <= 1 {
                self.top2 += 1;
            }
            if rank <= 2 {
                self.top3 += 1;
            }
        }
        self.margin_sum += outcome.margin;
        if outcome.correct_confidence.is_finite() {
            self.confidence_sum += outcome.correct_confidence;
        }
    }

    /// Merge another tally in.
    pub fn merge(&mut self, other: &Tally) {
        self.total += other.total;
        self.top1 += other.top1;
        self.top2 += other.top2;
        self.top3 += other.top3;
        self.margin_sum += other.margin_sum;
        self.confidence_sum += other.confidence_sum;
    }

    /// Top-1 hit rate in percent.
    pub fn top1_pct(&self) -> f64 {
        percent(self.top1, self.total)
    }

    /// Top-2 hit rate in percent.
    pub fn top2_pct(&self) -> f64 {
        percent(self.top2, self.total)
    }

    /// Top-3 hit rate in percent.
    pub fn top3_pct(&self) -> f64 {
        percent(self.top3, self.total)
    }

    /// Mean margin, scaled to percentage points of confidence.
    pub fn mean_margin_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.margin_sum / self.total as f64 * 100.0
        }
    }

    /// Mean correct-model confidence, in percent.
    pub fn mean_confidence_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.confidence_sum / self.total as f64 * 100.0
        }
    }
}

fn percent(hits: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64 * 100.0
    }
}

/// Deterministic pseudo-random subset selection: picks `take` distinct
/// indices out of `n` using a seeded RNG (shared by split-based
/// experiments so every binary shuffles identically).
pub fn random_split(n: usize, take: usize, rng: &mut impl rand::Rng) -> (Vec<usize>, Vec<usize>) {
    let mut indices: Vec<usize> = (0..n).collect();
    // Fisher–Yates prefix shuffle.
    for i in 0..take.min(n) {
        let j = rng.random_range(i..n);
        indices.swap(i, j);
    }
    let chosen = indices[..take.min(n)].to_vec();
    let rest = indices[take.min(n)..].to_vec();
    (chosen, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_percentages() {
        let mut t = Tally::default();
        t.record(&DiagnosisOutcome {
            ranked: vec![],
            correct_rank: Some(0),
            correct_confidence: 0.9,
            margin: 0.4,
        });
        t.record(&DiagnosisOutcome {
            ranked: vec![],
            correct_rank: Some(1),
            correct_confidence: 0.5,
            margin: -0.1,
        });
        t.record(&DiagnosisOutcome {
            ranked: vec![],
            correct_rank: None,
            correct_confidence: f64::NEG_INFINITY,
            margin: 0.0,
        });
        assert_eq!(t.total, 3);
        assert!((t.top1_pct() - 33.333).abs() < 0.01);
        assert!((t.top2_pct() - 66.666).abs() < 0.01);
        assert!((t.mean_margin_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn split_is_a_partition() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let (a, b) = random_split(11, 5, &mut rng);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 6);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }
}
