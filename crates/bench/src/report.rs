//! Experiment output: aligned ASCII tables on stdout plus machine-readable
//! JSON under `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

use serde_json::Value as Json;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Format a plain number cell.
pub fn num(v: f64) -> String {
    format!("{v:.2}")
}

/// Write a JSON document to `results/<name>.json` (relative to the
/// workspace root when run via `cargo run`, else the current directory).
/// Failures are reported but not fatal — the table on stdout is the
/// primary artifact.
pub fn write_json(name: &str, value: &Json) {
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            // sherlock-lint: allow(raw-fs-write, unsynced-store-write): bench report, re-runnable — not a store artifact
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Minimal experiment CLI: `--repeats N` to override the trial count,
/// `--full` for the paper-scale counts, and `--seed N` to override the
/// experiment's RNG seed (every binary defaults to a fixed constant, so
/// runs are reproducible either way — the flag exists to probe seed
/// sensitivity without rebuilding).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentArgs {
    /// Requested repeat count, if any.
    pub repeats: Option<usize>,
    /// Run at paper scale.
    pub full: bool,
    /// Requested RNG seed, if any.
    pub seed: Option<u64>,
}

impl ExperimentArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> Self {
        let mut args = ExperimentArgs { repeats: None, full: false, seed: None };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--repeats" => {
                    args.repeats = iter.next().and_then(|v| v.parse().ok());
                }
                "--full" => args.full = true,
                "--seed" => {
                    args.seed = iter.next().and_then(|v| v.parse().ok());
                }
                other => eprintln!("warning: unknown argument {other:?} ignored"),
            }
        }
        args
    }

    /// Choose a repeat count: explicit `--repeats` wins, then `--full`'s
    /// paper-scale value, then the quick default.
    pub fn repeats_or(&self, quick: usize, full: usize) -> usize {
        self.repeats.unwrap_or(if self.full { full } else { quick })
    }

    /// Choose an RNG seed: explicit `--seed` wins over the binary's
    /// deterministic default.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a longer name".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        let lines: Vec<&str> = text.lines().collect();
        // Header and rows align on the second column.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1'), Some(col));
        assert_eq!(lines[4].find('2'), Some(col));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(12.345), "12.3%");
        assert_eq!(num(1.0 / 3.0), "0.33");
    }

    #[test]
    fn repeats_policy() {
        let quick = ExperimentArgs { repeats: None, full: false, seed: None };
        assert_eq!(quick.repeats_or(10, 50), 10);
        let full = ExperimentArgs { repeats: None, full: true, seed: None };
        assert_eq!(full.repeats_or(10, 50), 50);
        let explicit = ExperimentArgs { repeats: Some(3), full: true, seed: None };
        assert_eq!(explicit.repeats_or(10, 50), 3);
    }

    #[test]
    fn seed_policy() {
        let default = ExperimentArgs { repeats: None, full: false, seed: None };
        assert_eq!(default.seed_or(0xF168), 0xF168);
        let explicit = ExperimentArgs { repeats: None, full: false, seed: Some(7) };
        assert_eq!(explicit.seed_or(0xF168), 7);
    }
}
