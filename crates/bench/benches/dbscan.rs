//! Criterion benchmarks for the clustering substrate (§7's DBSCAN +
//! k-dist) and the full automatic detector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbsherlock_cluster::{dbscan, kdist_list, Point};
use dbsherlock_core::{detect_anomaly, SherlockParams};
use dbsherlock_simulator::{AnomalyKind, Injection, Scenario, WorkloadConfig};
use std::hint::black_box;

fn synthetic_points(n: usize, dims: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let base = if i % 10 == 0 { 1.0 } else { 0.0 };
            (0..dims).map(|d| base + ((i * 37 + d * 11) % 100) as f64 / 1000.0).collect()
        })
        .collect()
}

fn bench_dbscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan/points");
    group.sample_size(20);
    for n in [100usize, 200, 400, 800] {
        let points = synthetic_points(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(dbscan(black_box(&points), 0.08, 3)))
        });
    }
    group.finish();
}

fn bench_kdist(c: &mut Criterion) {
    let points = synthetic_points(400, 8);
    c.bench_function("dbscan/kdist_400", |b| {
        b.iter(|| black_box(kdist_list(black_box(&points), 3)))
    });
}

fn bench_full_detector(c: &mut Criterion) {
    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 660, 5)
        .with_injection(Injection::new(AnomalyKind::IoSaturation, 300, 60))
        .run();
    let params = SherlockParams::default();
    let mut group = c.benchmark_group("detector");
    group.sample_size(10);
    group.bench_function("full_pipeline_660s", |b| {
        b.iter(|| black_box(detect_anomaly(black_box(&labeled.data), &params)))
    });
    group.finish();
}

criterion_group!(benches, bench_dbscan, bench_kdist, bench_full_detector);
criterion_main!(benches);
