//! Criterion benchmarks for causal-model operations: confidence (Eq. 3),
//! merging (§6.2), and full-repository ranking.

use criterion::{criterion_group, criterion_main, Criterion};
use dbsherlock_core::{
    generate_predicates, merge_models, CausalModel, ModelRepository, SherlockParams,
};
use dbsherlock_simulator::{AnomalyKind, Injection, Scenario, WorkloadConfig};
use std::hint::black_box;

fn model_for(kind: AnomalyKind, seed: u64, params: &SherlockParams) -> CausalModel {
    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 170, seed)
        .with_injection(Injection::new(kind, 60, 50))
        .run();
    let predicates = generate_predicates(
        &labeled.data,
        &labeled.abnormal_region(),
        &labeled.normal_region(),
        params,
    );
    CausalModel::from_feedback(kind.name(), &predicates)
}

fn bench_confidence(c: &mut Criterion) {
    let params = SherlockParams::default();
    let model = model_for(AnomalyKind::CpuSaturation, 1, &params);
    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 170, 2)
        .with_injection(Injection::new(AnomalyKind::CpuSaturation, 60, 50))
        .run();
    let abnormal = labeled.abnormal_region();
    let normal = labeled.normal_region();
    c.bench_function("causal/confidence_eq3", |b| {
        b.iter(|| {
            black_box(model.confidence(black_box(&labeled.data), &abnormal, &normal, &params))
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    let params = SherlockParams::for_merging();
    let m1 = model_for(AnomalyKind::WorkloadSpike, 3, &params);
    let m2 = model_for(AnomalyKind::WorkloadSpike, 4, &params);
    c.bench_function("causal/merge_two_models", |b| {
        b.iter(|| black_box(merge_models(black_box(&m1), black_box(&m2))))
    });
}

fn bench_rank_repository(c: &mut Criterion) {
    let params = SherlockParams::default();
    let mut repo = ModelRepository::new();
    for (i, kind) in AnomalyKind::ALL.into_iter().enumerate() {
        repo.add(model_for(kind, 10 + i as u64, &params));
    }
    let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 170, 99)
        .with_injection(Injection::new(AnomalyKind::LockContention, 60, 50))
        .run();
    let abnormal = labeled.abnormal_region();
    let normal = labeled.normal_region();
    c.bench_function("causal/rank_10_models", |b| {
        b.iter(|| black_box(repo.rank(black_box(&labeled.data), &abnormal, &normal, &params)))
    });
}

criterion_group!(benches, bench_confidence, bench_merge, bench_rank_repository);
criterion_main!(benches);
