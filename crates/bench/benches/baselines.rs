//! Criterion benchmarks for the comparison baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use dbsherlock_baselines::{
    perfaugur_detect, PerfAugurConfig, PerfXplain, PerfXplainConfig, TrainingSet,
};
use dbsherlock_simulator::{AnomalyKind, Injection, LabeledDataset, Scenario, WorkloadConfig};
use dbsherlock_telemetry::Region;
use std::hint::black_box;

fn incidents(n: usize) -> Vec<LabeledDataset> {
    (0..n as u64)
        .map(|i| {
            Scenario::new(WorkloadConfig::tpcc_default(), 170, 50 + i)
                .with_injection(Injection::new(AnomalyKind::CpuSaturation, 60, 50))
                .run()
        })
        .collect()
}

fn bench_perfxplain(c: &mut Criterion) {
    let train = incidents(4);
    let regions: Vec<Region> = train.iter().map(|l| l.abnormal_region()).collect();
    let sets: Vec<TrainingSet<'_>> = train
        .iter()
        .zip(&regions)
        .map(|(l, r)| TrainingSet { data: &l.data, abnormal: r })
        .collect();
    let mut group = c.benchmark_group("perfxplain");
    group.sample_size(10);
    group.bench_function("train_2000_pairs", |b| {
        b.iter(|| black_box(PerfXplain::train(black_box(&sets), PerfXplainConfig::default())))
    });
    let model = PerfXplain::train(&sets, PerfXplainConfig::default()).unwrap();
    let test = &train[0];
    group.bench_function("predict_170_rows", |b| {
        b.iter(|| black_box(model.predict(black_box(&test.data))))
    });
    group.finish();
}

fn bench_perfaugur(c: &mut Criterion) {
    let long = Scenario::new(WorkloadConfig::tpcc_default(), 660, 9)
        .with_injection(Injection::new(AnomalyKind::IoSaturation, 300, 60))
        .run();
    let mut group = c.benchmark_group("perfaugur");
    group.sample_size(10);
    group.bench_function("naive_window_search_660s", |b| {
        b.iter(|| black_box(perfaugur_detect(black_box(&long.data), &PerfAugurConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_perfxplain, bench_perfaugur);
criterion_main!(benches);
