//! Criterion benchmarks for Algorithm 1 (paper §4.6 claims
//! O(k(X + R)) per diagnosis: linear in tuples, partitions, attributes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbsherlock_core::{generate_predicates, SherlockParams};
use dbsherlock_simulator::{AnomalyKind, Injection, Scenario, WorkloadConfig};
use std::hint::black_box;

fn dataset_of(rows: usize) -> dbsherlock_simulator::LabeledDataset {
    Scenario::new(WorkloadConfig::tpcc_default(), rows, 42)
        .with_injection(Injection::new(AnomalyKind::IoSaturation, rows / 3, rows / 4))
        .run()
}

fn bench_vs_partitions(c: &mut Criterion) {
    let labeled = dataset_of(180);
    let abnormal = labeled.abnormal_region();
    let normal = labeled.normal_region();
    let mut group = c.benchmark_group("predicate_generation/vs_R");
    group.sample_size(20);
    for r in [125usize, 250, 500, 1000, 2000] {
        let params = SherlockParams::default().with_partitions(r);
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, _| {
            b.iter(|| {
                black_box(generate_predicates(
                    black_box(&labeled.data),
                    &abnormal,
                    &normal,
                    &params,
                ))
            })
        });
    }
    group.finish();
}

fn bench_vs_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicate_generation/vs_X");
    group.sample_size(20);
    for rows in [120usize, 240, 480, 960] {
        let labeled = dataset_of(rows);
        let abnormal = labeled.abnormal_region();
        let normal = labeled.normal_region();
        let params = SherlockParams::default();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                black_box(generate_predicates(
                    black_box(&labeled.data),
                    &abnormal,
                    &normal,
                    &params,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_partitions, bench_vs_rows);
criterion_main!(benches);
