//! Criterion benchmarks for the OLTP simulator substrate: tick throughput
//! and full-scenario generation (the corpus generator's hot path).

use criterion::{criterion_group, criterion_main, Criterion};
use dbsherlock_simulator::{
    AnomalyKind, Engine, Injection, NoiseModel, Perturbation, Scenario, ServerConfig,
    WorkloadConfig,
};
use std::hint::black_box;

fn bench_engine_ticks(c: &mut Criterion) {
    c.bench_function("simulator/1000_ticks", |b| {
        b.iter(|| {
            let mut engine = Engine::new(
                ServerConfig::default(),
                WorkloadConfig::tpcc_default(),
                NoiseModel::default(),
                7,
            );
            let p = Perturbation::default();
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += engine.step(&p).numeric.txn_throughput;
            }
            black_box(acc)
        })
    });
}

fn bench_scenario(c: &mut Criterion) {
    let scenario = Scenario::new(WorkloadConfig::tpcc_default(), 170, 11)
        .with_injection(Injection::new(AnomalyKind::WorkloadSpike, 60, 50));
    c.bench_function("simulator/standard_scenario_170s", |b| b.iter(|| black_box(scenario.run())));
}

criterion_group!(benches, bench_engine_ticks, bench_scenario);
criterion_main!(benches);
