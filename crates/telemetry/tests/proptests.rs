//! Property-based tests for the telemetry substrate.

use dbsherlock_telemetry::{
    from_csv, stats, to_csv, AttributeMeta, Dataset, Region, Schema, Value,
};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    // Avoid exotic values whose Display/parse round-trip is lossy by
    // construction (NaN/∞); everything finite must survive CSV.
    prop::num::f64::NORMAL | prop::num::f64::ZERO | prop::num::f64::NEGATIVE
}

proptest! {
    /// CSV round-trips arbitrary numeric data and arbitrary labels.
    #[test]
    fn csv_round_trip(
        rows in proptest::collection::vec((finite_f64(), "[a-z,\"\\PC]{0,12}"), 0..40),
    ) {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("x"),
            AttributeMeta::categorical("label"),
        ]).unwrap();
        let mut d = Dataset::new(schema);
        for (i, (x, label)) in rows.iter().enumerate() {
            let label = label.replace(['\n', '\r'], "_");
            let v = d.intern(1, &label).unwrap();
            d.push_row(i as f64, &[Value::Num(*x), v]).unwrap();
        }
        let text = to_csv(&d);
        let back = from_csv(&text).unwrap();
        prop_assert_eq!(back.n_rows(), d.n_rows());
        prop_assert_eq!(back.numeric(0).unwrap(), d.numeric(0).unwrap());
        for row in 0..d.n_rows() {
            let (ids_a, dict_a) = d.categorical(1).unwrap();
            let (ids_b, dict_b) = back.categorical(1).unwrap();
            prop_assert_eq!(dict_a.label(ids_a[row]), dict_b.label(ids_b[row]));
        }
    }

    /// Region algebra: complement is an involution partitioning 0..n.
    #[test]
    fn region_complement_partitions(
        indices in proptest::collection::btree_set(0usize..300, 0..120),
        n in 300usize..400,
    ) {
        let region = Region::from_indices(indices.iter().copied());
        let complement = region.complement(n);
        prop_assert_eq!(region.len() + complement.len(), n);
        prop_assert!(region.intersect(&complement).is_empty());
        prop_assert_eq!(complement.complement(n), region.clone());
        prop_assert_eq!(region.union(&complement).len(), n);
        // IoU of disjoint non-empty regions is 0; of a region with itself is 1.
        if !region.is_empty() {
            prop_assert!((region.iou(&region) - 1.0).abs() < 1e-12);
            prop_assert_eq!(region.iou(&complement), 0.0);
        }
    }

    /// Intervals reconstruct the region exactly.
    #[test]
    fn intervals_reconstruct(indices in proptest::collection::btree_set(0usize..200, 0..80)) {
        let region = Region::from_indices(indices.iter().copied());
        let rebuilt = Region::from_ranges(region.intervals());
        prop_assert_eq!(rebuilt, region);
    }

    /// Median is order-insensitive and lies within [min, max].
    #[test]
    fn median_properties(mut values in proptest::collection::vec(-1e6_f64..1e6, 1..80)) {
        let m = stats::median(&values);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
        values.reverse();
        prop_assert!((stats::median(&values) - m).abs() < 1e-9);
    }

    /// quantile_sorted agrees with quantile on sorted input.
    #[test]
    fn quantile_sorted_matches(
        mut values in proptest::collection::vec(-1e6_f64..1e6, 1..60),
        q in 0.0_f64..1.0,
    ) {
        let expected = stats::quantile(&values, q);
        values.sort_by(f64::total_cmp);
        let got = stats::quantile_sorted(&values, q);
        prop_assert!((got - expected).abs() < 1e-9);
    }

    /// Entropy is non-negative and maximal for uniform counts.
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(0usize..100, 1..30)) {
        let h = stats::entropy_of_counts(&counts);
        prop_assert!(h >= 0.0);
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        if nonzero > 0 {
            prop_assert!(h <= (nonzero as f64).ln() + 1e-9);
        }
    }

    /// The independence factor is in [0, 1] for any joint histogram.
    #[test]
    fn kappa_in_unit_interval(
        joint in proptest::collection::vec(
            proptest::collection::vec(0usize..50, 4),
            4,
        ),
    ) {
        let kappa = stats::independence_factor(&joint);
        prop_assert!((0.0..=1.0).contains(&kappa), "kappa {kappa}");
    }
}
