//! Small numeric-statistics toolkit shared across the workspace.
//!
//! Everything here is deliberately dependency-free: means, medians,
//! quantiles, the paper's min–max normalization (Eq. 2), equi-width
//! binning, and the entropy/mutual-information machinery behind the
//! domain-knowledge independence test (paper §5).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; `0.0` for slices shorter than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Median via partial sort of a scratch copy; `0.0` for an empty slice.
/// Even-length inputs return the mean of the two middle elements.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut scratch: Vec<f64> = values.to_vec();
    median_in_place(&mut scratch)
}

/// Median that reuses the caller's buffer (sorted as a side effect).
/// Useful in the sliding-window median filter of the anomaly detector,
/// where allocating per window would dominate.
pub fn median_in_place(scratch: &mut [f64]) -> f64 {
    if scratch.is_empty() {
        return 0.0;
    }
    let n = scratch.len();
    let mid = n / 2;
    let (_, upper_mid, _) = scratch.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    let upper = *upper_mid;
    if n % 2 == 1 {
        upper
    } else {
        // Largest element of the lower half.
        let lower = scratch[..mid].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lower + upper) / 2.0
    }
}

/// Empirical quantile `q ∈ [0, 1]` with linear interpolation between order
/// statistics (the "type 7" estimator); `0.0` for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Empirical quantile over an **already sorted** slice (same estimator as
/// [`quantile`], without the sort). Callers maintaining incremental sorted
/// windows (e.g. the PerfAugur baseline) use this on their hot path.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Min–max normalization of one value into `[0, 1]` (paper Eq. 2):
/// `(v - min) / (max - min)`. Returns `0.0` for degenerate ranges so that
/// constant attributes normalize to a constant rather than NaN.
pub fn normalize(value: f64, min: f64, max: f64) -> f64 {
    let range = max - min;
    if range <= 0.0 || !range.is_finite() {
        0.0
    } else {
        ((value - min) / range).clamp(0.0, 1.0)
    }
}

/// Normalize a whole slice against its own range (paper Eq. 2 applied
/// attribute-wise). Constant slices map to all-zeros.
pub fn normalize_slice(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return vec![0.0; values.len()];
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values.iter().map(|&v| if v.is_finite() { normalize(v, min, max) } else { 0.0 }).collect()
}

/// Index of the equi-width bin of `value` among `bins` bins over
/// `[min, max]`; values at `max` land in the last bin (the paper's partition
/// containment rule `lb <= val < ub` with a closed top partition so the
/// maximum is not lost).
pub fn bin_index(value: f64, min: f64, max: f64, bins: usize) -> usize {
    debug_assert!(bins > 0);
    let range = max - min;
    if range <= 0.0 || !value.is_finite() {
        return 0;
    }
    let raw = ((value - min) / range * bins as f64).floor() as isize;
    raw.clamp(0, bins as isize - 1) as usize
}

/// Histogram of `values` over `bins` equi-width bins spanning the data range.
pub fn histogram(values: &[f64], bins: usize) -> Vec<usize> {
    let mut counts = vec![0usize; bins.max(1)];
    if values.is_empty() {
        return counts;
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return counts;
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for &v in &finite {
        counts[bin_index(v, min, max, bins.max(1))] += 1;
    }
    counts
}

/// Shannon entropy (nats) of a count vector.
pub fn entropy_of_counts(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

/// Joint histogram of two discretized sequences with `(bins_a, bins_b)`
/// cells. Sequences must have equal length.
pub fn joint_histogram(a: &[usize], b: &[usize], bins_a: usize, bins_b: usize) -> Vec<Vec<usize>> {
    debug_assert_eq!(a.len(), b.len());
    let mut joint = vec![vec![0usize; bins_b]; bins_a];
    for (&x, &y) in a.iter().zip(b) {
        joint[x.min(bins_a - 1)][y.min(bins_b - 1)] += 1;
    }
    joint
}

/// Mutual information `MI(A, B) = H(A) + H(B) - H(A, B)` (nats) from a joint
/// count table (paper §5).
pub fn mutual_information(joint: &[Vec<usize>]) -> f64 {
    let marg_a: Vec<usize> = joint.iter().map(|row| row.iter().sum()).collect();
    let bins_b = joint.first().map_or(0, Vec::len);
    let marg_b: Vec<usize> = (0..bins_b).map(|j| joint.iter().map(|row| row[j]).sum()).collect();
    let flat: Vec<usize> = joint.iter().flatten().copied().collect();
    entropy_of_counts(&marg_a) + entropy_of_counts(&marg_b) - entropy_of_counts(&flat)
}

/// The paper's independence factor
/// `κ(A, B) = MI(A, B)² / (H(A) · H(B))` (§5): `0` for independent
/// attributes, approaching `1` with strong dependence. Degenerate marginals
/// (zero entropy) yield `0`.
pub fn independence_factor(joint: &[Vec<usize>]) -> f64 {
    let marg_a: Vec<usize> = joint.iter().map(|row| row.iter().sum()).collect();
    let bins_b = joint.first().map_or(0, Vec::len);
    let marg_b: Vec<usize> = (0..bins_b).map(|j| joint.iter().map(|row| row[j]).sum()).collect();
    let ha = entropy_of_counts(&marg_a);
    let hb = entropy_of_counts(&marg_b);
    if ha <= 0.0 || hb <= 0.0 {
        return 0.0;
    }
    let mi = mutual_information(joint);
    (mi * mi / (ha * hb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn median_in_place_matches_median() {
        let data = [9.0, -1.0, 4.0, 4.0, 7.0, 0.5];
        let mut scratch = data.to_vec();
        assert_eq!(median_in_place(&mut scratch), median(&data));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 40.0);
        assert_eq!(quantile(&v, 0.5), 25.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn normalize_handles_degenerate_range() {
        assert_eq!(normalize(5.0, 0.0, 10.0), 0.5);
        assert_eq!(normalize(5.0, 5.0, 5.0), 0.0);
        let n = normalize_slice(&[0.0, 5.0, 10.0]);
        assert_eq!(n, vec![0.0, 0.5, 1.0]);
        assert_eq!(normalize_slice(&[7.0, 7.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn bin_index_covers_range() {
        assert_eq!(bin_index(0.0, 0.0, 10.0, 5), 0);
        assert_eq!(bin_index(9.99, 0.0, 10.0, 5), 4);
        // Max value included in the top bin, not dropped.
        assert_eq!(bin_index(10.0, 0.0, 10.0, 5), 4);
        assert_eq!(bin_index(3.0, 3.0, 3.0, 5), 0);
    }

    #[test]
    fn histogram_counts_all_values() {
        let h = histogram(&[0.0, 1.0, 2.0, 3.0, 4.0], 5);
        assert_eq!(h, vec![1, 1, 1, 1, 1]);
        assert_eq!(histogram(&[], 3), vec![0, 0, 0]);
    }

    #[test]
    fn entropy_of_uniform_and_point_mass() {
        assert_eq!(entropy_of_counts(&[10, 0, 0]), 0.0);
        let h = entropy_of_counts(&[5, 5]);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(entropy_of_counts(&[]), 0.0);
    }

    #[test]
    fn mi_of_identical_equals_entropy() {
        // A == B, two symbols, uniform: MI = H = ln 2, kappa = 1.
        let joint = vec![vec![50, 0], vec![0, 50]];
        let mi = mutual_information(&joint);
        assert!((mi - std::f64::consts::LN_2).abs() < 1e-9);
        assert!((independence_factor(&joint) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mi_of_independent_is_zero() {
        // Product distribution: independent.
        let joint = vec![vec![25, 25], vec![25, 25]];
        assert!(mutual_information(&joint).abs() < 1e-9);
        assert!(independence_factor(&joint) < 1e-9);
    }

    #[test]
    fn independence_factor_degenerate_marginal() {
        let joint = vec![vec![100, 0], vec![0, 0]];
        assert_eq!(independence_factor(&joint), 0.0);
    }
}
