//! Typed, borrow-checked column views for the columnar diagnosis path.
//!
//! The paper's predicate-generation algorithm (§4) is one-attribute-at-a-
//! time, and [`Dataset`](crate::Dataset) already stores columns — these
//! views close the gap by handing kernels an attribute-contiguous slice
//! (plus the dictionary for categorical attributes) so the hot loops run
//! branch-light over `&[f64]` / `&[u32]` instead of paying a `Value` enum
//! dispatch per cell.
//!
//! [`ColumnarSnapshot`] pins every column view of a dataset for a whole
//! diagnosis pass and memoizes per-attribute finite ranges, so partition-
//! space construction (§4.1) and normalized mean differences (§4.5) share
//! one min/max scan per attribute instead of re-scanning the column.

use std::sync::OnceLock;

use crate::dataset::{Column, Dataset};
use crate::value::Dictionary;

/// Borrowed view of one numeric column: the unit the columnar kernels
/// scan. Wraps the attribute-contiguous `&[f64]` slice directly.
#[derive(Debug, Clone, Copy)]
pub struct NumericView<'a>(pub &'a [f64]);

impl<'a> NumericView<'a> {
    /// The underlying attribute-contiguous slice.
    pub fn as_slice(&self) -> &'a [f64] {
        self.0
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `(min, max)` over the finite values, `None` when no value is finite.
    ///
    /// This is the single source of truth for the fold behind
    /// [`Dataset::numeric_range`] and the snapshot's range cache — the
    /// iteration order and `f64::min`/`f64::max` reduction are part of the
    /// bit-identity contract of the diagnosis pipeline.
    pub fn finite_range(&self) -> Option<(f64, f64)> {
        let mut it = self.0.iter().copied().filter(|v| v.is_finite());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

/// Borrowed view of one categorical column: per-row dictionary ids plus
/// the dictionary they index into.
#[derive(Debug, Clone, Copy)]
pub struct CategoricalView<'a> {
    /// Dictionary id of each row's value.
    pub ids: &'a [u32],
    /// The column's label dictionary.
    pub dict: &'a Dictionary,
}

impl CategoricalView<'_> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Borrowed view of one column of either kind — what
/// [`Dataset::column`] returns and what kind-polymorphic kernels
/// (labeling, predicate masks) match on **once per column** instead of
/// once per cell.
#[derive(Debug, Clone, Copy)]
pub enum ColumnView<'a> {
    /// Numeric column.
    Numeric(NumericView<'a>),
    /// Categorical column.
    Categorical(CategoricalView<'a>),
}

impl<'a> ColumnView<'a> {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnView::Numeric(v) => v.len(),
            ColumnView::Categorical(c) => c.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The numeric slice, if this is a numeric column.
    pub fn numeric(&self) -> Option<&'a [f64]> {
        match self {
            ColumnView::Numeric(v) => Some(v.0),
            ColumnView::Categorical(_) => None,
        }
    }

    /// `(ids, dictionary)`, if this is a categorical column.
    pub fn categorical(&self) -> Option<(&'a [u32], &'a Dictionary)> {
        match self {
            ColumnView::Numeric(_) => None,
            ColumnView::Categorical(c) => Some((c.ids, c.dict)),
        }
    }

    pub(crate) fn of(column: &'a Column) -> ColumnView<'a> {
        match column {
            Column::Numeric(v) => ColumnView::Numeric(NumericView(v)),
            Column::Categorical { ids, dict } => {
                ColumnView::Categorical(CategoricalView { ids, dict })
            }
        }
    }
}

/// Pinned column views of a whole dataset for one diagnosis pass.
///
/// # Lifetime model
///
/// A snapshot borrows the dataset immutably for `'a`; every view handed
/// out lives as long as the snapshot, so kernels can hold slices across
/// scoped-thread boundaries without re-resolving columns. The borrow
/// checker guarantees the dataset cannot be mutated (no `push_row`, no
/// noise injection) while any snapshot is alive — exactly the "frozen
/// inputs" property the deterministic executor relies on.
///
/// # Range cache
///
/// `numeric_range` is memoized per attribute via [`OnceLock`]: the first
/// caller pays the min/max scan, later callers (partition-space build,
/// normalized mean difference, anchor averaging) reuse the result. The
/// fold is [`NumericView::finite_range`], so cached and uncached paths
/// are bit-identical; concurrent initialization races are benign because
/// every thread computes the same value.
#[derive(Debug)]
pub struct ColumnarSnapshot<'a> {
    dataset: &'a Dataset,
    columns: Vec<ColumnView<'a>>,
    ranges: Vec<OnceLock<Option<(f64, f64)>>>,
}

impl<'a> ColumnarSnapshot<'a> {
    /// Pin all column views of `dataset`. Cheap: no column is scanned
    /// until its range is first requested.
    pub fn new(dataset: &'a Dataset) -> Self {
        let columns: Vec<ColumnView<'a>> =
            dataset.columns_internal().iter().map(ColumnView::of).collect();
        let ranges = columns.iter().map(|_| OnceLock::new()).collect();
        ColumnarSnapshot { dataset, columns, ranges }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The attribute schema (timestamp excluded).
    pub fn schema(&self) -> &'a crate::attribute::Schema {
        self.dataset.schema()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.dataset.n_rows()
    }

    /// Per-row interval start times, in seconds.
    pub fn timestamps(&self) -> &'a [f64] {
        self.dataset.timestamps()
    }

    /// View of attribute `attr_id`; an empty numeric view for an
    /// out-of-range id (mirrors [`Dataset::column`]).
    pub fn column(&self, attr_id: usize) -> ColumnView<'a> {
        match self.columns.get(attr_id) {
            Some(view) => *view,
            None => ColumnView::Numeric(NumericView(&[])),
        }
    }

    /// Numeric slice of attribute `attr_id`, if it is numeric.
    pub fn numeric(&self, attr_id: usize) -> Option<&'a [f64]> {
        self.column(attr_id).numeric()
    }

    /// `(ids, dictionary)` of attribute `attr_id`, if it is categorical.
    pub fn categorical(&self, attr_id: usize) -> Option<(&'a [u32], &'a Dictionary)> {
        self.column(attr_id).categorical()
    }

    /// Memoized `(min, max)` over the finite values of a numeric
    /// attribute; `None` for categorical columns, out-of-range ids, and
    /// columns without a single finite value.
    pub fn numeric_range(&self, attr_id: usize) -> Option<(f64, f64)> {
        let slot = self.ranges.get(attr_id)?;
        *slot.get_or_init(|| match self.column(attr_id) {
            ColumnView::Numeric(v) => v.finite_range(),
            ColumnView::Categorical(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeMeta, Schema};
    use crate::value::Value;

    fn sample() -> Dataset {
        let schema =
            Schema::from_attrs([AttributeMeta::numeric("cpu"), AttributeMeta::categorical("job")])
                .unwrap();
        let mut d = Dataset::new(schema);
        let idle = d.intern(1, "idle").unwrap();
        let busy = d.intern(1, "busy").unwrap();
        d.push_row(0.0, &[Value::Num(10.0), idle]).unwrap();
        d.push_row(1.0, &[Value::Num(f64::NAN), busy]).unwrap();
        d.push_row(2.0, &[Value::Num(30.0), idle]).unwrap();
        d
    }

    #[test]
    fn snapshot_views_match_columns() {
        let d = sample();
        let snap = d.snapshot();
        assert_eq!(snap.n_rows(), 3);
        assert_eq!(snap.numeric(0).unwrap()[0], 10.0);
        let (ids, dict) = snap.categorical(1).unwrap();
        assert_eq!(ids, &[0, 1, 0]);
        assert_eq!(dict.label(1), Some("busy"));
        assert!(snap.numeric(1).is_none());
        assert!(snap.categorical(0).is_none());
    }

    #[test]
    fn snapshot_range_matches_dataset_fold() {
        let d = sample();
        let snap = d.snapshot();
        assert_eq!(snap.numeric_range(0), Some((10.0, 30.0)));
        // Memoized second read.
        assert_eq!(snap.numeric_range(0), Some((10.0, 30.0)));
        assert_eq!(snap.numeric_range(0), d.numeric_range(0).ok());
        assert_eq!(snap.numeric_range(1), None);
        assert_eq!(snap.numeric_range(99), None);
    }

    #[test]
    fn out_of_range_column_is_empty_numeric() {
        let d = sample();
        let snap = d.snapshot();
        assert!(snap.column(99).is_empty());
        assert_eq!(snap.column(99).numeric(), Some(&[][..]));
    }

    #[test]
    fn finite_range_ignores_non_finite() {
        let v = [f64::NAN, 5.0, f64::INFINITY, -1.0, 3.0];
        assert_eq!(NumericView(&v).finite_range(), Some((-1.0, 5.0)));
        assert_eq!(NumericView(&[f64::NAN]).finite_range(), None);
        assert_eq!(NumericView(&[]).finite_range(), None);
    }
}
