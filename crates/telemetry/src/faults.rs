//! Telemetry fault injection: a seeded, composable chaos layer.
//!
//! Real DBSeer-style collectors do not fail the way the paper's robustness
//! study (§8.5, Table 5) perturbs data — they drop whole seconds, duplicate
//! flushes, skew clocks, report stuck sensors, emit NaN/Inf/empty cells,
//! truncate files mid-row, and drift their schemas between versions. A
//! [`FaultPlan`] describes a reproducible combination of such faults and can
//! be applied to raw CSV text ([`FaultPlan::apply_csv`]) or any [`Dataset`]
//! ([`FaultPlan::apply_to_dataset`], which round-trips through the CSV layer
//! so the lossy reader is exercised too). Every mutation is recorded in a
//! [`CorruptionReport`] so experiments can correlate degradation with the
//! injected ground truth.
//!
//! The injector carries its own splitmix64 PRNG: identical plans over
//! identical input produce identical corruption, and the telemetry crate
//! gains no new dependencies.

use std::fmt;

use crate::csv::{from_csv_lossy, to_csv};
use crate::dataset::Dataset;
use crate::error::{IngestWarning, Result};

/// One family of telemetry corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Whole seconds (rows) vanish, as when a collector misses flushes.
    DropRows,
    /// Rows are emitted twice (duplicate flush / retry).
    DuplicateRows,
    /// All timestamps shift by a constant offset (collector clock skew).
    ClockSkew,
    /// Per-row timestamp noise (jittery clock, delayed writes).
    ClockJitter,
    /// A sensor column freezes and repeats its last value for a stretch.
    StuckSensor,
    /// Numeric cells are replaced by `NaN`.
    NanCells,
    /// Numeric cells are replaced by `inf`.
    InfCells,
    /// Cells are replaced by the empty string.
    EmptyCells,
    /// The file loses its tail and ends mid-row.
    TruncateTail,
    /// Schema drift: an unexpected extra column appears.
    ExtraColumn,
    /// Schema drift: an expected column disappears.
    DropColumn,
    /// Schema drift: a column is renamed.
    RenameColumn,
}

impl FaultKind {
    /// Every fault kind, for sweeps.
    pub const ALL: [FaultKind; 12] = [
        FaultKind::DropRows,
        FaultKind::DuplicateRows,
        FaultKind::ClockSkew,
        FaultKind::ClockJitter,
        FaultKind::StuckSensor,
        FaultKind::NanCells,
        FaultKind::InfCells,
        FaultKind::EmptyCells,
        FaultKind::TruncateTail,
        FaultKind::ExtraColumn,
        FaultKind::DropColumn,
        FaultKind::RenameColumn,
    ];

    /// Stable snake_case name (used in reports and experiment JSON).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DropRows => "drop_rows",
            FaultKind::DuplicateRows => "duplicate_rows",
            FaultKind::ClockSkew => "clock_skew",
            FaultKind::ClockJitter => "clock_jitter",
            FaultKind::StuckSensor => "stuck_sensor",
            FaultKind::NanCells => "nan_cells",
            FaultKind::InfCells => "inf_cells",
            FaultKind::EmptyCells => "empty_cells",
            FaultKind::TruncateTail => "truncate_tail",
            FaultKind::ExtraColumn => "extra_column",
            FaultKind::DropColumn => "drop_column",
            FaultKind::RenameColumn => "rename_column",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault with its intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The corruption family.
    pub kind: FaultKind,
    /// Fraction in `[0, 1]` of the targetable unit (rows, cells, or columns)
    /// affected. For [`FaultKind::ClockSkew`] it scales the constant offset
    /// (up to ±30 s at 1.0); for [`FaultKind::ClockJitter`] the per-row
    /// amplitude (up to ±5 s at 1.0).
    pub intensity: f64,
}

/// A reproducible, composable set of faults.
///
/// Faults are applied in the order they were added, each drawing from the
/// same seeded PRNG stream; a plan is a pure function of `(seed, specs,
/// input)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, specs: Vec::new() }
    }

    /// A plan containing a single fault.
    pub fn single(kind: FaultKind, intensity: f64, seed: u64) -> Self {
        FaultPlan::new(seed).with(kind, intensity)
    }

    /// Add a fault to the plan (builder style).
    pub fn with(mut self, kind: FaultKind, intensity: f64) -> Self {
        self.specs.push(FaultSpec { kind, intensity: intensity.clamp(0.0, 1.0) });
        self
    }

    /// The seed this plan draws its randomness from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults in application order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Apply the plan to raw CSV text, returning the corrupted text and a
    /// report of every mutation.
    pub fn apply_csv(&self, text: &str) -> (String, CorruptionReport) {
        let mut report = CorruptionReport::new(self.seed);
        let mut rng = SplitMix::new(self.seed);
        let mut table = CsvTable::parse(text);
        for spec in &self.specs {
            apply_spec(&mut table, *spec, &mut rng, &mut report);
        }
        (table.render(), report)
    }

    /// Apply the plan to a dataset by round-tripping through the CSV layer:
    /// serialize, corrupt the text, then re-ingest with
    /// [`from_csv_lossy`]. Returns the degraded dataset, the corruption
    /// report, and the ingest warnings the lossy reader emitted while
    /// swallowing the damage.
    pub fn apply_to_dataset(
        &self,
        dataset: &Dataset,
    ) -> Result<(Dataset, CorruptionReport, Vec<IngestWarning>)> {
        let text = to_csv(dataset);
        let (corrupted, report) = self.apply_csv(&text);
        let (degraded, warnings) = from_csv_lossy(&corrupted)?;
        Ok((degraded, report, warnings))
    }
}

/// One recorded mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionEvent {
    /// Which fault family produced the mutation.
    pub kind: FaultKind,
    /// 1-based data-line number affected, when row-scoped (the header is
    /// line 1, so the first data row is line 2).
    pub line: Option<usize>,
    /// Column header affected, when column-scoped.
    pub column: Option<String>,
    /// Human-readable description.
    pub detail: String,
}

/// Everything a [`FaultPlan`] did to one input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorruptionReport {
    /// The plan's seed (for reproduction).
    pub seed: u64,
    /// Each individual mutation, in application order.
    pub events: Vec<CorruptionEvent>,
}

impl CorruptionReport {
    fn new(seed: u64) -> Self {
        CorruptionReport { seed, events: Vec::new() }
    }

    /// Number of mutations of one kind.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total number of mutations.
    pub fn total(&self) -> usize {
        self.events.len()
    }

    fn push(
        &mut self,
        kind: FaultKind,
        line: Option<usize>,
        column: Option<String>,
        detail: impl Into<String>,
    ) {
        self.events.push(CorruptionEvent { kind, line, column, detail: detail.into() });
    }
}

impl fmt::Display for CorruptionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "corruption report (seed {}): {} mutations", self.seed, self.total())?;
        for kind in FaultKind::ALL {
            let n = self.count(kind);
            if n > 0 {
                writeln!(f, "  {kind}: {n}")?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Internal PRNG (no external dependency)
// ---------------------------------------------------------------------------

struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed ^ 0x9e3779b97f4a7c15 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, n). Returns 0 for n == 0.
    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }
}

// ---------------------------------------------------------------------------
// Textual CSV model
// ---------------------------------------------------------------------------

/// A lightly-parsed CSV: a header line and raw data lines. Faults operate on
/// this level so they can produce exactly the malformed bytes a broken
/// collector would (including rows that no longer split cleanly).
struct CsvTable {
    header: String,
    /// Data lines, in order. Each entry is the raw text of one line.
    rows: Vec<String>,
    /// Set when `TruncateTail` chopped the final row mid-byte; rendering
    /// then omits the trailing newline to emulate a cut-off file.
    truncated_mid_row: bool,
}

impl CsvTable {
    fn parse(text: &str) -> Self {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default().to_string();
        let rows = lines.filter(|l| !l.trim().is_empty()).map(str::to_string).collect();
        CsvTable { header, rows, truncated_mid_row: false }
    }

    fn render(&self) -> String {
        let mut out = String::with_capacity(
            self.header.len() + self.rows.iter().map(|r| r.len() + 1).sum::<usize>() + 1,
        );
        out.push_str(&self.header);
        out.push('\n');
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(row);
            if !(self.truncated_mid_row && i + 1 == self.rows.len()) {
                out.push('\n');
            }
        }
        out
    }

    /// Header fields (naive split is fine: our headers never contain quoted
    /// commas).
    fn header_fields(&self) -> Vec<String> {
        self.header.split(',').map(str::to_string).collect()
    }

    /// 1-based file line number of data row `i`.
    fn line_no(i: usize) -> usize {
        i + 2
    }
}

/// Split a data line naively on commas outside quotes.
fn split_cells(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for ch in line.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                current.push(ch);
            }
            ',' if !in_quotes => cells.push(std::mem::take(&mut current)),
            c => current.push(c),
        }
    }
    cells.push(current);
    cells
}

fn join_cells(cells: &[String]) -> String {
    cells.join(",")
}

// ---------------------------------------------------------------------------
// Fault application
// ---------------------------------------------------------------------------

fn apply_spec(
    table: &mut CsvTable,
    spec: FaultSpec,
    rng: &mut SplitMix,
    report: &mut CorruptionReport,
) {
    if spec.intensity <= 0.0 || table.rows.is_empty() {
        return;
    }
    match spec.kind {
        FaultKind::DropRows => drop_rows(table, spec.intensity, rng, report),
        FaultKind::DuplicateRows => duplicate_rows(table, spec.intensity, rng, report),
        FaultKind::ClockSkew => clock_skew(table, spec.intensity, rng, report),
        FaultKind::ClockJitter => clock_jitter(table, spec.intensity, rng, report),
        FaultKind::StuckSensor => stuck_sensor(table, spec.intensity, rng, report),
        FaultKind::NanCells => cell_fault(table, spec, "NaN", rng, report),
        FaultKind::InfCells => cell_fault(table, spec, "inf", rng, report),
        FaultKind::EmptyCells => cell_fault(table, spec, "", rng, report),
        FaultKind::TruncateTail => truncate_tail(table, spec.intensity, rng, report),
        FaultKind::ExtraColumn => extra_column(table, rng, report),
        FaultKind::DropColumn => drop_column(table, rng, report),
        FaultKind::RenameColumn => rename_column(table, rng, report),
    }
}

fn drop_rows(
    table: &mut CsvTable,
    intensity: f64,
    rng: &mut SplitMix,
    report: &mut CorruptionReport,
) {
    let mut kept = Vec::with_capacity(table.rows.len());
    for (i, row) in table.rows.drain(..).enumerate() {
        if rng.unit() < intensity {
            report.push(FaultKind::DropRows, Some(CsvTable::line_no(i)), None, "row dropped");
        } else {
            kept.push(row);
        }
    }
    table.rows = kept;
}

fn duplicate_rows(
    table: &mut CsvTable,
    intensity: f64,
    rng: &mut SplitMix,
    report: &mut CorruptionReport,
) {
    let mut out = Vec::with_capacity(table.rows.len() * 2);
    for (i, row) in table.rows.drain(..).enumerate() {
        let dup = rng.unit() < intensity;
        if dup {
            report.push(
                FaultKind::DuplicateRows,
                Some(CsvTable::line_no(i)),
                None,
                "row duplicated",
            );
            out.push(row.clone());
        }
        out.push(row);
    }
    table.rows = out;
}

fn shift_timestamp(row: &str, offset: f64) -> Option<String> {
    let mut cells = split_cells(row);
    let ts: f64 = cells.first()?.trim().parse().ok()?;
    let shifted = ts + offset;
    cells[0] = if shifted == shifted.trunc() && shifted.abs() < 1e15 {
        format!("{}", shifted as i64)
    } else {
        format!("{shifted}")
    };
    Some(join_cells(&cells))
}

fn clock_skew(
    table: &mut CsvTable,
    intensity: f64,
    rng: &mut SplitMix,
    report: &mut CorruptionReport,
) {
    let sign = if rng.unit() < 0.5 { -1.0 } else { 1.0 };
    let offset = (sign * intensity * 30.0).round();
    // sherlock-lint: allow(nan-unsafe): offset is `.round()`ed, exact-zero check intended
    if offset == 0.0 {
        return;
    }
    let mut shifted = 0usize;
    for row in &mut table.rows {
        if let Some(new_row) = shift_timestamp(row, offset) {
            *row = new_row;
            shifted += 1;
        }
    }
    report.push(
        FaultKind::ClockSkew,
        None,
        None,
        format!("all timestamps shifted by {offset:+} s ({shifted} rows)"),
    );
}

fn clock_jitter(
    table: &mut CsvTable,
    intensity: f64,
    rng: &mut SplitMix,
    report: &mut CorruptionReport,
) {
    let amplitude = intensity * 5.0;
    let mut jittered = 0usize;
    for row in &mut table.rows {
        let offset = (rng.unit() * 2.0 - 1.0) * amplitude;
        if let Some(new_row) = shift_timestamp(row, offset) {
            *row = new_row;
            jittered += 1;
        }
    }
    report.push(
        FaultKind::ClockJitter,
        None,
        None,
        format!("timestamps jittered by up to ±{amplitude:.1} s ({jittered} rows)"),
    );
}

fn stuck_sensor(
    table: &mut CsvTable,
    intensity: f64,
    rng: &mut SplitMix,
    report: &mut CorruptionReport,
) {
    let n_cols = table.header_fields().len();
    if n_cols < 2 || table.rows.len() < 2 {
        return;
    }
    let headers = table.header_fields();
    // Freeze ceil(intensity * data columns) sensors, each over its own run.
    let n_frozen = ((n_cols - 1) as f64 * intensity).ceil() as usize;
    for _ in 0..n_frozen.max(1).min(n_cols - 1) {
        let col = 1 + rng.below(n_cols - 1);
        let run_len =
            ((table.rows.len() as f64 * intensity).ceil() as usize).clamp(2, table.rows.len());
        let start = rng.below(table.rows.len() - run_len + 1);
        let stuck_value = split_cells(&table.rows[start]).get(col).cloned();
        let Some(stuck_value) = stuck_value else {
            continue;
        };
        for row in &mut table.rows[start + 1..start + run_len] {
            let mut cells = split_cells(row);
            if let Some(cell) = cells.get_mut(col) {
                *cell = stuck_value.clone();
                *row = join_cells(&cells);
            }
        }
        report.push(
            FaultKind::StuckSensor,
            Some(CsvTable::line_no(start)),
            headers.get(col).cloned(),
            format!("column stuck at {stuck_value:?} for {run_len} rows"),
        );
    }
}

fn cell_fault(
    table: &mut CsvTable,
    spec: FaultSpec,
    replacement: &str,
    rng: &mut SplitMix,
    report: &mut CorruptionReport,
) {
    let headers = table.header_fields();
    let n_cols = headers.len();
    if n_cols < 2 {
        return;
    }
    for (i, row) in table.rows.iter_mut().enumerate() {
        let mut cells = split_cells(row);
        let mut changed = false;
        // Skip the timestamp cell: timestamp damage is the clock faults' job.
        for col in 1..cells.len().min(n_cols) {
            if rng.unit() < spec.intensity {
                cells[col] = replacement.to_string();
                changed = true;
                report.push(
                    spec.kind,
                    Some(CsvTable::line_no(i)),
                    headers.get(col).cloned(),
                    format!("cell replaced with {replacement:?}"),
                );
            }
        }
        if changed {
            *row = join_cells(&cells);
        }
    }
}

fn truncate_tail(
    table: &mut CsvTable,
    intensity: f64,
    rng: &mut SplitMix,
    report: &mut CorruptionReport,
) {
    let n = table.rows.len();
    let cut_rows = ((n as f64 * intensity).ceil() as usize).min(n.saturating_sub(1));
    if cut_rows > 0 {
        table.rows.truncate(n - cut_rows);
        report.push(
            FaultKind::TruncateTail,
            Some(CsvTable::line_no(n - cut_rows)),
            None,
            format!("dropped the last {cut_rows} rows"),
        );
    }
    // Chop the (new) final row mid-way, as if the file ended mid-write.
    let line = CsvTable::line_no(table.rows.len().saturating_sub(1));
    if let Some(last) = table.rows.last_mut() {
        if last.len() > 2 {
            let cut = 1 + rng.below(last.len() - 1);
            let byte_cut = last
                .char_indices()
                .map(|(i, _)| i)
                .filter(|&i| i > 0)
                .nth(cut.saturating_sub(1))
                .unwrap_or(last.len() / 2);
            last.truncate(byte_cut);
            // Leave an unterminated quote so the damage is structural, not
            // just a short row.
            last.push('"');
            table.truncated_mid_row = true;
            report.push(FaultKind::TruncateTail, Some(line), None, "final row cut mid-write");
        }
    }
}

fn extra_column(table: &mut CsvTable, rng: &mut SplitMix, report: &mut CorruptionReport) {
    let n_cols = table.header_fields().len();
    // Insert after the timestamp at a random position.
    let pos = 1 + rng.below(n_cols.max(1));
    let mut headers = table.header_fields();
    let name = format!("ghost_metric_{}:num", rng.below(1000));
    headers.insert(pos.min(headers.len()), name.clone());
    table.header = join_cells(&headers);
    for row in &mut table.rows {
        let mut cells = split_cells(row);
        let value = format!("{:.2}", rng.unit() * 100.0);
        cells.insert(pos.min(cells.len()), value);
        *row = join_cells(&cells);
    }
    report.push(FaultKind::ExtraColumn, None, Some(name), "unexpected column appeared");
}

fn drop_column(table: &mut CsvTable, rng: &mut SplitMix, report: &mut CorruptionReport) {
    let headers = table.header_fields();
    if headers.len() < 3 {
        // Never drop the timestamp or the only data column.
        return;
    }
    let col = 1 + rng.below(headers.len() - 1);
    let name = headers[col].clone();
    let mut new_headers = headers;
    new_headers.remove(col);
    table.header = join_cells(&new_headers);
    for row in &mut table.rows {
        let mut cells = split_cells(row);
        if col < cells.len() {
            cells.remove(col);
            *row = join_cells(&cells);
        }
    }
    report.push(FaultKind::DropColumn, None, Some(name), "column disappeared");
}

fn rename_column(table: &mut CsvTable, rng: &mut SplitMix, report: &mut CorruptionReport) {
    let mut headers = table.header_fields();
    if headers.len() < 2 {
        return;
    }
    let col = 1 + rng.below(headers.len() - 1);
    let old = headers[col].clone();
    // Keep the kind tag so the file still parses; the *name* drifts.
    let (name, tag) = old.rsplit_once(':').unwrap_or((old.as_str(), "num"));
    let renamed = format!("{}_v2:{}", name, tag);
    headers[col] = renamed.clone();
    table.header = join_cells(&headers);
    report.push(
        FaultKind::RenameColumn,
        None,
        Some(old.clone()),
        format!("column renamed to {renamed:?}"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeMeta, Schema};
    use crate::csv::{from_csv_lossy, to_csv};
    use crate::value::Value;

    fn sample(rows: usize) -> Dataset {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("cpu"),
            AttributeMeta::numeric("io"),
            AttributeMeta::categorical("job"),
        ])
        .expect("schema");
        let mut d = Dataset::new(schema);
        for i in 0..rows {
            let job = d.intern(2, if i % 5 == 0 { "backup" } else { "idle" }).expect("intern");
            d.push_row(i as f64, &[Value::Num(50.0 + i as f64), Value::Num(5.0), job])
                .expect("push");
        }
        d
    }

    #[test]
    fn plans_are_deterministic() {
        let text = to_csv(&sample(50));
        let plan = FaultPlan::new(7).with(FaultKind::DropRows, 0.2).with(FaultKind::NanCells, 0.1);
        let (a, ra) = plan.apply_csv(&text);
        let (b, rb) = plan.apply_csv(&text);
        assert_eq!(a, b);
        assert_eq!(ra.total(), rb.total());
    }

    #[test]
    fn drop_rows_reduces_row_count() {
        let d = sample(100);
        let plan = FaultPlan::single(FaultKind::DropRows, 0.3, 1);
        let (degraded, report, _) = plan.apply_to_dataset(&d).expect("apply");
        assert!(degraded.n_rows() < 100);
        assert_eq!(degraded.n_rows(), 100 - report.count(FaultKind::DropRows));
    }

    #[test]
    fn duplicates_collapse_under_repair() {
        let d = sample(60);
        let plan = FaultPlan::single(FaultKind::DuplicateRows, 0.5, 3);
        let text = to_csv(&d);
        let (corrupted, report) = plan.apply_csv(&text);
        assert!(report.count(FaultKind::DuplicateRows) > 0);
        let (degraded, warnings) = from_csv_lossy(&corrupted).expect("lossy");
        // Duplicates survive ingestion (with warnings); alignment repair is
        // what collapses them.
        assert_eq!(degraded.n_rows(), 60 + report.count(FaultKind::DuplicateRows));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, crate::IngestWarning::NonMonotonicTimestamp { .. })));
    }

    #[test]
    fn nan_cells_become_non_finite_values() {
        let d = sample(80);
        let plan = FaultPlan::single(FaultKind::NanCells, 0.2, 5);
        let (degraded, report, _) = plan.apply_to_dataset(&d).expect("apply");
        assert!(report.count(FaultKind::NanCells) > 0);
        let nan_count: usize = (0..2)
            .map(|a| degraded.numeric(a).expect("num").iter().filter(|v| v.is_nan()).count())
            .sum();
        assert!(nan_count > 0);
    }

    #[test]
    fn truncation_never_yields_more_rows() {
        let d = sample(50);
        for seed in 0..5 {
            let plan = FaultPlan::single(FaultKind::TruncateTail, 0.3, seed);
            let (degraded, _, _) = plan.apply_to_dataset(&d).expect("apply");
            assert!(degraded.n_rows() < 50);
        }
    }

    #[test]
    fn schema_drift_is_survivable() {
        let d = sample(40);
        for kind in [FaultKind::ExtraColumn, FaultKind::DropColumn, FaultKind::RenameColumn] {
            let plan = FaultPlan::single(kind, 1.0, 9);
            let (degraded, report, _) = plan.apply_to_dataset(&d).expect("apply");
            assert_eq!(report.count(kind), 1, "{kind}");
            assert_eq!(degraded.n_rows(), 40, "{kind}");
        }
    }

    #[test]
    fn every_kind_survives_end_to_end_at_full_intensity() {
        let d = sample(60);
        for kind in FaultKind::ALL {
            for seed in [0, 1, 2] {
                let plan = FaultPlan::single(kind, 1.0, seed);
                let (degraded, _, _) = plan.apply_to_dataset(&d).expect("apply");
                assert!(degraded.n_rows() <= 2 * 60, "{kind} exploded the dataset");
            }
        }
    }

    #[test]
    fn report_display_summarizes() {
        let d = sample(30);
        let plan =
            FaultPlan::new(11).with(FaultKind::DropRows, 0.5).with(FaultKind::EmptyCells, 0.3);
        let (_, report, _) = plan.apply_to_dataset(&d).expect("apply");
        let text = report.to_string();
        assert!(text.contains("drop_rows"));
        assert!(text.contains("empty_cells"));
    }

    #[test]
    fn zero_intensity_is_identity() {
        let text = to_csv(&sample(25));
        let plan = FaultPlan::new(1).with(FaultKind::DropRows, 0.0).with(FaultKind::NanCells, 0.0);
        let (out, report) = plan.apply_csv(&text);
        assert_eq!(out, text);
        assert_eq!(report.total(), 0);
    }
}
