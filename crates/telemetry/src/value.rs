//! Scalar telemetry values and categorical dictionaries.

use serde::{Deserialize, Serialize};

/// A single scalar observation.
///
/// Categorical values are stored as small integer ids into a per-column
/// [`Dictionary`]; this keeps the hot loops of the algorithm allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Numeric measurement.
    Num(f64),
    /// Categorical value (dictionary id).
    Cat(u32),
}

impl Value {
    /// The numeric payload, if this is a numeric value.
    pub fn as_num(self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(v),
            Value::Cat(_) => None,
        }
    }

    /// The categorical id, if this is a categorical value.
    pub fn as_cat(self) -> Option<u32> {
        match self {
            Value::Num(_) => None,
            Value::Cat(c) => Some(c),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

/// Interned string dictionary for one categorical column.
///
/// Ids are dense and assigned in first-seen order, so a column's partition
/// space (one partition per distinct category, paper Section 4.1) can be
/// indexed directly by id.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dictionary {
    labels: Vec<String>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Intern `label`, returning its stable id.
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(id) = self.id_of(label) {
            return id;
        }
        self.labels.push(label.to_string());
        (self.labels.len() - 1) as u32
    }

    /// Id of an already-interned label.
    pub fn id_of(&self, label: &str) -> Option<u32> {
        self.labels.iter().position(|l| l == label).map(|i| i as u32)
    }

    /// Label for an id, if in range.
    pub fn label(&self, id: u32) -> Option<&str> {
        self.labels.get(id as usize).map(String::as_str)
    }

    /// Number of distinct categories (`|Unique(Attr_i)|` in the paper).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no category has been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate `(id, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.labels.iter().enumerate().map(|(i, l)| (i as u32, l.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Num(1.5).as_num(), Some(1.5));
        assert_eq!(Value::Num(1.5).as_cat(), None);
        assert_eq!(Value::Cat(3).as_cat(), Some(3));
        assert_eq!(Value::Cat(3).as_num(), None);
        assert_eq!(Value::from(2.0), Value::Num(2.0));
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.intern("idle");
        let b = d.intern("backup");
        let a2 = d.intern("idle");
        assert_eq!(a, a2);
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.len(), 2);
        assert_eq!(d.label(1), Some("backup"));
        assert_eq!(d.label(2), None);
        assert_eq!(d.id_of("backup"), Some(1));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("a");
        d.intern("b");
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }
}
