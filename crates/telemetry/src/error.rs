//! Error type for telemetry data handling.

use std::fmt;

/// Errors produced while constructing, converting, or parsing telemetry data.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryError {
    /// An attribute name was referenced that does not exist in the schema.
    UnknownAttribute(String),
    /// A row had a different number of values than the schema has attributes.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A numeric operation was attempted on a categorical attribute (or vice versa).
    KindMismatch {
        /// The attribute involved.
        attribute: String,
        /// The kind the operation required.
        expected: &'static str,
    },
    /// Two datasets or streams that must share a schema did not.
    SchemaMismatch(String),
    /// A region referenced a row index outside the dataset.
    RowOutOfBounds {
        /// The offending row index.
        index: usize,
        /// The dataset's row count.
        len: usize,
    },
    /// CSV input could not be parsed.
    Parse {
        /// 1-based line number of the problem.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The operation requires a non-empty dataset or region.
    Empty(&'static str),
    /// A duplicate attribute name was added to a schema.
    DuplicateAttribute(String),
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::UnknownAttribute(name) => {
                write!(f, "unknown attribute: {name:?}")
            }
            TelemetryError::ArityMismatch { expected, found } => {
                write!(f, "row arity mismatch: schema has {expected} attributes, row has {found}")
            }
            TelemetryError::KindMismatch { attribute, expected } => {
                write!(f, "attribute {attribute:?} is not {expected}")
            }
            TelemetryError::SchemaMismatch(detail) => write!(f, "schema mismatch: {detail}"),
            TelemetryError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for dataset of {len} rows")
            }
            TelemetryError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TelemetryError::Empty(what) => write!(f, "operation requires non-empty {what}"),
            TelemetryError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name: {name:?}")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Convenience alias used across the telemetry crate.
pub type Result<T> = std::result::Result<T, TelemetryError>;

/// A non-fatal problem encountered while ingesting degraded telemetry.
///
/// Produced by [`from_csv_lossy`](crate::from_csv_lossy) and
/// [`repair_alignment`](crate::repair_alignment): instead of aborting on the
/// first malformed byte the lossy path records what was skipped or repaired
/// and keeps going. All line numbers are 1-based (header is line 1), matching
/// [`TelemetryError::Parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum IngestWarning {
    /// A whole row was discarded.
    SkippedRow {
        /// 1-based line number of the row.
        line: usize,
        /// Why the row could not be salvaged.
        reason: String,
    },
    /// A single cell was replaced with a placeholder (NaN for numeric cells).
    RepairedCell {
        /// 1-based line number of the row.
        line: usize,
        /// Attribute (column) name.
        attribute: String,
        /// What was wrong with the original cell.
        reason: String,
    },
    /// A row had the wrong number of fields and was padded or truncated.
    ArityRepair {
        /// 1-based line number of the row.
        line: usize,
        /// Number of fields the schema expects (including timestamp).
        expected: usize,
        /// Number of fields found.
        found: usize,
    },
    /// The header deviated from the expected layout but was salvaged.
    HeaderDrift {
        /// Human-readable description of the drift.
        detail: String,
    },
    /// The input ended mid-row (truncated tail); the fragment was dropped.
    TruncatedInput {
        /// 1-based line number of the dangling fragment.
        line: usize,
    },
    /// A numeric cell parsed as NaN/±∞ and was kept as-is.
    NonFiniteCell {
        /// 1-based line number of the row.
        line: usize,
        /// Attribute (column) name.
        attribute: String,
    },
    /// A row's timestamp was not strictly after its predecessor's.
    NonMonotonicTimestamp {
        /// 1-based line number of the row.
        line: usize,
        /// The offending timestamp.
        timestamp: f64,
    },
}

impl IngestWarning {
    /// 1-based line number the warning refers to, if any.
    pub fn line(&self) -> Option<usize> {
        match self {
            IngestWarning::SkippedRow { line, .. }
            | IngestWarning::RepairedCell { line, .. }
            | IngestWarning::ArityRepair { line, .. }
            | IngestWarning::TruncatedInput { line }
            | IngestWarning::NonFiniteCell { line, .. }
            | IngestWarning::NonMonotonicTimestamp { line, .. } => Some(*line),
            IngestWarning::HeaderDrift { .. } => None,
        }
    }
}

impl fmt::Display for IngestWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestWarning::SkippedRow { line, reason } => {
                write!(f, "line {line}: skipped row ({reason})")
            }
            IngestWarning::RepairedCell { line, attribute, reason } => {
                write!(f, "line {line}: repaired cell in {attribute:?} ({reason})")
            }
            IngestWarning::ArityRepair { line, expected, found } => {
                write!(
                    f,
                    "line {line}: expected {expected} fields, found {found}; padded/truncated"
                )
            }
            IngestWarning::HeaderDrift { detail } => write!(f, "line 1: header drift: {detail}"),
            IngestWarning::TruncatedInput { line } => {
                write!(f, "line {line}: input truncated mid-row; fragment dropped")
            }
            IngestWarning::NonFiniteCell { line, attribute } => {
                write!(f, "line {line}: non-finite value in {attribute:?}")
            }
            IngestWarning::NonMonotonicTimestamp { line, timestamp } => {
                write!(f, "line {line}: timestamp {timestamp} not after predecessor")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TelemetryError::UnknownAttribute("cpu".into());
        assert!(e.to_string().contains("cpu"));
        let e = TelemetryError::ArityMismatch { expected: 3, found: 2 };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        let e = TelemetryError::Parse { line: 7, message: "bad float".into() };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(TelemetryError::Empty("dataset"));
    }
}
