#![warn(missing_docs)]
// Ingestion must degrade gracefully, never panic: unwrap/expect are banned in
// library code (tests may use them freely).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Telemetry data model and preprocessing substrate for DBSherlock.
//!
//! This crate plays the role DBSeer's collection and preprocessing pipeline
//! plays in the paper (Fig. 2, steps 1–2): it defines typed attributes,
//! aligned per-second tuples, abnormal/normal regions, a dbseer-style CSV
//! format, raw-log alignment, and the shared statistics toolkit.
//!
//! # Example
//!
//! ```
//! use dbsherlock_telemetry::{AttributeMeta, Dataset, Region, Schema, Value};
//!
//! let schema = Schema::from_attrs([
//!     AttributeMeta::numeric("os_cpu_usage"),
//!     AttributeMeta::categorical("active_job"),
//! ]).unwrap();
//! let mut data = Dataset::new(schema);
//! let idle = data.intern(1, "idle").unwrap();
//! data.push_row(0.0, &[Value::Num(12.0), idle]).unwrap();
//! data.push_row(1.0, &[Value::Num(95.0), idle]).unwrap();
//!
//! let abnormal = Region::from_range(1..2);
//! let normal = abnormal.complement(data.n_rows());
//! assert_eq!(normal.indices(), &[0]);
//! ```

pub mod align;
pub mod attribute;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod faults;
pub mod plot;
pub mod region;
pub mod stats;
pub mod value;
pub mod view;

pub use align::{
    align, repair_alignment, Aggregation, AlignOptions, CategoricalStream, NumericStream,
    RepairOptions,
};
pub use attribute::{AttributeKind, AttributeMeta, Schema};
pub use csv::{
    from_csv, from_csv_lossy, parse_header_lossy, parse_line_lossy, push_raw_row, to_csv, RawCell,
};
pub use dataset::{Column, Dataset};
pub use error::{IngestWarning, Result, TelemetryError};
pub use faults::{CorruptionEvent, CorruptionReport, FaultKind, FaultPlan, FaultSpec};
pub use plot::{render as render_plot, PlotOptions};
pub use region::Region;
pub use value::{Dictionary, Value};
pub use view::{CategoricalView, ColumnView, ColumnarSnapshot, NumericView};
