//! Terminal plotting of performance metrics (paper Fig. 2 step 3).
//!
//! DBSherlock's GUI shows scatter plots of metrics over time, on which the
//! user selects abnormal regions. This module is the headless equivalent:
//! compact ASCII renderings of a metric with an optional region
//! highlighted, for examples, debugging, and operator-facing CLIs.

use crate::dataset::Dataset;
use crate::error::Result;
use crate::region::Region;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct PlotOptions {
    /// Plot width in characters (time axis is resampled to fit).
    pub width: usize,
    /// Plot height in rows.
    pub height: usize,
    /// Character used to mark rows inside the highlighted region.
    pub highlight: char,
    /// Character used for ordinary samples.
    pub point: char,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions { width: 72, height: 12, highlight: '#', point: '·' }
    }
}

/// Render `attr` of `dataset` over time, highlighting `region` (if any).
///
/// Each output column aggregates `ceil(n / width)` consecutive samples by
/// their mean; a column is highlighted when any of its samples is in the
/// region. The y-axis is annotated with the data range.
pub fn render(
    dataset: &Dataset,
    attr: &str,
    region: Option<&Region>,
    options: &PlotOptions,
) -> Result<String> {
    let values = dataset.numeric_by_name(attr)?;
    let width = options.width.max(8);
    let height = options.height.max(3);
    if values.is_empty() {
        return Ok(format!("{attr}: <no data>\n"));
    }
    // Resample into columns.
    let n = values.len();
    let per_col = n.div_ceil(width);
    let mut columns: Vec<(f64, bool)> = Vec::new();
    for chunk_start in (0..n).step_by(per_col) {
        let chunk_end = (chunk_start + per_col).min(n);
        let slice = &values[chunk_start..chunk_end];
        let mean = slice.iter().sum::<f64>() / slice.len() as f64;
        let hot =
            region.map(|r| (chunk_start..chunk_end).any(|row| r.contains(row))).unwrap_or(false);
        columns.push((mean, hot));
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(v, _) in &columns {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if hi <= lo {
        hi = lo + 1.0;
    }

    let mut grid = vec![vec![' '; columns.len()]; height];
    for (col, &(v, hot)) in columns.iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        let level = ((v - lo) / (hi - lo) * (height - 1) as f64).round() as usize;
        let row = height - 1 - level.min(height - 1);
        grid[row][col] = if hot { options.highlight } else { options.point };
    }

    let mut out = String::new();
    out.push_str(&format!("{attr}  [{lo:.1} .. {hi:.1}]\n"));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:>9.1} ")
        } else if i == height - 1 {
            format!("{lo:>9.1} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(columns.len()));
    out.push('\n');
    out.push_str(&format!(
        "{:>10} 0 .. {} s{}\n",
        "",
        n - 1,
        region
            .map(|_r| format!("   ({} = selected region)", options.highlight))
            .unwrap_or_default()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeMeta, Schema};
    use crate::value::Value;

    fn dataset(values: &[f64]) -> Dataset {
        let schema = Schema::from_attrs([AttributeMeta::numeric("lat")]).unwrap();
        let mut d = Dataset::new(schema);
        for (i, &v) in values.iter().enumerate() {
            d.push_row(i as f64, &[Value::Num(v)]).unwrap();
        }
        d
    }

    #[test]
    fn renders_with_highlight() {
        let values: Vec<f64> =
            (0..100).map(|i| if (40..60).contains(&i) { 80.0 } else { 10.0 }).collect();
        let d = dataset(&values);
        let region = Region::from_range(40..60);
        let text = render(&d, "lat", Some(&region), &PlotOptions::default()).unwrap();
        assert!(text.contains("lat"));
        assert!(text.contains('#'), "highlighted points expected:\n{text}");
        assert!(text.contains('·'), "normal points expected:\n{text}");
        assert!(text.contains("10.0") && text.contains("80.0"));
    }

    #[test]
    fn plot_has_requested_height() {
        let d = dataset(&[1.0, 2.0, 3.0]);
        let opts = PlotOptions { height: 5, ..PlotOptions::default() };
        let text = render(&d, "lat", None, &opts).unwrap();
        // title + 5 rows + axis + footer
        assert_eq!(text.lines().count(), 1 + 5 + 1 + 1);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let d = dataset(&[5.0; 50]);
        let text = render(&d, "lat", None, &PlotOptions::default()).unwrap();
        assert!(text.contains("lat"));
    }

    #[test]
    fn empty_dataset_is_graceful() {
        let d = dataset(&[]);
        let text = render(&d, "lat", None, &PlotOptions::default()).unwrap();
        assert!(text.contains("no data"));
    }

    #[test]
    fn unknown_attribute_errors() {
        let d = dataset(&[1.0]);
        assert!(render(&d, "nope", None, &PlotOptions::default()).is_err());
    }

    #[test]
    fn wide_input_resamples_to_width() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let d = dataset(&values);
        let opts = PlotOptions { width: 40, ..PlotOptions::default() };
        let text = render(&d, "lat", None, &opts).unwrap();
        let plot_line_len = text.lines().nth(1).unwrap().chars().count();
        // 10 label chars + '|' + at most 40 columns.
        assert!(plot_line_len <= 51, "{plot_line_len}");
    }
}
