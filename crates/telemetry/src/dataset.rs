//! Column-major storage of aligned telemetry tuples.

use serde::{Deserialize, Serialize};

use crate::attribute::{AttributeKind, AttributeMeta, Schema};
use crate::error::{Result, TelemetryError};
use crate::region::Region;
use crate::value::{Dictionary, Value};
use crate::view::{ColumnView, ColumnarSnapshot, NumericView};

/// One column of observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Numeric measurements, one per row.
    Numeric(Vec<f64>),
    /// Categorical ids, one per row, plus the column's dictionary.
    Categorical {
        /// Dictionary id of each row's value.
        ids: Vec<u32>,
        /// The column's label dictionary.
        dict: Dictionary,
    },
}

impl Column {
    /// Number of stored values (equals the dataset's row count).
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical { ids, .. } => ids.len(),
        }
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&mut self, value: Value, attr: &AttributeMeta) -> Result<()> {
        match (self, value) {
            (Column::Numeric(v), Value::Num(x)) => {
                v.push(x);
                Ok(())
            }
            (Column::Categorical { ids, .. }, Value::Cat(c)) => {
                ids.push(c);
                Ok(())
            }
            (Column::Numeric(_), Value::Cat(_)) => Err(TelemetryError::KindMismatch {
                attribute: attr.name.clone(),
                expected: "numeric",
            }),
            (Column::Categorical { .. }, Value::Num(_)) => Err(TelemetryError::KindMismatch {
                attribute: attr.name.clone(),
                expected: "categorical",
            }),
        }
    }
}

/// A set of aligned tuples `(Timestamp, Attr1, ..., Attrk)` (paper §2.1).
///
/// Rows correspond to fixed one-second collection intervals; `timestamps[i]`
/// marks the start of interval `i`. Storage is column-major because the
/// predicate-generation algorithm (paper §4) scans one attribute at a time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    timestamps: Vec<f64>,
    columns: Vec<Column>,
}

impl Dataset {
    /// Empty dataset over `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .iter()
            .map(|(_, a)| match a.kind {
                AttributeKind::Numeric => Column::Numeric(Vec::new()),
                AttributeKind::Categorical => {
                    Column::Categorical { ids: Vec::new(), dict: Dictionary::new() }
                }
            })
            .collect();
        Dataset { schema, timestamps: Vec::new(), columns }
    }

    /// The attribute schema (timestamp excluded).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (`X` in the paper's complexity analysis, §4.6).
    pub fn n_rows(&self) -> usize {
        self.timestamps.len()
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Per-row interval start times, in seconds.
    pub fn timestamps(&self) -> &[f64] {
        &self.timestamps
    }

    /// Append one aligned tuple. `values` must match the schema in arity and
    /// per-attribute kind.
    pub fn push_row(&mut self, timestamp: f64, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(TelemetryError::ArityMismatch {
                expected: self.schema.len(),
                found: values.len(),
            });
        }
        // Arity is checked above, so the three zips stay in lockstep.
        for ((column, &value), (_, attr)) in
            self.columns.iter_mut().zip(values.iter()).zip(self.schema.iter())
        {
            column.push(value, attr)?;
        }
        self.timestamps.push(timestamp);
        Ok(())
    }

    /// Intern `label` in the dictionary of categorical attribute `attr_id`,
    /// returning a [`Value::Cat`] suitable for [`push_row`](Self::push_row).
    pub fn intern(&mut self, attr_id: usize, label: &str) -> Result<Value> {
        match self.columns.get_mut(attr_id) {
            Some(Column::Categorical { dict, .. }) => Ok(Value::Cat(dict.intern(label))),
            _ => Err(TelemetryError::KindMismatch {
                attribute: self
                    .schema
                    .get(attr_id)
                    .map(|meta| meta.name.clone())
                    .unwrap_or_else(|| format!("<attr {attr_id}>")),
                expected: "categorical",
            }),
        }
    }

    /// Numeric column as a slice; `None` for categorical or out-of-range
    /// attributes. The columnar kernels' preferred numeric accessor.
    pub fn numeric(&self, attr_id: usize) -> Option<&[f64]> {
        match self.columns.get(attr_id) {
            Some(Column::Numeric(v)) => Some(v),
            _ => None,
        }
    }

    /// Typed view of one column — the entry point of the columnar API.
    /// Out-of-range ids yield an empty numeric view so callers can stay
    /// panic-free without an `Option` at every kernel boundary.
    pub fn column(&self, attr_id: usize) -> ColumnView<'_> {
        match self.columns.get(attr_id) {
            Some(Column::Numeric(v)) => ColumnView::Numeric(NumericView(v)),
            Some(Column::Categorical { ids, dict }) => {
                ColumnView::Categorical(crate::view::CategoricalView { ids, dict })
            }
            None => ColumnView::Numeric(NumericView(&[])),
        }
    }

    /// Pin every column view (plus a memoized range cache) for a whole
    /// diagnosis pass. See [`ColumnarSnapshot`] for the lifetime model.
    pub fn snapshot(&self) -> ColumnarSnapshot<'_> {
        ColumnarSnapshot::new(self)
    }

    pub(crate) fn columns_internal(&self) -> &[Column] {
        &self.columns
    }

    /// Categorical column as `(ids, dictionary)`.
    pub fn categorical(&self, attr_id: usize) -> Result<(&[u32], &Dictionary)> {
        match &self.columns[attr_id] {
            Column::Categorical { ids, dict } => Ok((ids, dict)),
            Column::Numeric(_) => Err(TelemetryError::KindMismatch {
                attribute: self.schema.attr(attr_id).name.clone(),
                expected: "categorical",
            }),
        }
    }

    /// Single scalar at `(row, attr_id)`.
    #[deprecated(
        since = "0.9.0",
        note = "per-cell access pays an enum dispatch per row; take `Dataset::column` \
                or a `ColumnarSnapshot` and scan the slice (see README migration note)"
    )]
    pub fn value(&self, row: usize, attr_id: usize) -> Value {
        match &self.columns[attr_id] {
            Column::Numeric(v) => Value::Num(v[row]),
            Column::Categorical { ids, .. } => Value::Cat(ids[row]),
        }
    }

    /// Mutable access to a numeric column (used by noise injection).
    pub fn numeric_mut(&mut self, attr_id: usize) -> Result<&mut [f64]> {
        match &mut self.columns[attr_id] {
            Column::Numeric(v) => Ok(v),
            Column::Categorical { .. } => Err(TelemetryError::KindMismatch {
                attribute: self.schema.attr(attr_id).name.clone(),
                expected: "numeric",
            }),
        }
    }

    /// Convenience: numeric column by name.
    pub fn numeric_by_name(&self, name: &str) -> Result<&[f64]> {
        let attr_id = self.schema.require(name)?;
        self.numeric(attr_id).ok_or_else(|| TelemetryError::KindMismatch {
            attribute: self.schema.attr(attr_id).name.clone(),
            expected: "numeric",
        })
    }

    /// `(min, max)` of a numeric attribute over **all** rows, ignoring NaNs.
    ///
    /// Returns an error for categorical attributes and for columns without
    /// a single finite value; the partition space of an attribute (paper
    /// §4.1) spans exactly this range. The fold is
    /// [`NumericView::finite_range`], shared with the snapshot cache.
    pub fn numeric_range(&self, attr_id: usize) -> Result<(f64, f64)> {
        let col = self.numeric(attr_id).ok_or_else(|| TelemetryError::KindMismatch {
            attribute: self.schema.attr(attr_id).name.clone(),
            expected: "numeric",
        })?;
        NumericView(col).finite_range().ok_or(TelemetryError::Empty("numeric column"))
    }

    /// Rows whose timestamp falls in `[lo, hi]`, as a [`Region`].
    ///
    /// This is how ground-truth anomaly windows survive telemetry corruption:
    /// row *indices* shift when rows are dropped or duplicated, but the wall
    /// clock does not, so experiments map their known anomaly intervals back
    /// onto a degraded dataset by time rather than by index. Non-finite
    /// timestamps never match.
    pub fn rows_in_time_range(&self, lo: f64, hi: f64) -> Region {
        let indices: Vec<usize> = self
            .timestamps
            .iter()
            .enumerate()
            .filter(|(_, &t)| t.is_finite() && t >= lo && t <= hi)
            .map(|(i, _)| i)
            .collect();
        Region::from_indices(indices)
    }

    /// New dataset containing only the rows in `region`, in order.
    pub fn select(&self, region: &Region) -> Result<Dataset> {
        if let Some(&max) = region.indices().last() {
            if max >= self.n_rows() {
                return Err(TelemetryError::RowOutOfBounds { index: max, len: self.n_rows() });
            }
        }
        let mut out = Dataset::new(self.schema.clone());
        // Preserve dictionaries verbatim so category ids stay comparable
        // across selections of the same dataset.
        for (id, col) in self.columns.iter().enumerate() {
            if let Column::Categorical { dict, .. } = col {
                if let Column::Categorical { dict: d, .. } = &mut out.columns[id] {
                    *d = dict.clone();
                }
            }
        }
        for &row in region.indices() {
            // Ingestion-side row materialization: per-cell access is fine
            // off the diagnosis hot path.
            #[allow(deprecated)]
            let values: Vec<Value> = (0..self.schema.len()).map(|a| self.value(row, a)).collect();
            out.push_row(self.timestamps[row], &values)?;
        }
        Ok(out)
    }

    /// Append all rows of `other`; schemas must have identical layout.
    ///
    /// Categorical values are re-interned by label so the two datasets need
    /// not share dictionary id assignments.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<()> {
        if !self.schema.same_layout(&other.schema) {
            return Err(TelemetryError::SchemaMismatch(
                "extend_from requires identical attribute layout".into(),
            ));
        }
        for row in 0..other.n_rows() {
            let mut values = Vec::with_capacity(self.schema.len());
            for attr_id in 0..self.schema.len() {
                #[allow(deprecated)]
                let v = match other.value(row, attr_id) {
                    Value::Num(x) => Value::Num(x),
                    Value::Cat(c) => {
                        let (_, dict) = other.categorical(attr_id)?;
                        let label = dict.label(c).unwrap_or("<unknown>").to_string();
                        self.intern(attr_id, &label)?
                    }
                };
                values.push(v);
            }
            self.push_row(other.timestamps[row], &values)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_attrs([AttributeMeta::numeric("cpu"), AttributeMeta::categorical("job")])
            .unwrap()
    }

    fn sample() -> Dataset {
        let mut d = Dataset::new(schema());
        let idle = d.intern(1, "idle").unwrap();
        let busy = d.intern(1, "busy").unwrap();
        d.push_row(0.0, &[Value::Num(10.0), idle]).unwrap();
        d.push_row(1.0, &[Value::Num(20.0), busy]).unwrap();
        d.push_row(2.0, &[Value::Num(30.0), idle]).unwrap();
        d
    }

    #[test]
    fn push_and_access() {
        let d = sample();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.numeric(0).unwrap(), &[10.0, 20.0, 30.0]);
        let (ids, dict) = d.categorical(1).unwrap();
        assert_eq!(ids, &[0, 1, 0]);
        assert_eq!(dict.label(1), Some("busy"));
        #[allow(deprecated)]
        {
            assert_eq!(d.value(1, 0), Value::Num(20.0));
            assert_eq!(d.value(1, 1), Value::Cat(1));
        }
        assert_eq!(d.timestamps(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn arity_and_kind_checks() {
        let mut d = Dataset::new(schema());
        assert!(matches!(
            d.push_row(0.0, &[Value::Num(1.0)]),
            Err(TelemetryError::ArityMismatch { expected: 2, found: 1 })
        ));
        assert!(d.push_row(0.0, &[Value::Cat(0), Value::Cat(0)]).is_err());
        assert!(d.numeric(1).is_none());
        assert!(d.categorical(0).is_err());
        assert!(d.intern(0, "x").is_err());
    }

    #[test]
    fn numeric_range_ignores_nan() {
        let mut d = Dataset::new(Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap());
        for v in [f64::NAN, 5.0, -1.0, 3.0] {
            d.push_row(0.0, &[Value::Num(v)]).unwrap();
        }
        assert_eq!(d.numeric_range(0).unwrap(), (-1.0, 5.0));
    }

    #[test]
    fn numeric_range_empty_errors() {
        let d = Dataset::new(Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap());
        assert!(d.numeric_range(0).is_err());
    }

    #[test]
    fn select_keeps_dictionary() {
        let d = sample();
        let r = Region::from_indices([1, 2]);
        let s = d.select(&r).unwrap();
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.numeric(0).unwrap(), &[20.0, 30.0]);
        let (ids, dict) = s.categorical(1).unwrap();
        assert_eq!(ids, &[1, 0]);
        assert_eq!(dict.label(1), Some("busy"));
        assert_eq!(s.timestamps(), &[1.0, 2.0]);
    }

    #[test]
    fn select_out_of_bounds() {
        let d = sample();
        assert!(d.select(&Region::from_indices([5])).is_err());
    }

    #[test]
    fn extend_from_reinterns_labels() {
        let mut a = sample();
        let mut b = Dataset::new(schema());
        // In `b`, "backup" gets id 0 — must map to a fresh id in `a`.
        let backup = b.intern(1, "backup").unwrap();
        b.push_row(9.0, &[Value::Num(1.0), backup]).unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.n_rows(), 4);
        let (ids, dict) = a.categorical(1).unwrap();
        assert_eq!(dict.label(ids[3]).unwrap(), "backup");
    }
}
