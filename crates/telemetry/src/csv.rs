//! dbseer-style CSV round-trip for [`Dataset`]s.
//!
//! The on-disk layout mirrors what DBSeer hands to DBSherlock (paper §2.1):
//! one row per one-second interval, a leading `timestamp` column, then one
//! column per attribute. Headers carry the attribute kind as a suffix so a
//! file round-trips without a sidecar schema:
//!
//! ```text
//! timestamp,os_cpu_usage:num,active_external_job:cat
//! 0,12.5,idle
//! 1,13.1,backup
//! ```
//!
//! Fields containing commas, quotes, or newlines are quoted RFC-4180 style.

use std::fmt::Write as _;

use crate::attribute::{AttributeKind, AttributeMeta, Schema};
use crate::dataset::Dataset;
use crate::error::{IngestWarning, Result, TelemetryError};
use crate::value::Value;

/// Serialize a dataset to CSV text.
pub fn to_csv(dataset: &Dataset) -> String {
    let mut out = String::new();
    out.push_str("timestamp");
    for (_, attr) in dataset.schema().iter() {
        out.push(',');
        write_field(&mut out, &format!("{}:{}", attr.name, attr.kind.tag()));
    }
    out.push('\n');
    for row in 0..dataset.n_rows() {
        let _ = write!(out, "{}", fmt_num(dataset.timestamps()[row]));
        for (attr_id, attr) in dataset.schema().iter() {
            out.push(',');
            // Serialization is row-oriented by nature; per-cell access is
            // the right shape here, not in the diagnosis kernels.
            #[allow(deprecated)]
            match dataset.value(row, attr_id) {
                Value::Num(v) => {
                    let _ = write!(out, "{}", fmt_num(v));
                }
                Value::Cat(c) => {
                    let label = dataset
                        .categorical(attr_id)
                        .ok()
                        .and_then(|(_, dict)| dict.label(c))
                        .unwrap_or("<unknown>");
                    write_field(&mut out, label);
                    let _ = &attr;
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Parse CSV text produced by [`to_csv`] back into a dataset.
pub fn from_csv(text: &str) -> Result<Dataset> {
    let mut lines = text.lines().enumerate();
    let (_, header) =
        lines.next().ok_or(TelemetryError::Parse { line: 1, message: "empty input".into() })?;
    let fields = split_line(header, 1)?;
    if fields.first().map(String::as_str) != Some("timestamp") {
        return Err(TelemetryError::Parse {
            line: 1,
            message: "first column must be `timestamp`".into(),
        });
    }
    let mut schema = Schema::new();
    for field in &fields[1..] {
        let (name, tag) = field.rsplit_once(':').ok_or_else(|| TelemetryError::Parse {
            line: 1,
            message: format!("header field {field:?} missing `:num`/`:cat` tag"),
        })?;
        let kind = AttributeKind::from_tag(tag).ok_or_else(|| TelemetryError::Parse {
            line: 1,
            message: format!("unknown kind tag {tag:?}"),
        })?;
        schema.push(AttributeMeta { name: name.to_string(), kind })?;
    }
    let mut dataset = Dataset::new(schema);
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(line, line_no)?;
        if fields.len() != dataset.schema().len() + 1 {
            return Err(TelemetryError::ArityMismatch {
                expected: dataset.schema().len() + 1,
                found: fields.len(),
            });
        }
        let timestamp = parse_num(&fields[0], line_no)?;
        let mut values = Vec::with_capacity(dataset.schema().len());
        for (attr_id, field) in fields[1..].iter().enumerate() {
            let value = match dataset.schema().attr(attr_id).kind {
                AttributeKind::Numeric => Value::Num(parse_num(field, line_no)?),
                AttributeKind::Categorical => dataset.intern(attr_id, field)?,
            };
            values.push(value);
        }
        dataset.push_row(timestamp, &values)?;
    }
    Ok(dataset)
}

/// Parse CSV text into a dataset, surviving degraded input.
///
/// Where [`from_csv`] aborts with a hard [`TelemetryError::Parse`] on the
/// first malformed byte, this lossy reader applies a per-row skip/repair
/// policy and reports everything it did as [`IngestWarning`]s:
///
/// * rows with too few/too many fields are padded (numeric cells with NaN,
///   categorical cells with `"<missing>"`) or truncated;
/// * unparseable numeric cells are repaired to NaN;
/// * rows whose timestamp cannot be parsed, and fragments from a file
///   truncated mid-row (unterminated quote on the final line), are skipped;
/// * header fields missing a `:num`/`:cat` kind tag are assumed numeric, and
///   duplicated attribute names are de-duplicated with a suffix — both
///   reported as [`IngestWarning::HeaderDrift`];
/// * non-finite numeric cells (`NaN`, `inf`) are kept but reported;
/// * non-monotonic timestamps are kept (see
///   [`repair_alignment`](crate::repair_alignment)) but reported.
///
/// Only a header too damaged to yield any schema (missing `timestamp`
/// column, empty input) is a hard error. The returned dataset never has more
/// rows than the input had data lines.
pub fn from_csv_lossy(text: &str) -> Result<(Dataset, Vec<IngestWarning>)> {
    let mut warnings = Vec::new();
    let mut lines = text.lines().enumerate();
    let (_, header) =
        lines.next().ok_or(TelemetryError::Parse { line: 1, message: "empty input".into() })?;
    let schema = parse_header_lossy(header, &mut warnings)?;
    let mut dataset = Dataset::new(schema);
    let mut last_timestamp = f64::NEG_INFINITY;
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let Some((timestamp, cells)) =
            parse_line_lossy(dataset.schema(), line, line_no, &mut warnings)
        else {
            continue;
        };
        if timestamp <= last_timestamp {
            warnings.push(IngestWarning::NonMonotonicTimestamp { line: line_no, timestamp });
        }
        last_timestamp = last_timestamp.max(timestamp);
        if let Err(e) = push_raw_row(&mut dataset, timestamp, &cells) {
            warnings.push(IngestWarning::SkippedRow { line: line_no, reason: e.to_string() });
        }
    }
    Ok((dataset, warnings))
}

/// A parsed-but-not-yet-interned cell from [`parse_line_lossy`].
///
/// Categorical labels stay as owned strings so a row can be parsed without
/// mutable access to any [`Dataset`] — the streaming daemon buffers rows in
/// per-tenant rings long before a dataset exists to intern into.
#[derive(Debug, Clone, PartialEq)]
pub enum RawCell {
    /// A numeric cell (possibly NaN after a repair).
    Num(f64),
    /// A categorical label, not yet interned.
    Label(String),
}

/// Parse a CSV header line into a [`Schema`] with the lossy repair policy
/// (missing/unknown kind tags assumed numeric, duplicate names renamed —
/// both reported as [`IngestWarning::HeaderDrift`]). Only a header too
/// damaged to yield any schema is a hard error.
pub fn parse_header_lossy(header: &str, warnings: &mut Vec<IngestWarning>) -> Result<Schema> {
    let header_fields = match split_line(header, 1) {
        Ok(fields) => fields,
        Err(_) => {
            return Err(TelemetryError::Parse {
                line: 1,
                message: "header is unreadable (unterminated quote)".into(),
            })
        }
    };
    if header_fields.first().map(String::as_str) != Some("timestamp") {
        return Err(TelemetryError::Parse {
            line: 1,
            message: "first column must be `timestamp`".into(),
        });
    }
    let mut schema = Schema::new();
    for field in header_fields.iter().skip(1) {
        let (name, kind) = match field.rsplit_once(':') {
            Some((name, tag)) => match AttributeKind::from_tag(tag) {
                Some(kind) => (name.to_string(), kind),
                None => {
                    warnings.push(IngestWarning::HeaderDrift {
                        detail: format!("unknown kind tag in {field:?}; assuming numeric"),
                    });
                    (field.to_string(), AttributeKind::Numeric)
                }
            },
            None => {
                warnings.push(IngestWarning::HeaderDrift {
                    detail: format!(
                        "header field {field:?} missing `:num`/`:cat` tag; assuming numeric"
                    ),
                });
                (field.to_string(), AttributeKind::Numeric)
            }
        };
        let mut attempt = name.clone();
        let mut suffix = 1usize;
        while schema.push(AttributeMeta { name: attempt.clone(), kind }).is_err() {
            suffix += 1;
            attempt = format!("{name}_dup{suffix}");
            if suffix == 2 {
                warnings.push(IngestWarning::HeaderDrift {
                    detail: format!("duplicate attribute {name:?}; renamed to {attempt:?}"),
                });
            }
        }
    }
    Ok(schema)
}

/// Parse one data line against `schema` with the lossy repair policy:
/// arity padded/truncated, bad numeric cells repaired to NaN, empty
/// categorical cells filled with `"<missing>"` — every repair reported.
/// Returns `None` (with a warning) for lines that cannot yield a row: a
/// fragment cut mid-quote or an unusable timestamp.
///
/// Cross-line policies stay with the caller: monotonic-timestamp tracking
/// and the dictionary-capacity intern check happen where the line stream's
/// state lives (see [`from_csv_lossy`] and [`push_raw_row`]).
pub fn parse_line_lossy(
    schema: &Schema,
    line: &str,
    line_no: usize,
    warnings: &mut Vec<IngestWarning>,
) -> Option<(f64, Vec<RawCell>)> {
    let mut fields = match split_line(line, line_no) {
        Ok(fields) => fields,
        Err(_) => {
            // An unterminated quote usually means the stream was cut
            // mid-row; drop the fragment.
            warnings.push(IngestWarning::TruncatedInput { line: line_no });
            return None;
        }
    };
    let n_attrs = schema.len();
    let expected = n_attrs + 1;
    if fields.len() != expected {
        warnings.push(IngestWarning::ArityRepair { line: line_no, expected, found: fields.len() });
        if fields.len() < expected {
            fields.resize(expected, String::new());
        } else {
            fields.truncate(expected);
        }
    }
    let ts_text = fields.first().map(String::as_str).unwrap_or("");
    let timestamp = match parse_num(ts_text, line_no) {
        Ok(t) if t.is_finite() => t,
        _ => {
            warnings.push(IngestWarning::SkippedRow {
                line: line_no,
                reason: format!("unusable timestamp {ts_text:?}"),
            });
            return None;
        }
    };
    let mut cells = Vec::with_capacity(n_attrs);
    for (attr_id, field) in fields.iter().skip(1).enumerate() {
        // Arity repair capped the loop at n_attrs, so the id is in range.
        let Some(meta) = schema.get(attr_id) else { break };
        let attr_name = || meta.name.clone();
        let cell = match meta.kind {
            AttributeKind::Numeric => match parse_num(field, line_no) {
                Ok(v) => {
                    if !v.is_finite() {
                        warnings.push(IngestWarning::NonFiniteCell {
                            line: line_no,
                            attribute: attr_name(),
                        });
                    }
                    RawCell::Num(v)
                }
                Err(_) => {
                    warnings.push(IngestWarning::RepairedCell {
                        line: line_no,
                        attribute: attr_name(),
                        reason: if field.trim().is_empty() {
                            "empty cell".to_string()
                        } else {
                            format!("invalid number {field:?}")
                        },
                    });
                    RawCell::Num(f64::NAN)
                }
            },
            AttributeKind::Categorical => {
                if field.is_empty() {
                    warnings.push(IngestWarning::RepairedCell {
                        line: line_no,
                        attribute: attr_name(),
                        reason: "empty cell".to_string(),
                    });
                    RawCell::Label("<missing>".to_string())
                } else {
                    RawCell::Label(field.clone())
                }
            }
        };
        cells.push(cell);
    }
    Some((timestamp, cells))
}

/// Append a [`parse_line_lossy`] row to `dataset`, interning categorical
/// labels. The cells must match the dataset's schema arity and kinds.
pub fn push_raw_row(dataset: &mut Dataset, timestamp: f64, cells: &[RawCell]) -> Result<()> {
    let mut values = Vec::with_capacity(cells.len());
    for (attr_id, cell) in cells.iter().enumerate() {
        let value = match cell {
            RawCell::Num(v) => Value::Num(*v),
            RawCell::Label(label) => dataset.intern(attr_id, label)?,
        };
        values.push(value);
    }
    dataset.push_row(timestamp, &values)
}

/// Format a float compactly: integers lose the trailing `.0`.
fn fmt_num(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn parse_num(field: &str, line: usize) -> Result<f64> {
    field
        .trim()
        .parse::<f64>()
        .map_err(|_| TelemetryError::Parse { line, message: format!("invalid number {field:?}") })
}

fn write_field(out: &mut String, field: &str) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Split one CSV line into unescaped fields.
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        match (in_quotes, ch) {
            (false, ',') => fields.push(std::mem::take(&mut current)),
            (false, '"') if current.is_empty() => in_quotes = true,
            (false, c) => current.push(c),
            (true, '"') => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (true, c) => current.push(c),
        }
    }
    if in_quotes {
        return Err(TelemetryError::Parse {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(current);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeMeta;

    fn sample() -> Dataset {
        let schema =
            Schema::from_attrs([AttributeMeta::numeric("cpu"), AttributeMeta::categorical("job")])
                .unwrap();
        let mut d = Dataset::new(schema);
        let idle = d.intern(1, "idle").unwrap();
        let weird = d.intern(1, "a,\"b\"").unwrap();
        d.push_row(0.0, &[Value::Num(12.5), idle]).unwrap();
        d.push_row(1.0, &[Value::Num(-3.0), weird]).unwrap();
        d
    }

    #[test]
    fn round_trip_preserves_everything() {
        let d = sample();
        let text = to_csv(&d);
        let back = from_csv(&text).unwrap();
        assert!(back.schema().same_layout(d.schema()));
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.numeric(0).unwrap(), d.numeric(0).unwrap());
        assert_eq!(back.timestamps(), d.timestamps());
        let (ids, dict) = back.categorical(1).unwrap();
        assert_eq!(dict.label(ids[1]).unwrap(), "a,\"b\"");
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        let text = to_csv(&sample());
        let first_data_line = text.lines().nth(1).unwrap();
        assert!(first_data_line.starts_with("0,12.5,"));
    }

    #[test]
    fn rejects_missing_timestamp_header() {
        assert!(from_csv("cpu:num\n1.0\n").is_err());
    }

    #[test]
    fn rejects_bad_kind_tag() {
        assert!(from_csv("timestamp,cpu:wat\n0,1\n").is_err());
    }

    #[test]
    fn rejects_bad_number() {
        let err = from_csv("timestamp,cpu:num\n0,hello\n").unwrap_err();
        assert!(err.to_string().contains("hello"));
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(matches!(
            from_csv("timestamp,cpu:num\n0,1,2\n"),
            Err(TelemetryError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let d = from_csv("timestamp,cpu:num\n0,1\n\n1,2\n").unwrap();
        assert_eq!(d.n_rows(), 2);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(from_csv("timestamp,job:cat\n0,\"oops\n").is_err());
    }

    #[test]
    fn lossy_matches_strict_on_clean_input() {
        let d = sample();
        let text = to_csv(&d);
        let (back, warnings) = from_csv_lossy(&text).unwrap();
        assert!(warnings.is_empty(), "unexpected warnings: {warnings:?}");
        assert!(back.schema().same_layout(d.schema()));
        assert_eq!(back.numeric(0).unwrap(), d.numeric(0).unwrap());
        assert_eq!(back.timestamps(), d.timestamps());
    }

    #[test]
    fn lossy_repairs_bad_numbers_to_nan() {
        let (d, warnings) = from_csv_lossy("timestamp,cpu:num\n0,hello\n1,2\n").unwrap();
        assert_eq!(d.n_rows(), 2);
        assert!(d.numeric(0).unwrap()[0].is_nan());
        assert!(warnings.iter().any(|w| matches!(w, IngestWarning::RepairedCell { line: 2, .. })));
    }

    #[test]
    fn lossy_pads_and_truncates_arity() {
        let (d, warnings) = from_csv_lossy("timestamp,cpu:num,io:num\n0,1\n1,2,3,4\n").unwrap();
        assert_eq!(d.n_rows(), 2);
        // Short row padded: missing io cell becomes NaN.
        assert!(d.numeric(1).unwrap()[0].is_nan());
        // Long row truncated.
        assert_eq!(d.numeric(0).unwrap()[1], 2.0);
        assert_eq!(
            warnings.iter().filter(|w| matches!(w, IngestWarning::ArityRepair { .. })).count(),
            2
        );
    }

    #[test]
    fn lossy_skips_rows_with_bad_timestamps() {
        let (d, warnings) = from_csv_lossy("timestamp,cpu:num\nxyz,1\n1,2\n").unwrap();
        assert_eq!(d.n_rows(), 1);
        assert!(warnings.iter().any(|w| matches!(w, IngestWarning::SkippedRow { line: 2, .. })));
    }

    #[test]
    fn lossy_tolerates_untagged_header_fields() {
        let (d, warnings) = from_csv_lossy("timestamp,cpu\n0,1\n").unwrap();
        assert_eq!(d.n_rows(), 1);
        assert_eq!(d.numeric(0).unwrap(), &[1.0]);
        assert!(warnings.iter().any(|w| matches!(w, IngestWarning::HeaderDrift { .. })));
    }

    #[test]
    fn lossy_survives_truncated_tail() {
        let (d, warnings) = from_csv_lossy("timestamp,job:cat\n0,a\n1,\"oo").unwrap();
        assert_eq!(d.n_rows(), 1);
        assert!(warnings.iter().any(|w| matches!(w, IngestWarning::TruncatedInput { line: 3 })));
    }

    #[test]
    fn lossy_flags_non_monotonic_timestamps_but_keeps_rows() {
        let (d, warnings) = from_csv_lossy("timestamp,cpu:num\n5,1\n2,2\n").unwrap();
        assert_eq!(d.n_rows(), 2);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, IngestWarning::NonMonotonicTimestamp { line: 3, .. })));
    }

    #[test]
    fn lossy_interns_missing_categorical_cells() {
        let (d, warnings) = from_csv_lossy("timestamp,job:cat\n0,\n1,work\n").unwrap();
        let (ids, dict) = d.categorical(0).unwrap();
        assert_eq!(dict.label(ids[0]).unwrap(), "<missing>");
        assert!(warnings.iter().any(|w| matches!(w, IngestWarning::RepairedCell { .. })));
    }

    #[test]
    fn lossy_still_rejects_hopeless_input() {
        assert!(from_csv_lossy("").is_err());
        assert!(from_csv_lossy("cpu:num\n1\n").is_err());
    }

    #[test]
    fn lossy_renames_duplicate_columns() {
        let (d, warnings) = from_csv_lossy("timestamp,cpu:num,cpu:num\n0,1,2\n").unwrap();
        assert_eq!(d.schema().len(), 2);
        assert!(warnings.iter().any(|w| matches!(w, IngestWarning::HeaderDrift { .. })));
        assert_eq!(d.numeric(1).unwrap(), &[2.0]);
    }
}
