//! dbseer-style CSV round-trip for [`Dataset`]s.
//!
//! The on-disk layout mirrors what DBSeer hands to DBSherlock (paper §2.1):
//! one row per one-second interval, a leading `timestamp` column, then one
//! column per attribute. Headers carry the attribute kind as a suffix so a
//! file round-trips without a sidecar schema:
//!
//! ```text
//! timestamp,os_cpu_usage:num,active_external_job:cat
//! 0,12.5,idle
//! 1,13.1,backup
//! ```
//!
//! Fields containing commas, quotes, or newlines are quoted RFC-4180 style.

use std::fmt::Write as _;

use crate::attribute::{AttributeKind, AttributeMeta, Schema};
use crate::dataset::Dataset;
use crate::error::{Result, TelemetryError};
use crate::value::Value;

/// Serialize a dataset to CSV text.
pub fn to_csv(dataset: &Dataset) -> String {
    let mut out = String::new();
    out.push_str("timestamp");
    for (_, attr) in dataset.schema().iter() {
        out.push(',');
        write_field(&mut out, &format!("{}:{}", attr.name, attr.kind.tag()));
    }
    out.push('\n');
    for row in 0..dataset.n_rows() {
        let _ = write!(out, "{}", fmt_num(dataset.timestamps()[row]));
        for (attr_id, attr) in dataset.schema().iter() {
            out.push(',');
            match dataset.value(row, attr_id) {
                Value::Num(v) => {
                    let _ = write!(out, "{}", fmt_num(v));
                }
                Value::Cat(c) => {
                    let (_, dict) = dataset
                        .categorical(attr_id)
                        .expect("schema says categorical");
                    write_field(&mut out, dict.label(c).unwrap_or("<unknown>"));
                    let _ = &attr;
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Parse CSV text produced by [`to_csv`] back into a dataset.
pub fn from_csv(text: &str) -> Result<Dataset> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or(TelemetryError::Parse { line: 1, message: "empty input".into() })?;
    let fields = split_line(header, 1)?;
    if fields.first().map(String::as_str) != Some("timestamp") {
        return Err(TelemetryError::Parse {
            line: 1,
            message: "first column must be `timestamp`".into(),
        });
    }
    let mut schema = Schema::new();
    for field in &fields[1..] {
        let (name, tag) = field.rsplit_once(':').ok_or_else(|| TelemetryError::Parse {
            line: 1,
            message: format!("header field {field:?} missing `:num`/`:cat` tag"),
        })?;
        let kind = AttributeKind::from_tag(tag).ok_or_else(|| TelemetryError::Parse {
            line: 1,
            message: format!("unknown kind tag {tag:?}"),
        })?;
        schema.push(AttributeMeta { name: name.to_string(), kind })?;
    }
    let mut dataset = Dataset::new(schema);
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(line, line_no)?;
        if fields.len() != dataset.schema().len() + 1 {
            return Err(TelemetryError::ArityMismatch {
                expected: dataset.schema().len() + 1,
                found: fields.len(),
            });
        }
        let timestamp = parse_num(&fields[0], line_no)?;
        let mut values = Vec::with_capacity(dataset.schema().len());
        for (attr_id, field) in fields[1..].iter().enumerate() {
            let value = match dataset.schema().attr(attr_id).kind {
                AttributeKind::Numeric => Value::Num(parse_num(field, line_no)?),
                AttributeKind::Categorical => dataset.intern(attr_id, field)?,
            };
            values.push(value);
        }
        dataset.push_row(timestamp, &values)?;
    }
    Ok(dataset)
}

/// Format a float compactly: integers lose the trailing `.0`.
fn fmt_num(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn parse_num(field: &str, line: usize) -> Result<f64> {
    field.trim().parse::<f64>().map_err(|_| TelemetryError::Parse {
        line,
        message: format!("invalid number {field:?}"),
    })
}

fn write_field(out: &mut String, field: &str) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Split one CSV line into unescaped fields.
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        match (in_quotes, ch) {
            (false, ',') => fields.push(std::mem::take(&mut current)),
            (false, '"') if current.is_empty() => in_quotes = true,
            (false, c) => current.push(c),
            (true, '"') => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (true, c) => current.push(c),
        }
    }
    if in_quotes {
        return Err(TelemetryError::Parse {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(current);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeMeta;

    fn sample() -> Dataset {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("cpu"),
            AttributeMeta::categorical("job"),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        let idle = d.intern(1, "idle").unwrap();
        let weird = d.intern(1, "a,\"b\"").unwrap();
        d.push_row(0.0, &[Value::Num(12.5), idle]).unwrap();
        d.push_row(1.0, &[Value::Num(-3.0), weird]).unwrap();
        d
    }

    #[test]
    fn round_trip_preserves_everything() {
        let d = sample();
        let text = to_csv(&d);
        let back = from_csv(&text).unwrap();
        assert!(back.schema().same_layout(d.schema()));
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.numeric(0).unwrap(), d.numeric(0).unwrap());
        assert_eq!(back.timestamps(), d.timestamps());
        let (ids, dict) = back.categorical(1).unwrap();
        assert_eq!(dict.label(ids[1]).unwrap(), "a,\"b\"");
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        let text = to_csv(&sample());
        let first_data_line = text.lines().nth(1).unwrap();
        assert!(first_data_line.starts_with("0,12.5,"));
    }

    #[test]
    fn rejects_missing_timestamp_header() {
        assert!(from_csv("cpu:num\n1.0\n").is_err());
    }

    #[test]
    fn rejects_bad_kind_tag() {
        assert!(from_csv("timestamp,cpu:wat\n0,1\n").is_err());
    }

    #[test]
    fn rejects_bad_number() {
        let err = from_csv("timestamp,cpu:num\n0,hello\n").unwrap_err();
        assert!(err.to_string().contains("hello"));
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(matches!(
            from_csv("timestamp,cpu:num\n0,1,2\n"),
            Err(TelemetryError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let d = from_csv("timestamp,cpu:num\n0,1\n\n1,2\n").unwrap();
        assert_eq!(d.n_rows(), 2);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(from_csv("timestamp,job:cat\n0,\"oops\n").is_err());
    }
}
