//! Aligning raw log streams into fixed-interval tuples (paper Fig. 2, step 2).
//!
//! DBSeer collects OS statistics, DBMS counters, and per-query logs at
//! slightly different cadences. Before DBSherlock can run, everything is
//! summarized into one-second buckets and joined on the bucket timestamp,
//! producing the `(Timestamp, Attr1, ..., Attrk)` matrix of §2.1. This
//! module implements that preprocessing for arbitrary streams.

use crate::attribute::{AttributeMeta, Schema};
use crate::dataset::Dataset;
use crate::error::{IngestWarning, Result, TelemetryError};
use crate::value::Value;

/// How samples falling into the same bucket are summarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Average of the samples (gauges: CPU %, queue depth).
    Mean,
    /// Sum of the samples (counters-per-bucket: bytes sent, commits).
    Sum,
    /// Last sample wins (sampled state: free pages).
    Last,
    /// Number of samples (event streams: queries started).
    Count,
    /// Maximum sample (peaks: p100 latency).
    Max,
}

/// A raw numeric log stream: `(time_seconds, value)` samples, not
/// necessarily sorted or regularly spaced.
#[derive(Debug, Clone)]
pub struct NumericStream {
    /// Attribute name in the aligned output.
    pub name: String,
    /// Bucket summarization policy.
    pub agg: Aggregation,
    /// Raw samples.
    pub samples: Vec<(f64, f64)>,
}

/// A raw categorical log stream; the last sample in a bucket wins.
#[derive(Debug, Clone)]
pub struct CategoricalStream {
    /// Attribute name in the aligned output.
    pub name: String,
    /// Raw samples.
    pub samples: Vec<(f64, String)>,
}

/// Options controlling alignment.
#[derive(Debug, Clone)]
pub struct AlignOptions {
    /// Bucket width in seconds (the paper uses 1.0).
    pub interval: f64,
    /// Value used for numeric buckets with no samples and no prior value.
    pub numeric_fill: f64,
    /// Label used for categorical buckets with no samples and no prior value.
    pub categorical_fill: String,
    /// When true, empty buckets repeat the previous bucket's value
    /// (carry-forward) instead of using the fill value.
    pub carry_forward: bool,
}

impl Default for AlignOptions {
    fn default() -> Self {
        AlignOptions {
            interval: 1.0,
            numeric_fill: 0.0,
            categorical_fill: "<none>".to_string(),
            carry_forward: true,
        }
    }
}

/// Align raw streams into a [`Dataset`] of fixed-interval tuples.
///
/// The output covers `floor(min_t / interval) .. ceil((max_t + ε) / interval)`
/// buckets over the union of all stream time ranges. Returns an error when
/// every stream is empty or a name repeats.
pub fn align(
    numeric: &[NumericStream],
    categorical: &[CategoricalStream],
    options: &AlignOptions,
) -> Result<Dataset> {
    if options.interval <= 0.0 {
        return Err(TelemetryError::Parse { line: 0, message: "interval must be positive".into() });
    }
    let times = numeric
        .iter()
        .flat_map(|s| s.samples.iter().map(|&(t, _)| t))
        .chain(categorical.iter().flat_map(|s| s.samples.iter().map(|&(t, _)| t)));
    let (mut min_t, mut max_t) = (f64::INFINITY, f64::NEG_INFINITY);
    for t in times {
        min_t = min_t.min(t);
        max_t = max_t.max(t);
    }
    if !min_t.is_finite() {
        return Err(TelemetryError::Empty("log streams"));
    }
    let first_bucket = (min_t / options.interval).floor() as i64;
    let last_bucket = (max_t / options.interval).floor() as i64;
    let n_buckets = (last_bucket - first_bucket + 1) as usize;

    let mut schema = Schema::new();
    for s in numeric {
        schema.push(AttributeMeta::numeric(&s.name))?;
    }
    for s in categorical {
        schema.push(AttributeMeta::categorical(&s.name))?;
    }
    let mut dataset = Dataset::new(schema);

    // Bucketize each stream up front.
    let numeric_buckets: Vec<Vec<Option<f64>>> = numeric
        .iter()
        .map(|s| bucketize_numeric(s, first_bucket, n_buckets, options.interval))
        .collect();
    let categorical_buckets: Vec<Vec<Option<String>>> = categorical
        .iter()
        .map(|s| bucketize_categorical(s, first_bucket, n_buckets, options.interval))
        .collect();

    let mut last_numeric: Vec<f64> = vec![options.numeric_fill; numeric.len()];
    let mut last_categorical: Vec<String> =
        vec![options.categorical_fill.clone(); categorical.len()];
    for bucket in 0..n_buckets {
        let mut values: Vec<Value> = Vec::with_capacity(dataset.schema().len());
        for (i, buckets) in numeric_buckets.iter().enumerate() {
            let v = match buckets[bucket] {
                Some(v) => {
                    last_numeric[i] = v;
                    v
                }
                None if options.carry_forward => last_numeric[i],
                None => options.numeric_fill,
            };
            values.push(Value::Num(v));
        }
        for (i, buckets) in categorical_buckets.iter().enumerate() {
            let label = match &buckets[bucket] {
                Some(l) => {
                    last_categorical[i] = l.clone();
                    l.clone()
                }
                None if options.carry_forward => last_categorical[i].clone(),
                None => options.categorical_fill.clone(),
            };
            let attr_id = numeric.len() + i;
            values.push(dataset.intern(attr_id, &label)?);
        }
        let timestamp = (first_bucket + bucket as i64) as f64 * options.interval;
        dataset.push_row(timestamp, &values)?;
    }
    Ok(dataset)
}

/// Options controlling [`repair_alignment`].
#[derive(Debug, Clone)]
pub struct RepairOptions {
    /// Expected collection interval in seconds (the paper uses 1.0). Rows
    /// are snapped to this grid and rows landing on the same grid point are
    /// collapsed.
    pub interval: f64,
    /// When true (default), timestamps are snapped to the nearest multiple
    /// of `interval`; when false, original timestamps are preserved (only
    /// ordering and duplicates are repaired).
    pub snap_to_grid: bool,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions { interval: 1.0, snap_to_grid: true }
    }
}

/// Repair the time axis of a degraded dataset.
///
/// Corrupted collectors produce rows that are out of order (clock jitter),
/// duplicated (retried flushes), clock-skewed onto ragged timestamps, or
/// stamped with garbage. This pass restores the invariants the diagnosis
/// pipeline assumes — strictly increasing, grid-aligned timestamps — without
/// fabricating data:
///
/// 1. rows with non-finite timestamps are dropped,
/// 2. rows are stably sorted by timestamp,
/// 3. timestamps are snapped to the `interval` grid (when `snap_to_grid`),
/// 4. rows colliding on the same grid point are collapsed (first one wins).
///
/// Gaps are left as gaps; filling them in is a modeling decision that belongs
/// to [`align`] and its carry-forward policy, not to repair. Every dropped or
/// collapsed row is reported as an [`IngestWarning`] whose line number
/// follows the CSV convention (row `i` is line `i + 2`). The result may be
/// empty if every timestamp was garbage — callers must tolerate that.
pub fn repair_alignment(
    dataset: &Dataset,
    options: &RepairOptions,
) -> Result<(Dataset, Vec<IngestWarning>)> {
    if options.interval <= 0.0 {
        return Err(TelemetryError::Parse { line: 0, message: "interval must be positive".into() });
    }
    let mut warnings = Vec::new();
    let timestamps = dataset.timestamps();

    // 1. Keep only rows with usable timestamps.
    let mut keyed: Vec<(usize, f64)> = Vec::with_capacity(timestamps.len());
    for (row, &t) in timestamps.iter().enumerate() {
        if t.is_finite() {
            keyed.push((row, t));
        } else {
            warnings.push(IngestWarning::SkippedRow {
                line: row + 2,
                reason: format!("non-finite timestamp {t}"),
            });
        }
    }

    // 2. Stable sort by timestamp; report rows that were out of order.
    for pair in keyed.windows(2) {
        if pair[1].1 < pair[0].1 {
            warnings.push(IngestWarning::NonMonotonicTimestamp {
                line: pair[1].0 + 2,
                timestamp: pair[1].1,
            });
        }
    }
    keyed.sort_by(|a, b| a.1.total_cmp(&b.1));

    // 3 + 4. Snap to the grid and collapse collisions.
    let mut out = Dataset::new(dataset.schema().clone());
    let mut last_key: Option<i64> = None;
    let mut last_exact: Option<f64> = None;
    for (row, t) in keyed {
        let (snapped, collided) = if options.snap_to_grid {
            let key = (t / options.interval).round() as i64;
            let hit = last_key == Some(key);
            last_key = Some(key);
            (key as f64 * options.interval, hit)
        } else {
            let hit = last_exact == Some(t);
            last_exact = Some(t);
            (t, hit)
        };
        if collided {
            warnings.push(IngestWarning::SkippedRow {
                line: row + 2,
                reason: format!("duplicate sample for second {snapped}"),
            });
            continue;
        }
        let mut values = Vec::with_capacity(dataset.schema().len());
        for attr_id in 0..dataset.schema().len() {
            // Repair is ingestion-side: per-cell access off the hot path.
            #[allow(deprecated)]
            let v = match dataset.value(row, attr_id) {
                Value::Num(x) => Value::Num(x),
                Value::Cat(c) => {
                    let (_, dict) = dataset.categorical(attr_id)?;
                    let label = dict.label(c).unwrap_or("<unknown>").to_string();
                    out.intern(attr_id, &label)?
                }
            };
            values.push(v);
        }
        out.push_row(snapped, &values)?;
    }
    Ok((out, warnings))
}

fn bucket_of(t: f64, first_bucket: i64, interval: f64) -> usize {
    ((t / interval).floor() as i64 - first_bucket) as usize
}

fn bucketize_numeric(
    stream: &NumericStream,
    first_bucket: i64,
    n_buckets: usize,
    interval: f64,
) -> Vec<Option<f64>> {
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); n_buckets];
    for &(t, v) in &stream.samples {
        let b = bucket_of(t, first_bucket, interval);
        if b < n_buckets {
            acc[b].push(v);
        }
    }
    acc.into_iter()
        .map(|samples| {
            if samples.is_empty() {
                return match stream.agg {
                    Aggregation::Count => Some(0.0),
                    _ => None,
                };
            }
            Some(match stream.agg {
                Aggregation::Mean => samples.iter().sum::<f64>() / samples.len() as f64,
                Aggregation::Sum => samples.iter().sum(),
                Aggregation::Last => samples.last().copied().unwrap_or(f64::NAN),
                Aggregation::Count => samples.len() as f64,
                Aggregation::Max => samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            })
        })
        .collect()
}

fn bucketize_categorical(
    stream: &CategoricalStream,
    first_bucket: i64,
    n_buckets: usize,
    interval: f64,
) -> Vec<Option<String>> {
    let mut out: Vec<Option<String>> = vec![None; n_buckets];
    for (t, label) in &stream.samples {
        let b = bucket_of(*t, first_bucket, interval);
        if b < n_buckets {
            out[b] = Some(label.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(name: &str, agg: Aggregation, samples: &[(f64, f64)]) -> NumericStream {
        NumericStream { name: name.into(), agg, samples: samples.to_vec() }
    }

    #[test]
    fn aggregations_summarize_buckets() {
        let opts = AlignOptions::default();
        let d = align(
            &[
                stream("mean", Aggregation::Mean, &[(0.1, 2.0), (0.9, 4.0), (1.5, 10.0)]),
                stream("sum", Aggregation::Sum, &[(0.1, 2.0), (0.9, 4.0), (1.5, 10.0)]),
                stream("last", Aggregation::Last, &[(0.1, 2.0), (0.9, 4.0), (1.5, 10.0)]),
                stream("count", Aggregation::Count, &[(0.1, 2.0), (0.9, 4.0), (1.5, 10.0)]),
                stream("max", Aggregation::Max, &[(0.1, 2.0), (0.9, 4.0), (1.5, 10.0)]),
            ],
            &[],
            &opts,
        )
        .unwrap();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.numeric_by_name("mean").unwrap(), &[3.0, 10.0]);
        assert_eq!(d.numeric_by_name("sum").unwrap(), &[6.0, 10.0]);
        assert_eq!(d.numeric_by_name("last").unwrap(), &[4.0, 10.0]);
        assert_eq!(d.numeric_by_name("count").unwrap(), &[2.0, 1.0]);
        assert_eq!(d.numeric_by_name("max").unwrap(), &[4.0, 10.0]);
    }

    #[test]
    fn carry_forward_fills_gaps() {
        let opts = AlignOptions::default();
        let d = align(&[stream("g", Aggregation::Mean, &[(0.0, 5.0), (3.0, 9.0)])], &[], &opts)
            .unwrap();
        // Buckets 1 and 2 empty -> carry forward 5.0.
        assert_eq!(d.numeric_by_name("g").unwrap(), &[5.0, 5.0, 5.0, 9.0]);
    }

    #[test]
    fn count_streams_report_zero_for_empty_buckets() {
        let opts = AlignOptions::default();
        let d =
            align(&[stream("events", Aggregation::Count, &[(0.0, 1.0), (2.5, 1.0)])], &[], &opts)
                .unwrap();
        assert_eq!(d.numeric_by_name("events").unwrap(), &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn categorical_last_wins_and_carries() {
        let opts = AlignOptions::default();
        let d = align(
            &[stream("x", Aggregation::Mean, &[(0.0, 0.0), (2.9, 0.0)])],
            &[CategoricalStream {
                name: "job".into(),
                samples: vec![(0.2, "a".into()), (0.8, "b".into())],
            }],
            &opts,
        )
        .unwrap();
        let id = d.schema().require("job").unwrap();
        let (ids, dict) = d.categorical(id).unwrap();
        let labels: Vec<&str> = ids.iter().map(|&i| dict.label(i).unwrap()).collect();
        assert_eq!(labels, vec!["b", "b", "b"]);
    }

    #[test]
    fn timestamps_align_to_bucket_starts() {
        let opts = AlignOptions { interval: 2.0, ..AlignOptions::default() };
        let d = align(&[stream("x", Aggregation::Mean, &[(3.0, 1.0), (7.9, 2.0)])], &[], &opts)
            .unwrap();
        assert_eq!(d.timestamps(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn empty_streams_rejected() {
        assert!(align(&[], &[], &AlignOptions::default()).is_err());
        assert!(matches!(
            align(&[stream("x", Aggregation::Mean, &[])], &[], &AlignOptions::default()),
            Err(TelemetryError::Empty(_))
        ));
    }

    #[test]
    fn nonpositive_interval_rejected() {
        let opts = AlignOptions { interval: 0.0, ..AlignOptions::default() };
        assert!(align(&[stream("x", Aggregation::Mean, &[(0.0, 1.0)])], &[], &opts).is_err());
    }

    fn dataset_with_timestamps(ts: &[f64]) -> Dataset {
        let schema =
            Schema::from_attrs([AttributeMeta::numeric("v"), AttributeMeta::categorical("job")])
                .unwrap();
        let mut d = Dataset::new(schema);
        for (i, &t) in ts.iter().enumerate() {
            let job = d.intern(1, if i % 2 == 0 { "a" } else { "b" }).unwrap();
            d.push_row(t, &[Value::Num(i as f64), job]).unwrap();
        }
        d
    }

    #[test]
    fn repair_sorts_and_snaps() {
        let d = dataset_with_timestamps(&[2.4, 0.1, 1.2]);
        let (r, warnings) = repair_alignment(&d, &RepairOptions::default()).unwrap();
        assert_eq!(r.timestamps(), &[0.0, 1.0, 2.0]);
        // Values follow their rows through the sort.
        assert_eq!(r.numeric(0).unwrap(), &[1.0, 2.0, 0.0]);
        assert!(warnings.iter().any(|w| matches!(w, IngestWarning::NonMonotonicTimestamp { .. })));
    }

    #[test]
    fn repair_collapses_duplicates_first_wins() {
        let d = dataset_with_timestamps(&[0.0, 1.0, 1.1, 2.0]);
        let (r, warnings) = repair_alignment(&d, &RepairOptions::default()).unwrap();
        assert_eq!(r.timestamps(), &[0.0, 1.0, 2.0]);
        assert_eq!(r.numeric(0).unwrap(), &[0.0, 1.0, 3.0]);
        assert_eq!(
            warnings.iter().filter(|w| matches!(w, IngestWarning::SkippedRow { .. })).count(),
            1
        );
    }

    #[test]
    fn repair_drops_garbage_timestamps() {
        let d = dataset_with_timestamps(&[0.0, f64::NAN, 2.0, f64::INFINITY]);
        let (r, warnings) = repair_alignment(&d, &RepairOptions::default()).unwrap();
        assert_eq!(r.timestamps(), &[0.0, 2.0]);
        assert_eq!(warnings.len(), 2);
    }

    #[test]
    fn repair_of_all_garbage_yields_empty_dataset() {
        let d = dataset_with_timestamps(&[f64::NAN, f64::NAN]);
        let (r, _) = repair_alignment(&d, &RepairOptions::default()).unwrap();
        assert_eq!(r.n_rows(), 0);
    }

    #[test]
    fn repair_preserves_categorical_labels() {
        let d = dataset_with_timestamps(&[3.0, 1.0, 2.0]);
        let (r, _) = repair_alignment(&d, &RepairOptions::default()).unwrap();
        let (ids, dict) = r.categorical(1).unwrap();
        let labels: Vec<&str> = ids.iter().map(|&i| dict.label(i).unwrap()).collect();
        // Original rows 0/1/2 had labels a/b/a; sorted order is rows 1, 2, 0.
        assert_eq!(labels, vec!["b", "a", "a"]);
    }

    #[test]
    fn repair_without_snapping_keeps_exact_times() {
        let d = dataset_with_timestamps(&[1.5, 0.4]);
        let opts = RepairOptions { snap_to_grid: false, ..RepairOptions::default() };
        let (r, _) = repair_alignment(&d, &opts).unwrap();
        assert_eq!(r.timestamps(), &[0.4, 1.5]);
    }
}
