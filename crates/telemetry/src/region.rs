//! Row-index regions (the paper's "abnormal" and "normal" regions).
//!
//! The user of DBSherlock selects one or more time ranges of a performance
//! plot as *abnormal*; everything unselected is implicitly *normal*
//! (paper §2.2). A [`Region`] is a sorted, de-duplicated set of row indices
//! with the interval algebra the evaluation needs (complement, perturbation
//! for Appendix C, overlap scoring for Appendix E).

use serde::{Deserialize, Serialize};

/// A sorted set of row indices into a [`Dataset`](crate::dataset::Dataset).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    indices: Vec<usize>,
}

impl Region {
    /// Empty region.
    pub fn new() -> Self {
        Region::default()
    }

    /// Region covering a half-open range of rows.
    pub fn from_range(range: std::ops::Range<usize>) -> Self {
        Region { indices: range.collect() }
    }

    /// Region from arbitrary indices; sorts and de-duplicates.
    pub fn from_indices(indices: impl IntoIterator<Item = usize>) -> Self {
        let mut v: Vec<usize> = indices.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Region { indices: v }
    }

    /// Region from several half-open ranges (possibly overlapping).
    pub fn from_ranges(ranges: impl IntoIterator<Item = std::ops::Range<usize>>) -> Self {
        Region::from_indices(ranges.into_iter().flatten())
    }

    /// The sorted indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of rows in the region.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the region selects no rows.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, row: usize) -> bool {
        self.indices.binary_search(&row).is_ok()
    }

    /// All rows in `0..n` *not* in this region (the implicit normal region).
    pub fn complement(&self, n: usize) -> Region {
        let mut out = Vec::with_capacity(n.saturating_sub(self.len()));
        let mut iter = self.indices.iter().copied().peekable();
        for row in 0..n {
            if iter.peek() == Some(&row) {
                iter.next();
            } else {
                out.push(row);
            }
        }
        Region { indices: out }
    }

    /// The region restricted to rows `< len`.
    ///
    /// Lossy ingestion and alignment repair can shrink a dataset after a
    /// region was defined over it; clipping keeps index-based regions safe
    /// to evaluate against the degraded data.
    pub fn clip(&self, len: usize) -> Region {
        let cut = self.indices.partition_point(|&row| row < len);
        Region { indices: self.indices[..cut].to_vec() }
    }

    /// Union of two regions.
    pub fn union(&self, other: &Region) -> Region {
        Region::from_indices(self.indices.iter().chain(other.indices.iter()).copied())
    }

    /// Intersection of two regions.
    pub fn intersect(&self, other: &Region) -> Region {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.indices[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Region { indices: out }
    }

    /// Rows in `self` but not in `other`.
    pub fn difference(&self, other: &Region) -> Region {
        Region {
            indices: self.indices.iter().copied().filter(|row| !other.contains(*row)).collect(),
        }
    }

    /// Intersection-over-union overlap score in `[0, 1]`.
    ///
    /// Used to judge automatically detected regions against ground truth
    /// (Appendix E).
    pub fn iou(&self, other: &Region) -> f64 {
        let inter = self.intersect(other).len();
        let uni = self.union(other).len();
        if uni == 0 {
            0.0
        } else {
            inter as f64 / uni as f64
        }
    }

    /// Maximal runs of consecutive indices, as half-open ranges.
    pub fn intervals(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::new();
        let mut iter = self.indices.iter().copied();
        let Some(first) = iter.next() else { return out };
        let (mut start, mut prev) = (first, first);
        for row in iter {
            if row == prev + 1 {
                prev = row;
            } else {
                out.push(start..prev + 1);
                start = row;
                prev = row;
            }
        }
        out.push(start..prev + 1);
        out
    }

    /// Grow or shrink each contiguous interval symmetrically by `fraction`
    /// of its width, clamping to `0..n`. `fraction = 0.10` reproduces the
    /// "10% longer" input-error experiment of Appendix C; negative values
    /// shrink ("10% shorter").
    ///
    /// Shrinking never eliminates an interval entirely: at least one row
    /// (the interval midpoint) is kept.
    pub fn perturb(&self, fraction: f64, n: usize) -> Region {
        let mut ranges = Vec::new();
        for iv in self.intervals() {
            let width = (iv.end - iv.start) as f64;
            let delta = (width * fraction / 2.0).round() as isize;
            let mut start = iv.start as isize - delta;
            let mut end = iv.end as isize + delta;
            if start >= end {
                // Degenerate shrink: keep the midpoint row.
                let mid = ((iv.start + iv.end - 1) / 2) as isize;
                start = mid;
                end = mid + 1;
            }
            let start = start.clamp(0, n as isize) as usize;
            let end = end.clamp(0, n as isize) as usize;
            if start < end {
                ranges.push(start..end);
            }
        }
        Region::from_ranges(ranges)
    }

    /// A contiguous sub-region of exactly `len` rows whose start is chosen
    /// by `pick(max_start)` (caller supplies randomness; `pick` must return
    /// a value `<= max_start`). Returns the whole region when it has fewer
    /// than `len` rows. Reproduces the "two seconds of the original
    /// abnormal region" experiment of Appendix C.
    pub fn contiguous_subregion(&self, len: usize, pick: impl FnOnce(usize) -> usize) -> Region {
        if self.len() <= len {
            return self.clone();
        }
        let max_start = self.len() - len;
        let start = pick(max_start).min(max_start);
        Region { indices: self.indices[start..start + len].to_vec() }
    }
}

impl FromIterator<usize> for Region {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Region::from_indices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let r = Region::from_indices([5, 1, 3, 1]);
        assert_eq!(r.indices(), &[1, 3, 5]);
        assert_eq!(r.len(), 3);
        assert!(r.contains(3));
        assert!(!r.contains(2));
    }

    #[test]
    fn complement_covers_rest() {
        let r = Region::from_range(2..4);
        assert_eq!(r.complement(6).indices(), &[0, 1, 4, 5]);
        assert_eq!(Region::new().complement(3).indices(), &[0, 1, 2]);
    }

    #[test]
    fn set_algebra() {
        let a = Region::from_indices([1, 2, 3]);
        let b = Region::from_indices([3, 4]);
        assert_eq!(a.union(&b).indices(), &[1, 2, 3, 4]);
        assert_eq!(a.intersect(&b).indices(), &[3]);
        assert_eq!(a.difference(&b).indices(), &[1, 2]);
        assert!((a.iou(&b) - 0.25).abs() < 1e-12);
        assert_eq!(Region::new().iou(&Region::new()), 0.0);
    }

    #[test]
    fn clip_drops_out_of_range_rows() {
        let r = Region::from_indices([1, 3, 7, 9]);
        assert_eq!(r.clip(8).indices(), &[1, 3, 7]);
        assert_eq!(r.clip(100), r);
        assert!(r.clip(0).is_empty());
        assert!(r.clip(1).is_empty());
    }

    #[test]
    fn intervals_split_runs() {
        let r = Region::from_indices([0, 1, 2, 5, 7, 8]);
        assert_eq!(r.intervals(), vec![0..3, 5..6, 7..9]);
        assert!(Region::new().intervals().is_empty());
    }

    #[test]
    fn perturb_grows_and_shrinks() {
        let r = Region::from_range(40..60); // width 20
        let longer = r.perturb(0.10, 120);
        assert_eq!(longer.intervals(), vec![39..61]);
        let shorter = r.perturb(-0.10, 120);
        assert_eq!(shorter.intervals(), vec![41..59]);
    }

    #[test]
    fn perturb_clamps_at_edges() {
        let r = Region::from_range(0..10);
        let grown = r.perturb(0.5, 12);
        assert_eq!(grown.intervals(), vec![0..12]);
    }

    #[test]
    fn perturb_never_empties_interval() {
        let r = Region::from_range(10..12);
        let shrunk = r.perturb(-1.0, 100);
        assert_eq!(shrunk.len(), 1);
        assert!(r.contains(shrunk.indices()[0]));
    }

    #[test]
    fn contiguous_subregion_picks_window() {
        let r = Region::from_range(10..30);
        let sub = r.contiguous_subregion(2, |max| {
            assert_eq!(max, 18);
            5
        });
        assert_eq!(sub.indices(), &[15, 16]);
        // Too-short region returned unchanged.
        let small = Region::from_range(0..2);
        assert_eq!(small.contiguous_subregion(5, |_| 0), small);
    }
}
