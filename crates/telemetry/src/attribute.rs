//! Attribute metadata and schemas.
//!
//! DBSherlock operates on *aligned tuples* of the form
//! `(Timestamp, Attr1, ..., Attrk)` (paper, Section 2.1). Each attribute is
//! either **numeric** (OS/DBMS statistics, transaction aggregates) or
//! **categorical** (configuration values, discrete system states). The
//! algorithm treats the two kinds differently at almost every step, so the
//! kind is part of the schema rather than being inferred per-value.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{Result, TelemetryError};

/// Whether an attribute holds continuous measurements or discrete categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Continuous statistic (e.g. `os_cpu_usage`, `dbms_lock_wait_ms`).
    Numeric,
    /// Discrete category (e.g. `active_external_job`, config values).
    Categorical,
}

impl AttributeKind {
    /// Short tag used in CSV headers (`num` / `cat`).
    pub fn tag(self) -> &'static str {
        match self {
            AttributeKind::Numeric => "num",
            AttributeKind::Categorical => "cat",
        }
    }

    /// Parse a CSV-header tag back into a kind.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "num" => Some(AttributeKind::Numeric),
            "cat" => Some(AttributeKind::Categorical),
            _ => None,
        }
    }
}

/// Description of a single attribute in a telemetry schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeMeta {
    /// Unique attribute name, e.g. `"os_cpu_usage"`.
    pub name: String,
    /// Numeric or categorical.
    pub kind: AttributeKind,
}

impl AttributeMeta {
    /// Create a numeric attribute description.
    pub fn numeric(name: impl Into<String>) -> Self {
        AttributeMeta { name: name.into(), kind: AttributeKind::Numeric }
    }

    /// Create a categorical attribute description.
    pub fn categorical(name: impl Into<String>) -> Self {
        AttributeMeta { name: name.into(), kind: AttributeKind::Categorical }
    }

    /// The same attribute renamed under a `prefix.` namespace.
    ///
    /// Multi-source telemetry (one metric stream per cluster node) merges
    /// into a single aligned-tuple schema by namespacing each source:
    /// `os_cpu_usage` on node 2 becomes `node2.os_cpu_usage`.
    pub fn namespaced(&self, prefix: &str) -> Self {
        AttributeMeta { name: format!("{prefix}.{}", self.name), kind: self.kind }
    }
}

/// An ordered collection of attributes with O(1) lookup by name.
///
/// The schema intentionally does **not** include the timestamp: every
/// [`Dataset`](crate::dataset::Dataset) carries timestamps separately, one
/// per row.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<AttributeMeta>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Build a schema from attribute descriptions.
    ///
    /// Returns an error if two attributes share a name.
    pub fn from_attrs(attrs: impl IntoIterator<Item = AttributeMeta>) -> Result<Self> {
        let mut schema = Schema::new();
        for attr in attrs {
            schema.push(attr)?;
        }
        Ok(schema)
    }

    /// Append one attribute; errors on duplicate names.
    pub fn push(&mut self, attr: AttributeMeta) -> Result<usize> {
        if self.index.contains_key(&attr.name) {
            return Err(TelemetryError::DuplicateAttribute(attr.name.clone()));
        }
        let id = self.attrs.len();
        self.index.insert(attr.name.clone(), id);
        self.attrs.push(attr);
        Ok(id)
    }

    /// Number of attributes (`k` in the paper's notation).
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute metadata by positional id.
    pub fn attr(&self, id: usize) -> &AttributeMeta {
        &self.attrs[id]
    }

    /// [`attr`](Self::attr) for callers that must stay panic-free on an
    /// out-of-range id (daemon ingest, row append).
    pub fn get(&self, id: usize) -> Option<&AttributeMeta> {
        self.attrs.get(id)
    }

    /// Positional id for a name, if present.
    pub fn id_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Positional id for a name, with a descriptive error otherwise.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.id_of(name).ok_or_else(|| TelemetryError::UnknownAttribute(name.to_string()))
    }

    /// Iterate over `(id, meta)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &AttributeMeta)> {
        self.attrs.iter().enumerate()
    }

    /// Ids of all attributes of the given kind, in schema order.
    pub fn ids_of_kind(&self, kind: AttributeKind) -> Vec<usize> {
        self.iter().filter(|(_, a)| a.kind == kind).map(|(i, _)| i).collect()
    }

    /// Append every attribute of `other` under a `prefix.` namespace (see
    /// [`AttributeMeta::namespaced`]), returning the id of the first one.
    ///
    /// Errors on duplicate names, which with distinct prefixes can only
    /// happen if the same prefix is pushed twice.
    pub fn push_namespaced(&mut self, prefix: &str, other: &Schema) -> Result<usize> {
        let first = self.attrs.len();
        for (_, attr) in other.iter() {
            self.push(attr.namespaced(prefix))?;
        }
        Ok(first)
    }

    /// Rebuild the name index (needed after deserializing, since the map is
    /// skipped by serde).
    pub fn rebuild_index(&mut self) {
        self.index = self.attrs.iter().enumerate().map(|(i, a)| (a.name.clone(), i)).collect();
    }

    /// Structural equality on the attribute list (names + kinds, in order).
    pub fn same_layout(&self, other: &Schema) -> bool {
        self.attrs == other.attrs
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.same_layout(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = Schema::new();
        let a = s.push(AttributeMeta::numeric("cpu")).unwrap();
        let b = s.push(AttributeMeta::categorical("job")).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.id_of("cpu"), Some(0));
        assert_eq!(s.id_of("job"), Some(1));
        assert_eq!(s.id_of("nope"), None);
        assert_eq!(s.attr(0).kind, AttributeKind::Numeric);
        assert_eq!(s.attr(1).kind, AttributeKind::Categorical);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = Schema::new();
        s.push(AttributeMeta::numeric("x")).unwrap();
        let err = s.push(AttributeMeta::categorical("x")).unwrap_err();
        assert_eq!(err, TelemetryError::DuplicateAttribute("x".into()));
    }

    #[test]
    fn require_gives_error_with_name() {
        let s = Schema::new();
        let err = s.require("missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn ids_of_kind_filters() {
        let s = Schema::from_attrs([
            AttributeMeta::numeric("a"),
            AttributeMeta::categorical("b"),
            AttributeMeta::numeric("c"),
        ])
        .unwrap();
        assert_eq!(s.ids_of_kind(AttributeKind::Numeric), vec![0, 2]);
        assert_eq!(s.ids_of_kind(AttributeKind::Categorical), vec![1]);
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in [AttributeKind::Numeric, AttributeKind::Categorical] {
            assert_eq!(AttributeKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(AttributeKind::from_tag("bogus"), None);
    }

    #[test]
    fn namespacing_prefixes_names_and_keeps_kinds() {
        let node = Schema::from_attrs([
            AttributeMeta::numeric("os_cpu_usage"),
            AttributeMeta::categorical("checkpoint_state"),
        ])
        .unwrap();
        let mut merged = Schema::new();
        let first0 = merged.push_namespaced("node0", &node).unwrap();
        let first1 = merged.push_namespaced("node1", &node).unwrap();
        assert_eq!((first0, first1), (0, 2));
        assert_eq!(merged.id_of("node1.os_cpu_usage"), Some(2));
        assert_eq!(merged.attr(3).kind, AttributeKind::Categorical);
        assert_eq!(merged.attr(3).name, "node1.checkpoint_state");
        // Same prefix twice collides on every name.
        assert!(merged.push_namespaced("node0", &node).is_err());
    }

    #[test]
    fn same_layout_ignores_index_state() {
        let mut a = Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap();
        let b = Schema::from_attrs([AttributeMeta::numeric("x")]).unwrap();
        a.rebuild_index();
        assert_eq!(a, b);
    }
}
