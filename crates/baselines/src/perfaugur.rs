//! Re-implementation of **PerfAugur**'s anomaly-region detection (Roy,
//! König, Dvorkin, Kumar — ICDE 2015), the detection baseline of the
//! DBSherlock paper's Appendix E.
//!
//! PerfAugur finds the data region whose robust aggregate deviates most
//! from the rest. Appendix E supplies it "the overall average latency as
//! its performance indicator" and uses "their naive algorithm with the
//! original scoring function": exhaustively score every candidate window.
//! The scoring used here is the robust median-shift statistic — the
//! absolute difference between the window's median and the median of the
//! remaining data, scaled by `sqrt(len)` so longer windows with the same
//! shift score higher (a standard impact × surprise trade-off); the exact
//! constants of the original are not published in the DBSherlock paper.

use dbsherlock_telemetry::{stats, Dataset, Region};

/// Configuration for the naive window search.
#[derive(Debug, Clone)]
pub struct PerfAugurConfig {
    /// Performance indicator attribute.
    pub indicator: String,
    /// Smallest candidate window, in rows.
    pub min_window: usize,
    /// Largest candidate window as a fraction of the data (anomalies are
    /// assumed to be a minority; 0.45 keeps the search away from
    /// degenerate half-splits).
    pub max_window_fraction: f64,
}

impl Default for PerfAugurConfig {
    fn default() -> Self {
        PerfAugurConfig {
            indicator: "txn_avg_latency_ms".to_string(),
            min_window: 5,
            max_window_fraction: 0.45,
        }
    }
}

/// A scored candidate window.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredWindow {
    /// The window as a region.
    pub region: Region,
    /// Its score (higher = more anomalous).
    pub score: f64,
}

/// Score one window `[start, start+len)` of `values`: robust median shift
/// times `sqrt(len)`, discounted by the window's own robust (5–95%)
/// spread *relative to the shift*. The discount keeps a window from
/// "stretching" over normal data — a diluted window keeps its median but
/// its internal spread explodes relative to the shift — while windows
/// whose contents are volatile but hugely shifted stay competitive (the
/// original's surprise-vs-impact trade-off).
pub fn window_score(values: &[f64], start: usize, len: usize) -> f64 {
    let inside = &values[start..start + len];
    let outside: Vec<f64> =
        values[..start].iter().chain(values[start + len..].iter()).copied().collect();
    if outside.is_empty() {
        return 0.0;
    }
    let shift = (stats::median(inside) - stats::median(&outside)).abs();
    let spread = stats::quantile(inside, 0.95) - stats::quantile(inside, 0.05);
    shift * (len as f64).sqrt() / (1.0 + spread / shift.max(1.0))
}

/// Exhaustively score all windows and return the best (the "naive
/// algorithm"). Returns `None` for datasets too small to search.
///
/// For speed on ten-minute datasets, the reference aggregate is the
/// *global* median (anomaly windows are a small minority, so the global
/// and outside medians are nearly identical) and each start position
/// grows its window incrementally over a sorted buffer, giving
/// O(n · w_max²) element moves instead of a sort per window. The scoring
/// is identical to [`window_score`] up to that reference substitution.
pub fn detect(dataset: &Dataset, config: &PerfAugurConfig) -> Option<ScoredWindow> {
    let values = dataset.numeric_by_name(&config.indicator).ok()?;
    let n = values.len();
    let max_len = ((n as f64 * config.max_window_fraction) as usize).max(config.min_window);
    if n < config.min_window * 2 {
        return None;
    }
    let global_median = stats::median(values);
    let mut best: Option<(usize, usize, f64)> = None;
    let mut window: Vec<f64> = Vec::with_capacity(max_len);
    for start in 0..n.saturating_sub(config.min_window) {
        window.clear();
        let longest = max_len.min(n - start);
        for len in 1..=longest {
            let v = values[start + len - 1];
            let pos = window.binary_search_by(|w| w.total_cmp(&v)).unwrap_or_else(|e| e);
            window.insert(pos, v);
            if len < config.min_window {
                continue;
            }
            let shift = (stats::quantile_sorted(&window, 0.5) - global_median).abs();
            let spread =
                stats::quantile_sorted(&window, 0.95) - stats::quantile_sorted(&window, 0.05);
            let score = shift * (len as f64).sqrt() / (1.0 + spread / shift.max(1.0));
            if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                best = Some((start, len, score));
            }
        }
    }
    best.filter(|&(_, _, score)| score > 0.0).map(|(start, len, score)| ScoredWindow {
        region: Region::from_range(start..start + len),
        score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};

    fn latency_dataset(values: &[f64]) -> Dataset {
        let schema = Schema::from_attrs([AttributeMeta::numeric("txn_avg_latency_ms")]).unwrap();
        let mut d = Dataset::new(schema);
        for (i, &v) in values.iter().enumerate() {
            d.push_row(i as f64, &[Value::Num(v)]).unwrap();
        }
        d
    }

    #[test]
    fn finds_a_clean_latency_plateau() {
        let mut values = vec![10.0; 200];
        for v in &mut values[120..160] {
            *v = 80.0;
        }
        let d = latency_dataset(&values);
        let found = detect(&d, &PerfAugurConfig::default()).unwrap();
        let truth = Region::from_range(120..160);
        assert!(found.region.iou(&truth) > 0.9, "{:?}", found.region.intervals());
    }

    #[test]
    fn longer_windows_with_same_shift_score_higher() {
        let mut values = vec![10.0; 100];
        for v in &mut values[50..70] {
            *v = 80.0;
        }
        let short = window_score(&values, 50, 10);
        let long = window_score(&values, 50, 20);
        assert!(long > short);
    }

    #[test]
    fn noisy_plateau_still_found() {
        let mut values: Vec<f64> =
            (0..300).map(|i| 10.0 + ((i as f64) * 0.61).sin() * 2.0).collect();
        for (i, v) in values.iter_mut().enumerate().take(220).skip(180) {
            *v = 60.0 + ((i as f64) * 0.61).sin() * 5.0;
        }
        let d = latency_dataset(&values);
        let found = detect(&d, &PerfAugurConfig::default()).unwrap();
        assert!(found.region.iou(&Region::from_range(180..220)) > 0.8);
    }

    #[test]
    fn flat_series_finds_nothing() {
        let d = latency_dataset(&vec![5.0; 100]);
        assert!(detect(&d, &PerfAugurConfig::default()).is_none());
    }

    #[test]
    fn tiny_series_finds_nothing() {
        let d = latency_dataset(&[1.0, 2.0, 3.0]);
        assert!(detect(&d, &PerfAugurConfig::default()).is_none());
    }

    #[test]
    fn missing_indicator_finds_nothing() {
        let schema = Schema::from_attrs([AttributeMeta::numeric("other")]).unwrap();
        let d = Dataset::new(schema);
        assert!(detect(&d, &PerfAugurConfig::default()).is_none());
    }
}
