//! Pairwise featurization (PerfXplain, Khoussainova et al., PVLDB 2012).
//!
//! PerfXplain reasons about *pairs* of executions. For each attribute, a
//! pair `(t1, t2)` is summarized by a coarse comparison feature; an
//! explanation is a conjunction of `attribute = feature-value` tests over
//! pairs. Following the DBSherlock paper's re-implementation (§8.4), the
//! executions are telemetry tuples rather than MapReduce jobs.

use dbsherlock_telemetry::{AttributeKind, Dataset, Value};

/// Coarse comparison of one attribute's values across a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairFeature {
    /// Values within the similarity tolerance (numeric) or equal labels
    /// (categorical).
    Similar,
    /// First value notably greater.
    Greater,
    /// First value notably less.
    Less,
    /// Different category labels.
    Different,
}

/// Relative tolerance under which two numeric values count as similar.
pub const SIMILARITY_TOLERANCE: f64 = 0.10;

/// Featurize one attribute of a pair of rows.
pub fn pair_feature(dataset: &Dataset, attr_id: usize, row_a: usize, row_b: usize) -> PairFeature {
    // PerfXplain compares two arbitrary rows, so per-cell access is the
    // natural shape here; this is not a DBSherlock hot path.
    #[allow(deprecated)]
    match (dataset.value(row_a, attr_id), dataset.value(row_b, attr_id)) {
        (Value::Num(a), Value::Num(b)) => compare_numeric(a, b),
        (Value::Cat(a), Value::Cat(b)) => {
            if a == b {
                PairFeature::Similar
            } else {
                PairFeature::Different
            }
        }
        _ => PairFeature::Different,
    }
}

/// Numeric comparison with the 10% relative-tolerance similarity rule.
pub fn compare_numeric(a: f64, b: f64) -> PairFeature {
    let scale = a.abs().max(b.abs()).max(1e-9);
    if (a - b).abs() <= SIMILARITY_TOLERANCE * scale {
        PairFeature::Similar
    } else if a > b {
        PairFeature::Greater
    } else {
        PairFeature::Less
    }
}

/// Attribute ids usable as features: everything except the performance
/// indicator(s) the query is about — explaining a latency difference *by*
/// the latency difference is vacuous.
pub fn feature_attributes(dataset: &Dataset, excluded: &[&str]) -> Vec<usize> {
    dataset
        .schema()
        .iter()
        .filter(|(_, meta)| !excluded.contains(&meta.name.as_str()))
        .filter(|(_, meta)| {
            matches!(meta.kind, AttributeKind::Numeric | AttributeKind::Categorical)
        })
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema};

    #[test]
    fn numeric_comparisons() {
        assert_eq!(compare_numeric(100.0, 105.0), PairFeature::Similar);
        assert_eq!(compare_numeric(100.0, 50.0), PairFeature::Greater);
        assert_eq!(compare_numeric(50.0, 100.0), PairFeature::Less);
        assert_eq!(compare_numeric(0.0, 0.0), PairFeature::Similar);
    }

    #[test]
    fn features_from_dataset_pairs() {
        let schema =
            Schema::from_attrs([AttributeMeta::numeric("x"), AttributeMeta::categorical("c")])
                .unwrap();
        let mut d = Dataset::new(schema);
        let a = d.intern(1, "a").unwrap();
        let b = d.intern(1, "b").unwrap();
        d.push_row(0.0, &[Value::Num(10.0), a]).unwrap();
        d.push_row(1.0, &[Value::Num(30.0), b]).unwrap();
        d.push_row(2.0, &[Value::Num(10.5), a]).unwrap();
        assert_eq!(pair_feature(&d, 0, 0, 1), PairFeature::Less);
        assert_eq!(pair_feature(&d, 0, 0, 2), PairFeature::Similar);
        assert_eq!(pair_feature(&d, 1, 0, 1), PairFeature::Different);
        assert_eq!(pair_feature(&d, 1, 0, 2), PairFeature::Similar);
    }

    #[test]
    fn excluded_attributes_are_not_features() {
        let schema =
            Schema::from_attrs([AttributeMeta::numeric("latency"), AttributeMeta::numeric("cpu")])
                .unwrap();
        let d = Dataset::new(schema);
        let feats = feature_attributes(&d, &["latency"]);
        assert_eq!(feats, vec![1]);
    }
}
