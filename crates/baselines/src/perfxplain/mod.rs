//! Re-implementation of **PerfXplain** (Khoussainova, Balazinska, Suciu —
//! PVLDB 2012), the predicate-based performance-explanation baseline the
//! DBSherlock paper compares against (§8.4).
//!
//! PerfXplain answers "why was job A slower than job B?" over MapReduce
//! logs by learning a conjunction of coarse pairwise comparison features.
//! Following the DBSherlock paper, the adaptation here operates on pairs of
//! telemetry tuples and uses the query
//! `EXPECTED avg_latency_difference = insignificant OBSERVED
//! avg_latency_difference = significant` with a 50% significance
//! threshold, 2000 sampled pairs, weight 0.8, and 2 predicates.

pub mod explain;
pub mod features;

pub use explain::{PairPredicate, PerfXplain, PerfXplainConfig, TrainingSet};
pub use features::{compare_numeric, pair_feature, PairFeature, SIMILARITY_TOLERANCE};
