//! PerfXplain's greedy explanation search, adapted to telemetry tuples.
//!
//! The DBSherlock paper's comparison setup (§8.4):
//!
//! * query — `EXPECTED avg_latency_difference = insignificant OBSERVED
//!   avg_latency_difference = significant`, where two latencies differ
//!   *significantly* when their difference is at least 50% of the smaller;
//! * 2000 sampled pairs; scoring weight 0.8; two predicates per
//!   explanation (the settings the paper found best).
//!
//! An explanation is a conjunction of `(attribute, PairFeature)` tests over
//! pairs. Greedy selection maximizes `w · precision + (1 − w) · recall`
//! against the "observed" (significant-difference) class, PerfXplain's
//! relevance/generality trade-off.
//!
//! To score *tuples* (Fig. 9 compares tuple-level precision/recall/F1),
//! each test tuple is paired with reference tuples drawn at random from
//! the **same (unlabeled) test dataset** — PerfXplain compares executions
//! within the log being debugged and has no ground-truth normal region at
//! diagnosis time. Each pair is canonically oriented with the slower
//! tuple first (latency is observable), and a tuple is flagged abnormal
//! when the majority of its pairs satisfy the explanation. The original
//! paper stops at pair-level explanations; this lifting is ours and is
//! the same for every workload, so the comparison stays fair.

use dbsherlock_telemetry::{Dataset, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::features::{feature_attributes, pair_feature, PairFeature};

/// Training settings (defaults = the paper's §8.4 choices).
#[derive(Debug, Clone)]
pub struct PerfXplainConfig {
    /// Number of pairs sampled for training.
    pub n_pairs: usize,
    /// Scoring weight `w` on precision.
    pub weight: f64,
    /// Maximum predicates in the explanation.
    pub n_predicates: usize,
    /// Latency difference significant when `|a − b| >= threshold · min`.
    pub significance: f64,
    /// Name of the performance attribute the query is about.
    pub latency_attr: String,
    /// Attributes excluded from features (performance indicators).
    pub excluded_attrs: Vec<String>,
    /// Reference tuples sampled per test tuple during classification.
    pub n_references: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PerfXplainConfig {
    fn default() -> Self {
        PerfXplainConfig {
            n_pairs: 2000,
            weight: 0.8,
            n_predicates: 2,
            significance: 0.5,
            latency_attr: "txn_avg_latency_ms".to_string(),
            excluded_attrs: vec![
                "txn_avg_latency_ms".to_string(),
                "txn_p99_latency_ms".to_string(),
            ],
            n_references: 15,
            seed: 0x9E3779B9,
        }
    }
}

/// One pair-level test.
#[derive(Debug, Clone, PartialEq)]
pub struct PairPredicate {
    /// Attribute name.
    pub attr: String,
    /// Required comparison outcome.
    pub feature: PairFeature,
}

/// A trained PerfXplain explanation.
#[derive(Debug, Clone)]
pub struct PerfXplain {
    config: PerfXplainConfig,
    /// The learned conjunction.
    pub predicates: Vec<PairPredicate>,
}

/// One training dataset with its labeled regions.
pub struct TrainingSet<'a> {
    /// Telemetry.
    pub data: &'a Dataset,
    /// Ground-truth (or user-specified) abnormal rows.
    pub abnormal: &'a Region,
}

impl PerfXplain {
    /// Train on a collection of labeled datasets (the paper uses the 10
    /// training datasets of each test case).
    pub fn train(sets: &[TrainingSet<'_>], config: PerfXplainConfig) -> Option<PerfXplain> {
        let first = sets.first()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let latency_id = first.data.schema().id_of(&config.latency_attr)?;
        let excluded: Vec<&str> = config.excluded_attrs.iter().map(String::as_str).collect();
        let feature_ids = feature_attributes(first.data, &excluded);

        // Sample pairs within datasets (cross-dataset pairs would compare
        // different runs, which PerfXplain never does for one job class).
        let mut pairs: Vec<(usize, usize, usize, bool)> = Vec::with_capacity(config.n_pairs);
        for _ in 0..config.n_pairs {
            let set_idx = rng.random_range(0..sets.len());
            let set = &sets[set_idx];
            let n = set.data.n_rows();
            if n < 2 {
                continue;
            }
            let mut a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            if a == b {
                continue;
            }
            let latencies = set.data.numeric(latency_id)?;
            // Canonical orientation: the slower execution first, matching
            // PerfXplain's "why is A slower than B?" query form and the
            // (suspect, normal-reference) orientation used at
            // classification time.
            if latencies[b] > latencies[a] {
                std::mem::swap(&mut a, &mut b);
            }
            let (la, lb) = (latencies[a], latencies[b]);
            let significant = (la - lb).abs() >= config.significance * la.min(lb).max(1e-9);
            pairs.push((set_idx, a, b, significant));
        }

        // Greedy conjunction: pick the (attr, feature) test maximizing
        // w·precision + (1−w)·recall on the remaining selected pairs.
        let mut predicates: Vec<PairPredicate> = Vec::new();
        let mut selected: Vec<bool> = vec![true; pairs.len()];
        let observed_total = pairs.iter().filter(|p| p.3).count().max(1);
        for _ in 0..config.n_predicates {
            let mut best: Option<(f64, PairPredicate, Vec<bool>)> = None;
            for &attr_id in &feature_ids {
                for feature in [
                    PairFeature::Similar,
                    PairFeature::Greater,
                    PairFeature::Less,
                    PairFeature::Different,
                ] {
                    let mut mask = vec![false; pairs.len()];
                    let mut picked = 0usize;
                    let mut picked_observed = 0usize;
                    for (i, &(set_idx, a, b, significant)) in pairs.iter().enumerate() {
                        if !selected[i] {
                            continue;
                        }
                        if pair_feature(sets[set_idx].data, attr_id, a, b) == feature {
                            mask[i] = true;
                            picked += 1;
                            if significant {
                                picked_observed += 1;
                            }
                        }
                    }
                    if picked == 0 {
                        continue;
                    }
                    let precision = picked_observed as f64 / picked as f64;
                    let recall = picked_observed as f64 / observed_total as f64;
                    let score = config.weight * precision + (1.0 - config.weight) * recall;
                    if best.as_ref().map(|(s, _, _)| score > *s).unwrap_or(true) {
                        let attr = first.data.schema().attr(attr_id).name.clone();
                        best = Some((score, PairPredicate { attr, feature }, mask));
                    }
                }
            }
            let Some((_, predicate, mask)) = best else {
                break;
            };
            predicates.push(predicate);
            selected = mask;
        }

        Some(PerfXplain { config, predicates })
    }

    /// Does the canonically-oriented pair `(slow_row, fast_row)` of `data`
    /// satisfy the explanation?
    fn pair_matches(&self, data: &Dataset, slow_row: usize, fast_row: usize) -> bool {
        self.predicates.iter().all(|p| {
            let Some(attr) = data.schema().id_of(&p.attr) else {
                return false;
            };
            pair_feature(data, attr, slow_row, fast_row) == p.feature
        })
    }

    /// Classify every row of `test`: the row is paired with
    /// `n_references` randomly sampled rows of the same dataset (oriented
    /// slower-first via the observable latency), and flagged abnormal
    /// when the majority of its pairs satisfy the explanation —
    /// PerfXplain predicts those pairs to differ significantly.
    pub fn predict(&self, test: &Dataset) -> Region {
        if self.predicates.is_empty() || test.n_rows() < 2 {
            return Region::new();
        }
        let Ok(latencies) = test.numeric_by_name(&self.config.latency_attr) else {
            return Region::new();
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xABCD_EF01);
        let mut flagged = Vec::new();
        for row in 0..test.n_rows() {
            let mut hits = 0usize;
            let trials = self.config.n_references;
            for _ in 0..trials {
                let reference = rng.random_range(0..test.n_rows());
                if reference == row {
                    continue;
                }
                let (slow, fast) = if latencies[reference] > latencies[row] {
                    (reference, row)
                } else {
                    (row, reference)
                };
                if self.pair_matches(test, slow, fast) {
                    hits += 1;
                }
            }
            if hits * 2 > trials {
                flagged.push(row);
            }
        }
        Region::from_indices(flagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::{AttributeMeta, Schema, Value};

    /// Latency and a `cause` attribute both jump in the abnormal window.
    fn labeled_dataset(seed_offset: f64) -> (Dataset, Region) {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("txn_avg_latency_ms"),
            AttributeMeta::numeric("txn_p99_latency_ms"),
            AttributeMeta::numeric("cause"),
            AttributeMeta::numeric("steady"),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        for i in 0..100 {
            let abnormal = (60..80).contains(&i);
            let jitter = ((i as f64 + seed_offset) * 0.73).sin();
            let latency = if abnormal { 100.0 } else { 10.0 } + jitter;
            let cause = if abnormal { 500.0 } else { 50.0 } + jitter * 2.0;
            d.push_row(
                i as f64,
                &[
                    Value::Num(latency),
                    Value::Num(latency * 3.0),
                    Value::Num(cause),
                    Value::Num(42.0 + jitter),
                ],
            )
            .unwrap();
        }
        (d, Region::from_range(60..80))
    }

    fn config() -> PerfXplainConfig {
        PerfXplainConfig { n_pairs: 800, n_references: 9, ..PerfXplainConfig::default() }
    }

    #[test]
    fn learns_the_causal_attribute() {
        let (d1, r1) = labeled_dataset(0.0);
        let (d2, r2) = labeled_dataset(7.0);
        let sets =
            [TrainingSet { data: &d1, abnormal: &r1 }, TrainingSet { data: &d2, abnormal: &r2 }];
        let model = PerfXplain::train(&sets, config()).unwrap();
        assert!(!model.predicates.is_empty());
        assert!(
            model.predicates.iter().any(|p| p.attr == "cause"),
            "predicates: {:?}",
            model.predicates
        );
        // Latency itself must not be used as a feature.
        assert!(model.predicates.iter().all(|p| p.attr != "txn_avg_latency_ms"));
    }

    #[test]
    fn predicts_the_abnormal_window() {
        let (d1, r1) = labeled_dataset(0.0);
        let (d2, r2) = labeled_dataset(7.0);
        let sets =
            [TrainingSet { data: &d1, abnormal: &r1 }, TrainingSet { data: &d2, abnormal: &r2 }];
        let model = PerfXplain::train(&sets, config()).unwrap();
        let (test, truth) = labeled_dataset(13.0);
        let predicted = model.predict(&test);
        let tp = predicted.intersect(&truth).len() as f64;
        let recall = tp / truth.len() as f64;
        let precision = if predicted.is_empty() { 0.0 } else { tp / predicted.len() as f64 };
        assert!(recall > 0.7, "recall {recall} ({predicted:?})");
        assert!(precision > 0.7, "precision {precision}");
    }

    #[test]
    fn empty_training_yields_none() {
        assert!(PerfXplain::train(&[], config()).is_none());
    }
}
