#![warn(missing_docs)]
// Diagnosis must degrade gracefully, never panic: unwrap/expect are banned in
// library code (tests may use them freely). See sherlock-lint's panic-path rule.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Re-implementations of the comparison baselines from the DBSherlock
//! paper: **PerfXplain** (predicate-based explanation of MapReduce job
//! pairs, §8.4) and **PerfAugur** (robust anomaly-region detection,
//! Appendix E). Both are built from scratch against the same telemetry
//! data model DBSherlock consumes, so the head-to-head comparisons of
//! Figures 9 and Table 7 run on identical inputs.

pub mod perfaugur;
pub mod perfxplain;

pub use perfaugur::{detect as perfaugur_detect, PerfAugurConfig, ScoredWindow};
pub use perfxplain::{PerfXplain, PerfXplainConfig, TrainingSet};
