//! Simulator invariants: physical sanity of the emitted telemetry across
//! every anomaly class and both workloads (conservation-style checks the
//! closed-loop model must never violate).

use dbsherlock_simulator::{
    metrics_schema, AnomalyKind, Benchmark, Injection, NoiseModel, Scenario, WorkloadConfig,
};
use proptest::prelude::*;

fn scenario_for(kind: AnomalyKind, benchmark: Benchmark, seed: u64) -> Scenario {
    let workload = match benchmark {
        Benchmark::TpccLike => WorkloadConfig::tpcc_default(),
        Benchmark::TpceLike => WorkloadConfig::tpce_default(),
    };
    Scenario::new(workload, 150, seed).with_injection(Injection::new(kind, 60, 40))
}

#[test]
fn metrics_stay_physical_for_every_anomaly_class() {
    for (i, kind) in AnomalyKind::ALL.into_iter().enumerate() {
        for benchmark in [Benchmark::TpccLike, Benchmark::TpceLike] {
            let labeled =
                scenario_for(kind, benchmark, 9000 + i as u64).run_with_noise(NoiseModel::none());
            let d = &labeled.data;
            let get = |name: &str| d.numeric_by_name(name).unwrap();
            for row in 0..d.n_rows() {
                let ctx = format!("{kind:?}/{benchmark:?} row {row}");
                // Percentages bounded.
                for pct_attr in [
                    "os_cpu_usage",
                    "os_cpu_idle",
                    "os_cpu_iowait",
                    "os_disk_util",
                    "dbms_cpu_usage",
                    "dbms_buffer_hit_ratio",
                ] {
                    let v = get(pct_attr)[row];
                    assert!((0.0..=100.0).contains(&v), "{ctx}: {pct_attr} = {v}");
                }
                // CPU accounting sums to ~100%.
                let total =
                    get("os_cpu_usage")[row] + get("os_cpu_idle")[row] + get("os_cpu_iowait")[row];
                assert!((85.0..=115.0).contains(&total), "{ctx}: cpu usage+idle+iowait = {total}");
                // The DBMS cannot use more CPU than the machine.
                assert!(
                    get("dbms_cpu_usage")[row] <= get("os_cpu_usage")[row] + 5.0,
                    "{ctx}: dbms cpu exceeds os cpu"
                );
                // Throughput and latency are positive and finite.
                for attr in ["txn_throughput", "txn_avg_latency_ms"] {
                    let v = get(attr)[row];
                    assert!(v.is_finite() && v > 0.0, "{ctx}: {attr} = {v}");
                }
                // p99 dominates the average latency.
                assert!(
                    get("txn_p99_latency_ms")[row] >= get("txn_avg_latency_ms")[row],
                    "{ctx}: p99 below average"
                );
                // Little's law, loosely: threads ≈ tps × latency.
                let threads = get("dbms_threads_running")[row];
                let implied = get("txn_throughput")[row] * get("txn_avg_latency_ms")[row] / 1000.0;
                assert!(
                    threads <= implied * 3.0 + 10.0,
                    "{ctx}: threads {threads} vs Little's-law {implied}"
                );
            }
        }
    }
}

#[test]
fn schema_is_stable_across_runs() {
    let a = scenario_for(AnomalyKind::DatabaseBackup, Benchmark::TpccLike, 1).run();
    let b = scenario_for(AnomalyKind::LockContention, Benchmark::TpceLike, 2).run();
    assert!(a.data.schema().same_layout(b.data.schema()));
    assert!(a.data.schema().same_layout(&metrics_schema()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any combination of injections still produces a full, physical
    /// dataset (failure-injection fuzzing of the engine).
    #[test]
    fn random_compound_scenarios_stay_sane(
        picks in proptest::collection::vec((0usize..10, 20usize..100, 10usize..60, 0.3_f64..2.0), 1..4),
        seed in 0u64..10_000,
    ) {
        let mut scenario = Scenario::new(WorkloadConfig::tpcc_default(), 160, seed);
        for (kind_idx, start, duration, intensity) in picks {
            let mut injection =
                Injection::new(AnomalyKind::ALL[kind_idx], start, duration);
            injection.intensity = intensity;
            scenario = scenario.with_injection(injection);
        }
        let labeled = scenario.run();
        prop_assert_eq!(labeled.data.n_rows(), 160);
        let latency = labeled.data.numeric_by_name("txn_avg_latency_ms").unwrap();
        let tps = labeled.data.numeric_by_name("txn_throughput").unwrap();
        for row in 0..160 {
            prop_assert!(latency[row].is_finite() && latency[row] > 0.0);
            prop_assert!(tps[row].is_finite() && tps[row] >= 0.0);
            // Closed network: can never serve more than terminal count per
            // think-time cycle allows at zero latency.
            prop_assert!(tps[row] < 10_000.0, "tps blew up: {}", tps[row]);
        }
    }
}
