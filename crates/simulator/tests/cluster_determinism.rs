//! Determinism contracts for the cluster scenario pack and the
//! intervention runner, as properties.
//!
//! * Same seed + config ⇒ **bit-identical** per-node metric streams no
//!   matter how the node fan-out is scheduled (`Serial` vs `Threads(4)`):
//!   the merged dataset's every numeric column compares equal by bits and
//!   every categorical column by code.
//! * Intervention trials are a pure function of the engine-derived seed:
//!   re-running `inject` from a recorded `trial_seed`/`attempt_seed` chain
//!   replays the same telemetry, and a whole validation pass replays the
//!   same verdicts (confidences compared as bits, not approximately).

use dbsherlock_core::{
    attempt_seed, trial_seed, validate_explanation, ExecPolicy, InterventionConfig,
    InterventionRunner, Sherlock, SherlockParams,
};
use dbsherlock_simulator::{
    ClusterAnomalyKind, ClusterConfig, ClusterInjection, ClusterScenario, ScenarioRunner,
    WorkloadConfig,
};
use proptest::prelude::*;

fn quick_workload() -> WorkloadConfig {
    WorkloadConfig { terminals: 32, ..WorkloadConfig::tpcc_default() }
}

/// Column-by-column bit equality of two datasets sharing a schema.
fn assert_bit_identical(a: &dbsherlock_telemetry::Dataset, b: &dbsherlock_telemetry::Dataset) {
    assert_eq!(a.n_rows(), b.n_rows());
    for (id, attr) in a.schema().iter() {
        match (a.numeric(id), b.numeric(id)) {
            (Some(x), Some(y)) => {
                for (row, (u, v)) in x.iter().zip(y).enumerate() {
                    assert_eq!(u.to_bits(), v.to_bits(), "{} row {row}: {u} vs {v}", attr.name);
                }
            }
            (None, None) => {
                let (codes_a, _) = a.categorical(id).unwrap();
                let (codes_b, _) = b.categorical(id).unwrap();
                assert_eq!(codes_a, codes_b, "{}", attr.name);
            }
            _ => panic!("{}: column kind diverged between runs", attr.name),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole determinism: the cluster coordination schedule is derived
    /// before node stepping, so nodes simulate independently and the merged
    /// stream cannot depend on thread scheduling.
    #[test]
    fn cluster_streams_are_bit_identical_across_exec_policies(
        seed in 0u64..u64::MAX,
        kind_idx in 0usize..ClusterAnomalyKind::ALL.len(),
        start in 35usize..60,
        duration in 10usize..40,
        intensity in 0.5f64..1.5,
    ) {
        let kind = ClusterAnomalyKind::ALL[kind_idx];
        let scenario = ClusterScenario::new(ClusterConfig::three_node(quick_workload()), 110, seed)
            .with_injection(ClusterInjection::new(kind, start, duration).with_intensity(intensity));
        let serial = scenario.run_with_exec(ExecPolicy::Serial).unwrap();
        let threaded = scenario.run_with_exec(ExecPolicy::Threads(4)).unwrap();
        assert_bit_identical(&serial.data, &threaded.data);
        prop_assert_eq!(serial.abnormal_region(), threaded.abnormal_region());
    }

    /// Intervention trials replay exactly from the recorded seed chain: the
    /// runner is deterministic in the seed the engine derives via
    /// `trial_seed`/`attempt_seed`.
    #[test]
    fn intervention_trials_replay_from_recorded_seeds(
        candidate_seed in 0u64..u64::MAX,
        trial in 0u32..4,
        attempt in 0u32..3,
        kind_idx in 0usize..ClusterAnomalyKind::ALL.len(),
    ) {
        let runner = ScenarioRunner::cluster(ClusterConfig::three_node(quick_workload()))
            .with_duration(100)
            .with_window(40, 30);
        let cause = ClusterAnomalyKind::ALL[kind_idx].name();
        let seed = attempt_seed(trial_seed(candidate_seed, trial), attempt);
        let once = runner.inject(cause, seed).unwrap();
        let again = runner.inject(cause, seed).unwrap();
        assert_bit_identical(&once.data, &again.data);
        prop_assert_eq!(once.abnormal, again.abnormal);
        prop_assert_eq!(once.normal, again.normal);
    }
}

/// A whole validation pass replays bit-for-bit: same explanation, same
/// runner, same config ⇒ the same verdicts (reproduced flags, trial
/// counts, recorded seeds, and confidences compared as bits) — at any exec
/// policy.
#[test]
fn validation_passes_replay_bit_for_bit() {
    let config = ClusterConfig::three_node(quick_workload());
    let mut sherlock = Sherlock::new(SherlockParams::default());
    for (i, kind) in
        [ClusterAnomalyKind::ReplicationLag, ClusterAnomalyKind::LockConvoy].iter().enumerate()
    {
        let labeled = ClusterScenario::new(config.clone(), 120, 300 + i as u64)
            .with_injection(ClusterInjection::new(*kind, 50, 40))
            .run()
            .unwrap();
        let explanation = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);
        sherlock.feedback(kind.name(), &explanation.predicates);
    }
    let incident = ClusterScenario::new(config.clone(), 120, 41)
        .with_injection(ClusterInjection::new(ClusterAnomalyKind::ReplicationLag, 50, 40))
        .run()
        .unwrap();
    let explanation = sherlock.explain(&incident.data, &incident.abnormal_region(), None);
    let runner = ScenarioRunner::cluster(config).with_duration(120).with_window(50, 40);

    let mut passes = Vec::new();
    for exec in [ExecPolicy::Serial, ExecPolicy::Threads(4), ExecPolicy::Serial] {
        let cfg = InterventionConfig { trials: 2, exec, ..InterventionConfig::default() };
        let mut replay = explanation.clone();
        validate_explanation(&mut replay, &runner, sherlock.params(), &cfg);
        passes.push(replay.interventions);
    }
    assert!(!passes[0].is_empty());
    for verdict in &passes[0] {
        assert_eq!(verdict.verdict.trials, 2);
    }
    assert_eq!(passes[0], passes[1], "exec policy changed the verdicts");
    assert_eq!(passes[0], passes[2], "a replayed pass diverged");
    for (a, b) in passes[0].iter().zip(&passes[1]) {
        assert_eq!(a.verdict.confidence.to_bits(), b.verdict.confidence.to_bits());
    }
}
