//! Shared queueing-theory helpers for the resource sub-models.
//!
//! The simulator treats each physical resource (CPU, disk, network) as a
//! multi-server queue. Per tick it computes the offered utilization and
//! inflates service times with an M/M/c-style wait factor; past saturation,
//! throughput is clamped and a backlog builds. These are the non-linear,
//! "previously abundant resources become scarce" dynamics the paper's
//! introduction describes.

/// Utilization of a resource given offered demand and capacity, uncapped
/// (values above 1 mean the resource is oversubscribed).
pub fn offered_utilization(demand: f64, capacity: f64) -> f64 {
    if capacity <= 0.0 {
        return if demand > 0.0 { f64::INFINITY } else { 0.0 };
    }
    (demand / capacity).max(0.0)
}

/// Multiplier (≥ 1) applied to a request's service time at utilization
/// `rho` on a resource with `servers` parallel servers.
///
/// Uses the Sakasegawa approximation of the M/M/c waiting factor:
/// `W/S = ρ^(√(2(c+1)))/(c(1-ρ))`, smooth and well-behaved for the
/// moderate utilizations the simulator lives at, and clamped near
/// saturation so latency stays finite.
pub fn wait_factor(rho: f64, servers: f64) -> f64 {
    const MAX_FACTOR: f64 = 250.0;
    if rho <= 0.0 {
        return 1.0;
    }
    let servers = servers.max(1.0);
    if rho >= 0.995 {
        return MAX_FACTOR;
    }
    let exponent = (2.0 * (servers + 1.0)).sqrt();
    let factor = 1.0 + rho.powf(exponent) / (servers * (1.0 - rho));
    factor.min(MAX_FACTOR)
}

/// Split offered demand into admitted throughput and backlog growth when a
/// resource saturates. Returns `(admitted, dropped)` where
/// `admitted <= capacity`.
pub fn clamp_throughput(demand: f64, capacity: f64) -> (f64, f64) {
    if demand <= capacity {
        (demand.max(0.0), 0.0)
    } else {
        (capacity.max(0.0), demand - capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_basics() {
        assert_eq!(offered_utilization(50.0, 100.0), 0.5);
        assert_eq!(offered_utilization(0.0, 0.0), 0.0);
        assert!(offered_utilization(1.0, 0.0).is_infinite());
        assert_eq!(offered_utilization(-5.0, 10.0), 0.0);
    }

    #[test]
    fn wait_factor_monotone_in_rho() {
        let mut prev = 0.0;
        for i in 1..99 {
            let rho = i as f64 / 100.0;
            let f = wait_factor(rho, 4.0);
            assert!(f >= 1.0);
            assert!(f >= prev, "wait factor must be monotone at rho={rho}");
            prev = f;
        }
    }

    #[test]
    fn wait_factor_idle_and_saturated() {
        assert_eq!(wait_factor(0.0, 4.0), 1.0);
        assert_eq!(wait_factor(1.5, 4.0), 250.0);
        assert_eq!(wait_factor(0.999, 1.0), 250.0);
    }

    #[test]
    fn more_servers_wait_less() {
        let one = wait_factor(0.8, 1.0);
        let four = wait_factor(0.8, 4.0);
        assert!(four < one);
    }

    #[test]
    fn clamp_splits_overload() {
        assert_eq!(clamp_throughput(80.0, 100.0), (80.0, 0.0));
        assert_eq!(clamp_throughput(130.0, 100.0), (100.0, 30.0));
        assert_eq!(clamp_throughput(-1.0, 100.0), (0.0, 0.0));
    }
}
