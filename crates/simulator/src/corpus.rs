//! The evaluation corpora of §8.2, Appendix A, §8.7, and Appendix E.
//!
//! * **Standard corpus**: for each of the ten anomaly classes, 11 datasets
//!   obtained by varying the anomaly duration (or its start time, for jobs
//!   whose duration cannot be controlled) from 30 to 80 seconds in steps of
//!   5 — 110 datasets, each two minutes of normal activity plus the anomaly.
//! * **Compound corpus** (§8.7): six scenarios with two or three anomalies
//!   active simultaneously.
//! * **Long corpus** (App. E): ten-minute normal runs so automatic
//!   detection has a dominant normal mass to contrast against.

use serde::{Deserialize, Serialize};

use crate::anomaly::{AnomalyKind, Injection};
use crate::config::{Benchmark, WorkloadConfig};
use crate::scenario::{LabeledDataset, Scenario};

/// Seconds of normal activity in a standard dataset (paper §8.1).
pub const NORMAL_SECS: usize = 120;
/// The 11 duration/start variations: 30, 35, ..., 80 (paper §8.2).
pub const VARIATIONS: [usize; 11] = [30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80];

/// One dataset of the standard corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The induced anomaly class.
    pub kind: AnomalyKind,
    /// Variation index `0..11` (position in [`VARIATIONS`]).
    pub variant: usize,
    /// The generated telemetry with ground truth.
    pub labeled: LabeledDataset,
}

/// Identifier of a corpus entry, for serializable experiment manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EntryId {
    /// Anomaly class.
    pub kind: AnomalyKind,
    /// Variation index.
    pub variant: usize,
}

fn workload_for(benchmark: Benchmark) -> WorkloadConfig {
    match benchmark {
        Benchmark::TpccLike => WorkloadConfig::tpcc_default(),
        Benchmark::TpceLike => WorkloadConfig::tpce_default(),
    }
}

fn entry_seed(corpus_seed: u64, kind: AnomalyKind, variant: usize) -> u64 {
    // Stable per-entry seed: mix the kind's Table 1 position and variant.
    // `ALL` lists every variant, so a missing kind degrades to position 0
    // (still deterministic) instead of panicking.
    let kind_idx = AnomalyKind::ALL.iter().position(|k| *k == kind).unwrap_or(0) as u64;
    corpus_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(kind_idx * 131)
        .wrapping_add(variant as u64 + 1)
}

/// Severity of the injected anomaly for one corpus cell: real stressors
/// never hit with identical force twice, so each dataset's injection is
/// scaled by a deterministic pseudo-random factor in `[0.7, 1.3]`. This
/// is what makes a causal model learned from a single dataset imperfect
/// on other instances of the same cause — the regime in which the paper's
/// model merging (§6.2) pays off.
pub fn cell_intensity(corpus_seed: u64, kind: AnomalyKind, variant: usize) -> f64 {
    // splitmix64-style finalizer: entry_seed only varies in its low bits
    // across cells, so mix before taking high bits.
    let mut h = entry_seed(corpus_seed ^ 0x51DE, kind, variant);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D049BB133111EB);
    h ^= h >> 31;
    0.7 + 0.6 * ((h >> 16) % 1000) as f64 / 1000.0
}

/// Build the scenario for one `(kind, variant)` cell of the corpus.
pub fn standard_scenario(
    benchmark: Benchmark,
    kind: AnomalyKind,
    variant: usize,
    corpus_seed: u64,
) -> Scenario {
    let v = VARIATIONS[variant];
    // Duration-controllable anomalies vary duration at a fixed start;
    // uncontrollable jobs vary the start time at a fixed duration (§8.2).
    let (start, duration) = if kind.duration_controllable() { (60, v) } else { (v, 50) };
    let total = NORMAL_SECS + duration;
    let mut injection = Injection::new(kind, start, duration);
    injection.intensity = cell_intensity(corpus_seed, kind, variant);
    Scenario::new(workload_for(benchmark), total, entry_seed(corpus_seed, kind, variant))
        .with_injection(injection)
}

/// Generate the full 110-dataset standard corpus.
pub fn generate_corpus(benchmark: Benchmark, corpus_seed: u64) -> Vec<CorpusEntry> {
    let mut entries = Vec::with_capacity(AnomalyKind::ALL.len() * VARIATIONS.len());
    for &kind in &AnomalyKind::ALL {
        for variant in 0..VARIATIONS.len() {
            let labeled = standard_scenario(benchmark, kind, variant, corpus_seed).run();
            entries.push(CorpusEntry { kind, variant, labeled });
        }
    }
    entries
}

/// The six compound test cases of §8.7 (Figure 10's x-axis).
pub fn compound_cases() -> Vec<(&'static str, Vec<AnomalyKind>)> {
    vec![
        (
            "CPU,IO,Network Saturation",
            vec![
                AnomalyKind::CpuSaturation,
                AnomalyKind::IoSaturation,
                AnomalyKind::NetworkCongestion,
            ],
        ),
        (
            "Workload Spike + Flush Log/Table",
            vec![AnomalyKind::WorkloadSpike, AnomalyKind::FlushLogTable],
        ),
        (
            "Workload Spike + Table Restore",
            vec![AnomalyKind::WorkloadSpike, AnomalyKind::TableRestore],
        ),
        (
            "Workload Spike + CPU Saturation",
            vec![AnomalyKind::WorkloadSpike, AnomalyKind::CpuSaturation],
        ),
        (
            "Workload Spike + I/O Saturation",
            vec![AnomalyKind::WorkloadSpike, AnomalyKind::IoSaturation],
        ),
        (
            "Workload Spike + Network Congestion",
            vec![AnomalyKind::WorkloadSpike, AnomalyKind::NetworkCongestion],
        ),
    ]
}

/// Generate one compound dataset: all listed anomalies active over the same
/// 50-second window inside a two-minute normal run.
pub fn compound_dataset(benchmark: Benchmark, kinds: &[AnomalyKind], seed: u64) -> LabeledDataset {
    let duration = 50;
    let mut scenario = Scenario::new(workload_for(benchmark), NORMAL_SECS + duration, seed);
    for &kind in kinds {
        scenario = scenario.with_injection(Injection::new(kind, 60, duration));
    }
    scenario.run()
}

/// Generate the Appendix E corpus: per class, 11 datasets with ten minutes
/// of normal activity so the abnormal region is a small minority of the
/// data (a precondition of the <20%-cluster rule).
pub fn generate_long_corpus(benchmark: Benchmark, corpus_seed: u64) -> Vec<CorpusEntry> {
    const LONG_NORMAL_SECS: usize = 600;
    let mut entries = Vec::new();
    for &kind in &AnomalyKind::ALL {
        for (variant, &v) in VARIATIONS.iter().enumerate() {
            let (start, duration) =
                if kind.duration_controllable() { (300, v) } else { (200 + v, 50) };
            let total = LONG_NORMAL_SECS + duration;
            let mut injection = Injection::new(kind, start, duration);
            injection.intensity = cell_intensity(corpus_seed ^ 0xABCD, kind, variant);
            let labeled = Scenario::new(
                workload_for(benchmark),
                total,
                entry_seed(corpus_seed ^ 0xABCD, kind, variant),
            )
            .with_injection(injection)
            .run();
            entries.push(CorpusEntry { kind, variant, labeled });
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scenarios_vary_correctly() {
        // Duration-controllable: duration varies, start fixed.
        let s0 = standard_scenario(Benchmark::TpccLike, AnomalyKind::CpuSaturation, 0, 1);
        let s10 = standard_scenario(Benchmark::TpccLike, AnomalyKind::CpuSaturation, 10, 1);
        assert_eq!(s0.injections[0].start, 60);
        assert_eq!(s0.injections[0].duration, 30);
        assert_eq!(s10.injections[0].duration, 80);
        assert_eq!(s0.duration, 150);
        assert_eq!(s10.duration, 200);
        // Start-varied job: start varies, duration fixed.
        let b0 = standard_scenario(Benchmark::TpccLike, AnomalyKind::DatabaseBackup, 0, 1);
        let b10 = standard_scenario(Benchmark::TpccLike, AnomalyKind::DatabaseBackup, 10, 1);
        assert_eq!(b0.injections[0].start, 30);
        assert_eq!(b10.injections[0].start, 80);
        assert_eq!(b0.injections[0].duration, 50);
    }

    #[test]
    fn intensity_varies_within_bounds_and_is_deterministic() {
        let mut seen = Vec::new();
        for &kind in &AnomalyKind::ALL {
            for variant in 0..VARIATIONS.len() {
                let a = cell_intensity(7, kind, variant);
                let b = cell_intensity(7, kind, variant);
                assert_eq!(a, b, "intensity must be deterministic");
                assert!((0.7..=1.3).contains(&a), "intensity {a} out of range");
                seen.push(a);
            }
        }
        // Not all cells share the same severity.
        let min = seen.iter().copied().fold(f64::INFINITY, f64::min);
        let max = seen.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.3, "intensities too uniform: {min}..{max}");
    }

    #[test]
    fn seeds_differ_across_cells() {
        let a = entry_seed(7, AnomalyKind::CpuSaturation, 0);
        let b = entry_seed(7, AnomalyKind::CpuSaturation, 1);
        let c = entry_seed(7, AnomalyKind::IoSaturation, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, entry_seed(7, AnomalyKind::CpuSaturation, 0));
    }

    #[test]
    fn compound_cases_match_figure_10() {
        let cases = compound_cases();
        assert_eq!(cases.len(), 6);
        assert_eq!(cases[0].1.len(), 3);
        assert!(cases[1..].iter().all(|(_, ks)| ks.len() == 2));
        assert!(cases[1..].iter().all(|(_, ks)| ks[0] == AnomalyKind::WorkloadSpike));
    }

    #[test]
    fn compound_dataset_has_overlapping_truth() {
        let kinds = [AnomalyKind::WorkloadSpike, AnomalyKind::CpuSaturation];
        let labeled = compound_dataset(Benchmark::TpccLike, &kinds, 3);
        assert_eq!(labeled.kinds(), kinds);
        let spike = labeled.region_of(AnomalyKind::WorkloadSpike).unwrap();
        let cpu = labeled.region_of(AnomalyKind::CpuSaturation).unwrap();
        assert_eq!(spike, cpu);
        assert_eq!(labeled.abnormal_region().len(), 50);
    }

    // Full-corpus generation is exercised by the bench harness and
    // integration tests; here we just check one cell end-to-end to keep
    // unit-test time low.
    #[test]
    fn one_cell_generates() {
        let s = standard_scenario(Benchmark::TpccLike, AnomalyKind::LockContention, 4, 99);
        let labeled = s.run();
        assert_eq!(labeled.data.n_rows(), NORMAL_SECS + VARIATIONS[4]);
        assert_eq!(labeled.abnormal_region().len(), VARIATIONS[4]);
    }
}
