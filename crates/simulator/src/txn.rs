//! Transaction classes, resource-demand vectors, and benchmark mixes.
//!
//! Each transaction class carries an abstract demand vector: CPU work,
//! logical page reads, row touches, rows written, log bytes, and network
//! payload. The engine turns per-second class rates into resource pressure.

use serde::Serialize;

use crate::config::Benchmark;

/// Statement-count profile of one transaction class (how many SELECT /
/// UPDATE / INSERT / DELETE statements it executes). Feeds the DBMS
/// per-statement counters that MySQL's global status would report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StatementProfile {
    /// SELECT statements per transaction.
    pub selects: f64,
    /// UPDATE statements per transaction.
    pub updates: f64,
    /// INSERT statements per transaction.
    pub inserts: f64,
    /// DELETE statements per transaction.
    pub deletes: f64,
}

/// Abstract per-transaction resource demand.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TxnClass {
    /// Class name (for per-class throughput metrics).
    pub name: &'static str,
    /// CPU work units consumed (same denomination as
    /// [`ServerConfig::core_capacity`](crate::config::ServerConfig)).
    pub cpu_work: f64,
    /// Logical page reads (buffer-pool read requests).
    pub logical_reads: f64,
    /// Individual row read requests (MySQL's `Innodb_rows_read` /
    /// next-row-read style counter; huge for table scans).
    pub row_reads: f64,
    /// Rows written (insert + update + delete).
    pub rows_written: f64,
    /// Redo-log bytes generated, KB.
    pub log_kb: f64,
    /// Network bytes in + out, KB.
    pub net_kb: f64,
    /// Relative weight of this class's lock footprint (how much it
    /// contributes to hot-row contention).
    pub lock_weight: f64,
    /// Statement counts.
    pub statements: StatementProfile,
}

/// A benchmark mix: transaction classes plus their probability weights.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Mix {
    /// The classes.
    pub classes: Vec<TxnClass>,
    /// Probability of each class; sums to 1.
    pub weights: Vec<f64>,
}

impl Mix {
    /// The standard mix for a benchmark.
    pub fn for_benchmark(benchmark: Benchmark) -> Mix {
        match benchmark {
            Benchmark::TpccLike => tpcc_mix(),
            Benchmark::TpceLike => tpce_mix(),
        }
    }

    /// Weighted average of a per-class quantity.
    pub fn average(&self, f: impl Fn(&TxnClass) -> f64) -> f64 {
        self.classes.iter().zip(&self.weights).map(|(c, w)| f(c) * w).sum()
    }

    /// Fraction of executed statements that are reads.
    pub fn read_fraction(&self) -> f64 {
        let reads = self.average(|c| c.statements.selects);
        let writes =
            self.average(|c| c.statements.updates + c.statements.inserts + c.statements.deletes);
        // `> 0.0` instead of `== 0.0`: guards the 0/0 case and maps a NaN
        // statement average to 0.0 rather than propagating it.
        if reads + writes > 0.0 {
            reads / (reads + writes)
        } else {
            0.0
        }
    }

    /// Replace the mix with a single-class mix (used by the Lock Contention
    /// anomaly, which switches to NewOrder-only on one warehouse, §8.2).
    pub fn single_class(&self, name: &str) -> Option<Mix> {
        let class = self.classes.iter().find(|c| c.name == name)?.clone();
        Some(Mix { classes: vec![class], weights: vec![1.0] })
    }
}

/// The TPC-C-like mix: standard weights (45/43/4/4/4).
fn tpcc_mix() -> Mix {
    let classes = vec![
        TxnClass {
            name: "new_order",
            cpu_work: 1.4,
            logical_reads: 46.0,
            row_reads: 60.0,
            rows_written: 12.0,
            log_kb: 4.0,
            net_kb: 2.4,
            lock_weight: 1.0,
            statements: StatementProfile {
                selects: 13.0,
                updates: 11.0,
                inserts: 12.0,
                deletes: 0.0,
            },
        },
        TxnClass {
            name: "payment",
            cpu_work: 0.7,
            logical_reads: 18.0,
            row_reads: 20.0,
            rows_written: 4.0,
            log_kb: 1.5,
            net_kb: 1.0,
            lock_weight: 0.7,
            statements: StatementProfile { selects: 4.0, updates: 3.0, inserts: 1.0, deletes: 0.0 },
        },
        TxnClass {
            name: "order_status",
            cpu_work: 0.5,
            logical_reads: 14.0,
            row_reads: 25.0,
            rows_written: 0.0,
            log_kb: 0.0,
            net_kb: 1.2,
            lock_weight: 0.1,
            statements: StatementProfile { selects: 4.0, updates: 0.0, inserts: 0.0, deletes: 0.0 },
        },
        TxnClass {
            name: "delivery",
            cpu_work: 2.0,
            logical_reads: 60.0,
            row_reads: 130.0,
            rows_written: 30.0,
            log_kb: 6.0,
            net_kb: 0.4,
            lock_weight: 0.9,
            statements: StatementProfile {
                selects: 10.0,
                updates: 20.0,
                inserts: 0.0,
                deletes: 10.0,
            },
        },
        TxnClass {
            name: "stock_level",
            cpu_work: 1.1,
            logical_reads: 90.0,
            row_reads: 380.0,
            rows_written: 0.0,
            log_kb: 0.0,
            net_kb: 0.6,
            lock_weight: 0.05,
            statements: StatementProfile { selects: 2.0, updates: 0.0, inserts: 0.0, deletes: 0.0 },
        },
    ];
    Mix { classes, weights: vec![0.45, 0.43, 0.04, 0.04, 0.04] }
}

/// The TPC-E-like mix: read-intensive brokerage transactions. Roughly 90%
/// of statements are reads, matching the I/O character App. A relies on.
fn tpce_mix() -> Mix {
    let classes = vec![
        TxnClass {
            name: "trade_status",
            cpu_work: 0.6,
            logical_reads: 30.0,
            row_reads: 60.0,
            rows_written: 0.0,
            log_kb: 0.0,
            net_kb: 2.0,
            lock_weight: 0.05,
            statements: StatementProfile { selects: 6.0, updates: 0.0, inserts: 0.0, deletes: 0.0 },
        },
        TxnClass {
            name: "customer_position",
            cpu_work: 0.9,
            logical_reads: 45.0,
            row_reads: 110.0,
            rows_written: 0.0,
            log_kb: 0.0,
            net_kb: 3.0,
            lock_weight: 0.05,
            statements: StatementProfile { selects: 8.0, updates: 0.0, inserts: 0.0, deletes: 0.0 },
        },
        TxnClass {
            name: "market_watch",
            cpu_work: 0.8,
            logical_reads: 55.0,
            row_reads: 200.0,
            rows_written: 0.0,
            log_kb: 0.0,
            net_kb: 1.5,
            lock_weight: 0.02,
            statements: StatementProfile { selects: 3.0, updates: 0.0, inserts: 0.0, deletes: 0.0 },
        },
        TxnClass {
            name: "trade_order",
            cpu_work: 1.6,
            logical_reads: 40.0,
            row_reads: 50.0,
            rows_written: 8.0,
            log_kb: 3.0,
            net_kb: 2.0,
            lock_weight: 0.6,
            statements: StatementProfile { selects: 9.0, updates: 2.0, inserts: 5.0, deletes: 0.0 },
        },
        TxnClass {
            name: "trade_result",
            cpu_work: 1.8,
            logical_reads: 50.0,
            row_reads: 60.0,
            rows_written: 10.0,
            log_kb: 4.0,
            net_kb: 1.0,
            lock_weight: 0.7,
            statements: StatementProfile {
                selects: 10.0,
                updates: 6.0,
                inserts: 3.0,
                deletes: 0.0,
            },
        },
    ];
    Mix { classes, weights: vec![0.30, 0.20, 0.22, 0.15, 0.13] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        for b in [Benchmark::TpccLike, Benchmark::TpceLike] {
            let mix = Mix::for_benchmark(b);
            let sum: f64 = mix.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{b:?} weights sum to {sum}");
            assert_eq!(mix.classes.len(), mix.weights.len());
        }
    }

    #[test]
    fn tpce_is_more_read_intensive_than_tpcc() {
        let tpcc = Mix::for_benchmark(Benchmark::TpccLike).read_fraction();
        let tpce = Mix::for_benchmark(Benchmark::TpceLike).read_fraction();
        assert!(tpce > tpcc + 0.2, "tpce {tpce} vs tpcc {tpcc}");
        assert!(tpce > 0.70);
    }

    #[test]
    fn average_weights_quantities() {
        let mix = Mix { classes: tpcc_mix().classes, weights: vec![1.0, 0.0, 0.0, 0.0, 0.0] };
        assert_eq!(mix.average(|c| c.cpu_work), 1.4);
    }

    #[test]
    fn single_class_restriction() {
        let mix = Mix::for_benchmark(Benchmark::TpccLike);
        let only = mix.single_class("new_order").unwrap();
        assert_eq!(only.classes.len(), 1);
        assert_eq!(only.weights, vec![1.0]);
        assert!(mix.single_class("nope").is_none());
    }
}
