//! Multi-node cluster scenarios: replicated deployments with injectable
//! distributed-systems anomalies.
//!
//! The single-node model of [`crate::scenario`] reproduces the paper's
//! testbed; real deployments of the same workloads run as replicated
//! clusters, and their characteristic failures (replication lag, leader
//! failover, network partitions, cross-node lock convoys, hot shards) have
//! no single-node analogue. This module simulates `n` nodes of the same
//! closed-loop server model, coordinated by a deterministic cluster-level
//! schedule, and merges the per-node metric streams into **one**
//! aligned-tuple [`Dataset`] with node-namespaced attributes
//! (`node0.os_cpu_usage`, …) plus cluster-level aggregates
//! (`cluster.replication_lag_ms`, …) — exactly the shape DBSherlock's
//! predicate machinery already consumes.
//!
//! # Determinism
//!
//! The cluster schedule (who leads, who lags, which link is severed) is
//! computed *before* any node steps, purely from the scenario seed and the
//! injections. Each node then simulates independently from its own
//! seed-derived RNG against that immutable schedule, so the node fan-out
//! can run on any thread count ([`ClusterScenario::run_with_exec`]) and
//! still produce bit-identical streams — the same contract the diagnosis
//! engine's exec layer keeps, and the determinism proptests assert.

use dbsherlock_core::{par_map_indexed, ExecPolicy, SherlockError};
use dbsherlock_telemetry::{AttributeMeta, Dataset, Region, Schema, Value};
use serde::{Deserialize, Serialize};

use crate::anomaly::Perturbation;
use crate::config::{ServerConfig, WorkloadConfig};
use crate::engine::{Engine, TickOutput};
use crate::metrics::metrics_schema;
use crate::noise::NoiseModel;

/// Most nodes a merged schema supports: beyond this the attribute count
/// (≈ 77 per node) stops being a telemetry stream and starts being a
/// predicate-search denial of service.
pub const MAX_NODES: usize = 16;

/// Cluster-level numeric attributes appended after the per-node streams.
pub const CLUSTER_NUMERIC_NAMES: &[&str] = &[
    "cluster.replication_lag_ms",
    "cluster.replication_lag_avg_ms",
    "cluster.partitioned_links",
    "cluster.leader_changes",
    "cluster.cross_node_lock_wait_ms",
    "cluster.shard_imbalance",
];

/// Cluster-level categorical attributes (election and partition state).
pub const CLUSTER_CATEGORICAL_NAMES: &[&str] =
    &["cluster.election_state", "cluster.partition_state"];

/// Shape of a replicated deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes (leader + replicas).
    pub n_nodes: usize,
    /// Synchronous-commit set size, leader included. A write commits once
    /// `replication_factor` nodes hold it, so elections stall commits
    /// cluster-wide.
    pub replication_factor: usize,
    /// Per-node hardware (all nodes identical, like the paper's A3 VMs).
    pub server: ServerConfig,
    /// Total client workload, sharded across the nodes.
    pub workload: WorkloadConfig,
}

impl ClusterConfig {
    /// The default evaluation cluster: three nodes, quorum of two,
    /// TPC-C-like total workload.
    pub fn three_node(workload: WorkloadConfig) -> Self {
        ClusterConfig {
            n_nodes: 3,
            replication_factor: 2,
            server: ServerConfig::default(),
            workload,
        }
    }

    /// Validate the shape, rejecting configurations that a silent clamp
    /// would mask (mirrors the CLI's `parse_region` contract: bad input is
    /// a typed error, not a guess).
    pub fn validate(&self) -> Result<(), SherlockError> {
        if self.n_nodes == 0 {
            return Err(SherlockError::InvalidParam {
                name: "n_nodes",
                value: "0".to_string(),
                reason: "a cluster needs at least one node",
            });
        }
        if self.n_nodes > MAX_NODES {
            return Err(SherlockError::InvalidParam {
                name: "n_nodes",
                value: self.n_nodes.to_string(),
                reason: "exceeds MAX_NODES; the merged schema would dwarf the telemetry",
            });
        }
        if self.replication_factor == 0 {
            return Err(SherlockError::InvalidParam {
                name: "replication_factor",
                value: "0".to_string(),
                reason: "the commit quorum counts the leader itself; must be at least 1",
            });
        }
        if self.replication_factor > self.n_nodes {
            return Err(SherlockError::InvalidParam {
                name: "replication_factor",
                value: format!("{} (n_nodes = {})", self.replication_factor, self.n_nodes),
                reason: "replication factor cannot exceed the node count",
            });
        }
        Ok(())
    }

    /// The workload one node serves: an even shard of the terminals (the
    /// cluster schedule perturbs shares on top of this baseline).
    fn node_workload(&self) -> WorkloadConfig {
        let mut w = self.workload.clone();
        w.terminals = (w.terminals / self.n_nodes as u32).max(1);
        w
    }
}

/// The five distributed anomaly classes, extending Table 1's ten
/// single-node classes (taxonomy after LogDB's failure survey).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClusterAnomalyKind {
    /// A replica's apply stream falls behind the leader's commit stream.
    ReplicationLag,
    /// The leader dies; an election stalls commits, then a new leader
    /// absorbs the failed node's traffic.
    LeaderFailover,
    /// One node is severed from its peers: client timeouts, lag build-up.
    NetworkPartition,
    /// Distributed transactions convoy on remotely-held hot locks.
    LockConvoy,
    /// One shard draws a disproportionate share of the traffic.
    HotShard,
}

impl ClusterAnomalyKind {
    /// All five classes, in a fixed catalog order.
    pub const ALL: [ClusterAnomalyKind; 5] = [
        ClusterAnomalyKind::ReplicationLag,
        ClusterAnomalyKind::LeaderFailover,
        ClusterAnomalyKind::NetworkPartition,
        ClusterAnomalyKind::LockConvoy,
        ClusterAnomalyKind::HotShard,
    ];

    /// Human-readable cause label (doubles as the causal-model cause name,
    /// like [`crate::AnomalyKind::name`]).
    pub fn name(self) -> &'static str {
        match self {
            ClusterAnomalyKind::ReplicationLag => "Replication Lag",
            ClusterAnomalyKind::LeaderFailover => "Leader Failover",
            ClusterAnomalyKind::NetworkPartition => "Network Partition",
            ClusterAnomalyKind::LockConvoy => "Cross-Node Lock Convoy",
            ClusterAnomalyKind::HotShard => "Hot-Shard Skew",
        }
    }

    /// What the injection does to the latent cluster state.
    pub fn description(self) -> &'static str {
        match self {
            ClusterAnomalyKind::ReplicationLag => {
                "one replica's apply rate is throttled; its lag integrates upward"
            }
            ClusterAnomalyKind::LeaderFailover => {
                "the leader fails and restarts; leadership moves and stays moved"
            }
            ClusterAnomalyKind::NetworkPartition => {
                "the last node is severed: client RTT spikes, bandwidth collapses"
            }
            ClusterAnomalyKind::LockConvoy => {
                "every node's accesses converge on remotely-held hot rows"
            }
            ClusterAnomalyKind::HotShard => {
                "node 0's shard receives a surge while the others drain"
            }
        }
    }

    /// Whether the experiment matrix varies this class's *duration*
    /// (paper §8.2). A failover is an instantaneous event whose aftermath
    /// we record, so its matrix varies the start offset instead.
    pub fn duration_controllable(self) -> bool {
        !matches!(self, ClusterAnomalyKind::LeaderFailover)
    }
}

impl std::fmt::Display for ClusterAnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected cluster anomaly over `[start, start + duration)` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterInjection {
    /// Which anomaly.
    pub kind: ClusterAnomalyKind,
    /// First affected tick (relative to recording start).
    pub start: usize,
    /// Length of the fault window, ticks.
    pub duration: usize,
    /// Severity multiplier (1.0 = the calibrated default).
    pub intensity: f64,
}

impl ClusterInjection {
    /// An injection at default intensity.
    pub fn new(kind: ClusterAnomalyKind, start: usize, duration: usize) -> Self {
        ClusterInjection { kind, start, duration, intensity: 1.0 }
    }

    /// Same injection at a different severity.
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        self.intensity = intensity;
        self
    }

    /// Is `tick` inside the fault window?
    pub fn active_at(&self, tick: usize) -> bool {
        tick >= self.start && tick < self.start + self.duration
    }
}

/// A reproducible multi-node experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterScenario {
    /// Cluster shape and total workload.
    pub config: ClusterConfig,
    /// Injected cluster anomalies.
    pub injections: Vec<ClusterInjection>,
    /// Recorded duration in ticks (seconds).
    pub duration: usize,
    /// Unrecorded per-node warm-up ticks.
    pub warmup: usize,
    /// RNG seed; same seed + config, same merged dataset.
    pub seed: u64,
}

/// splitmix64 finalizer: cheap, seedable, well-mixed — used for per-node
/// seed derivation and sub-millisecond deterministic jitter.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic jitter in `[0, span)` from a mixing key.
fn jitter(key: u64, span: f64) -> f64 {
    (mix64(key) >> 11) as f64 / (1u64 << 53) as f64 * span
}

/// Immutable per-tick cluster directive, computed before any node steps.
#[derive(Debug, Clone)]
struct ClusterTick {
    /// Current leader node.
    leader: usize,
    /// An election is in progress (commits stall cluster-wide).
    electing: bool,
    /// 1.0 on the tick leadership moved, else 0.0.
    leader_changes: f64,
    /// Severed node and severity, if a partition is active.
    partitioned: Option<(usize, f64)>,
    /// Apply lag per node, ms (the leader's is 0).
    lag_ms: Vec<f64>,
    /// Cross-node lock-convoy severity (0 = none).
    convoy: f64,
    /// Hot-shard severity (0 = none).
    hot: f64,
    /// Node that failed this window (traffic moves off it), if any.
    failed: Option<usize>,
}

impl ClusterScenario {
    /// A scenario over `config` with 30 warm-up ticks.
    pub fn new(config: ClusterConfig, duration: usize, seed: u64) -> Self {
        ClusterScenario { config, injections: Vec::new(), duration, warmup: 30, seed }
    }

    /// Add one injection (builder style).
    pub fn with_injection(mut self, injection: ClusterInjection) -> Self {
        self.injections.push(injection);
        self
    }

    /// Validate the whole scenario: the cluster shape, the recording
    /// length, and the fault windows. Interventional re-runs attribute a
    /// symptom to *one* fault, so overlapping windows are rejected rather
    /// than silently merged the way single-node scenarios union them.
    pub fn validate(&self) -> Result<(), SherlockError> {
        self.config.validate()?;
        if self.duration == 0 {
            return Err(SherlockError::InvalidParam {
                name: "duration",
                value: "0".to_string(),
                reason: "a scenario must record at least one tick",
            });
        }
        for inj in &self.injections {
            if inj.duration == 0 {
                return Err(SherlockError::InvalidParam {
                    name: "injections",
                    value: format!("{} at tick {}", inj.kind, inj.start),
                    reason: "fault window is empty",
                });
            }
        }
        let mut windows: Vec<(usize, usize, ClusterAnomalyKind)> =
            self.injections.iter().map(|i| (i.start, i.start + i.duration, i.kind)).collect();
        windows.sort_unstable_by_key(|&(start, end, _)| (start, end));
        for pair in windows.windows(2) {
            let [(a_start, a_end, a_kind), (b_start, _, b_kind)] = *pair else { continue };
            if b_start < a_end {
                return Err(SherlockError::InvalidParam {
                    name: "injections",
                    value: format!(
                        "{a_kind} [{a_start}..{a_end}) overlaps {b_kind} starting at {b_start}"
                    ),
                    reason: "fault windows overlap; each symptom must be attributable to one fault",
                });
            }
        }
        Ok(())
    }

    /// Run serially with the default noise model.
    pub fn run(&self) -> Result<ClusterLabeledDataset, SherlockError> {
        self.run_with(NoiseModel::default(), ExecPolicy::Serial)
    }

    /// Run with the node fan-out on `policy`'s thread budget. Output is
    /// bit-identical across policies.
    pub fn run_with_exec(
        &self,
        policy: ExecPolicy,
    ) -> Result<ClusterLabeledDataset, SherlockError> {
        self.run_with(NoiseModel::default(), policy)
    }

    /// Run with a custom noise model and exec policy.
    pub fn run_with(
        &self,
        noise: NoiseModel,
        policy: ExecPolicy,
    ) -> Result<ClusterLabeledDataset, SherlockError> {
        self.validate()?;
        let n = self.config.n_nodes;
        let schedule = self.coordination();
        let nodes: Vec<usize> = (0..n).collect();
        let traces: Vec<Vec<TickOutput>> =
            par_map_indexed(policy, &nodes, |_, &node| self.run_node(node, &schedule, noise));
        self.assemble(&schedule, &traces)
    }

    /// Derive the per-tick cluster directives from seed + injections.
    /// Pure function of the scenario — shared read-only by every node.
    fn coordination(&self) -> Vec<ClusterTick> {
        let n = self.config.n_nodes;
        let mut leader = 0usize;
        let mut failed: Option<usize> = None;
        // Latent apply backlog per node, decaying geometrically.
        let mut backlog = vec![0.0f64; n];
        let mut schedule = Vec::with_capacity(self.duration);
        for tick in 0..self.duration {
            let mut electing = false;
            let mut leader_changes = 0.0;
            let mut partitioned = None;
            let mut convoy = 0.0;
            let mut hot = 0.0;
            let mut growth = vec![0.0f64; n];
            for inj in self.injections.iter().filter(|i| i.active_at(tick)) {
                let s = inj.intensity;
                match inj.kind {
                    ClusterAnomalyKind::ReplicationLag => {
                        // The replica "furthest" from the leader lags.
                        let lagging = (leader + n - 1) % n;
                        if lagging != leader {
                            if let Some(g) = growth.get_mut(lagging) {
                                *g += 260.0 * s;
                            }
                        }
                    }
                    ClusterAnomalyKind::LeaderFailover => {
                        electing = true;
                        if tick == inj.start && n > 1 {
                            failed = Some(leader);
                            leader = (leader + 1) % n;
                            leader_changes = 1.0;
                        }
                        // The log stream stalls while the election runs.
                        for (node, g) in growth.iter_mut().enumerate() {
                            if node != leader {
                                *g += 70.0 * s;
                            }
                        }
                    }
                    ClusterAnomalyKind::NetworkPartition => {
                        if n > 1 {
                            let isolated = n - 1;
                            partitioned = Some((isolated, s));
                            if isolated != leader {
                                if let Some(g) = growth.get_mut(isolated) {
                                    *g += 190.0 * s;
                                }
                            }
                        }
                    }
                    ClusterAnomalyKind::LockConvoy => convoy += s,
                    ClusterAnomalyKind::HotShard => hot += s,
                }
            }
            // A failed node stays "failed" only while its window is open.
            if !self
                .injections
                .iter()
                .any(|i| i.kind == ClusterAnomalyKind::LeaderFailover && i.active_at(tick))
            {
                failed = None;
            }
            let lag_ms: Vec<f64> = backlog
                .iter_mut()
                .zip(&growth)
                .enumerate()
                .map(|(node, (carry, grown))| {
                    *carry = *carry * 0.55 + grown;
                    if node == leader {
                        *carry = 0.0;
                        0.0
                    } else {
                        // Healthy replicas still show a few ms of jitter, as
                        // real replication monitors do.
                        let base = 2.0
                            + jitter(
                                self.seed ^ ((tick as u64) << 20) ^ ((node as u64) << 4) ^ 0xA11A,
                                6.0,
                            );
                        base + *carry
                    }
                })
                .collect();
            schedule.push(ClusterTick {
                leader,
                electing,
                leader_changes,
                partitioned,
                lag_ms,
                convoy,
                hot,
                failed,
            });
        }
        schedule
    }

    /// Simulate one node's full time series against the shared schedule.
    fn run_node(
        &self,
        node: usize,
        schedule: &[ClusterTick],
        noise: NoiseModel,
    ) -> Vec<TickOutput> {
        let node_seed = mix64(self.seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let workload = self.config.node_workload();
        let mut engine =
            Engine::new(self.config.server.clone(), workload.clone(), noise, node_seed);
        for _ in 0..self.warmup {
            engine.step(&Perturbation::default());
        }
        let base_mix = engine.base_mix().clone();
        let node_terminals = workload.terminals as f64;
        schedule
            .iter()
            .map(|tick| {
                let mut p = Perturbation::default();
                let is_leader = tick.leader == node;
                // Replication fan-out: the leader ships its log to every
                // replica; a tiny steady cost that scales with cluster size.
                if is_leader {
                    p.external_net_mb += 1.5 * (self.config.n_nodes as f64 - 1.0);
                }
                // Election: commits need a quorum, so every node's clients
                // stall, and the candidates burn CPU on the vote rounds.
                if tick.electing {
                    p.rate_multiplier *= 0.25;
                    p.external_cpu += 220.0;
                }
                // A freshly failed node restarts: barely serving, replaying
                // its log from disk.
                if tick.failed == Some(node) {
                    p.rate_multiplier *= 0.15;
                    p.external_disk_mb += 40.0;
                } else if tick.failed.is_some() && is_leader {
                    // The new leader absorbs the failed node's share.
                    p.extra_terminals += node_terminals;
                }
                // Apply backlog: a lagging replica works through its queue —
                // extra apply I/O and CPU proportional to the backlog.
                let lag = tick.lag_ms.get(node).copied().unwrap_or(0.0);
                if lag > 20.0 {
                    p.external_disk_iops += lag * 1.1;
                    p.external_cpu += lag * 0.6;
                    p.bulk_insert_rows += lag * 14.0;
                }
                // Partition: the severed node's clients time out and retry.
                if let Some((isolated, s)) = tick.partitioned {
                    if isolated == node {
                        p.added_rtt_ms += 320.0 * s;
                        p.net_bandwidth_cap_mb = Some(8.0 / s.max(0.5));
                        p.rate_multiplier *= 0.4;
                    } else if is_leader {
                        // The leader retransmits into the void.
                        p.external_net_mb += 6.0 * s;
                    }
                }
                // Cross-node lock convoy: every node's accesses converge on
                // the same hot rows, and each grant pays a network hop.
                if tick.convoy > 0.0 {
                    let c = tick.convoy;
                    p.skew_override = Some(0.9_f64.min(0.55 + 0.3 * c));
                    p.added_rtt_ms += 14.0 * c;
                    if p.mix_override.is_none() {
                        p.mix_override = base_mix
                            .single_class("new_order")
                            .or_else(|| base_mix.single_class("trade_order"));
                    }
                }
                // Hot shard: node 0 surges, the rest drain.
                if tick.hot > 0.0 {
                    let h = tick.hot;
                    if node == 0 {
                        p.extra_terminals += node_terminals * 1.3 * h;
                        p.skew_override = Some(0.85_f64.min(0.5 + 0.35 * h));
                    } else {
                        p.rate_multiplier *= (1.0 - 0.3 * h.min(1.0)).max(0.2);
                    }
                }
                engine.step(&p)
            })
            .collect()
    }

    /// Merge the node traces + schedule into one labeled dataset.
    fn assemble(
        &self,
        schedule: &[ClusterTick],
        traces: &[Vec<TickOutput>],
    ) -> Result<ClusterLabeledDataset, SherlockError> {
        let n = self.config.n_nodes;
        let node_schema = metrics_schema();
        let per_node = node_schema.len();
        let node_numeric =
            node_schema.ids_of_kind(dbsherlock_telemetry::AttributeKind::Numeric).len();
        let mut dataset = Dataset::new(cluster_metrics_schema(n)?);
        for (tick, directive) in schedule.iter().enumerate() {
            let mut values: Vec<Value> = Vec::with_capacity(per_node * n + 8);
            for (node, trace) in traces.iter().enumerate() {
                let Some(out) = trace.get(tick) else { continue };
                values.extend(out.numeric.values().into_iter().map(Value::Num));
                for (offset, label) in out.categorical.labels().iter().enumerate() {
                    let attr_id = node * per_node + node_numeric + offset;
                    values.push(dataset.intern(attr_id, label)?);
                }
            }
            // Cluster-level numerics, in CLUSTER_NUMERIC_NAMES order.
            let replica_lags: Vec<f64> = directive
                .lag_ms
                .iter()
                .enumerate()
                .filter(|&(node, _)| node != directive.leader)
                .map(|(_, lag)| *lag)
                .collect();
            let lag_max = replica_lags.iter().copied().fold(0.0f64, f64::max);
            let lag_avg = if replica_lags.is_empty() {
                0.0
            } else {
                replica_lags.iter().sum::<f64>() / replica_lags.len() as f64
            };
            let severed = match directive.partitioned {
                Some(_) => (n - 1) as f64,
                None => 0.0,
            };
            let lock_wait =
                directive.convoy * 85.0 + jitter(self.seed ^ ((tick as u64) << 18) ^ 0x10CC, 3.0);
            let tps: Vec<f64> = traces
                .iter()
                .filter_map(|t| t.get(tick))
                .map(|o| o.numeric.txn_throughput)
                .collect();
            let total_tps: f64 = tps.iter().sum();
            let imbalance = if total_tps > 0.0 {
                tps.iter().copied().fold(0.0f64, f64::max) * n as f64 / total_tps
            } else {
                1.0
            };
            for v in [lag_max, lag_avg, severed, directive.leader_changes, lock_wait, imbalance] {
                values.push(Value::Num(v));
            }
            // Cluster-level categoricals.
            let base = n * per_node + CLUSTER_NUMERIC_NAMES.len();
            let election = if directive.electing { "electing" } else { "steady" };
            let partition =
                if directive.partitioned.is_some() { "partitioned" } else { "connected" };
            values.push(dataset.intern(base, election)?);
            values.push(dataset.intern(base + 1, partition)?);
            dataset.push_row(tick as f64, &values)?;
        }
        Ok(ClusterLabeledDataset { data: dataset, injections: self.injections.clone() })
    }
}

/// Build the merged cluster schema: each node's full telemetry under a
/// `node<i>.` namespace, then the cluster-level aggregates.
pub fn cluster_metrics_schema(n_nodes: usize) -> Result<Schema, SherlockError> {
    if n_nodes == 0 || n_nodes > MAX_NODES {
        return Err(SherlockError::InvalidParam {
            name: "n_nodes",
            value: n_nodes.to_string(),
            reason: "cluster schema needs 1..=MAX_NODES nodes",
        });
    }
    let node_schema = metrics_schema();
    let mut merged = Schema::new();
    for node in 0..n_nodes {
        merged.push_namespaced(&format!("node{node}"), &node_schema)?;
    }
    for name in CLUSTER_NUMERIC_NAMES {
        merged.push(AttributeMeta::numeric(*name))?;
    }
    for name in CLUSTER_CATEGORICAL_NAMES {
        merged.push(AttributeMeta::categorical(*name))?;
    }
    Ok(merged)
}

/// A merged cluster dataset plus its ground-truth anomaly labels
/// (the multi-node sibling of [`crate::LabeledDataset`]).
#[derive(Debug, Clone)]
pub struct ClusterLabeledDataset {
    /// The merged, node-namespaced aligned telemetry.
    pub data: Dataset,
    /// The injections that produced it.
    pub injections: Vec<ClusterInjection>,
}

impl ClusterLabeledDataset {
    /// Union of all injected anomaly windows, clipped to the dataset.
    pub fn abnormal_region(&self) -> Region {
        let n = self.data.n_rows();
        Region::from_ranges(
            self.injections.iter().map(|inj| inj.start.min(n)..(inj.start + inj.duration).min(n)),
        )
    }

    /// The window of one anomaly kind, if injected.
    pub fn region_of(&self, kind: ClusterAnomalyKind) -> Option<Region> {
        let n = self.data.n_rows();
        let ranges: Vec<_> = self
            .injections
            .iter()
            .filter(|inj| inj.kind == kind)
            .map(|inj| inj.start.min(n)..(inj.start + inj.duration).min(n))
            .collect();
        if ranges.is_empty() {
            None
        } else {
            Some(Region::from_ranges(ranges))
        }
    }

    /// Everything not abnormal.
    pub fn normal_region(&self) -> Region {
        self.abnormal_region().complement(self.data.n_rows())
    }

    /// Distinct anomaly kinds present, in catalog order.
    pub fn kinds(&self) -> Vec<ClusterAnomalyKind> {
        let mut kinds: Vec<ClusterAnomalyKind> = self.injections.iter().map(|i| i.kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }
}

/// Window lengths the cluster matrix varies over (a reduced version of the
/// single-node [`crate::VARIATIONS`] — cluster runs cost `n_nodes` engine
/// steps per tick).
pub const CLUSTER_VARIATIONS: &[usize] = &[30, 40, 50, 60, 70];

/// Ticks of normal activity surrounding the fault in a standard cluster
/// scenario (matches the single-node corpus).
pub const CLUSTER_NORMAL_SECS: usize = 120;

/// The standard experiment cell for (kind, variant): a three-node cluster
/// with one fault window, `variant` varying the duration (or the start, for
/// classes whose duration is not controllable) and the seed/intensity.
pub fn standard_cluster_scenario(
    kind: ClusterAnomalyKind,
    variant: usize,
    corpus_seed: u64,
) -> ClusterScenario {
    let slot = variant % CLUSTER_VARIATIONS.len();
    // sherlock-lint: allow(panic-path): slot < len by the modulo above
    let vary = CLUSTER_VARIATIONS[slot];
    let (start, duration) = if kind.duration_controllable() { (60, vary) } else { (vary, 40) };
    let kind_idx = ClusterAnomalyKind::ALL.iter().position(|&k| k == kind).unwrap_or(0);
    let seed = mix64(
        corpus_seed
            .wrapping_mul(0xD1B5_4A32_D192_ED03)
            .wrapping_add((kind_idx as u64) * 131)
            .wrapping_add(variant as u64 + 1),
    );
    // ±15% severity spread, so merged models see the same class at
    // different magnitudes (paper §8.4's training-set diversity).
    let intensity = 0.85 + jitter(seed ^ 0x51DE, 0.3);
    let config = ClusterConfig::three_node(WorkloadConfig::tpcc_default());
    ClusterScenario::new(config, CLUSTER_NORMAL_SECS + start.max(60) + duration - 60, seed)
        .with_injection(ClusterInjection::new(kind, start, duration).with_intensity(intensity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    fn quick_config() -> ClusterConfig {
        let mut workload = WorkloadConfig::tpcc_default();
        workload.terminals = 48;
        ClusterConfig::three_node(workload)
    }

    fn quick_scenario(kind: ClusterAnomalyKind) -> ClusterScenario {
        ClusterScenario::new(quick_config(), 120, 7)
            .with_injection(ClusterInjection::new(kind, 50, 40))
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut config = quick_config();
        config.n_nodes = 0;
        assert!(matches!(
            config.validate(),
            Err(SherlockError::InvalidParam { name: "n_nodes", .. })
        ));
        let mut config = quick_config();
        config.replication_factor = 4;
        assert!(matches!(
            config.validate(),
            Err(SherlockError::InvalidParam { name: "replication_factor", .. })
        ));
        let mut config = quick_config();
        config.replication_factor = 0;
        assert!(config.validate().is_err());
        let mut config = quick_config();
        config.n_nodes = MAX_NODES + 1;
        assert!(config.validate().is_err());
        assert!(quick_config().validate().is_ok());
    }

    #[test]
    fn validation_rejects_overlapping_windows() {
        let scenario = ClusterScenario::new(quick_config(), 120, 1)
            .with_injection(ClusterInjection::new(ClusterAnomalyKind::LockConvoy, 40, 30))
            .with_injection(ClusterInjection::new(ClusterAnomalyKind::HotShard, 60, 20));
        let err = scenario.validate().unwrap_err();
        assert!(matches!(err, SherlockError::InvalidParam { name: "injections", .. }));
        assert!(err.to_string().contains("overlap"), "{err}");
        // Back-to-back windows are fine.
        let scenario = ClusterScenario::new(quick_config(), 120, 1)
            .with_injection(ClusterInjection::new(ClusterAnomalyKind::LockConvoy, 40, 20))
            .with_injection(ClusterInjection::new(ClusterAnomalyKind::HotShard, 60, 20));
        assert!(scenario.validate().is_ok());
        // Zero-length windows and zero durations are typed errors, not clamps.
        let scenario = ClusterScenario::new(quick_config(), 120, 1)
            .with_injection(ClusterInjection::new(ClusterAnomalyKind::HotShard, 60, 0));
        assert!(scenario.validate().is_err());
        assert!(ClusterScenario::new(quick_config(), 0, 1).validate().is_err());
    }

    #[test]
    fn run_merges_all_node_streams() {
        let labeled = quick_scenario(ClusterAnomalyKind::HotShard).run().unwrap();
        assert_eq!(labeled.data.n_rows(), 120);
        let schema = labeled.data.schema();
        assert_eq!(schema.len(), cluster_metrics_schema(3).unwrap().len());
        assert!(schema.id_of("node0.os_cpu_usage").is_some());
        assert!(schema.id_of("node2.txn_throughput").is_some());
        assert!(schema.id_of("cluster.replication_lag_ms").is_some());
        assert!(schema.id_of("cluster.partition_state").is_some());
        assert_eq!(labeled.abnormal_region().intervals(), vec![50..90]);
        assert_eq!(labeled.kinds(), vec![ClusterAnomalyKind::HotShard]);
        assert!(labeled.region_of(ClusterAnomalyKind::ReplicationLag).is_none());
    }

    #[test]
    fn run_rejects_invalid_scenarios() {
        let mut scenario = quick_scenario(ClusterAnomalyKind::HotShard);
        scenario.config.replication_factor = 9;
        assert!(scenario.run().is_err());
    }

    /// Mean of a column over a region.
    fn region_mean(labeled: &ClusterLabeledDataset, attr: &str, region: &Region) -> f64 {
        let col = labeled.data.numeric_by_name(attr).unwrap();
        let idx = region.indices();
        idx.iter().map(|&i| col[i]).sum::<f64>() / idx.len() as f64
    }

    #[test]
    fn replication_lag_moves_the_lag_column() {
        let labeled = quick_scenario(ClusterAnomalyKind::ReplicationLag).run().unwrap();
        let abnormal =
            region_mean(&labeled, "cluster.replication_lag_ms", &labeled.abnormal_region());
        let normal = region_mean(&labeled, "cluster.replication_lag_ms", &labeled.normal_region());
        assert!(abnormal > normal * 5.0, "lag: normal {normal:.1} abnormal {abnormal:.1}");
    }

    #[test]
    fn partition_hurts_the_isolated_node_only() {
        let labeled = quick_scenario(ClusterAnomalyKind::NetworkPartition).run().unwrap();
        let abnormal = labeled.abnormal_region();
        let normal = labeled.normal_region();
        let hurt = region_mean(&labeled, "node2.txn_avg_latency_ms", &abnormal)
            / region_mean(&labeled, "node2.txn_avg_latency_ms", &normal);
        let fine = region_mean(&labeled, "node1.txn_avg_latency_ms", &abnormal)
            / region_mean(&labeled, "node1.txn_avg_latency_ms", &normal);
        assert!(hurt > 2.0, "isolated node latency ratio {hurt:.2}");
        assert!(fine < hurt / 2.0, "healthy node ratio {fine:.2} vs isolated {hurt:.2}");
        assert!(region_mean(&labeled, "cluster.partitioned_links", &abnormal) > 1.0);
    }

    #[test]
    fn failover_changes_the_leader_and_stalls_commits() {
        let labeled = quick_scenario(ClusterAnomalyKind::LeaderFailover).run().unwrap();
        let changes = labeled.data.numeric_by_name("cluster.leader_changes").unwrap();
        assert_eq!(changes.iter().filter(|&&c| c > 0.5).count(), 1);
        assert!(changes[50] > 0.5, "leadership moves at the window start");
        // Throughput craters during the election.
        let tps = region_mean(&labeled, "node0.txn_throughput", &labeled.abnormal_region());
        let healthy = region_mean(&labeled, "node0.txn_throughput", &labeled.normal_region());
        assert!(tps < healthy * 0.6, "election tps {tps:.1} vs healthy {healthy:.1}");
    }

    #[test]
    fn hot_shard_skews_throughput_shares() {
        let labeled = quick_scenario(ClusterAnomalyKind::HotShard).run().unwrap();
        let imbalance =
            region_mean(&labeled, "cluster.shard_imbalance", &labeled.abnormal_region());
        let baseline = region_mean(&labeled, "cluster.shard_imbalance", &labeled.normal_region());
        assert!(imbalance > baseline * 1.2, "imbalance {imbalance:.2} baseline {baseline:.2}");
    }

    #[test]
    fn lock_convoy_raises_cross_node_waits_everywhere() {
        let labeled = quick_scenario(ClusterAnomalyKind::LockConvoy).run().unwrap();
        let abnormal = labeled.abnormal_region();
        let normal = labeled.normal_region();
        assert!(
            region_mean(&labeled, "cluster.cross_node_lock_wait_ms", &abnormal)
                > region_mean(&labeled, "cluster.cross_node_lock_wait_ms", &normal) * 5.0
        );
        for node in 0..3 {
            let attr = format!("node{node}.dbms_lock_wait_ms");
            if labeled.data.schema().id_of(&attr).is_some() {
                assert!(
                    region_mean(&labeled, &attr, &abnormal) > region_mean(&labeled, &attr, &normal),
                    "{attr} should rise during the convoy"
                );
            }
        }
    }

    #[test]
    fn exec_policies_are_bit_identical() {
        let scenario = quick_scenario(ClusterAnomalyKind::ReplicationLag);
        let serial = scenario.run_with(NoiseModel::default(), ExecPolicy::Serial).unwrap();
        let threaded = scenario.run_with(NoiseModel::default(), ExecPolicy::Threads(4)).unwrap();
        for (id, attr) in serial.data.schema().iter() {
            if attr.kind == dbsherlock_telemetry::AttributeKind::Numeric {
                assert_eq!(
                    serial.data.numeric(id).unwrap(),
                    threaded.data.numeric(id).unwrap(),
                    "attr {} differs across exec policies",
                    attr.name
                );
            }
        }
    }

    #[test]
    fn standard_cells_cover_the_catalog() {
        for kind in ClusterAnomalyKind::ALL {
            let scenario = standard_cluster_scenario(kind, 1, 0xC1);
            assert!(scenario.validate().is_ok(), "{kind}");
            assert_eq!(scenario.injections.len(), 1);
            assert!(scenario.injections[0].intensity > 0.7);
            assert!(scenario.duration > scenario.injections[0].start);
        }
        // Different variants get different seeds and windows.
        let a = standard_cluster_scenario(ClusterAnomalyKind::HotShard, 0, 0xC1);
        let b = standard_cluster_scenario(ClusterAnomalyKind::HotShard, 1, 0xC1);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.injections[0].duration, b.injections[0].duration);
    }
}
