//! Buffer-pool dynamics: hit ratio, dirty-page accumulation, flushing.
//!
//! The paper's §2.4 example is exactly this sub-model: "with a small buffer
//! pool, dirty pages are flushed to disk frequently. Thus, when the number
//! of concurrent transactions spikes, the pages may be flushed even more
//! frequently. The increase in disk IOs may then affect transaction
//! latencies."

/// InnoDB-style buffer-pool model, advanced once per one-second tick.
#[derive(Debug, Clone)]
pub struct BufferPool {
    /// Total pages in the pool.
    pub total_pages: f64,
    /// Currently dirty pages.
    pub dirty_pages: f64,
    /// Fraction of the working set resident (drives the hit ratio).
    resident_fraction: f64,
    /// Background flush capacity, pages per second.
    flush_capacity: f64,
    /// Dirty-page fraction that triggers aggressive flushing.
    high_watermark: f64,
}

/// What the pool did during one tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolTick {
    /// Buffer-pool read requests (logical reads offered).
    pub read_requests: f64,
    /// Physical page reads (misses).
    pub physical_reads: f64,
    /// Pages flushed to disk this tick.
    pub flushed_pages: f64,
    /// Dirty pages at end of tick.
    pub dirty_pages: f64,
    /// Hit ratio in `[0, 1]`.
    pub hit_ratio: f64,
    /// Free (clean, evictable) pages.
    pub free_pages: f64,
}

impl BufferPool {
    /// Create a pool of `pool_mb` megabytes with `page_kb` pages, caching a
    /// working set of `data_mb` megabytes.
    pub fn new(pool_mb: f64, page_kb: f64, data_mb: f64) -> Self {
        let total_pages = (pool_mb * 1024.0 / page_kb).max(1.0);
        // Residency saturates as the pool approaches the data size. The 3x
        // factor models access locality: a pool 1/3 the data size already
        // captures most of the hot set.
        let resident_fraction = (3.0 * pool_mb / data_mb.max(1.0)).min(1.0);
        BufferPool {
            total_pages,
            dirty_pages: 0.0,
            resident_fraction,
            flush_capacity: total_pages * 0.004,
            high_watermark: 0.75,
        }
    }

    /// Steady-state hit ratio implied by residency.
    ///
    /// OLTP access is highly skewed, so even a pool far smaller than the
    /// data keeps the hot set resident: the base miss rate is a few
    /// percent, shrinking linearly as residency grows.
    pub fn hit_ratio(&self) -> f64 {
        (1.0 - 0.06 * (1.0 - self.resident_fraction)).min(0.998)
    }

    /// Advance one second: `logical_reads` page requests arrive and
    /// `pages_dirtied` pages are written. `forced_flush` demands an
    /// immediate checkpoint of that many pages on top of background
    /// flushing (used by the Flush Log/Table anomaly and log rotation).
    pub fn tick(&mut self, logical_reads: f64, pages_dirtied: f64, forced_flush: f64) -> PoolTick {
        let hit_ratio = self.hit_ratio();
        let physical_reads = logical_reads * (1.0 - hit_ratio);
        self.dirty_pages = (self.dirty_pages + pages_dirtied).min(self.total_pages);

        // Adaptive flushing: a baseline rate plus a term proportional to
        // the dirty backlog (InnoDB's adaptive flushing similarly targets
        // a flush rate matching the redo generation rate), so sustained
        // write pressure reaches a flushed≈dirtied equilibrium within
        // tens of seconds instead of stalling until a watermark cliff.
        let mut flush_rate = self.flush_capacity + self.dirty_pages * 0.05;
        let dirty_fraction = self.dirty_pages / self.total_pages;
        if dirty_fraction > self.high_watermark {
            // Emergency ramp past the watermark.
            let pressure = (dirty_fraction - self.high_watermark) / (1.0 - self.high_watermark);
            flush_rate += self.flush_capacity * 8.0 * pressure;
        }
        let flushed = (flush_rate + forced_flush).min(self.dirty_pages);
        self.dirty_pages -= flushed;

        PoolTick {
            read_requests: logical_reads,
            physical_reads,
            flushed_pages: flushed,
            dirty_pages: self.dirty_pages,
            hit_ratio,
            free_pages: (self.total_pages - self.dirty_pages).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_pool_hits_more() {
        let small = BufferPool::new(512.0, 16.0, 50_000.0);
        let large = BufferPool::new(8192.0, 16.0, 50_000.0);
        assert!(large.hit_ratio() > small.hit_ratio());
        assert!(small.hit_ratio() > 0.5);
        assert!(large.hit_ratio() <= 0.998);
    }

    #[test]
    fn pool_covering_data_is_near_perfect() {
        let pool = BufferPool::new(50_000.0, 16.0, 50_000.0);
        assert!(pool.hit_ratio() > 0.99);
    }

    #[test]
    fn dirty_pages_accumulate_and_flush() {
        let mut pool = BufferPool::new(4096.0, 16.0, 50_000.0);
        let t1 = pool.tick(1000.0, 5000.0, 0.0);
        assert!(t1.dirty_pages > 0.0);
        assert!(t1.flushed_pages > 0.0);
        // With no new writes, dirty pages drain monotonically.
        let mut prev = t1.dirty_pages;
        for _ in 0..50 {
            let t = pool.tick(1000.0, 0.0, 0.0);
            assert!(t.dirty_pages <= prev);
            prev = t.dirty_pages;
        }
        assert!(prev < t1.dirty_pages);
    }

    #[test]
    fn watermark_triggers_aggressive_flushing() {
        let mut pool = BufferPool::new(64.0, 16.0, 50_000.0);
        // Saturate dirty pages.
        pool.tick(0.0, pool.total_pages * 2.0, 0.0);
        let aggressive = pool.tick(0.0, pool.total_pages, 0.0);
        let mut calm_pool = BufferPool::new(64.0, 16.0, 50_000.0);
        let calm = calm_pool.tick(0.0, 1.0, 0.0);
        assert!(aggressive.flushed_pages > calm.flushed_pages * 4.0);
    }

    #[test]
    fn forced_flush_drains_immediately() {
        let mut pool = BufferPool::new(4096.0, 16.0, 50_000.0);
        pool.tick(0.0, 10_000.0, 0.0);
        let dirty_before = pool.dirty_pages;
        let t = pool.tick(0.0, 0.0, dirty_before);
        assert!(t.dirty_pages < 1e-9);
        assert!(t.flushed_pages >= dirty_before * 0.99);
    }

    #[test]
    fn misses_proportional_to_logical_reads() {
        let mut pool = BufferPool::new(2048.0, 16.0, 50_000.0);
        let a = pool.tick(1000.0, 0.0, 0.0);
        let b = pool.tick(2000.0, 0.0, 0.0);
        assert!((b.physical_reads / a.physical_reads - 2.0).abs() < 1e-9);
    }
}
