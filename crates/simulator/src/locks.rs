//! Lock-contention model.
//!
//! OLTP performance collapses under contention super-linearly: with `n`
//! concurrent transactions touching a hot set of rows, the expected number
//! of conflicts grows roughly with `n²` times the probability that two
//! transactions collide (which access skew concentrates). This captures the
//! paper's Lock Contention anomaly (§8.2: "NewOrder transactions only on a
//! single warehouse and district") and the lock-wait signature of Workload
//! Spike (§1: "an increase in the number of lock waits and running DBMS
//! threads").

/// What the lock manager reports for one tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockTick {
    /// Total lock wait time accumulated across all transactions this
    /// second, in milliseconds (MySQL reports the aggregate, §1).
    pub total_wait_ms: f64,
    /// Number of lock waits that occurred.
    pub lock_waits: f64,
    /// Transactions currently blocked on row locks.
    pub current_waits: f64,
    /// Deadlocks detected this second.
    pub deadlocks: f64,
}

/// Stateless contention model evaluated per tick.
#[derive(Debug, Clone)]
pub struct LockModel {
    /// Mean time a conflicting waiter holds its victim, ms.
    pub mean_hold_ms: f64,
}

impl Default for LockModel {
    fn default() -> Self {
        LockModel { mean_hold_ms: 6.0 }
    }
}

impl LockModel {
    /// Evaluate contention for one second.
    ///
    /// * `concurrency` — transactions in flight (running threads).
    /// * `skew` — fraction of row accesses hitting the hottest partition
    ///   (the [`WorkloadConfig::access_skew`](crate::config::WorkloadConfig)
    ///   knob; the Lock Contention anomaly raises it towards 1).
    /// * `lock_weight` — the mix's average lock footprint per transaction.
    /// * `throughput` — transactions completing this second.
    pub fn tick(&self, concurrency: f64, skew: f64, lock_weight: f64, throughput: f64) -> LockTick {
        let concurrency = concurrency.max(0.0);
        let skew = skew.clamp(0.0, 1.0);
        // Probability a given pair of in-flight transactions conflicts.
        let pair_conflict = (skew * lock_weight).min(1.0);
        // Expected conflicting pairs: n(n-1)/2 * p, softened so that the
        // model stays sane at very high concurrency.
        let pairs = concurrency * (concurrency - 1.0).max(0.0) / 2.0;
        let conflicts = pairs * pair_conflict;
        // Each conflict produces a wait of roughly the hold time, stretched
        // when waiters pile up (convoy effect).
        let convoy = 1.0 + (conflicts / concurrency.max(1.0)).min(20.0);
        let total_wait_ms = conflicts * self.mean_hold_ms * convoy;
        let lock_waits = conflicts.min(throughput.max(0.0) * 4.0);
        let current_waits = (conflicts * self.mean_hold_ms / 1000.0).min(concurrency);
        // Deadlocks are rare even under contention: a small quadratic tail.
        let deadlocks = (pair_conflict * pair_conflict * pairs * 1e-3).min(throughput.max(0.0));
        LockTick { total_wait_ms, lock_waits, current_waits, deadlocks }
    }

    /// Average per-transaction lock wait in ms, given a tick result.
    pub fn per_txn_wait_ms(tick: &LockTick, throughput: f64) -> f64 {
        if throughput <= 0.0 {
            0.0
        } else {
            tick.total_wait_ms / throughput
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_concurrency_no_contention() {
        let m = LockModel::default();
        let t = m.tick(1.0, 0.5, 1.0, 100.0);
        assert_eq!(t.total_wait_ms, 0.0);
        let t = m.tick(0.0, 0.5, 1.0, 0.0);
        assert_eq!(t.total_wait_ms, 0.0);
    }

    #[test]
    fn wait_grows_superlinearly_with_concurrency() {
        let m = LockModel::default();
        let low = m.tick(16.0, 0.05, 0.5, 500.0);
        let high = m.tick(64.0, 0.05, 0.5, 500.0);
        assert!(high.total_wait_ms > low.total_wait_ms * 4.0);
    }

    #[test]
    fn skew_drives_contention() {
        let m = LockModel::default();
        let uniform = m.tick(64.0, 0.01, 0.8, 500.0);
        let skewed = m.tick(64.0, 0.9, 0.8, 500.0);
        assert!(skewed.total_wait_ms > uniform.total_wait_ms * 10.0);
        assert!(skewed.deadlocks > uniform.deadlocks);
    }

    #[test]
    fn read_only_mix_locks_nothing() {
        let m = LockModel::default();
        let t = m.tick(64.0, 0.5, 0.0, 500.0);
        assert_eq!(t.total_wait_ms, 0.0);
    }

    #[test]
    fn per_txn_wait_handles_zero_throughput() {
        let t = LockTick { total_wait_ms: 100.0, ..Default::default() };
        assert_eq!(LockModel::per_txn_wait_ms(&t, 0.0), 0.0);
        assert_eq!(LockModel::per_txn_wait_ms(&t, 50.0), 2.0);
    }

    #[test]
    fn current_waits_bounded_by_concurrency() {
        let m = LockModel::default();
        let t = m.tick(32.0, 1.0, 1.0, 100.0);
        assert!(t.current_waits <= 32.0);
    }
}
