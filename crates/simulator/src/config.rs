//! Server and workload configuration.
//!
//! Defaults mirror the paper's testbed (§8.1): a Microsoft Azure A3-tier
//! instance — 4 cores at 2.1 GHz, 7 GB RAM — running MySQL 5.6 against a
//! TPC-C database of scale factor 500 with 128 terminals.

use serde::{Deserialize, Serialize};

/// Which benchmark-style transaction mix the clients submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// TPC-C-like: write-heavy order-entry mix (5 transaction classes).
    TpccLike,
    /// TPC-E-like: much more read-intensive brokerage mix (paper App. A,
    /// citing Chen et al.'s TPC-E vs TPC-C I/O study).
    TpceLike,
}

/// Static description of the simulated database server.
///
/// These are the *invariants* of the system (paper §2.4): they shape how
/// anomalies manifest but are never themselves reported as causes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Number of CPU cores.
    pub cpu_cores: u32,
    /// Abstract work units one core completes per second. Transaction CPU
    /// demands are denominated in the same units.
    pub core_capacity: f64,
    /// Disk random-I/O capacity, operations per second.
    pub disk_iops: f64,
    /// Disk sequential bandwidth, MB/s.
    pub disk_bandwidth_mb: f64,
    /// Network bandwidth, MB/s (both directions).
    pub network_bandwidth_mb: f64,
    /// Baseline network round-trip time between clients and server, ms.
    pub network_rtt_ms: f64,
    /// Physical memory, MB.
    pub ram_mb: f64,
    /// InnoDB-style buffer pool size, MB.
    pub buffer_pool_mb: f64,
    /// Page size, KB.
    pub page_size_kb: f64,
    /// Redo-log capacity, MB. Filling it forces a rotation.
    pub redo_log_mb: f64,
    /// When false, log rotation triggers a synchronous flush storm
    /// (the paper's footnote 8: hiccups with adaptive flushing disabled).
    pub adaptive_flushing: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cpu_cores: 4,
            core_capacity: 1000.0,
            disk_iops: 2400.0,
            disk_bandwidth_mb: 120.0,
            network_bandwidth_mb: 100.0,
            network_rtt_ms: 0.5,
            ram_mb: 7168.0,
            buffer_pool_mb: 4096.0,
            page_size_kb: 16.0,
            redo_log_mb: 512.0,
            adaptive_flushing: false,
        }
    }
}

/// Client-side workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Transaction mix.
    pub benchmark: Benchmark,
    /// Scale factor (TPC-C warehouses / TPC-E customers ÷ 1000-ish).
    /// Controls the data size relative to the buffer pool.
    pub scale_factor: u32,
    /// Number of simulated client terminals.
    pub terminals: u32,
    /// Mean client think time between transactions, ms.
    pub think_time_ms: f64,
    /// Fraction of row accesses concentrated on the hottest item
    /// (drives lock contention; the Lock Contention anomaly raises it).
    pub access_skew: f64,
}

impl WorkloadConfig {
    /// The paper's default TPC-C setting: scale factor 500 (≈50 GB),
    /// 128 terminals.
    pub fn tpcc_default() -> Self {
        WorkloadConfig {
            benchmark: Benchmark::TpccLike,
            scale_factor: 500,
            terminals: 128,
            think_time_ms: 150.0,
            access_skew: 0.02,
        }
    }

    /// The paper's TPC-E setting (App. A): 3000 customers, ≈50 GB.
    pub fn tpce_default() -> Self {
        WorkloadConfig {
            benchmark: Benchmark::TpceLike,
            scale_factor: 3000,
            terminals: 128,
            think_time_ms: 150.0,
            access_skew: 0.01,
        }
    }

    /// Approximate on-disk data size in MB implied by the scale factor.
    pub fn data_size_mb(&self) -> f64 {
        match self.benchmark {
            // TPC-C: ~100 MB per warehouse (SF 500 ≈ 50 GB, §8.1).
            Benchmark::TpccLike => self.scale_factor as f64 * 100.0,
            // TPC-E: ~16.7 MB per customer-thousandth (3000 ≈ 50 GB).
            Benchmark::TpceLike => self.scale_factor as f64 * 50_000.0 / 3000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_testbed() {
        let s = ServerConfig::default();
        assert_eq!(s.cpu_cores, 4);
        assert_eq!(s.ram_mb, 7168.0);
        let w = WorkloadConfig::tpcc_default();
        assert_eq!(w.scale_factor, 500);
        assert_eq!(w.terminals, 128);
    }

    #[test]
    fn data_sizes_are_about_fifty_gb() {
        let tpcc = WorkloadConfig::tpcc_default().data_size_mb();
        let tpce = WorkloadConfig::tpce_default().data_size_mb();
        assert!((tpcc - 50_000.0).abs() < 1.0);
        assert!((tpce - 50_000.0).abs() < 1.0);
    }

    #[test]
    fn config_serializes() {
        let s = ServerConfig::default();
        let json = serde_json::to_string(&s).unwrap();
        let back: ServerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
