//! Redo-log model: fill, rotation, and rotation-induced flush storms.
//!
//! The paper's running causal-model example (Fig. 6) is "Log Rotation" with
//! effects on latency, disk writes, and CPU wait; footnote 8 notes that in
//! MySQL "log rotations can cause performance hiccups when the adaptive
//! flushing option is disabled". This model reproduces that mechanism: the
//! redo log fills with write traffic and, on rotation without adaptive
//! flushing, forces a synchronous checkpoint of dirty pages.

/// What the redo log did during one tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct RedoTick {
    /// Log bytes written this second, KB.
    pub written_kb: f64,
    /// Log space in use at end of tick, MB.
    pub used_mb: f64,
    /// Fraction of log capacity in use, `[0, 1]`.
    pub used_fraction: f64,
    /// Rotations completed this tick (0 or 1).
    pub rotations: f64,
    /// Synchronous flush demand (pages) imposed on the buffer pool by a
    /// rotation without adaptive flushing.
    pub forced_flush_pages: f64,
}

/// Cyclic redo log.
#[derive(Debug, Clone)]
pub struct RedoLog {
    capacity_mb: f64,
    used_mb: f64,
    adaptive_flushing: bool,
}

impl RedoLog {
    /// New log of `capacity_mb` megabytes.
    pub fn new(capacity_mb: f64, adaptive_flushing: bool) -> Self {
        RedoLog { capacity_mb: capacity_mb.max(1.0), used_mb: 0.0, adaptive_flushing }
    }

    /// Advance one second: `written_kb` of log records arrive;
    /// `dirty_pages` is the buffer pool's current dirty count, used to size
    /// a rotation's forced checkpoint.
    pub fn tick(&mut self, written_kb: f64, dirty_pages: f64) -> RedoTick {
        self.used_mb += written_kb.max(0.0) / 1024.0;
        let mut rotations = 0.0;
        let mut forced_flush_pages = 0.0;
        if self.used_mb >= self.capacity_mb {
            self.used_mb -= self.capacity_mb;
            rotations = 1.0;
            if !self.adaptive_flushing {
                // Synchronous checkpoint: most dirty pages must reach disk
                // before the old log segment can be reused.
                forced_flush_pages = dirty_pages * 0.8;
            }
        }
        RedoTick {
            written_kb: written_kb.max(0.0),
            used_mb: self.used_mb,
            used_fraction: (self.used_mb / self.capacity_mb).clamp(0.0, 1.0),
            rotations,
            forced_flush_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_fills_then_rotates() {
        let mut log = RedoLog::new(1.0, true); // 1 MB capacity
        let t = log.tick(512.0, 100.0); // 0.5 MB
        assert_eq!(t.rotations, 0.0);
        assert!((t.used_fraction - 0.5).abs() < 1e-9);
        let t = log.tick(600.0, 100.0); // crosses 1 MB
        assert_eq!(t.rotations, 1.0);
        assert!(t.used_mb < 1.0);
    }

    #[test]
    fn adaptive_flushing_suppresses_storms() {
        let mut adaptive = RedoLog::new(1.0, true);
        let mut sync = RedoLog::new(1.0, false);
        let a = adaptive.tick(2048.0, 500.0);
        let s = sync.tick(2048.0, 500.0);
        assert_eq!(a.rotations, 1.0);
        assert_eq!(s.rotations, 1.0);
        assert_eq!(a.forced_flush_pages, 0.0);
        assert!(s.forced_flush_pages > 0.0);
    }

    #[test]
    fn negative_writes_ignored() {
        let mut log = RedoLog::new(1.0, true);
        let t = log.tick(-100.0, 0.0);
        assert_eq!(t.written_kb, 0.0);
        assert_eq!(t.used_mb, 0.0);
    }

    #[test]
    fn steady_write_rate_rotates_periodically() {
        let mut log = RedoLog::new(1.0, false);
        let mut rotations = 0.0;
        for _ in 0..100 {
            rotations += log.tick(102.4, 50.0).rotations; // 0.1 MB/s
        }
        // 100 ticks * 0.1 MB = 10 MB through a 1 MB log ≈ 10 rotations.
        assert!((rotations - 10.0).abs() <= 1.0, "rotations = {rotations}");
    }
}
