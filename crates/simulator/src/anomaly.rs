//! The ten anomaly classes of the paper's Table 1, as latent-state
//! perturbations.
//!
//! Each class perturbs the *inputs* of the server model (extra processes,
//! changed mixes, network delays) rather than painting output metrics, so
//! its telemetry signature — and its overlap with other classes' signatures
//! — emerges from the same queueing dynamics as normal operation.

use serde::{Deserialize, Serialize};

use crate::txn::Mix;

/// The ten anomaly classes (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Execute a poorly written JOIN query that scans instead of seeking.
    PoorlyWrittenQuery,
    /// Unnecessary index on insert-heavy tables.
    PoorPhysicalDesign,
    /// Greatly increased rate and client count (128 extra terminals).
    WorkloadSpike,
    /// External processes spinning on write()/unlink()/sync() (stress-ng).
    IoSaturation,
    /// mysqldump of the database to a client over the network.
    DatabaseBackup,
    /// Re-loading a pre-dumped table into the database.
    TableRestore,
    /// External processes stressing the CPU (stress-ng poll()).
    CpuSaturation,
    /// `flush-logs` / `refresh`: flush all tables and logs.
    FlushLogTable,
    /// 300 ms artificial delay on all network traffic (tc).
    NetworkCongestion,
    /// NewOrder-only mix against a single warehouse and district.
    LockContention,
}

impl AnomalyKind {
    /// All ten classes, in Table 1 order.
    pub const ALL: [AnomalyKind; 10] = [
        AnomalyKind::PoorlyWrittenQuery,
        AnomalyKind::PoorPhysicalDesign,
        AnomalyKind::WorkloadSpike,
        AnomalyKind::IoSaturation,
        AnomalyKind::DatabaseBackup,
        AnomalyKind::TableRestore,
        AnomalyKind::CpuSaturation,
        AnomalyKind::FlushLogTable,
        AnomalyKind::NetworkCongestion,
        AnomalyKind::LockContention,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::PoorlyWrittenQuery => "Poorly Written Query",
            AnomalyKind::PoorPhysicalDesign => "Poor Physical Design",
            AnomalyKind::WorkloadSpike => "Workload Spike",
            AnomalyKind::IoSaturation => "I/O Saturation",
            AnomalyKind::DatabaseBackup => "DB Backup",
            AnomalyKind::TableRestore => "Table Restore",
            AnomalyKind::CpuSaturation => "CPU Saturation",
            AnomalyKind::FlushLogTable => "Flush Log/Table",
            AnomalyKind::NetworkCongestion => "Network Congestion",
            AnomalyKind::LockContention => "Lock Contention",
        }
    }

    /// Table 1's description of how the anomaly is induced.
    pub fn description(self) -> &'static str {
        match self {
            AnomalyKind::PoorlyWrittenQuery => {
                "Execute a poorly written JOIN query, which would run efficiently if written properly."
            }
            AnomalyKind::PoorPhysicalDesign => {
                "Create an unnecessary index on tables where mostly INSERT statements are executed."
            }
            AnomalyKind::WorkloadSpike => {
                "Greatly increase the rate of transactions and the number of simulated clients."
            }
            AnomalyKind::IoSaturation => {
                "Spawn multiple processes that spin on write()/unlink()/sync() system calls."
            }
            AnomalyKind::DatabaseBackup => {
                "Dump the database to the client machine over the network."
            }
            AnomalyKind::TableRestore => {
                "Dump the pre-dumped history table back into the database instance."
            }
            AnomalyKind::CpuSaturation => {
                "Spawn multiple processes calling poll() system calls to stress CPU resources."
            }
            AnomalyKind::FlushLogTable => {
                "Flush all tables and logs (mysqladmin 'flush-logs' and 'refresh')."
            }
            AnomalyKind::NetworkCongestion => {
                "Add an artificial 300-millisecond delay to all network traffic."
            }
            AnomalyKind::LockContention => {
                "Execute NewOrder transactions only on a single warehouse and district."
            }
        }
    }

    /// Whether the experiment corpus varies the anomaly's *duration*
    /// (controllable stress) or its *start time* (jobs whose duration the
    /// operator cannot control, e.g. mysqldump — paper §8.2).
    pub fn duration_controllable(self) -> bool {
        !matches!(
            self,
            AnomalyKind::DatabaseBackup | AnomalyKind::TableRestore | AnomalyKind::FlushLogTable
        )
    }
}

/// One injected anomaly occurrence within a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Injection {
    /// Which anomaly.
    pub kind: AnomalyKind,
    /// First affected tick (seconds from scenario start).
    pub start: usize,
    /// Number of affected ticks.
    pub duration: usize,
    /// Relative severity; 1.0 is the paper-like default.
    pub intensity: f64,
}

impl Injection {
    /// Injection with default intensity.
    pub fn new(kind: AnomalyKind, start: usize, duration: usize) -> Self {
        Injection { kind, start, duration, intensity: 1.0 }
    }

    /// Is `tick` inside this injection's window?
    pub fn active_at(&self, tick: usize) -> bool {
        tick >= self.start && tick < self.start + self.duration
    }
}

/// Aggregated latent-state perturbation for one tick; the identity value
/// means "no anomaly active".
#[derive(Debug, Clone)]
pub struct Perturbation {
    /// Additional client terminals (Workload Spike).
    pub extra_terminals: f64,
    /// Multiplier on client request eagerness (shrinks think time).
    pub rate_multiplier: f64,
    /// CPU work units per second consumed by non-DBMS processes.
    pub external_cpu: f64,
    /// Random IOPS consumed by non-DBMS processes.
    pub external_disk_iops: f64,
    /// Sequential disk MB/s consumed by non-DBMS processes.
    pub external_disk_mb: f64,
    /// Network MB/s consumed by non-DBMS processes.
    pub external_net_mb: f64,
    /// Added round-trip latency, ms (Network Congestion).
    pub added_rtt_ms: f64,
    /// Cap on usable network bandwidth, MB/s.
    pub net_bandwidth_cap_mb: Option<f64>,
    /// Override of the access-skew knob (Lock Contention).
    pub skew_override: Option<f64>,
    /// Override of the transaction mix (Lock Contention).
    pub mix_override: Option<Mix>,
    /// Extra row read requests per second from scan-style queries.
    pub scan_row_reads: f64,
    /// Extra logical page reads per second from scan-style queries.
    pub scan_logical_reads: f64,
    /// Extra DBMS CPU work from scan-style queries.
    pub scan_cpu: f64,
    /// Full table scans per second initiated by bad queries.
    pub full_scans: f64,
    /// Multiplier (≥ 1) on per-write maintenance cost (Poor Physical Design).
    pub index_overhead: f64,
    /// Pages the DBMS is forced to flush this tick (Flush Log/Table).
    pub forced_flush_pages: f64,
    /// Table-flush operations this tick.
    pub table_flushes: f64,
    /// Sequential MB/s read by a dump job (DB Backup); also leaves the box
    /// over the network.
    pub dump_read_mb: f64,
    /// Rows per second bulk-inserted by a restore job (Table Restore).
    pub bulk_insert_rows: f64,
}

impl Default for Perturbation {
    fn default() -> Self {
        Perturbation {
            extra_terminals: 0.0,
            rate_multiplier: 1.0,
            external_cpu: 0.0,
            external_disk_iops: 0.0,
            external_disk_mb: 0.0,
            external_net_mb: 0.0,
            added_rtt_ms: 0.0,
            net_bandwidth_cap_mb: None,
            skew_override: None,
            mix_override: None,
            scan_row_reads: 0.0,
            scan_logical_reads: 0.0,
            scan_cpu: 0.0,
            full_scans: 0.0,
            index_overhead: 1.0,
            forced_flush_pages: 0.0,
            table_flushes: 0.0,
            dump_read_mb: 0.0,
            bulk_insert_rows: 0.0,
        }
    }
}

impl Perturbation {
    /// Fold `injection`'s effect for `tick` into this perturbation.
    /// `base_mix` is consulted for mix overrides; `pool_pages` sizes flush
    /// storms.
    pub fn apply(&mut self, injection: &Injection, tick: usize, base_mix: &Mix, pool_pages: f64) {
        if !injection.active_at(tick) {
            return;
        }
        let s = injection.intensity;
        match injection.kind {
            AnomalyKind::PoorlyWrittenQuery => {
                // A JOIN missing its index: enormous row touches and CPU,
                // mostly from buffer-resident pages.
                self.scan_row_reads += 600_000.0 * s;
                self.scan_logical_reads += 14_000.0 * s;
                self.scan_cpu += 2_300.0 * s;
                self.full_scans += 40.0 * s;
            }
            AnomalyKind::PoorPhysicalDesign => {
                // Every insert maintains a useless index: more CPU and
                // dirty pages per write.
                self.index_overhead *= 1.0 + 2.2 * s;
            }
            AnomalyKind::WorkloadSpike => {
                // 128 additional terminals at high request rate (§8.2).
                self.extra_terminals += 128.0 * s;
                self.rate_multiplier *= 1.0 + 2.0 * s;
            }
            AnomalyKind::IoSaturation => {
                self.external_disk_iops += 1_400.0 * s;
                self.external_disk_mb += 30.0 * s;
            }
            AnomalyKind::DatabaseBackup => {
                self.dump_read_mb += 70.0 * s;
            }
            AnomalyKind::TableRestore => {
                self.bulk_insert_rows += 25_000.0 * s;
            }
            AnomalyKind::CpuSaturation => {
                self.external_cpu += 3_400.0 * s;
            }
            AnomalyKind::FlushLogTable => {
                // Flush everything: dirty pages plus table caches.
                self.forced_flush_pages += pool_pages * 0.006 * s;
                self.table_flushes += 30.0 * s;
            }
            AnomalyKind::NetworkCongestion => {
                self.added_rtt_ms += 300.0 * s;
                self.net_bandwidth_cap_mb = Some(match self.net_bandwidth_cap_mb {
                    Some(cap) => cap.min(12.0 / s.max(0.1)),
                    None => 12.0 / s.max(0.1),
                });
            }
            AnomalyKind::LockContention => {
                // All NewOrder on one warehouse/district: extreme skew.
                self.skew_override = Some(0.85_f64.min(0.6 + 0.25 * s));
                if self.mix_override.is_none() {
                    self.mix_override = base_mix
                        .single_class("new_order")
                        .or_else(|| base_mix.single_class("trade_order"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Benchmark;

    #[test]
    fn all_ten_classes_present() {
        assert_eq!(AnomalyKind::ALL.len(), 10);
        let mut names: Vec<&str> = AnomalyKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn injection_window() {
        let inj = Injection::new(AnomalyKind::CpuSaturation, 60, 30);
        assert!(!inj.active_at(59));
        assert!(inj.active_at(60));
        assert!(inj.active_at(89));
        assert!(!inj.active_at(90));
    }

    #[test]
    fn inactive_injection_is_identity() {
        let mix = Mix::for_benchmark(Benchmark::TpccLike);
        let mut p = Perturbation::default();
        let inj = Injection::new(AnomalyKind::WorkloadSpike, 60, 30);
        p.apply(&inj, 10, &mix, 1000.0);
        assert_eq!(p.extra_terminals, 0.0);
        assert_eq!(p.rate_multiplier, 1.0);
    }

    #[test]
    fn workload_spike_adds_terminals() {
        let mix = Mix::for_benchmark(Benchmark::TpccLike);
        let mut p = Perturbation::default();
        p.apply(&Injection::new(AnomalyKind::WorkloadSpike, 0, 10), 5, &mix, 1000.0);
        assert_eq!(p.extra_terminals, 128.0);
        assert!(p.rate_multiplier > 1.0);
    }

    #[test]
    fn lock_contention_switches_mix_and_skew() {
        let mix = Mix::for_benchmark(Benchmark::TpccLike);
        let mut p = Perturbation::default();
        p.apply(&Injection::new(AnomalyKind::LockContention, 0, 10), 0, &mix, 1000.0);
        assert!(p.skew_override.unwrap() > 0.5);
        assert_eq!(p.mix_override.as_ref().unwrap().classes[0].name, "new_order");
    }

    #[test]
    fn lock_contention_falls_back_for_tpce() {
        let mix = Mix::for_benchmark(Benchmark::TpceLike);
        let mut p = Perturbation::default();
        p.apply(&Injection::new(AnomalyKind::LockContention, 0, 10), 0, &mix, 1000.0);
        assert_eq!(p.mix_override.as_ref().unwrap().classes[0].name, "trade_order");
    }

    #[test]
    fn compound_injections_accumulate() {
        let mix = Mix::for_benchmark(Benchmark::TpccLike);
        let mut p = Perturbation::default();
        p.apply(&Injection::new(AnomalyKind::CpuSaturation, 0, 10), 0, &mix, 1000.0);
        p.apply(&Injection::new(AnomalyKind::IoSaturation, 0, 10), 0, &mix, 1000.0);
        p.apply(&Injection::new(AnomalyKind::NetworkCongestion, 0, 10), 0, &mix, 1000.0);
        assert!(p.external_cpu > 0.0);
        assert!(p.external_disk_iops > 0.0);
        assert_eq!(p.added_rtt_ms, 300.0);
        assert!(p.net_bandwidth_cap_mb.is_some());
    }

    #[test]
    fn intensity_scales_effects() {
        let mix = Mix::for_benchmark(Benchmark::TpccLike);
        let mut weak = Perturbation::default();
        let mut strong = Perturbation::default();
        let mut inj = Injection::new(AnomalyKind::CpuSaturation, 0, 10);
        inj.intensity = 0.5;
        weak.apply(&inj, 0, &mix, 1000.0);
        inj.intensity = 2.0;
        strong.apply(&inj, 0, &mix, 1000.0);
        assert!(strong.external_cpu > weak.external_cpu * 3.9);
    }

    #[test]
    fn duration_controllability_split_matches_paper() {
        assert!(AnomalyKind::CpuSaturation.duration_controllable());
        assert!(!AnomalyKind::DatabaseBackup.duration_controllable());
        assert!(!AnomalyKind::FlushLogTable.duration_controllable());
    }
}
