//! The simulator as an intervention backend: re-inject a diagnosed cause
//! and hand the re-run to core's intervention engine.
//!
//! [`ScenarioRunner`] implements
//! [`InterventionRunner`](dbsherlock_core::InterventionRunner) by mapping a
//! ranked cause's *name* back to the fault that induces it — a Table 1
//! [`AnomalyKind`] for single-node incidents, a catalog
//! [`ClusterAnomalyKind`] for cluster incidents — and running a fresh
//! scenario with that fault injected in a fixed window. The paper's testbed
//! cannot do this (nobody re-breaks a production database to check a
//! diagnosis); the simulator substitution makes interventional validation
//! cheap, deterministic, and safe.
//!
//! One runner serves one incident *family* (single-node or cluster),
//! because the no-fault control run must share the incident's schema — the
//! symptom signature's predicates reference its attributes. Causes from the
//! other family report `can_inject == false` and are skipped by the engine
//! (nothing was tested, so no verdict is invented for them); core's
//! promotion then lets interventionally reproduced causes overtake them in
//! the ranking.

use dbsherlock_core::{InterventionRunner, SherlockError, TrialRun};
use dbsherlock_telemetry::Region;

use crate::anomaly::{AnomalyKind, Injection};
use crate::cluster::{ClusterAnomalyKind, ClusterConfig, ClusterInjection, ClusterScenario};
use crate::config::WorkloadConfig;
use crate::scenario::Scenario;

/// Which scenario family the runner re-runs.
#[derive(Debug, Clone)]
enum Family {
    /// Single-node Table 1 scenarios over this workload.
    SingleNode(WorkloadConfig),
    /// Multi-node catalog scenarios over this cluster shape.
    Cluster(ClusterConfig),
}

/// Re-runs simulator scenarios on behalf of core's intervention engine.
///
/// Every trial uses the same fault window (`start..start + fault_secs`), so
/// fault re-runs and controls are region-aligned: the engine scores the
/// symptom signature over the same rows in both, and only the injected
/// dynamics differ. Trials are deterministic in the engine-supplied seed.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    family: Family,
    duration: usize,
    start: usize,
    fault_secs: usize,
}

impl ScenarioRunner {
    /// A runner for single-node incidents: 150-tick re-runs with the fault
    /// active in ticks 60..110 (the corpus's standard window).
    pub fn single_node(workload: WorkloadConfig) -> Self {
        ScenarioRunner {
            family: Family::SingleNode(workload),
            duration: 150,
            start: 60,
            fault_secs: 50,
        }
    }

    /// A runner for cluster incidents, same standard window.
    pub fn cluster(config: ClusterConfig) -> Self {
        ScenarioRunner { family: Family::Cluster(config), duration: 150, start: 60, fault_secs: 50 }
    }

    /// Override the re-run length (builder style).
    pub fn with_duration(mut self, duration: usize) -> Self {
        self.duration = duration;
        self
    }

    /// Override the fault window (builder style).
    pub fn with_window(mut self, start: usize, fault_secs: usize) -> Self {
        self.start = start;
        self.fault_secs = fault_secs;
        self
    }

    /// The would-be fault window, used as the control run's abnormal region.
    fn window(&self) -> Region {
        Region::from_range(self.start..self.start + self.fault_secs)
    }

    /// The Table 1 kind `cause` names, if this is a single-node runner.
    fn single_kind(&self, cause: &str) -> Option<AnomalyKind> {
        match self.family {
            Family::SingleNode(_) => AnomalyKind::ALL.into_iter().find(|k| k.name() == cause),
            Family::Cluster(_) => None,
        }
    }

    /// The cluster-catalog kind `cause` names, if this is a cluster runner.
    fn cluster_kind(&self, cause: &str) -> Option<ClusterAnomalyKind> {
        match self.family {
            Family::Cluster(_) => ClusterAnomalyKind::ALL.into_iter().find(|k| k.name() == cause),
            Family::SingleNode(_) => None,
        }
    }

    /// One re-run with `kind` injected (or a no-fault control for `None`).
    fn run(
        &self,
        single: Option<AnomalyKind>,
        cluster: Option<ClusterAnomalyKind>,
        seed: u64,
    ) -> Result<TrialRun, SherlockError> {
        match &self.family {
            Family::SingleNode(workload) => {
                let mut scenario = Scenario::new(workload.clone(), self.duration, seed);
                if let Some(kind) = single {
                    scenario =
                        scenario.with_injection(Injection::new(kind, self.start, self.fault_secs));
                }
                let labeled = scenario.run();
                let abnormal =
                    if single.is_some() { labeled.abnormal_region() } else { self.window() };
                let normal = abnormal.complement(labeled.data.n_rows());
                Ok(TrialRun { data: labeled.data, abnormal, normal })
            }
            Family::Cluster(config) => {
                let mut scenario = ClusterScenario::new(config.clone(), self.duration, seed);
                if let Some(kind) = cluster {
                    scenario = scenario.with_injection(ClusterInjection::new(
                        kind,
                        self.start,
                        self.fault_secs,
                    ));
                }
                let labeled = scenario.run()?;
                let abnormal =
                    if cluster.is_some() { labeled.abnormal_region() } else { self.window() };
                let normal = abnormal.complement(labeled.data.n_rows());
                Ok(TrialRun { data: labeled.data, abnormal, normal })
            }
        }
    }
}

impl InterventionRunner for ScenarioRunner {
    fn can_inject(&self, cause: &str) -> bool {
        self.single_kind(cause).is_some() || self.cluster_kind(cause).is_some()
    }

    fn inject(&self, cause: &str, seed: u64) -> Result<TrialRun, SherlockError> {
        let single = self.single_kind(cause);
        let cluster = self.cluster_kind(cause);
        if single.is_none() && cluster.is_none() {
            return Err(SherlockError::InvalidParam {
                name: "cause",
                value: cause.to_string(),
                reason: "no simulator fault induces this cause in this runner's family",
            });
        }
        self.run(single, cluster, seed)
    }

    fn control(&self, seed: u64) -> Result<TrialRun, SherlockError> {
        self.run(None, None, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_core::{
        validate_explanation, ExecPolicy, InterventionConfig, Sherlock, SherlockParams,
    };

    fn quick_workload() -> WorkloadConfig {
        WorkloadConfig { terminals: 48, ..WorkloadConfig::tpcc_default() }
    }

    /// Train one merged model per kind, diagnose a held-out incident, and
    /// let the intervention engine sort out which candidate is real.
    #[test]
    fn single_node_intervention_validates_the_true_cause() {
        let kinds = [AnomalyKind::CpuSaturation, AnomalyKind::NetworkCongestion];
        let mut sherlock = Sherlock::new(SherlockParams::default());
        for (i, kind) in kinds.iter().enumerate() {
            let labeled = Scenario::new(quick_workload(), 150, 1000 + i as u64)
                .with_injection(Injection::new(*kind, 60, 50))
                .run();
            let explanation = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);
            sherlock.feedback(kind.name(), &explanation.predicates);
        }

        let incident = Scenario::new(quick_workload(), 150, 777)
            .with_injection(Injection::new(AnomalyKind::CpuSaturation, 60, 50))
            .run();
        let mut explanation = sherlock.explain(&incident.data, &incident.abnormal_region(), None);
        assert_eq!(explanation.all_causes.len(), 2);

        let runner = ScenarioRunner::single_node(quick_workload());
        let cfg = InterventionConfig {
            trials: 2,
            top_k: 2,
            exec: ExecPolicy::Serial,
            ..InterventionConfig::default()
        };
        let report = validate_explanation(&mut explanation, &runner, sherlock.params(), &cfg);
        assert_eq!(report.candidates, 2);
        assert_eq!(report.panics_isolated, 0);
        assert_eq!(report.trial_failures, 0);

        let cpu = explanation
            .interventions
            .iter()
            .find(|v| v.cause == AnomalyKind::CpuSaturation.name())
            .unwrap();
        assert!(cpu.verdict.reproduced, "{:?}", explanation.interventions);
        // The validated cause leads the ranking after promotion.
        assert_eq!(explanation.all_causes[0].cause, AnomalyKind::CpuSaturation.name());
    }

    #[test]
    fn cluster_intervention_validates_the_true_cause() {
        let config = ClusterConfig::three_node(quick_workload());
        let kinds = [ClusterAnomalyKind::ReplicationLag, ClusterAnomalyKind::HotShard];
        let mut sherlock = Sherlock::new(SherlockParams::default());
        for (i, kind) in kinds.iter().enumerate() {
            let labeled = ClusterScenario::new(config.clone(), 150, 2000 + i as u64)
                .with_injection(ClusterInjection::new(*kind, 60, 50))
                .run()
                .unwrap();
            let explanation = sherlock.explain(&labeled.data, &labeled.abnormal_region(), None);
            sherlock.feedback(kind.name(), &explanation.predicates);
        }

        let incident = ClusterScenario::new(config.clone(), 150, 555)
            .with_injection(ClusterInjection::new(ClusterAnomalyKind::ReplicationLag, 60, 50))
            .run()
            .unwrap();
        let mut explanation = sherlock.explain(&incident.data, &incident.abnormal_region(), None);

        let runner = ScenarioRunner::cluster(config);
        let cfg = InterventionConfig {
            trials: 2,
            top_k: 2,
            exec: ExecPolicy::Serial,
            ..InterventionConfig::default()
        };
        let report = validate_explanation(&mut explanation, &runner, sherlock.params(), &cfg);
        assert_eq!(report.candidates, 2);
        assert_eq!(report.trial_failures, 0);
        let lag = explanation
            .interventions
            .iter()
            .find(|v| v.cause == ClusterAnomalyKind::ReplicationLag.name())
            .unwrap();
        assert!(lag.verdict.reproduced, "{:?}", explanation.interventions);
    }

    #[test]
    fn runners_reject_the_other_family() {
        let single = ScenarioRunner::single_node(quick_workload());
        let cluster = ScenarioRunner::cluster(ClusterConfig::three_node(quick_workload()));
        assert!(single.can_inject(AnomalyKind::LockContention.name()));
        assert!(!single.can_inject(ClusterAnomalyKind::NetworkPartition.name()));
        assert!(cluster.can_inject(ClusterAnomalyKind::NetworkPartition.name()));
        assert!(!cluster.can_inject(AnomalyKind::LockContention.name()));
        assert!(matches!(
            single.inject(ClusterAnomalyKind::NetworkPartition.name(), 1),
            Err(SherlockError::InvalidParam { name: "cause", .. })
        ));
    }

    #[test]
    fn trials_are_deterministic_in_the_seed() {
        let runner = ScenarioRunner::single_node(quick_workload());
        let a = runner.inject(AnomalyKind::IoSaturation.name(), 99).unwrap();
        let b = runner.inject(AnomalyKind::IoSaturation.name(), 99).unwrap();
        for (id, _) in a.data.schema().iter() {
            if let (Some(x), Some(y)) = (a.data.numeric(id), b.data.numeric(id)) {
                assert_eq!(x, y);
            }
        }
        assert_eq!(a.abnormal, b.abnormal);
    }
}
