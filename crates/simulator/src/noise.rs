//! Randomness helpers: Gaussian sampling and measurement noise.
//!
//! The paper stresses that "real-world datasets and OS logs are noisy and
//! attribute values often fluctuate regardless of the anomaly" (§3); the
//! filtering step of Algorithm 1 exists precisely to cope with that. The
//! simulator therefore perturbs every emitted metric with multiplicative
//! and additive Gaussian noise so the algorithm's noise handling is
//! genuinely exercised.
//!
//! We sample normals with a hand-rolled Box–Muller transform to keep the
//! dependency set down to `rand` itself.

use rand::Rng;

/// Draw one standard-normal sample via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by keeping u1 in (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw a `N(mean, std_dev²)` sample.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Measurement-noise model applied to emitted metrics.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Relative (multiplicative) noise: each value is scaled by
    /// `1 + N(0, relative²)`.
    pub relative: f64,
    /// Absolute (additive) noise floor.
    pub absolute: f64,
    /// Probability that a sample is an upward burst (real `/proc`-style
    /// counters spike on scheduler hiccups, batched flushes, GC pauses…).
    /// Bursts matter to DBSherlock: they stretch an attribute's min–max
    /// range, which attenuates the *normalized* mean difference (Eq. 2)
    /// of weakly-affected attributes below the θ gate — exactly the noise
    /// regime the paper's filtering machinery is built for.
    pub spike_prob: f64,
    /// Burst magnitude: a spiked sample is scaled by `1 + U(0, spike_scale)`.
    pub spike_scale: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel { relative: 0.12, absolute: 0.02, spike_prob: 0.02, spike_scale: 1.0 }
    }
}

impl NoiseModel {
    /// Noise-free model (for deterministic tests).
    pub fn none() -> Self {
        NoiseModel { relative: 0.0, absolute: 0.0, spike_prob: 0.0, spike_scale: 0.0 }
    }

    /// Apply noise to a non-negative metric, clamping at zero.
    pub fn apply<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64 {
        let mut scaled = value * (1.0 + self.relative * standard_normal(rng));
        if self.spike_prob > 0.0 && rng.random::<f64>() < self.spike_prob {
            scaled *= 1.0 + self.spike_scale * rng.random::<f64>();
        }
        let shifted = scaled + self.absolute * standard_normal(rng);
        shifted.max(0.0)
    }

    /// Apply noise and clamp the result into `[0, cap]` (for percentages
    /// and utilizations).
    pub fn apply_capped<R: Rng + ?Sized>(&self, rng: &mut R, value: f64, cap: f64) -> f64 {
        self.apply(rng, value).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 100.0, 10.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn noise_never_goes_negative() {
        let mut rng = StdRng::seed_from_u64(3);
        let noise = NoiseModel { relative: 0.5, absolute: 1.0, ..NoiseModel::none() };
        for _ in 0..1000 {
            assert!(noise.apply(&mut rng, 0.1) >= 0.0);
        }
    }

    #[test]
    fn capped_noise_respects_cap() {
        let mut rng = StdRng::seed_from_u64(5);
        let noise = NoiseModel { relative: 0.3, absolute: 0.0, ..NoiseModel::none() };
        for _ in 0..1000 {
            let v = noise.apply_capped(&mut rng, 99.0, 100.0);
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn zero_noise_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(NoiseModel::none().apply(&mut rng, 42.0), 42.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
