#![warn(missing_docs)]
// Diagnosis must degrade gracefully, never panic: unwrap/expect are banned in
// library code (tests may use them freely). See sherlock-lint's panic-path rule.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! A discrete-time OLTP database-server simulator with injectable
//! performance anomalies.
//!
//! This crate is the substitute for the DBSherlock paper's evaluation
//! testbed (§8.1): two Azure A3 VMs running MySQL 5.6 under OLTPBench's
//! TPC-C/TPC-E, stressed with stress-ng, mysqldump, and tc. Here the server
//! is a closed-loop queueing model of CPU, disk, network, buffer pool, lock
//! manager, and redo log; the ten anomaly classes of Table 1 perturb the
//! *latent* state, and every emitted metric is derived from the same
//! dynamics with measurement noise on top. See DESIGN.md for the
//! substitution argument.
//!
//! # Example
//!
//! ```
//! use dbsherlock_simulator::{
//!     AnomalyKind, Injection, Scenario, WorkloadConfig,
//! };
//!
//! let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 150, 42)
//!     .with_injection(Injection::new(AnomalyKind::CpuSaturation, 60, 40))
//!     .run();
//! assert_eq!(labeled.data.n_rows(), 150);
//! assert_eq!(labeled.abnormal_region().intervals(), vec![60..100]);
//! let cpu = labeled.data.numeric_by_name("os_cpu_usage").unwrap();
//! assert!(cpu[80] > cpu[10]);
//! ```

pub mod anomaly;
pub mod bufferpool;
pub mod cluster;
pub mod config;
pub mod corpus;
pub mod engine;
pub mod intervene;
pub mod locks;
pub mod metrics;
pub mod noise;
pub mod redo;
pub mod resources;
pub mod scenario;
pub mod txn;

pub use anomaly::{AnomalyKind, Injection, Perturbation};
pub use cluster::{
    cluster_metrics_schema, standard_cluster_scenario, ClusterAnomalyKind, ClusterConfig,
    ClusterInjection, ClusterLabeledDataset, ClusterScenario, CLUSTER_CATEGORICAL_NAMES,
    CLUSTER_NUMERIC_NAMES, CLUSTER_VARIATIONS, MAX_NODES,
};
pub use config::{Benchmark, ServerConfig, WorkloadConfig};
pub use corpus::{
    compound_cases, compound_dataset, generate_corpus, generate_long_corpus, standard_scenario,
    CorpusEntry, EntryId, NORMAL_SECS, VARIATIONS,
};
pub use engine::{Engine, TickOutput};
pub use intervene::ScenarioRunner;
pub use metrics::{metrics_schema, CategoricalMetrics, NumericMetrics, CATEGORICAL_NAMES};
pub use noise::NoiseModel;
pub use scenario::{CorruptedDataset, LabeledDataset, Scenario};
pub use txn::{Mix, StatementProfile, TxnClass};
