//! The per-second server model.
//!
//! Clients form a closed interactive queueing network: each of `N`
//! terminals thinks for `Z` ms, submits a transaction, and waits for the
//! response (`R` ms), so offered throughput is `N / (Z + R)`. The server
//! admits up to the binding capacity (CPU, disk, network, or lock
//! serialization); past that point Little's law drives response time up as
//! `R = N/X - Z`. Every emitted metric is derived from this latent state,
//! then perturbed with measurement noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::anomaly::Perturbation;
use crate::bufferpool::BufferPool;
use crate::config::{ServerConfig, WorkloadConfig};
use crate::locks::{LockModel, LockTick};
use crate::metrics::{CategoricalMetrics, NumericMetrics};
use crate::noise::NoiseModel;
use crate::redo::RedoLog;
use crate::resources::{offered_utilization, wait_factor};
use crate::txn::Mix;

/// Latency floor representing parsing/optimizing/committing overheads, ms.
const BASE_OVERHEAD_MS: f64 = 0.8;
/// Pages dirtied per row written (rows coalesce onto shared pages).
const PAGES_PER_ROW: f64 = 0.10;
/// Fraction of a spilled (over-capacity) request mix that becomes visible
/// queueing in `dbms_queries_queued`.
const QUEUE_VISIBILITY: f64 = 0.5;

/// The simulated server, advanced one second at a time.
#[derive(Debug)]
pub struct Engine {
    server: ServerConfig,
    workload: WorkloadConfig,
    base_mix: Mix,
    pool: BufferPool,
    redo: RedoLog,
    locks: LockModel,
    noise: NoiseModel,
    rng: StdRng,
    /// Previous tick's response time, seeding the closed-loop iteration.
    prev_latency_ms: f64,
    /// Previous tick's throughput.
    prev_tps: f64,
    /// Previous tick's page-flush rate (feeds back into disk pressure:
    /// flushing is asynchronous, so it competes with foreground reads as
    /// background load rather than per-transaction demand).
    prev_flushed: f64,
    tick: usize,
}

/// Full output of one tick.
#[derive(Debug, Clone)]
pub struct TickOutput {
    /// Numeric metrics (noisy, as a monitoring agent would report).
    pub numeric: NumericMetrics,
    /// Categorical state attributes.
    pub categorical: CategoricalMetrics,
}

impl Engine {
    /// Create an engine.
    pub fn new(
        server: ServerConfig,
        workload: WorkloadConfig,
        noise: NoiseModel,
        seed: u64,
    ) -> Self {
        let base_mix = Mix::for_benchmark(workload.benchmark);
        let pool =
            BufferPool::new(server.buffer_pool_mb, server.page_size_kb, workload.data_size_mb());
        let redo = RedoLog::new(server.redo_log_mb, server.adaptive_flushing);
        Engine {
            server,
            workload,
            base_mix,
            pool,
            redo,
            locks: LockModel::default(),
            noise,
            rng: StdRng::seed_from_u64(seed),
            prev_latency_ms: 5.0,
            prev_tps: 100.0,
            prev_flushed: 0.0,
            tick: 0,
        }
    }

    /// The buffer pool's total page count (used to size flush storms).
    pub fn pool_pages(&self) -> f64 {
        self.pool.total_pages
    }

    /// The base transaction mix.
    pub fn base_mix(&self) -> &Mix {
        &self.base_mix
    }

    /// Advance one second under `perturbation` and emit metrics.
    pub fn step(&mut self, p: &Perturbation) -> TickOutput {
        let mix = p.mix_override.as_ref().unwrap_or(&self.base_mix);
        let skew = p.skew_override.unwrap_or(self.workload.access_skew);
        let terminals = self.workload.terminals as f64 + p.extra_terminals;
        let think_ms = self.workload.think_time_ms / p.rate_multiplier.max(0.05);
        let rtt_ms = self.server.network_rtt_ms + p.added_rtt_ms;

        // Per-transaction demands.
        let cpu_per_txn = {
            let base = mix.average(|c| c.cpu_work);
            // Index maintenance overheads load the write path's CPU share.
            let write_share = 0.3;
            base * (1.0 + write_share * (p.index_overhead - 1.0))
        };
        let logical_reads_per_txn = mix.average(|c| c.logical_reads);
        let rows_written_per_txn = mix.average(|c| c.rows_written) * p.index_overhead;
        let log_kb_per_txn = mix.average(|c| c.log_kb) * p.index_overhead.sqrt();
        let net_kb_per_txn = mix.average(|c| c.net_kb);
        let lock_weight = mix.average(|c| c.lock_weight);
        let miss_rate = 1.0 - self.pool.hit_ratio();
        // Only read misses are synchronous per-transaction disk work;
        // page writes are deferred to background flushing (below).
        let phys_io_per_txn = logical_reads_per_txn * miss_rate;

        // Background (non-terminal) work: restore jobs, scan queries, dumps.
        // Bulk loads append in order, so many rows share each page.
        const RESTORE_PAGES_PER_ROW: f64 = 0.02;
        let restore_rows = p.bulk_insert_rows;
        let restore_pages_dirtied = restore_rows * RESTORE_PAGES_PER_ROW;
        let restore_log_kb = restore_rows * 0.15;
        let restore_cpu = restore_rows * 0.004;
        let restore_net_in_mb = restore_rows * 0.1 / 1024.0;
        let scan_phys_reads = p.scan_logical_reads * miss_rate;
        let dump_cpu = if p.dump_read_mb > 0.0 { 250.0 } else { 0.0 };

        // Capacity pools.
        // Fair scheduling: external processes cannot starve the DBMS
        // below a guaranteed share of each resource (Linux CFS / block
        // schedulers arbitrate competing processes), so saturation
        // anomalies inflate latency a lot but throttle throughput only
        // moderately — the regime the paper's Figure 1 shows.
        const FG_CPU_SHARE: f64 = 0.35;
        const FG_DISK_SHARE: f64 = 0.80;
        let cpu_capacity = self.server.cpu_cores as f64 * self.server.core_capacity;
        let background_cpu = p.external_cpu + p.scan_cpu + restore_cpu + dump_cpu;
        let cpu_for_txns = (cpu_capacity - background_cpu).max(cpu_capacity * FG_CPU_SHARE);

        let disk_iops_capacity = self.server.disk_iops;
        let background_iops = p.external_disk_iops
            + scan_phys_reads
            + restore_pages_dirtied
            + p.forced_flush_pages
            + self.prev_flushed;
        // Sequential streams consume IOPS headroom proportionally to
        // bandwidth share.
        let seq_mb = p.external_disk_mb + p.dump_read_mb;
        let seq_iops_equiv = seq_mb / self.server.disk_bandwidth_mb * disk_iops_capacity;
        let disk_for_txns = (disk_iops_capacity - background_iops - seq_iops_equiv)
            .max(disk_iops_capacity * FG_DISK_SHARE);

        let net_capacity_mb = p
            .net_bandwidth_cap_mb
            .unwrap_or(self.server.network_bandwidth_mb)
            .min(self.server.network_bandwidth_mb);
        let background_net_mb = p.external_net_mb + p.dump_read_mb + restore_net_in_mb;
        let net_for_txns = (net_capacity_mb - background_net_mb).max(net_capacity_mb * 0.02);

        // Hard throughput caps.
        let cap_cpu = cpu_for_txns / cpu_per_txn.max(1e-6);
        let cap_disk = disk_for_txns / phys_io_per_txn.max(1e-6);
        let cap_net = net_for_txns * 1024.0 / net_kb_per_txn.max(1e-6);
        // Lock serialization: with conflict probability q = skew * weight,
        // the hot partition admits at most one conflicting transaction per
        // hold time, i.e. throughput <= (1000 / hold_ms) / q.
        let conflict_prob = (skew * lock_weight).clamp(0.0, 1.0);
        let cap_lock = if conflict_prob > 1e-6 {
            (1000.0 / self.locks.mean_hold_ms) / conflict_prob
        } else {
            f64::INFINITY
        };
        let cap = cap_cpu.min(cap_disk).min(cap_net).min(cap_lock);

        // Closed-loop fixed point: start from the previous tick and iterate
        // throughput -> utilization -> inflated latency -> throughput.
        let rho_cpu_at = |tps: f64| {
            offered_utilization(tps * cpu_per_txn + background_cpu, cpu_capacity).min(4.0)
        };
        let rho_disk_at = |tps: f64| {
            offered_utilization(
                tps * phys_io_per_txn + background_iops + seq_iops_equiv,
                disk_iops_capacity,
            )
            .min(4.0)
        };
        // Each transaction is a conversation of several statements; every
        // few statements costs a client round trip. This is what makes a
        // 300 ms network delay devastating for OLTP (paper §1).
        let statements_per_txn = mix.average(|c| {
            c.statements.selects
                + c.statements.updates
                + c.statements.inserts
                + c.statements.deletes
        });
        let round_trips_per_txn = (statements_per_txn / 3.0).max(1.0);

        let mut tps = self.prev_tps.max(1.0);
        let mut latency_ms = self.prev_latency_ms;
        for _ in 0..6 {
            // Below-saturation congestion only; saturation itself is
            // expressed through the hard cap + Little's law, so clamp the
            // utilization fed to the wait factor to keep the fixed point
            // stable.
            let rho_cpu = rho_cpu_at(tps).min(0.97);
            let rho_disk = rho_disk_at(tps).min(0.97);
            let cpu_ms = cpu_per_txn / self.server.core_capacity
                * 1000.0
                * wait_factor(rho_cpu, self.server.cpu_cores as f64);
            // Only read misses sit on the transaction's critical path;
            // flushing happens in the background.
            let sync_io_ops = logical_reads_per_txn * miss_rate;
            let io_ms = sync_io_ops * (1000.0 / disk_iops_capacity) * wait_factor(rho_disk, 1.0);
            let log_ms = 0.6 * wait_factor(rho_disk, 1.0).min(20.0);
            let net_ms = rtt_ms * round_trips_per_txn
                + net_kb_per_txn / 1024.0 / net_for_txns.max(1e-3) * 1000.0;
            let service_ms = BASE_OVERHEAD_MS + cpu_ms + io_ms + log_ms + net_ms;
            let offered = terminals / ((think_ms + service_ms) / 1000.0);
            let (next_tps, next_latency) = if offered <= cap {
                (offered, service_ms)
            } else {
                // Little's law for the closed network at the capacity cap.
                (cap, (terminals / cap * 1000.0 - think_ms).max(service_ms))
            };
            // Damped update for a stable fixed point.
            tps = 0.5 * (tps + next_tps);
            latency_ms = 0.5 * (latency_ms + next_latency);
        }
        self.prev_tps = tps;
        self.prev_latency_ms = latency_ms;
        let rho_disk = rho_disk_at(tps);

        // Concurrency and lock accounting.
        let concurrency = (tps * latency_ms / 1000.0).min(terminals);
        let lock_tick: LockTick = self.locks.tick(concurrency, skew, lock_weight, tps);
        // When lock serialization is the binding cap, the whole queueing
        // delay is lock wait.
        let lock_bound = cap_lock <= cap_cpu.min(cap_disk).min(cap_net) && tps >= cap_lock * 0.98;
        let extra_lock_wait_ms =
            if lock_bound { (latency_ms - BASE_OVERHEAD_MS).max(0.0) * tps } else { 0.0 };
        let total_lock_wait_ms = lock_tick.total_wait_ms + extra_lock_wait_ms;

        // Buffer pool and redo log.
        let pages_dirtied = tps * rows_written_per_txn * PAGES_PER_ROW + restore_pages_dirtied;
        let pool_tick = self.pool.tick(
            tps * logical_reads_per_txn + p.scan_logical_reads,
            pages_dirtied,
            p.forced_flush_pages,
        );
        let redo_tick =
            self.redo.tick(tps * log_kb_per_txn + restore_log_kb, self.pool.dirty_pages);
        if redo_tick.forced_flush_pages > 0.0 {
            // Rotation checkpoint drains synchronously this same second.
            self.pool.tick(0.0, 0.0, redo_tick.forced_flush_pages);
        }
        self.prev_flushed = pool_tick.flushed_pages + redo_tick.forced_flush_pages;

        // Disk traffic decomposition.
        let disk_read_iops =
            pool_tick.physical_reads + scan_phys_reads + p.external_disk_iops / 2.0;
        let disk_write_iops = pool_tick.flushed_pages
            + redo_tick.forced_flush_pages
            + restore_pages_dirtied
            + p.external_disk_iops / 2.0;
        let disk_read_mb = disk_read_iops * self.server.page_size_kb / 1024.0
            + p.dump_read_mb
            + p.external_disk_mb / 2.0;
        let disk_write_mb = disk_write_iops * self.server.page_size_kb / 1024.0
            + redo_tick.written_kb / 1024.0
            + p.external_disk_mb / 2.0;
        let disk_util_frac = rho_disk.min(1.0);

        // Network traffic decomposition (server perspective).
        let txn_net_mb = tps * net_kb_per_txn / 1024.0;
        let net_send_kb = (txn_net_mb * 0.6 + p.dump_read_mb + p.external_net_mb / 2.0) * 1024.0;
        let net_recv_kb = (txn_net_mb * 0.4 + restore_net_in_mb + p.external_net_mb / 2.0) * 1024.0;

        // CPU decomposition.
        let db_cpu_frac = (tps * cpu_per_txn + p.scan_cpu + restore_cpu) / cpu_capacity;
        let total_cpu_frac = (db_cpu_frac + (p.external_cpu + dump_cpu) / cpu_capacity).min(1.0);
        let iowait_frac =
            ((rho_disk - total_cpu_frac).clamp(0.0, 1.0) * 0.35 * (1.0 - total_cpu_frac))
                .clamp(0.0, 1.0 - total_cpu_frac);
        let idle_frac = (1.0 - total_cpu_frac - iowait_frac).max(0.0);

        // External process pressure (stress-ng spawns many workers).
        let external_procs = (p.external_cpu / 400.0)
            + (p.external_disk_iops / 400.0)
            + if p.dump_read_mb > 0.0 { 1.0 } else { 0.0 }
            + if p.bulk_insert_rows > 0.0 { 1.0 } else { 0.0 };

        let queued =
            ((terminals / (think_ms + latency_ms) * 1000.0) - tps).max(0.0) * QUEUE_VISIBILITY;

        let m = &mut NumericMetrics::default();
        let n = &self.noise;
        let rng = &mut self.rng;

        // Latency aggregates are heavy-tailed in real systems: convoy
        // effects, checkpoint stalls, and fsync bursts inflate a second's
        // average latency several-fold regardless of any anomaly. These
        // stalls are what make naive pair-labeling ("are these two seconds
        // significantly different?") noisy — the regime where DBSherlock's
        // region-based predicates beat PerfXplain (paper §8.4).
        let stall = if rng.random::<f64>() < 0.20 { 1.3 + 3.0 * rng.random::<f64>() } else { 1.0 };

        // --- OS: CPU ---
        m.os_cpu_usage = n.apply_capped(rng, total_cpu_frac * 100.0, 100.0);
        // Per-core usage: the scheduler spreads load, with jitter.
        for core in [
            &mut m.os_cpu_usage_core0,
            &mut m.os_cpu_usage_core1,
            &mut m.os_cpu_usage_core2,
            &mut m.os_cpu_usage_core3,
        ] {
            *core = n.apply_capped(rng, total_cpu_frac * 100.0, 100.0);
        }
        m.os_cpu_user = n.apply_capped(rng, total_cpu_frac * 78.0, 100.0);
        m.os_cpu_sys = n.apply_capped(rng, total_cpu_frac * 22.0, 100.0);
        m.os_cpu_iowait = n.apply_capped(rng, iowait_frac * 100.0, 100.0);
        m.os_cpu_idle = n.apply_capped(rng, idle_frac * 100.0, 100.0);
        m.os_load_avg = n.apply(rng, total_cpu_frac * 4.0 + rho_disk * 1.5 + external_procs * 0.5);
        // --- OS: disk ---
        m.os_disk_read_iops = n.apply(rng, disk_read_iops);
        m.os_disk_write_iops = n.apply(rng, disk_write_iops);
        m.os_disk_read_mb = n.apply(rng, disk_read_mb);
        m.os_disk_write_mb = n.apply(rng, disk_write_mb);
        m.os_disk_queue_depth = n.apply(rng, rho_disk * rho_disk * 8.0);
        m.os_disk_util = n.apply_capped(rng, disk_util_frac * 100.0, 100.0);
        // --- OS: network ---
        m.os_net_send_kb = n.apply(rng, net_send_kb);
        m.os_net_recv_kb = n.apply(rng, net_recv_kb);
        m.os_net_send_packets = n.apply(rng, net_send_kb / 1.4 + tps * 2.0);
        m.os_net_recv_packets = n.apply(rng, net_recv_kb / 1.4 + tps * 2.0);
        m.os_net_rtt_ms = n.apply(rng, rtt_ms);
        m.os_net_retrans = n.apply(rng, p.added_rtt_ms * 0.05);
        // --- OS: memory ---
        m.os_page_faults_minor = n.apply(rng, tps * 40.0 + external_procs * 200.0);
        m.os_page_faults_major = n.apply(rng, pool_tick.physical_reads * 0.02);
        let pool_pages = self.pool.total_pages;
        m.os_pages_allocated =
            n.apply(rng, pool_pages + external_procs * 2000.0 + concurrency * 40.0);
        let total_os_pages = self.server.ram_mb * 1024.0 / 4.0;
        m.os_pages_free = n.apply(rng, (total_os_pages - m.os_pages_allocated).max(0.0));
        m.os_swap_used_mb = n.apply(rng, (external_procs * 8.0 - 5.0).max(0.0));
        m.os_swap_free_mb = n.apply(rng, 2048.0 - m.os_swap_used_mb);
        m.os_mem_cached_mb = n.apply(rng, 1200.0 + p.dump_read_mb * 3.0);
        // --- OS: scheduler ---
        m.os_context_switches =
            n.apply(rng, tps * 18.0 + disk_read_iops + disk_write_iops + external_procs * 900.0);
        m.os_interrupts = n.apply(rng, (net_send_kb + net_recv_kb) / 2.0 + disk_read_iops);
        m.os_procs_running = n.apply(rng, concurrency * 0.4 + external_procs + 2.0);
        m.os_procs_blocked = n.apply(rng, iowait_frac * 12.0 + lock_tick.current_waits * 0.2);
        // --- DBMS ---
        m.dbms_cpu_usage = n.apply_capped(rng, db_cpu_frac * 100.0, 100.0);
        m.dbms_threads_running = n.apply(rng, concurrency);
        m.dbms_threads_connected = n.apply(rng, terminals);
        m.dbms_queries_queued = n.apply(rng, queued);
        m.dbms_logical_reads = n.apply(rng, pool_tick.read_requests);
        m.dbms_physical_reads = n.apply(rng, pool_tick.physical_reads + scan_phys_reads);
        m.dbms_physical_writes =
            n.apply(rng, pool_tick.flushed_pages + redo_tick.forced_flush_pages);
        m.dbms_row_read_requests =
            n.apply(rng, tps * mix.average(|c| c.row_reads) + p.scan_row_reads);
        m.dbms_rows_inserted =
            n.apply(rng, tps * mix.average(|c| c.statements.inserts) + restore_rows);
        m.dbms_rows_updated = n.apply(rng, tps * mix.average(|c| c.statements.updates) * 1.4);
        m.dbms_rows_deleted = n.apply(rng, tps * mix.average(|c| c.statements.deletes));
        m.dbms_num_selects =
            n.apply(rng, tps * mix.average(|c| c.statements.selects) + p.full_scans);
        m.dbms_num_updates = n.apply(rng, tps * mix.average(|c| c.statements.updates));
        m.dbms_num_inserts =
            n.apply(rng, tps * mix.average(|c| c.statements.inserts) + restore_rows / 100.0);
        m.dbms_num_deletes = n.apply(rng, tps * mix.average(|c| c.statements.deletes));
        m.dbms_num_commits = n.apply(rng, tps + restore_rows / 1000.0);
        m.dbms_full_table_scans = n.apply(rng, p.full_scans + tps * 0.002);
        m.dbms_index_lookups = n.apply(rng, tps * statements_per_txn * 1.5 * p.index_overhead);
        m.dbms_tmp_tables = n.apply(rng, tps * 0.02 + p.full_scans * 1.5);
        m.dbms_dirty_pages = n.apply(rng, pool_tick.dirty_pages);
        m.dbms_flushed_pages = n.apply(rng, pool_tick.flushed_pages + redo_tick.forced_flush_pages);
        m.dbms_buffer_hit_ratio = n.apply_capped(rng, pool_tick.hit_ratio * 100.0, 100.0);
        m.dbms_buffer_pages_free = n.apply(rng, pool_tick.free_pages);
        m.dbms_lock_wait_ms = n.apply(rng, total_lock_wait_ms);
        m.dbms_lock_waits =
            n.apply(rng, lock_tick.lock_waits + if lock_bound { tps * 0.8 } else { 0.0 });
        m.dbms_row_lock_current_waits = n
            .apply(rng, lock_tick.current_waits + if lock_bound { concurrency * 0.7 } else { 0.0 });
        m.dbms_deadlocks = n.apply(rng, lock_tick.deadlocks);
        m.dbms_redo_written_kb = n.apply(rng, redo_tick.written_kb);
        m.dbms_redo_used_pct = n.apply_capped(rng, redo_tick.used_fraction * 100.0, 100.0);
        m.dbms_log_rotations = redo_tick.rotations + if p.table_flushes > 0.0 { 1.0 } else { 0.0 };
        m.dbms_table_flushes = n.apply(rng, p.table_flushes);
        // --- Transaction aggregates ---
        m.txn_throughput = n.apply(rng, tps);
        m.txn_avg_latency_ms = n.apply(rng, latency_ms * stall);
        m.txn_p99_latency_ms =
            n.apply(rng, (latency_ms * 3.2 + total_lock_wait_ms / tps.max(1.0)) * stall);
        m.client_wait_ms = n.apply(rng, (rtt_ms * 2.0 + latency_ms) * stall);
        m.active_clients = n.apply(rng, terminals);
        let class_rates = [
            &mut m.txn_rate_class0,
            &mut m.txn_rate_class1,
            &mut m.txn_rate_class2,
            &mut m.txn_rate_class3,
            &mut m.txn_rate_class4,
        ];
        for (i, slot) in class_rates.into_iter().enumerate() {
            let base_class = &self.base_mix.classes[i];
            let weight = mix
                .classes
                .iter()
                .zip(&mix.weights)
                .find(|(c, _)| c.name == base_class.name)
                .map(|(_, w)| *w)
                .unwrap_or(0.0);
            *slot = n.apply(rng, tps * weight);
        }
        m.query_avg_cost = n.apply(
            rng,
            logical_reads_per_txn * 2.0
                + if tps > 0.0 { p.scan_logical_reads / tps * 2.0 } else { 0.0 },
        );

        let categorical = CategoricalMetrics {
            log_rotation_state: if m.dbms_log_rotations > 0.0 { "rotating" } else { "steady" },
            checkpoint_state: if p.forced_flush_pages > 0.0
                || redo_tick.forced_flush_pages > 0.0
                || pool_tick.dirty_pages / pool_pages > 0.75
            {
                "active"
            } else {
                "idle"
            },
            ..CategoricalMetrics::default()
        };

        self.tick += 1;
        TickOutput { numeric: std::mem::take(m), categorical }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::{AnomalyKind, Injection};

    fn quiet_engine() -> Engine {
        Engine::new(
            ServerConfig::default(),
            WorkloadConfig { think_time_ms: 150.0, ..WorkloadConfig::tpcc_default() },
            NoiseModel::none(),
            42,
        )
    }

    fn warmed(engine: &mut Engine, ticks: usize) -> NumericMetrics {
        let p = Perturbation::default();
        let mut last = engine.step(&p);
        for _ in 1..ticks {
            last = engine.step(&p);
        }
        last.numeric
    }

    #[test]
    fn normal_operation_is_healthy() {
        let mut e = quiet_engine();
        let m = warmed(&mut e, 30);
        assert!(m.txn_throughput > 300.0, "tps {}", m.txn_throughput);
        assert!(m.txn_avg_latency_ms < 50.0, "latency {}", m.txn_avg_latency_ms);
        assert!(m.os_cpu_usage < 80.0, "cpu {}", m.os_cpu_usage);
        assert!(m.os_disk_util < 95.0, "disk {}", m.os_disk_util);
        assert!(m.dbms_lock_wait_ms < 100.0, "locks {}", m.dbms_lock_wait_ms);
    }

    #[test]
    fn throughput_stabilizes() {
        let mut e = quiet_engine();
        let p = Perturbation::default();
        for _ in 0..20 {
            e.step(&p);
        }
        let a = e.step(&p).numeric.txn_throughput;
        let b = e.step(&p).numeric.txn_throughput;
        assert!((a - b).abs() / a < 0.02, "tps should be steady: {a} vs {b}");
    }

    fn perturbed_metrics(kind: AnomalyKind) -> (NumericMetrics, NumericMetrics) {
        let mut e = quiet_engine();
        let normal = warmed(&mut e, 30);
        let inj = Injection::new(kind, 0, 1000);
        let mix = e.base_mix().clone();
        let pages = e.pool_pages();
        let mut out = NumericMetrics::default();
        for t in 0..30 {
            let mut p = Perturbation::default();
            p.apply(&inj, t, &mix, pages);
            out = e.step(&p).numeric;
        }
        (normal, out)
    }

    #[test]
    fn cpu_saturation_starves_the_dbms() {
        let (normal, anom) = perturbed_metrics(AnomalyKind::CpuSaturation);
        assert!(anom.os_cpu_usage > 90.0, "cpu {}", anom.os_cpu_usage);
        // Fair scheduling guarantees the DBMS a CPU share, so throughput
        // dips only mildly while queueing inflates latency (paper Fig. 1).
        assert!(anom.txn_throughput < normal.txn_throughput);
        assert!(
            anom.txn_avg_latency_ms > normal.txn_avg_latency_ms * 1.5,
            "latency {} vs {}",
            anom.txn_avg_latency_ms,
            normal.txn_avg_latency_ms
        );
    }

    #[test]
    fn io_saturation_shows_iowait_and_disk_util() {
        let (normal, anom) = perturbed_metrics(AnomalyKind::IoSaturation);
        assert!(anom.os_disk_util > 95.0);
        assert!(anom.os_cpu_iowait > normal.os_cpu_iowait);
        assert!(anom.txn_avg_latency_ms > normal.txn_avg_latency_ms * 1.5);
    }

    #[test]
    fn network_congestion_quiets_the_box() {
        let (normal, anom) = perturbed_metrics(AnomalyKind::NetworkCongestion);
        // The paper's §1 example: fewer packets, low CPU, waiting clients.
        assert!(anom.os_net_send_kb < normal.os_net_send_kb * 0.5);
        assert!(anom.os_cpu_usage < normal.os_cpu_usage);
        assert!(anom.client_wait_ms > 300.0);
        assert!(anom.txn_throughput < normal.txn_throughput * 0.3);
    }

    #[test]
    fn lock_contention_serializes() {
        let (normal, anom) = perturbed_metrics(AnomalyKind::LockContention);
        assert!(anom.dbms_lock_wait_ms > normal.dbms_lock_wait_ms * 10.0);
        assert!(anom.txn_throughput < normal.txn_throughput * 0.6);
        assert!(anom.dbms_threads_running > normal.dbms_threads_running * 2.0);
    }

    #[test]
    fn workload_spike_raises_threads_and_locks() {
        let (normal, anom) = perturbed_metrics(AnomalyKind::WorkloadSpike);
        assert!(anom.dbms_threads_running > normal.dbms_threads_running * 3.0);
        assert!(anom.dbms_lock_wait_ms > normal.dbms_lock_wait_ms);
        assert!(anom.txn_throughput > normal.txn_throughput);
    }

    #[test]
    fn poorly_written_query_scans_rows() {
        let (normal, anom) = perturbed_metrics(AnomalyKind::PoorlyWrittenQuery);
        assert!(anom.dbms_row_read_requests > normal.dbms_row_read_requests * 5.0);
        assert!(anom.dbms_cpu_usage > normal.dbms_cpu_usage * 1.5);
    }

    #[test]
    fn backup_reads_and_ships_bytes() {
        let (normal, anom) = perturbed_metrics(AnomalyKind::DatabaseBackup);
        assert!(anom.os_disk_read_mb > normal.os_disk_read_mb * 3.0);
        assert!(anom.os_net_send_kb > normal.os_net_send_kb * 3.0);
    }

    #[test]
    fn restore_writes_heavily() {
        let (normal, anom) = perturbed_metrics(AnomalyKind::TableRestore);
        assert!(anom.dbms_rows_inserted > normal.dbms_rows_inserted * 5.0);
        assert!(anom.os_disk_write_iops > normal.os_disk_write_iops * 1.5);
    }

    #[test]
    fn flush_forces_writes_and_rotation_state() {
        let mut e = quiet_engine();
        warmed(&mut e, 30);
        let inj = Injection::new(AnomalyKind::FlushLogTable, 0, 1000);
        let mix = e.base_mix().clone();
        let pages = e.pool_pages();
        let mut p = Perturbation::default();
        p.apply(&inj, 0, &mix, pages);
        let out = e.step(&p);
        assert!(out.numeric.dbms_table_flushes > 10.0);
        assert_eq!(out.categorical.log_rotation_state, "rotating");
        assert_eq!(out.categorical.checkpoint_state, "active");
    }

    #[test]
    fn tpce_runs_healthy_too() {
        let mut e = Engine::new(
            ServerConfig::default(),
            WorkloadConfig { think_time_ms: 150.0, ..WorkloadConfig::tpce_default() },
            NoiseModel::none(),
            7,
        );
        let m = warmed(&mut e, 30);
        assert!(m.txn_throughput > 300.0);
        assert!(m.txn_avg_latency_ms < 50.0);
    }

    #[test]
    fn latency_metric_has_heavy_tail_stalls() {
        // With the default noise model, a healthy steady state still shows
        // occasional several-fold latency spikes (convoy/checkpoint
        // stalls) — the volatility that makes pair labeling noisy (§8.4).
        let mut e = Engine::new(
            ServerConfig::default(),
            WorkloadConfig::tpcc_default(),
            NoiseModel::default(),
            23,
        );
        let p = Perturbation::default();
        for _ in 0..30 {
            e.step(&p);
        }
        let samples: Vec<f64> = (0..300).map(|_| e.step(&p).numeric.txn_avg_latency_ms).collect();
        let median = {
            let mut v = samples.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let stalls = samples.iter().filter(|&&s| s > 2.0 * median).count();
        // ~20% stall probability with factors up to 4.3x: expect a solid
        // minority of stalled seconds, but never the majority.
        assert!(stalls > 15, "only {stalls}/300 stalled seconds");
        assert!(stalls < 150, "{stalls}/300 stalled seconds is too many");
    }

    #[test]
    fn flush_writes_feed_back_into_disk_pressure() {
        // A write-heavy perturbation must raise measured disk writes
        // without collapsing throughput (asynchronous flushing).
        let mut e = quiet_engine();
        let normal = warmed(&mut e, 30);
        let p = Perturbation { index_overhead: 3.0, ..Default::default() };
        let mut out = NumericMetrics::default();
        for _ in 0..30 {
            out = e.step(&p).numeric;
        }
        assert!(out.os_disk_write_iops > normal.os_disk_write_iops * 1.8);
        assert!(out.txn_throughput > normal.txn_throughput * 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut e = Engine::new(
                ServerConfig::default(),
                WorkloadConfig::tpcc_default(),
                NoiseModel::default(),
                seed,
            );
            warmed(&mut e, 10).values()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
