//! Scenario execution: run the engine for a while, inject anomalies, and
//! emit a labeled [`Dataset`].
//!
//! A scenario mirrors one experiment run of §8.1–8.2: a stretch of normal
//! activity plus one or more injected abnormal situations, recorded as
//! one-second aligned tuples with ground-truth anomaly regions.

use dbsherlock_telemetry::faults::{CorruptionReport, FaultPlan};
use dbsherlock_telemetry::{
    repair_alignment, Dataset, IngestWarning, Region, RepairOptions, Result, Value,
};
use serde::{Deserialize, Serialize};

use crate::anomaly::{AnomalyKind, Injection, Perturbation};
use crate::config::{ServerConfig, WorkloadConfig};
use crate::engine::Engine;
use crate::metrics::metrics_schema;
use crate::noise::NoiseModel;

/// A complete, reproducible experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Server hardware/configuration.
    pub server: ServerConfig,
    /// Client workload.
    pub workload: WorkloadConfig,
    /// Injected anomalies (tick offsets are relative to recording start).
    pub injections: Vec<Injection>,
    /// Recorded duration in seconds.
    pub duration: usize,
    /// Unrecorded warm-up ticks before recording starts (lets the
    /// closed-loop model reach steady state, like letting the benchmark
    /// ramp up before measurement).
    pub warmup: usize,
    /// RNG seed; same seed, same dataset.
    pub seed: u64,
}

impl Scenario {
    /// A scenario with the paper's defaults: TPC-C-like workload on the
    /// A3-like server, 30 ticks of warm-up.
    pub fn new(workload: WorkloadConfig, duration: usize, seed: u64) -> Self {
        Scenario {
            server: ServerConfig::default(),
            workload,
            injections: Vec::new(),
            duration,
            warmup: 30,
            seed,
        }
    }

    /// Add one injection (builder style).
    pub fn with_injection(mut self, injection: Injection) -> Self {
        self.injections.push(injection);
        self
    }

    /// Run the scenario and produce the labeled dataset.
    pub fn run(&self) -> LabeledDataset {
        self.run_with_noise(NoiseModel::default())
    }

    /// Run with a custom noise model (tests use [`NoiseModel::none`]).
    pub fn run_with_noise(&self, noise: NoiseModel) -> LabeledDataset {
        let mut engine = Engine::new(self.server.clone(), self.workload.clone(), noise, self.seed);
        let mut dataset = Dataset::new(metrics_schema());
        let n_numeric = dbsherlock_telemetry::AttributeKind::Numeric;
        let numeric_count = dataset.schema().ids_of_kind(n_numeric).len();

        for _ in 0..self.warmup {
            engine.step(&Perturbation::default());
        }
        let base_mix = engine.base_mix().clone();
        let pool_pages = engine.pool_pages();
        for tick in 0..self.duration {
            let mut p = Perturbation::default();
            for injection in &self.injections {
                p.apply(injection, tick, &base_mix, pool_pages);
            }
            let out = engine.step(&p);
            let mut values: Vec<Value> = out.numeric.values().into_iter().map(Value::Num).collect();
            debug_assert_eq!(values.len(), numeric_count);
            // The rows are built from the same `metrics_schema()` the
            // dataset was created with, so intern/push cannot fail.
            for (offset, label) in out.categorical.labels().iter().enumerate() {
                let attr_id = numeric_count + offset;
                #[allow(clippy::expect_used)]
                // sherlock-lint: allow(panic-path): static invariant
                values.push(dataset.intern(attr_id, label).expect("categorical attr"));
            }
            #[allow(clippy::expect_used)]
            // sherlock-lint: allow(panic-path): static invariant
            dataset.push_row(tick as f64, &values).expect("schema-consistent row");
        }
        LabeledDataset { data: dataset, injections: self.injections.clone() }
    }
}

/// A dataset plus its ground-truth anomaly labels.
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// The aligned telemetry.
    pub data: Dataset,
    /// The injections that produced it.
    pub injections: Vec<Injection>,
}

impl LabeledDataset {
    /// Union of all injected anomaly windows, clipped to the dataset.
    pub fn abnormal_region(&self) -> Region {
        let n = self.data.n_rows();
        Region::from_ranges(
            self.injections.iter().map(|inj| inj.start.min(n)..(inj.start + inj.duration).min(n)),
        )
    }

    /// The window of one anomaly kind, if injected.
    pub fn region_of(&self, kind: AnomalyKind) -> Option<Region> {
        let n = self.data.n_rows();
        let ranges: Vec<_> = self
            .injections
            .iter()
            .filter(|inj| inj.kind == kind)
            .map(|inj| inj.start.min(n)..(inj.start + inj.duration).min(n))
            .collect();
        if ranges.is_empty() {
            None
        } else {
            Some(Region::from_ranges(ranges))
        }
    }

    /// Everything not abnormal (the implicit normal region, §2.2).
    pub fn normal_region(&self) -> Region {
        self.abnormal_region().complement(self.data.n_rows())
    }

    /// Distinct anomaly kinds present, in Table 1 order.
    pub fn kinds(&self) -> Vec<AnomalyKind> {
        let mut kinds: Vec<AnomalyKind> = self.injections.iter().map(|i| i.kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }

    /// Run this dataset's telemetry through a fault plan and the lossy
    /// ingestion + alignment-repair pipeline, producing the degraded trace
    /// an operator would actually have on a misbehaving collector.
    ///
    /// Ground truth survives by *wall clock*, not row index: the scenario
    /// stamps row `i` with timestamp `i`, so the injection windows remain
    /// valid time intervals even after rows are dropped, duplicated, or
    /// reordered (see [`CorruptedDataset::abnormal_region`]).
    pub fn corrupted(&self, plan: &FaultPlan) -> Result<CorruptedDataset> {
        let (degraded, report, mut warnings) = plan.apply_to_dataset(&self.data)?;
        let (repaired, repair_warnings) = repair_alignment(&degraded, &RepairOptions::default())?;
        warnings.extend(repair_warnings);
        Ok(CorruptedDataset {
            data: repaired,
            injections: self.injections.clone(),
            report,
            warnings,
        })
    }
}

/// A [`LabeledDataset`] after fault injection and best-effort repair.
#[derive(Debug, Clone)]
pub struct CorruptedDataset {
    /// The degraded (lossy-ingested, alignment-repaired) telemetry.
    pub data: Dataset,
    /// The original injections; their `start`/`duration` are *seconds*, which
    /// double as timestamps in scenario output.
    pub injections: Vec<Injection>,
    /// What the fault plan did to the trace.
    pub report: CorruptionReport,
    /// What ingestion and repair had to skip or patch up.
    pub warnings: Vec<IngestWarning>,
}

impl CorruptedDataset {
    /// Union of all injected anomaly windows, mapped onto the degraded rows
    /// by timestamp.
    pub fn abnormal_region(&self) -> Region {
        let mut region = Region::new();
        for inj in &self.injections {
            let lo = inj.start as f64;
            let hi = (inj.start + inj.duration) as f64 - 1.0;
            region = region.union(&self.data.rows_in_time_range(lo, hi));
        }
        region
    }

    /// Everything not abnormal.
    pub fn normal_region(&self) -> Region {
        self.abnormal_region().complement(self.data.n_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike_scenario() -> Scenario {
        Scenario::new(WorkloadConfig::tpcc_default(), 150, 11).with_injection(Injection::new(
            AnomalyKind::WorkloadSpike,
            60,
            40,
        ))
    }

    #[test]
    fn run_produces_full_dataset() {
        let labeled = spike_scenario().run();
        assert_eq!(labeled.data.n_rows(), 150);
        assert_eq!(labeled.data.schema().len(), metrics_schema().len());
        assert_eq!(labeled.data.timestamps()[0], 0.0);
        assert_eq!(labeled.data.timestamps()[149], 149.0);
    }

    #[test]
    fn regions_partition_the_dataset() {
        let labeled = spike_scenario().run();
        let abnormal = labeled.abnormal_region();
        let normal = labeled.normal_region();
        assert_eq!(abnormal.intervals(), vec![60..100]);
        assert_eq!(abnormal.len() + normal.len(), 150);
        assert!(abnormal.intersect(&normal).is_empty());
    }

    #[test]
    fn region_of_filters_by_kind() {
        let labeled = spike_scenario().run();
        assert!(labeled.region_of(AnomalyKind::WorkloadSpike).is_some());
        assert!(labeled.region_of(AnomalyKind::CpuSaturation).is_none());
        assert_eq!(labeled.kinds(), vec![AnomalyKind::WorkloadSpike]);
    }

    #[test]
    fn injection_window_clipped_to_duration() {
        let labeled = Scenario::new(WorkloadConfig::tpcc_default(), 100, 3)
            .with_injection(Injection::new(AnomalyKind::CpuSaturation, 90, 40))
            .run();
        assert_eq!(labeled.abnormal_region().intervals(), vec![90..100]);
    }

    #[test]
    fn anomaly_moves_the_latency_needle() {
        let labeled = spike_scenario().run_with_noise(NoiseModel::none());
        let latency = labeled.data.numeric_by_name("txn_avg_latency_ms").unwrap();
        let abnormal = labeled.abnormal_region();
        let normal_mean = dbsherlock_telemetry::stats::mean(
            &labeled.normal_region().indices().iter().map(|&i| latency[i]).collect::<Vec<_>>(),
        );
        let abnormal_mean = dbsherlock_telemetry::stats::mean(
            &abnormal.indices().iter().map(|&i| latency[i]).collect::<Vec<_>>(),
        );
        assert!(
            abnormal_mean > normal_mean * 1.5,
            "spike should hurt latency: normal {normal_mean:.2} abnormal {abnormal_mean:.2}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = spike_scenario().run();
        let b = spike_scenario().run();
        assert_eq!(
            a.data.numeric_by_name("txn_throughput").unwrap(),
            b.data.numeric_by_name("txn_throughput").unwrap()
        );
    }

    #[test]
    fn corrupted_trace_keeps_time_based_truth() {
        use dbsherlock_telemetry::faults::{FaultKind, FaultPlan};
        let labeled = spike_scenario().run();
        let plan = FaultPlan::single(FaultKind::DropRows, 0.2, 17);
        let corrupted = labeled.corrupted(&plan).unwrap();
        assert!(corrupted.data.n_rows() < 150);
        assert!(corrupted.report.count(FaultKind::DropRows) > 0);
        let abnormal = corrupted.abnormal_region();
        // Every surviving abnormal row has a timestamp inside the window.
        assert!(!abnormal.is_empty());
        for &row in abnormal.indices() {
            let t = corrupted.data.timestamps()[row];
            assert!((60.0..100.0).contains(&t), "timestamp {t}");
        }
        // Dropping 20% of rows leaves most of the 40-second window.
        assert!(abnormal.len() >= 20, "{}", abnormal.len());
    }

    #[test]
    fn corrupted_trace_with_duplicates_is_repaired() {
        use dbsherlock_telemetry::faults::{FaultKind, FaultPlan};
        let labeled = spike_scenario().run();
        let plan = FaultPlan::single(FaultKind::DuplicateRows, 0.4, 5);
        let corrupted = labeled.corrupted(&plan).unwrap();
        // Alignment repair collapses every duplicate back out.
        assert_eq!(corrupted.data.n_rows(), 150);
        assert!(!corrupted.warnings.is_empty());
    }

    #[test]
    fn every_fault_kind_leaves_a_diagnosable_trace() {
        use dbsherlock_telemetry::faults::{FaultKind, FaultPlan};
        let labeled = spike_scenario().run();
        for kind in FaultKind::ALL {
            let plan = FaultPlan::single(kind, 0.1, 23);
            let corrupted = labeled.corrupted(&plan).unwrap();
            assert!(corrupted.data.n_rows() > 100, "{kind}: lost too much data");
            assert!(!corrupted.abnormal_region().is_empty(), "{kind}: truth vanished");
        }
    }
}
