//! The emitted telemetry schema.
//!
//! One row is produced per simulated second, mirroring what DBSeer collects
//! from Linux `/proc` and MySQL's global status variables (paper §2.1):
//! OS resource-consumption statistics, DBMS workload statistics, and
//! transaction aggregates, plus a few categorical state/configuration
//! attributes. Field order here *is* the schema order.

use dbsherlock_telemetry::{AttributeMeta, Schema};

macro_rules! numeric_metrics {
    ($($(#[$doc:meta])* $field:ident => $name:literal),* $(,)?) => {
        /// All numeric metrics for one tick, in schema order.
        #[derive(Debug, Clone, Default, PartialEq)]
        pub struct NumericMetrics {
            $($(#[$doc])* pub $field: f64,)*
        }

        impl NumericMetrics {
            /// Attribute names, in schema order.
            pub const NAMES: &'static [&'static str] = &[$($name),*];

            /// Values in schema order (parallel to [`Self::NAMES`]).
            pub fn values(&self) -> Vec<f64> {
                vec![$(self.$field),*]
            }
        }
    };
}

numeric_metrics! {
    // ---- OS: CPU ----
    /// Average CPU busy % across cores.
    os_cpu_usage => "os_cpu_usage",
    /// Core 0 busy %.
    os_cpu_usage_core0 => "os_cpu_usage_core0",
    /// Core 1 busy %.
    os_cpu_usage_core1 => "os_cpu_usage_core1",
    /// Core 2 busy %.
    os_cpu_usage_core2 => "os_cpu_usage_core2",
    /// Core 3 busy %.
    os_cpu_usage_core3 => "os_cpu_usage_core3",
    /// User-mode CPU %.
    os_cpu_user => "os_cpu_user",
    /// Kernel-mode CPU %.
    os_cpu_sys => "os_cpu_sys",
    /// Idle CPU % (complement of usage; the §5 domain rule
    /// `OS CPU Usage -> OS CPU Idle` prunes this as a secondary symptom).
    os_cpu_idle => "os_cpu_idle",
    /// CPU time waiting on I/O, %.
    os_cpu_iowait => "os_cpu_iowait",
    /// 1-minute load average.
    os_load_avg => "os_load_avg",
    // ---- OS: disk ----
    /// Random read operations per second.
    os_disk_read_iops => "os_disk_read_iops",
    /// Random write operations per second.
    os_disk_write_iops => "os_disk_write_iops",
    /// Sequential read MB/s.
    os_disk_read_mb => "os_disk_read_mb",
    /// Sequential write MB/s.
    os_disk_write_mb => "os_disk_write_mb",
    /// Device queue depth.
    os_disk_queue_depth => "os_disk_queue_depth",
    /// Device utilization %.
    os_disk_util => "os_disk_util",
    // ---- OS: network ----
    /// Outbound KB/s.
    os_net_send_kb => "os_net_send_kb",
    /// Inbound KB/s.
    os_net_recv_kb => "os_net_recv_kb",
    /// Outbound packets/s.
    os_net_send_packets => "os_net_send_packets",
    /// Inbound packets/s.
    os_net_recv_packets => "os_net_recv_packets",
    /// Measured client round-trip time, ms.
    os_net_rtt_ms => "os_net_rtt_ms",
    /// TCP retransmits/s.
    os_net_retrans => "os_net_retrans",
    // ---- OS: memory ----
    /// Minor page faults/s.
    os_page_faults_minor => "os_page_faults_minor",
    /// Major page faults/s.
    os_page_faults_major => "os_page_faults_major",
    /// Pages allocated (in use).
    os_pages_allocated => "os_pages_allocated",
    /// Pages free (complement; pruned by domain rule 2).
    os_pages_free => "os_pages_free",
    /// Swap used, MB.
    os_swap_used_mb => "os_swap_used_mb",
    /// Swap free, MB (complement; pruned by domain rule 3).
    os_swap_free_mb => "os_swap_free_mb",
    /// Cached file pages, MB.
    os_mem_cached_mb => "os_mem_cached_mb",
    // ---- OS: scheduler ----
    /// Context switches/s.
    os_context_switches => "os_context_switches",
    /// Hardware interrupts/s.
    os_interrupts => "os_interrupts",
    /// Runnable processes.
    os_procs_running => "os_procs_running",
    /// Processes blocked on I/O.
    os_procs_blocked => "os_procs_blocked",
    // ---- DBMS: CPU & threads ----
    /// CPU % consumed by the DBMS process (domain rule 1 marks
    /// `dbms_cpu_usage -> os_cpu_usage`).
    dbms_cpu_usage => "dbms_cpu_usage",
    /// Threads actively executing.
    dbms_threads_running => "dbms_threads_running",
    /// Client connections.
    dbms_threads_connected => "dbms_threads_connected",
    /// Queries waiting for a thread.
    dbms_queries_queued => "dbms_queries_queued",
    // ---- DBMS: logical work ----
    /// Buffer-pool read requests/s (logical reads).
    dbms_logical_reads => "dbms_logical_reads",
    /// Physical page reads/s.
    dbms_physical_reads => "dbms_physical_reads",
    /// Physical page writes/s.
    dbms_physical_writes => "dbms_physical_writes",
    /// Row read requests/s (the paper's "next-row-read-requests", §1).
    dbms_row_read_requests => "dbms_row_read_requests",
    /// Rows inserted/s.
    dbms_rows_inserted => "dbms_rows_inserted",
    /// Rows updated/s.
    dbms_rows_updated => "dbms_rows_updated",
    /// Rows deleted/s.
    dbms_rows_deleted => "dbms_rows_deleted",
    // ---- DBMS: statements ----
    /// SELECT statements/s.
    dbms_num_selects => "dbms_num_selects",
    /// UPDATE statements/s.
    dbms_num_updates => "dbms_num_updates",
    /// INSERT statements/s.
    dbms_num_inserts => "dbms_num_inserts",
    /// DELETE statements/s.
    dbms_num_deletes => "dbms_num_deletes",
    /// Commits/s.
    dbms_num_commits => "dbms_num_commits",
    /// Full table scans/s.
    dbms_full_table_scans => "dbms_full_table_scans",
    /// Index lookups/s.
    dbms_index_lookups => "dbms_index_lookups",
    /// Temp tables created/s.
    dbms_tmp_tables => "dbms_tmp_tables",
    // ---- DBMS: buffer pool ----
    /// Dirty pages in the pool.
    dbms_dirty_pages => "dbms_dirty_pages",
    /// Pages flushed/s.
    dbms_flushed_pages => "dbms_flushed_pages",
    /// Buffer-pool hit ratio %.
    dbms_buffer_hit_ratio => "dbms_buffer_hit_ratio",
    /// Free pages in the pool.
    dbms_buffer_pages_free => "dbms_buffer_pages_free",
    // ---- DBMS: locking ----
    /// Total lock wait time across all transactions, ms/s (aggregate only,
    /// as MySQL/Postgres record it — paper §1).
    dbms_lock_wait_ms => "dbms_lock_wait_ms",
    /// Lock waits/s.
    dbms_lock_waits => "dbms_lock_waits",
    /// Transactions currently waiting on row locks.
    dbms_row_lock_current_waits => "dbms_row_lock_current_waits",
    /// Deadlocks/s.
    dbms_deadlocks => "dbms_deadlocks",
    // ---- DBMS: logging ----
    /// Redo bytes written, KB/s.
    dbms_redo_written_kb => "dbms_redo_written_kb",
    /// Redo log space used, %.
    dbms_redo_used_pct => "dbms_redo_used_pct",
    /// Log rotations this second.
    dbms_log_rotations => "dbms_log_rotations",
    /// Table flush operations this second.
    dbms_table_flushes => "dbms_table_flushes",
    // ---- Transaction aggregates (DBSeer-computed, §2.1) ----
    /// Committed transactions/s.
    txn_throughput => "txn_throughput",
    /// Mean transaction latency, ms.
    txn_avg_latency_ms => "txn_avg_latency_ms",
    /// 99th-percentile transaction latency, ms.
    txn_p99_latency_ms => "txn_p99_latency_ms",
    /// Mean time clients spend waiting per request (network + queueing), ms.
    client_wait_ms => "client_wait_ms",
    /// Client terminals currently active.
    active_clients => "active_clients",
    /// NewOrder-class transactions/s (first mix class).
    txn_rate_class0 => "txn_rate_class0",
    /// Payment-class transactions/s (second mix class).
    txn_rate_class1 => "txn_rate_class1",
    /// OrderStatus-class transactions/s (third mix class).
    txn_rate_class2 => "txn_rate_class2",
    /// Delivery-class transactions/s (fourth mix class).
    txn_rate_class3 => "txn_rate_class3",
    /// StockLevel-class transactions/s (fifth mix class).
    txn_rate_class4 => "txn_rate_class4",
    /// Average optimizer cost estimate of queries this second (aggregate
    /// plan statistic, §2.1 footnote 3).
    query_avg_cost => "query_avg_cost",
}

/// Categorical attribute names, in schema order (after all numeric ones).
pub const CATEGORICAL_NAMES: &[&str] = &[
    // Invariant configuration (paper §2.4: invariants are never causes).
    "config_flush_method",
    "config_io_scheduler",
    // Discrete DBMS states that do change.
    "log_rotation_state",
    "checkpoint_state",
];

/// Categorical values for one tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalMetrics {
    /// Fixed config value (always `"fdatasync"`).
    pub config_flush_method: &'static str,
    /// Fixed config value (always `"deadline"`).
    pub config_io_scheduler: &'static str,
    /// `"steady"` or `"rotating"`.
    pub log_rotation_state: &'static str,
    /// `"idle"` or `"active"`.
    pub checkpoint_state: &'static str,
}

impl Default for CategoricalMetrics {
    fn default() -> Self {
        CategoricalMetrics {
            config_flush_method: "fdatasync",
            config_io_scheduler: "deadline",
            log_rotation_state: "steady",
            checkpoint_state: "idle",
        }
    }
}

impl CategoricalMetrics {
    /// Labels in schema order (parallel to [`CATEGORICAL_NAMES`]).
    pub fn labels(&self) -> [&'static str; 4] {
        [
            self.config_flush_method,
            self.config_io_scheduler,
            self.log_rotation_state,
            self.checkpoint_state,
        ]
    }
}

/// Build the full telemetry schema: all numeric metrics, then all
/// categorical ones.
pub fn metrics_schema() -> Schema {
    let mut attrs: Vec<AttributeMeta> =
        NumericMetrics::NAMES.iter().map(|n| AttributeMeta::numeric(*n)).collect();
    attrs.extend(CATEGORICAL_NAMES.iter().map(|n| AttributeMeta::categorical(*n)));
    // The static name lists are duplicate-free (asserted by the tests
    // below), so construction cannot fail.
    #[allow(clippy::expect_used)]
    Schema::from_attrs(attrs).expect("metric names are unique") // sherlock-lint: allow(panic-path): static invariant
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_expected_shape() {
        let schema = metrics_schema();
        assert_eq!(schema.len(), NumericMetrics::NAMES.len() + CATEGORICAL_NAMES.len());
        assert!(
            schema.len() >= 75,
            "paper analyses hundreds of statistics; we model {}",
            schema.len()
        );
        assert_eq!(schema.id_of("os_cpu_usage"), Some(0));
        assert!(schema.id_of("config_flush_method").is_some());
    }

    #[test]
    fn values_parallel_names() {
        let m = NumericMetrics { os_cpu_usage: 42.0, ..Default::default() };
        let values = m.values();
        assert_eq!(values.len(), NumericMetrics::NAMES.len());
        assert_eq!(values[0], 42.0);
        // sherlock-lint: allow(nan-unsafe): Default zeros are exact
        assert!(values[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = NumericMetrics::NAMES.to_vec();
        names.extend(CATEGORICAL_NAMES);
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }

    #[test]
    fn categorical_defaults_are_steady_state() {
        let c = CategoricalMetrics::default();
        assert_eq!(c.labels(), ["fdatasync", "deadline", "steady", "idle"]);
    }
}
