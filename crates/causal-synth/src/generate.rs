//! Synthetic dataset + domain-knowledge generation (paper Appendix F).
//!
//! Per run: draw a random linear causal graph, simulate 600 one-second
//! tuples (root causes `N(10, 10)` normally and `N(100, 10)` during a
//! 60-tuple contiguous abnormal block, aligned across root causes;
//! non-root variables via the SEM with `ε ~ N(0, 1)`), then derive random
//! domain-knowledge rules whose cause attributes are the root causes.
//! Ground truth: a predicate on an effect attribute *should* be pruned iff
//! the graph has a path from its rule's cause variable to it.

use dbsherlock_telemetry::{AttributeMeta, Dataset, Region, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::CausalGraph;

/// Configuration of one synthetic instance.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of variables `k` (paper uses 7).
    pub k: usize,
    /// Forward-edge probability of the random DAG.
    pub edge_prob: f64,
    /// Total tuples (paper: 600, i.e. ten minutes at 1 s).
    pub n_rows: usize,
    /// Length of the contiguous abnormal block (paper: 60).
    pub abnormal_len: usize,
    /// Effect attributes drawn per root-cause rule.
    pub effects_per_cause: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { k: 7, edge_prob: 0.35, n_rows: 600, abnormal_len: 60, effects_per_cause: 2 }
    }
}

/// One rule `cause → effect` over attribute names (kept as plain strings
/// so this crate does not depend on the core crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthRule {
    /// Cause attribute name.
    pub cause: String,
    /// Effect attribute name.
    pub effect: String,
}

/// A generated instance with its ground truth.
#[derive(Debug, Clone)]
pub struct SynthInstance {
    /// The telemetry-format dataset (attributes `v0..v{k-1}`).
    pub dataset: Dataset,
    /// The injected abnormal block.
    pub abnormal: Region,
    /// The generating graph.
    pub graph: CausalGraph,
    /// Indices of root cause variables.
    pub root_causes: Vec<usize>,
    /// The randomly generated domain knowledge.
    pub rules: Vec<SynthRule>,
}

/// Attribute name of variable `i`.
pub fn var_name(i: usize) -> String {
    format!("v{i}")
}

impl SynthInstance {
    /// Generate one instance.
    pub fn generate(config: &SynthConfig, seed: u64) -> SynthInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = CausalGraph::random(config.k, config.edge_prob, &mut rng);
        let root_causes = graph.root_causes();

        // Abnormal block position: anywhere fully inside the run.
        let max_start = config.n_rows - config.abnormal_len;
        let start = rng.random_range(0..=max_start);
        let abnormal = Region::from_range(start..start + config.abnormal_len);

        // `var_name` enumerates distinct names, so construction cannot fail.
        #[allow(clippy::expect_used)]
        let schema = Schema::from_attrs((0..config.k).map(|i| AttributeMeta::numeric(var_name(i))))
            .expect("unique names"); // sherlock-lint: allow(panic-path): static invariant
        let mut dataset = Dataset::new(schema);
        let mut values = vec![0.0_f64; config.k];
        for row in 0..config.n_rows {
            let is_abnormal = abnormal.contains(row);
            for j in 0..config.k {
                values[j] = if graph.parents[j].is_empty() {
                    // Root: anomalous distribution only for root causes of
                    // the effect variable, and only inside the block.
                    let mean = if is_abnormal && root_causes.contains(&j) { 100.0 } else { 10.0 };
                    normal(&mut rng, mean, 10.0)
                } else {
                    let linear: f64 = graph.parents[j].iter().map(|&(i, c)| c * values[i]).sum();
                    linear + normal(&mut rng, 0.0, 1.0)
                };
            }
            let row_values: Vec<Value> = values.iter().map(|&v| Value::Num(v)).collect();
            // Rows mirror the schema built above, so push cannot fail.
            #[allow(clippy::expect_used)]
            // sherlock-lint: allow(panic-path): static invariant
            dataset.push_row(row as f64, &row_values).expect("schema-consistent");
        }

        // Domain knowledge: every root cause becomes the cause of
        // `effects_per_cause` rules towards random other attributes,
        // honouring the no-symmetric-pair condition.
        let mut rules: Vec<SynthRule> = Vec::new();
        for &cause in &root_causes {
            let mut added = 0;
            let mut guard = 0;
            while added < config.effects_per_cause && guard < 50 {
                guard += 1;
                let effect = rng.random_range(0..config.k);
                if effect == cause {
                    continue;
                }
                let rule = SynthRule { cause: var_name(cause), effect: var_name(effect) };
                let symmetric =
                    rules.iter().any(|r| r.cause == rule.effect && r.effect == rule.cause);
                if symmetric || rules.contains(&rule) {
                    continue;
                }
                rules.push(rule);
                added += 1;
            }
        }

        SynthInstance { dataset, abnormal, graph, root_causes, rules }
    }

    /// Ground truth for attribute `attr`:
    /// * `Some(true)` — it is an effect attribute of some rule whose cause
    ///   reaches it in the graph (a true secondary symptom: *should be
    ///   pruned*, App. F's "Actual Positive");
    /// * `Some(false)` — an effect attribute no rule-cause reaches
    ///   (*should be kept*, "Actual Negative");
    /// * `None` — not an effect attribute of any rule (outside the
    ///   confusion matrix).
    pub fn should_prune(&self, attr: &str) -> Option<bool> {
        let mut is_effect = false;
        for rule in &self.rules {
            if rule.effect != attr {
                continue;
            }
            is_effect = true;
            let cause_idx = parse_var(&rule.cause)?;
            let effect_idx = parse_var(&rule.effect)?;
            if self.graph.reaches(cause_idx, effect_idx) {
                return Some(true);
            }
        }
        if is_effect {
            Some(false)
        } else {
            None
        }
    }
}

fn parse_var(name: &str) -> Option<usize> {
    name.strip_prefix('v')?.parse().ok()
}

/// Box–Muller normal sampling (kept local; the simulator's copy lives in a
/// crate this one doesn't depend on).
fn normal(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::stats;

    #[test]
    fn instance_has_expected_shape() {
        let inst = SynthInstance::generate(&SynthConfig::default(), 42);
        assert_eq!(inst.dataset.n_rows(), 600);
        assert_eq!(inst.dataset.schema().len(), 7);
        assert_eq!(inst.abnormal.len(), 60);
        assert_eq!(inst.abnormal.intervals().len(), 1);
        assert!(!inst.root_causes.is_empty());
        assert!(!inst.rules.is_empty());
    }

    #[test]
    fn root_causes_shift_during_the_block() {
        let inst = SynthInstance::generate(&SynthConfig::default(), 7);
        let rc = inst.root_causes[0];
        let col = inst.dataset.numeric(rc).unwrap();
        let abnormal_vals: Vec<f64> = inst.abnormal.indices().iter().map(|&r| col[r]).collect();
        let normal_vals: Vec<f64> =
            inst.abnormal.complement(600).indices().iter().map(|&r| col[r]).collect();
        assert!((stats::mean(&abnormal_vals) - 100.0).abs() < 10.0);
        assert!((stats::mean(&normal_vals) - 10.0).abs() < 5.0);
    }

    #[test]
    fn effect_variable_inherits_the_anomaly() {
        let inst = SynthInstance::generate(&SynthConfig::default(), 11);
        let effect = inst.graph.effect_variable();
        let col = inst.dataset.numeric(effect).unwrap();
        let abnormal_mean =
            stats::mean(&inst.abnormal.indices().iter().map(|&r| col[r]).collect::<Vec<_>>());
        let normal_mean = stats::mean(
            &inst.abnormal.complement(600).indices().iter().map(|&r| col[r]).collect::<Vec<_>>(),
        );
        assert!(
            (abnormal_mean - normal_mean).abs() > 10.0,
            "effect should move: {abnormal_mean} vs {normal_mean}"
        );
    }

    #[test]
    fn rules_have_root_causes_as_causes_and_no_symmetric_pairs() {
        for seed in 0..20 {
            let inst = SynthInstance::generate(&SynthConfig::default(), seed);
            for rule in &inst.rules {
                let c = parse_var(&rule.cause).unwrap();
                assert!(inst.root_causes.contains(&c));
                assert!(!inst
                    .rules
                    .iter()
                    .any(|r| r.cause == rule.effect && r.effect == rule.cause));
            }
        }
    }

    #[test]
    fn ground_truth_follows_reachability() {
        let inst = SynthInstance::generate(&SynthConfig::default(), 3);
        for rule in &inst.rules {
            let truth = inst.should_prune(&rule.effect);
            assert!(truth.is_some());
            let cause = parse_var(&rule.cause).unwrap();
            let effect = parse_var(&rule.effect).unwrap();
            if inst.graph.reaches(cause, effect) {
                assert_eq!(truth, Some(true));
            }
        }
        assert_eq!(inst.should_prune("v999"), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthInstance::generate(&SynthConfig::default(), 5);
        let b = SynthInstance::generate(&SynthConfig::default(), 5);
        assert_eq!(a.dataset.numeric(0).unwrap(), b.dataset.numeric(0).unwrap());
        assert_eq!(a.rules, b.rules);
    }
}
