#![warn(missing_docs)]

//! Synthetic linear-SEM causal graphs for ground-truth evaluation of
//! DBSherlock's secondary-symptom pruning (paper Appendix F).
//!
//! Real telemetry has no known ground-truth causal structure, so the paper
//! evaluates domain-knowledge pruning on synthetic data: random DAGs with
//! linear structural equations, an injected anomaly on the root causes of
//! a designated effect variable, and randomly generated domain-knowledge
//! rules whose validity is decided by graph reachability.

pub mod generate;
pub mod graph;

pub use generate::{var_name, SynthConfig, SynthInstance, SynthRule};
pub use graph::CausalGraph;
