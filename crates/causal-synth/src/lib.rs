#![warn(missing_docs)]
// Diagnosis must degrade gracefully, never panic: unwrap/expect are banned in
// library code (tests may use them freely). See sherlock-lint's panic-path rule.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Synthetic linear-SEM causal graphs for ground-truth evaluation of
//! DBSherlock's secondary-symptom pruning (paper Appendix F).
//!
//! Real telemetry has no known ground-truth causal structure, so the paper
//! evaluates domain-knowledge pruning on synthetic data: random DAGs with
//! linear structural equations, an injected anomaly on the root causes of
//! a designated effect variable, and randomly generated domain-knowledge
//! rules whose validity is decided by graph reachability.

pub mod generate;
pub mod graph;

pub use generate::{var_name, SynthConfig, SynthInstance, SynthRule};
pub use graph::CausalGraph;
