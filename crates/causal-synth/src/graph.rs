//! Random linear causal graphs (paper Appendix F).
//!
//! A *linear causal graph* is a DAG whose node values obey a linear
//! structural equation model. Nodes are identified with indices `0..k`
//! ordered topologically (edges always point from lower to higher index).
//! Node `k-1` is the designated **effect variable** `V_k`: it has no
//! outgoing edges and at least one incoming edge. Its ancestor roots (no
//! incoming edges) are the **root cause variables** that carry the
//! injected anomaly.

use rand::rngs::StdRng;
use rand::Rng;

/// A DAG with SEM coefficients on its edges.
#[derive(Debug, Clone)]
pub struct CausalGraph {
    /// Number of variables `k`.
    pub k: usize,
    /// `coeff[j]` lists `(i, c_ij)` pairs: parents of `j` and their
    /// coefficients.
    pub parents: Vec<Vec<(usize, f64)>>,
}

impl CausalGraph {
    /// Generate a random graph of `k >= 2` nodes. Each forward pair
    /// `(i, j)` gets an edge with probability `edge_prob`; the effect
    /// variable `k-1` is guaranteed at least one parent. Coefficients are
    /// non-zero integers drawn from `[-10, 10]` (paper App. F).
    pub fn random(k: usize, edge_prob: f64, rng: &mut StdRng) -> CausalGraph {
        assert!(k >= 2, "a causal graph needs at least two variables");
        let mut parents: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
        let coeff = |rng: &mut StdRng| -> f64 {
            // Non-zero integer in [-10, 10].
            let magnitude = rng.random_range(1..=10) as f64;
            if rng.random::<bool>() {
                magnitude
            } else {
                -magnitude
            }
        };
        for (j, node_parents) in parents.iter_mut().enumerate().skip(1) {
            for i in 0..j {
                if rng.random::<f64>() < edge_prob {
                    let c = coeff(rng);
                    node_parents.push((i, c));
                }
            }
        }
        if parents[k - 1].is_empty() {
            let i = rng.random_range(0..k - 1);
            let c = coeff(rng);
            parents[k - 1].push((i, c));
        }
        CausalGraph { k, parents }
    }

    /// The effect variable's index (`V_k` in the paper).
    pub fn effect_variable(&self) -> usize {
        self.k - 1
    }

    /// Nodes with no incoming edges.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.k).filter(|&j| self.parents[j].is_empty()).collect()
    }

    /// Is there a directed path from `from` to `to`?
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        // Walk ancestors of `to` (edges point parent -> child).
        let mut stack = vec![to];
        let mut seen = vec![false; self.k];
        while let Some(node) = stack.pop() {
            if seen[node] {
                continue;
            }
            seen[node] = true;
            for &(parent, _) in &self.parents[node] {
                if parent == from {
                    return true;
                }
                stack.push(parent);
            }
        }
        false
    }

    /// Root ancestors of the effect variable — the paper's root cause
    /// variables `C`.
    pub fn root_causes(&self) -> Vec<usize> {
        let effect = self.effect_variable();
        self.roots().into_iter().filter(|&r| self.reaches(r, effect)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn effect_variable_always_has_a_parent() {
        for seed in 0..50 {
            let g = CausalGraph::random(7, 0.05, &mut rng(seed));
            assert!(!g.parents[g.effect_variable()].is_empty());
        }
    }

    #[test]
    fn coefficients_are_nonzero_integers_in_range() {
        let g = CausalGraph::random(7, 0.9, &mut rng(4));
        for parents in &g.parents {
            for &(_, c) in parents {
                // sherlock-lint: allow(nan-unsafe): exact integrality check is the point
                assert!(c != 0.0 && c.abs() <= 10.0 && c == c.trunc());
            }
        }
    }

    #[test]
    fn edges_point_forward_so_graph_is_acyclic() {
        let g = CausalGraph::random(10, 0.5, &mut rng(9));
        for (j, parents) in g.parents.iter().enumerate() {
            for &(i, _) in parents {
                assert!(i < j);
            }
        }
    }

    #[test]
    fn reachability() {
        // 0 -> 1 -> 3; 2 isolated-ish.
        let g = CausalGraph { k: 4, parents: vec![vec![], vec![(0, 2.0)], vec![], vec![(1, 1.0)]] };
        assert!(g.reaches(0, 3));
        assert!(g.reaches(1, 3));
        assert!(!g.reaches(2, 3));
        assert!(!g.reaches(3, 0));
        assert!(g.reaches(2, 2));
        assert_eq!(g.roots(), vec![0, 2]);
        assert_eq!(g.root_causes(), vec![0]);
    }

    #[test]
    fn root_causes_never_empty() {
        for seed in 0..50 {
            let g = CausalGraph::random(7, 0.3, &mut rng(seed));
            assert!(!g.root_causes().is_empty(), "seed {seed}");
        }
    }
}
