//! Bounded per-tenant ring buffers of aligned tuples.
//!
//! Each tenant stream is buffered in a [`TenantRing`]: a fixed-capacity
//! window over the most recent rows, evicting oldest-first. The bound is
//! the daemon's memory contract — a tenant flooding rows can never grow the
//! process beyond `capacity × tenants`, it can only push its own history
//! out of the window. Rows carry a monotonically increasing absolute
//! **sequence number** so a detection over the (relative) window can be
//! reported — and deduplicated — in absolute stream coordinates even after
//! the window has slid.
//!
//! Cells are stored pre-parse ([`RawCell`]) rather than as a `Dataset`:
//! datasets are append-only and intern categorical labels into a shared
//! dictionary, neither of which mixes with eviction. The ring materializes
//! a fresh `Dataset` snapshot on demand ([`TenantRing::to_dataset`]); the
//! proptest suite pins that a wrapped ring materializes bit-identically to
//! a flat slice of the same trailing rows.

use std::collections::VecDeque;

use dbsherlock_telemetry::{push_raw_row, Dataset, RawCell, Schema};

/// One buffered telemetry row.
#[derive(Debug, Clone, PartialEq)]
pub struct RingRow {
    /// Absolute position in the tenant's stream (0-based, never reused).
    pub seq: u64,
    /// The row's own timestamp (as sent by the client; may skew).
    pub timestamp: f64,
    /// Parsed-but-uninterned cells, one per schema attribute.
    pub cells: Vec<RawCell>,
}

/// A bounded, oldest-first-evicting buffer of one tenant's recent rows.
#[derive(Debug, Clone)]
pub struct TenantRing {
    schema: Schema,
    rows: VecDeque<RingRow>,
    capacity: usize,
    next_seq: u64,
}

impl TenantRing {
    /// An empty ring over `schema` holding at most `capacity` rows
    /// (clamped to at least 1).
    pub fn new(schema: Schema, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TenantRing { schema, rows: VecDeque::with_capacity(capacity), capacity, next_seq: 0 }
    }

    /// Replace the schema (a tenant re-sent its header), clearing buffered
    /// rows but preserving the absolute sequence counter.
    pub fn reset_schema(&mut self, schema: Schema) {
        self.schema = schema;
        self.rows.clear();
    }

    /// The ring's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Buffered row count (≤ capacity).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sequence number of the next row to be pushed (= rows ever accepted).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the oldest buffered row, if any.
    pub fn first_seq(&self) -> Option<u64> {
        self.rows.front().map(|r| r.seq)
    }

    /// Append a row, evicting the oldest if the ring is full. Returns the
    /// appended row's sequence number and whether an eviction happened.
    pub fn push(&mut self, timestamp: f64, cells: Vec<RawCell>) -> (u64, bool) {
        let evicted = self.rows.len() >= self.capacity;
        if evicted {
            self.rows.pop_front();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.rows.push_back(RingRow { seq, timestamp, cells });
        (seq, evicted)
    }

    /// The buffered rows, oldest first.
    pub fn rows(&self) -> impl Iterator<Item = &RingRow> {
        self.rows.iter()
    }

    /// Materialize the window as a fresh [`Dataset`] snapshot (rows oldest
    /// first) plus the absolute sequence number of each dataset row, so
    /// window-relative detection regions translate back to stream
    /// coordinates. Rows that cannot be appended (e.g. a categorical
    /// dictionary at capacity) are skipped and counted.
    pub fn to_dataset(&self) -> RingSnapshot {
        let mut dataset = Dataset::new(self.schema.clone());
        let mut seqs = Vec::with_capacity(self.rows.len());
        let mut skipped = 0usize;
        for row in &self.rows {
            match push_raw_row(&mut dataset, row.timestamp, &row.cells) {
                // sherlock-lint: allow(unbounded-channel): one entry per buffered row; the ring's fixed capacity is the bound
                Ok(()) => seqs.push(row.seq),
                Err(_) => skipped += 1,
            }
        }
        RingSnapshot { dataset, seqs, skipped }
    }
}

/// A materialized window: the dataset, the per-row sequence map, and how
/// many buffered rows could not be appended.
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// The window as an ordinary dataset (row `i` is the window's `i`-th
    /// oldest surviving row).
    pub dataset: Dataset,
    /// `seqs[i]` = absolute sequence number of dataset row `i`.
    pub seqs: Vec<u64>,
    /// Buffered rows dropped during materialization.
    pub skipped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsherlock_telemetry::AttributeMeta;

    fn schema() -> Schema {
        Schema::from_attrs([AttributeMeta::numeric("cpu")]).unwrap()
    }

    fn num_row(v: f64) -> Vec<RawCell> {
        vec![RawCell::Num(v)]
    }

    #[test]
    fn bounded_and_evicts_oldest_first() {
        let mut ring = TenantRing::new(schema(), 3);
        for i in 0..5 {
            let (seq, evicted) = ring.push(i as f64, num_row(i as f64));
            assert_eq!(seq, i as u64);
            assert_eq!(evicted, i >= 3);
            assert!(ring.len() <= 3);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.first_seq(), Some(2));
        let values: Vec<f64> = ring.rows().map(|r| r.timestamp).collect();
        assert_eq!(values, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn snapshot_carries_sequence_map() {
        let mut ring = TenantRing::new(schema(), 2);
        for i in 0..4 {
            ring.push(10.0 + i as f64, num_row(i as f64));
        }
        let snap = ring.to_dataset();
        assert_eq!(snap.dataset.n_rows(), 2);
        assert_eq!(snap.seqs, vec![2, 3]);
        assert_eq!(snap.skipped, 0);
        assert_eq!(snap.dataset.numeric(0).unwrap(), &[2.0, 3.0]);
    }

    #[test]
    fn reset_schema_clears_rows_but_keeps_seq() {
        let mut ring = TenantRing::new(schema(), 4);
        ring.push(0.0, num_row(1.0));
        ring.push(1.0, num_row(2.0));
        ring.reset_schema(schema());
        assert!(ring.is_empty());
        let (seq, _) = ring.push(2.0, num_row(3.0));
        assert_eq!(seq, 2);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut ring = TenantRing::new(schema(), 0);
        assert_eq!(ring.capacity(), 1);
        ring.push(0.0, num_row(1.0));
        let (_, evicted) = ring.push(1.0, num_row(2.0));
        assert!(evicted);
        assert_eq!(ring.len(), 1);
    }
}
