//! Deterministic fault schedules for torturing the ingest path.
//!
//! The telemetry layer's `FaultPlan` corrupts *datasets*; this module
//! corrupts *streams* — the transport-shaped failures a daemon meets that a
//! batch tool never does: lines torn mid-byte by a dying client, tenants
//! flooding rows, connections dropping mid-stream, readers that stall, and
//! clocks that jump backwards. Schedules are explicit (`at` row positions,
//! no RNG), so a failing chaos run replays bit-identically.
//!
//! [`apply_schedule`] compiles a clean line stream plus a fault list into a
//! sequence of [`StreamEvent`]s that a driver (the chaos tests, the
//! `table5d_daemon_overload` bench, or a manual `nc` session) plays against
//! the daemon.

// sherlock-lint: allow-file(unbounded-channel): the event vector compiled by
// apply_schedule is bounded by lines.len() + faults.len(), both finite test
// inputs — no socket feeds these loops.

/// One transport-level fault, anchored to a 0-based row position in the
/// clean stream.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestFault {
    /// The row at `at` is torn: its first `keep_bytes` bytes are sent with
    /// no newline, then the connection behaves as if the client died and
    /// reconnected (the remainder is lost).
    TornLine {
        /// Row position of the torn line.
        at: usize,
        /// Bytes of the row that make it onto the wire.
        keep_bytes: usize,
    },
    /// `extra` duplicate copies of the row at `at` are injected — a tenant
    /// flooding the daemon faster than it can diagnose.
    Flood {
        /// Row position to duplicate.
        at: usize,
        /// Copies injected after the original.
        extra: usize,
    },
    /// The stream ends abruptly after the row at `at` (mid-stream
    /// disconnect); later rows never arrive.
    Disconnect {
        /// Last row position delivered.
        at: usize,
    },
    /// The client stalls for `ms` before sending the row at `at` — a reader
    /// that stops draining, exercising read deadlines and idle timeouts.
    StallReader {
        /// Row position delayed.
        at: usize,
        /// Stall length in milliseconds.
        ms: u64,
    },
    /// The row at `at` has its timestamp (first CSV field) rewritten to
    /// `to` — clock skew / backwards time.
    ClockSkew {
        /// Row position rewritten.
        at: usize,
        /// Replacement timestamp.
        to: f64,
    },
    /// A line of non-CSV garbage is injected before the row at `at`.
    Garbage {
        /// Row position the garbage precedes.
        at: usize,
        /// The garbage payload.
        payload: String,
    },
}

/// One wire-level event produced by [`apply_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// Send these exact bytes (a `\n`-terminated line unless torn).
    Send(String),
    /// Sleep this many milliseconds before the next event.
    Pause(u64),
    /// Close the connection without warning.
    Disconnect,
}

/// Compile clean `lines` (without trailing newlines) and a fault schedule
/// into the wire events a chaos driver should play. Faults whose `at` is
/// past the end of the stream are ignored; multiple faults may anchor to
/// the same row (they apply in schedule order).
pub fn apply_schedule(lines: &[String], faults: &[IngestFault]) -> Vec<StreamEvent> {
    let mut events = Vec::with_capacity(lines.len() + faults.len());
    for (i, line) in lines.iter().enumerate() {
        let mut line = line.clone();
        let mut torn = None;
        let mut flood = 0usize;
        let mut disconnect = false;
        for fault in faults {
            match fault {
                IngestFault::TornLine { at, keep_bytes } if *at == i => {
                    torn = Some(*keep_bytes);
                }
                IngestFault::Flood { at, extra } if *at == i => flood += extra,
                IngestFault::Disconnect { at } if *at == i => disconnect = true,
                IngestFault::StallReader { at, ms } if *at == i => {
                    events.push(StreamEvent::Pause(*ms));
                }
                IngestFault::ClockSkew { at, to } if *at == i => {
                    line = skew_timestamp(&line, *to);
                }
                IngestFault::Garbage { at, payload } if *at == i => {
                    events.push(StreamEvent::Send(format!("{payload}\n")));
                }
                _ => {}
            }
        }
        match torn {
            Some(keep) => {
                let keep = keep.min(line.len());
                // Tear on a char boundary so the driver can still treat the
                // event as a string; the daemon sees a prefix with no '\n'.
                let mut end = keep;
                while end > 0 && !line.is_char_boundary(end) {
                    end -= 1;
                }
                // sherlock-lint: allow(panic-path): end <= line.len() and sits on a char boundary
                events.push(StreamEvent::Send(line[..end].to_string()));
                events.push(StreamEvent::Disconnect);
                return events;
            }
            None => {
                events.push(StreamEvent::Send(format!("{line}\n")));
                for _ in 0..flood {
                    events.push(StreamEvent::Send(format!("{line}\n")));
                }
            }
        }
        if disconnect {
            events.push(StreamEvent::Disconnect);
            return events;
        }
    }
    events
}

/// Rewrite the first CSV field (the timestamp) of `line` to `to`.
fn skew_timestamp(line: &str, to: f64) -> String {
    match line.split_once(',') {
        Some((_, rest)) => format!("{to},{rest}"),
        None => line.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{i},1.0")).collect()
    }

    #[test]
    fn clean_schedule_is_identity() {
        let events = apply_schedule(&lines(3), &[]);
        assert_eq!(
            events,
            vec![
                StreamEvent::Send("0,1.0\n".into()),
                StreamEvent::Send("1,1.0\n".into()),
                StreamEvent::Send("2,1.0\n".into()),
            ]
        );
    }

    #[test]
    fn torn_line_truncates_and_disconnects() {
        let events = apply_schedule(&lines(3), &[IngestFault::TornLine { at: 1, keep_bytes: 3 }]);
        assert_eq!(events[1], StreamEvent::Send("1,1".into()));
        assert_eq!(events[2], StreamEvent::Disconnect);
        assert_eq!(events.len(), 3, "rows after the tear are lost");
    }

    #[test]
    fn flood_duplicates_and_skew_rewrites() {
        let events = apply_schedule(
            &lines(2),
            &[IngestFault::Flood { at: 0, extra: 2 }, IngestFault::ClockSkew { at: 1, to: -5.0 }],
        );
        assert_eq!(events.iter().filter(|e| **e == StreamEvent::Send("0,1.0\n".into())).count(), 3);
        assert_eq!(events.last(), Some(&StreamEvent::Send("-5,1.0\n".into())));
    }

    #[test]
    fn stall_garbage_disconnect_compose() {
        let events = apply_schedule(
            &lines(4),
            &[
                IngestFault::StallReader { at: 1, ms: 50 },
                IngestFault::Garbage { at: 1, payload: "\u{1}\u{2}%%".into() },
                IngestFault::Disconnect { at: 2 },
            ],
        );
        assert!(events.contains(&StreamEvent::Pause(50)));
        assert!(events.contains(&StreamEvent::Send("\u{1}\u{2}%%\n".into())));
        assert_eq!(events.last(), Some(&StreamEvent::Disconnect));
        // Row 3 never ships.
        assert!(!events.contains(&StreamEvent::Send("3,1.0\n".into())));
    }
}
