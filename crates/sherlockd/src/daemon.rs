//! The daemon core: tenants, admission control, the diagnosis queue, and
//! graceful drain.
//!
//! [`Daemon`] is transport-agnostic — [`handle_line`](Daemon::handle_line)
//! takes one protocol line and a [`Sink`] to answer on, so the same core
//! serves TCP connections, stdin, and in-process tests. The robustness
//! invariants live here:
//!
//! * **Bounded memory.** Tenants are capped ([`DaemonConfig::max_tenants`]),
//!   each tenant's history is a bounded ring, and the diagnosis queue is a
//!   bounded deque. No input can grow the process without bound.
//! * **Load shedding is explicit.** When the queue is full the *oldest*
//!   queued diagnosis is dropped and its requester told so with a
//!   structured [`Response::Overloaded`] — newer telemetry wins because it
//!   describes the incident that is happening now.
//! * **Panic isolation.** Each diagnosis runs behind the same
//!   panic-isolation boundary the batch API uses; a scorer panic
//!   quarantines that one tenant and the daemon lives on.
//! * **Graceful drain.** [`drain`](Daemon::drain) stops admission, lets
//!   in-flight diagnoses finish under a deadline, cancels cooperative work
//!   past it, then saves the model store exactly once (single-writer
//!   contract) and verifies the written generation by re-loading it.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dbsherlock_core::{
    CancelFlag, ExecPolicy, ModelRepository, ModelStore, Sherlock, SherlockError, SherlockParams,
    StoreReport,
};
use dbsherlock_telemetry::{parse_header_lossy, parse_line_lossy, IngestWarning};

use crate::protocol::{parse_command, quote, Command, Response};
use crate::ring::{RingSnapshot, TenantRing};

/// Operational knobs of the daemon. Algorithm knobs stay in
/// [`SherlockParams`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Rows buffered per tenant (the sliding detection window).
    pub ring_rows: usize,
    /// Maximum number of tenants admitted; further headers are rejected
    /// with `error code=tenant-limit`.
    pub max_tenants: usize,
    /// Run detection every this many accepted rows per tenant.
    pub detect_every: usize,
    /// Don't bother detecting until a tenant has buffered this many rows.
    pub min_detect_rows: usize,
    /// Bound on queued (not yet running) diagnoses; beyond it the oldest
    /// queued job is shed.
    pub max_pending: usize,
    /// Diagnosis worker threads.
    pub workers: usize,
    /// Grace period for in-flight diagnoses on drain before cooperative
    /// cancellation kicks in.
    pub drain_deadline_ms: u64,
    /// Algorithm parameters (budget/deadline included).
    pub params: SherlockParams,
    /// Where to load models from at startup and save them on drain.
    pub store_path: Option<std::path::PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            ring_rows: 512,
            max_tenants: 1024,
            detect_every: 64,
            min_detect_rows: 48,
            max_pending: 32,
            workers: 2,
            drain_deadline_ms: 2_000,
            params: SherlockParams::default(),
            store_path: None,
        }
    }
}

/// Where a response goes. One sink per client session; workers answer on
/// the sink of whichever session requested (or triggered) the diagnosis.
pub type Sink = Arc<dyn Fn(&Response) + Send + Sync>;

/// Per-connection state: which tenant the stream feeds and where replies go.
pub struct Session {
    /// Tenant selected with `tenant <name>`, if any yet.
    pub tenant: Option<String>,
    /// Reply channel for this session.
    pub sink: Sink,
    lines_seen: usize,
}

impl Session {
    /// A fresh session answering on `sink`.
    pub fn new(sink: Sink) -> Self {
        Session { tenant: None, sink, lines_seen: 0 }
    }
}

/// What [`Daemon::handle_line`] decided about the session's future.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// Keep reading.
    Continue,
    /// Client said `quit`; close the session.
    Quit,
}

/// One queued diagnosis request.
struct Job {
    tenant: String,
    sink: Sink,
}

struct TenantState {
    ring: TenantRing,
    quarantined: bool,
    rows_since_detect: usize,
    last_timestamp: Option<f64>,
    /// Absolute seq range of the last reported explanation, for dedup.
    last_explained: Option<(u64, u64)>,
}

/// Monotonic daemon counters, all relaxed — they are telemetry about the
/// telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// Rows accepted into rings.
    pub rows: AtomicU64,
    /// Rows evicted from rings (window slid).
    pub evicted: AtomicU64,
    /// Lossy-ingest warnings emitted.
    pub warnings: AtomicU64,
    /// Diagnoses shed under overload.
    pub shed: AtomicU64,
    /// Explanations reported.
    pub explanations: AtomicU64,
    /// Diagnoses that ran but found nothing (no detection / deduped).
    pub quiet: AtomicU64,
    /// Diagnosis errors reported to clients.
    pub errors: AtomicU64,
    /// Tenants quarantined after a panic.
    pub quarantined: AtomicU64,
    /// Responses lost to a broken/stalled client writer. Shared (`Arc`)
    /// because the per-connection sinks outlive their borrow of the daemon.
    pub dropped_responses: Arc<AtomicU64>,
}

/// What [`Daemon::drain`] accomplished.
#[derive(Debug)]
pub struct DrainReport {
    /// `true` when every queued and in-flight diagnosis finished inside the
    /// deadline; `false` when cooperative cancellation had to step in.
    pub clean: bool,
    /// Result of the final model-store save, when a store is configured.
    pub store_saved: Option<Result<StoreReport, SherlockError>>,
    /// Warnings from re-loading the just-saved store (empty = checksum and
    /// structure verified intact).
    pub verify_warnings: Vec<String>,
    /// Save attempts spent (1 = clean first try; up to [`SAVE_ATTEMPTS`]
    /// under transient store failures; 0 = no store configured).
    pub save_attempts: u32,
}

impl DrainReport {
    /// Did the saved store verify clean (or was no store configured)?
    pub fn store_verified(&self) -> bool {
        self.verify_warnings.is_empty() && !matches!(self.store_saved, Some(Err(_)))
    }
}

/// The daemon core. Shared across connection handlers and workers behind an
/// `Arc`.
pub struct Daemon {
    cfg: DaemonConfig,
    sherlock: Sherlock,
    cancel: CancelFlag,
    tenants: Mutex<BTreeMap<String, TenantState>>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    in_flight: AtomicUsize,
    /// Public counters (read by `stats` and the bench harness).
    pub stats: DaemonStats,
}

/// Lock a mutex, riding over poisoning: a panicking holder was inside the
/// panic-isolation boundary, and every structure guarded here is valid
/// between mutations.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Daemon {
    /// Build a daemon: load models from the configured store (tolerating a
    /// recovered or fresh store), wire the shared cancel flag into the
    /// diagnosis budget so drain can cut long explains short.
    pub fn new(mut cfg: DaemonConfig) -> Result<(Self, Vec<String>), SherlockError> {
        let cancel = CancelFlag::default();
        let budget = cfg.params.budget().clone().with_cancel_flag(cancel.clone());
        cfg.params = cfg.params.clone().with_budget(budget);
        let mut startup_warnings = Vec::new();
        let mut sherlock = Sherlock::new(cfg.params.clone());
        if let Some(path) = &cfg.store_path {
            let (repo, report) = ModelStore::new(path).load()?;
            startup_warnings.extend(report.warnings);
            *sherlock.repository_mut() = repo;
        }
        let daemon = Daemon {
            cfg,
            sherlock,
            cancel,
            tenants: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            stats: DaemonStats::default(),
        };
        Ok((daemon, startup_warnings))
    }

    /// The configuration the daemon runs with.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// Number of loaded causal models.
    pub fn n_models(&self) -> usize {
        self.sherlock.repository().models().len()
    }

    /// Is the daemon refusing new work?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Spawn the diagnosis worker pool. Handles are joined by
    /// [`drain`](Daemon::drain).
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .filter_map(|i| {
                let daemon = Arc::clone(self);
                let spawned = std::thread::Builder::new()
                    .name(format!("sherlockd-worker-{i}"))
                    // sherlock-lint: allow(raw-spawn): long-lived pool thread; panics inside jobs are caught per-job by try_par_map_indexed, and drain() joins every handle
                    .spawn(move || daemon.worker_loop());
                match spawned {
                    Ok(handle) => Some(handle),
                    Err(e) => {
                        // A short pool still drains correctly; say so loudly
                        // instead of silently running under-provisioned.
                        eprintln!("sherlockd: failed to spawn worker {i}: {e}");
                        None
                    }
                }
            })
            .collect()
    }

    /// Process one client line. All effects go through `session.sink`; the
    /// return value only says whether to keep the session open.
    pub fn handle_line(&self, session: &mut Session, line: &str) -> LineOutcome {
        session.lines_seen += 1;
        match parse_command(line) {
            Command::Blank => LineOutcome::Continue,
            Command::Quit => {
                (session.sink)(&Response::Bye);
                LineOutcome::Quit
            }
            Command::Stats => {
                (session.sink)(&Response::Stats(self.stats_body()));
                LineOutcome::Continue
            }
            Command::Tenant(name) => {
                if name.is_empty() {
                    (session.sink)(&Response::Error {
                        code: "bad-tenant",
                        detail: "tenant name must not be empty".into(),
                    });
                } else {
                    session.tenant = Some(name.to_string());
                    (session.sink)(&Response::Ok {
                        what: "tenant",
                        detail: format!("tenant={}", quote(name)),
                    });
                }
                LineOutcome::Continue
            }
            Command::Header(header) => {
                self.handle_header(session, header);
                LineOutcome::Continue
            }
            Command::Row(row) => {
                self.handle_row(session, row);
                LineOutcome::Continue
            }
            Command::Detect => {
                self.handle_detect(session);
                LineOutcome::Continue
            }
        }
    }

    fn handle_header(&self, session: &mut Session, header: &str) {
        let Some(tenant) = session.tenant.clone() else {
            (session.sink)(&Response::Error {
                code: "no-tenant",
                detail: "send `tenant <name>` before a header".into(),
            });
            return;
        };
        if self.is_draining() {
            (session.sink)(&Response::Error {
                code: "draining",
                detail: "daemon is draining; not admitting schemas".into(),
            });
            return;
        }
        let mut warnings = Vec::new();
        let schema = match parse_header_lossy(header, &mut warnings) {
            Ok(schema) => schema,
            Err(e) => {
                (session.sink)(&Response::Error { code: "bad-header", detail: e.to_string() });
                return;
            }
        };
        self.emit_warnings(&session.sink, &tenant, &warnings);
        let n_attrs = schema.len();
        let mut tenants = lock(&self.tenants);
        match tenants.get_mut(&tenant) {
            Some(state) => {
                state.ring.reset_schema(schema);
                state.quarantined = false;
                state.rows_since_detect = 0;
                state.last_timestamp = None;
            }
            None => {
                if tenants.len() >= self.cfg.max_tenants {
                    drop(tenants);
                    (session.sink)(&Response::Error {
                        code: "tenant-limit",
                        detail: format!(
                            "tenant cap {} reached; not admitting {}",
                            self.cfg.max_tenants,
                            quote(&tenant)
                        ),
                    });
                    return;
                }
                tenants.insert(
                    tenant.clone(),
                    TenantState {
                        ring: TenantRing::new(schema, self.cfg.ring_rows),
                        quarantined: false,
                        rows_since_detect: 0,
                        last_timestamp: None,
                        last_explained: None,
                    },
                );
            }
        }
        drop(tenants);
        (session.sink)(&Response::Ok {
            what: "header",
            detail: format!("tenant={} attrs={n_attrs}", quote(&tenant)),
        });
    }

    fn handle_row(&self, session: &mut Session, row: &str) {
        let Some(tenant) = session.tenant.clone() else {
            (session.sink)(&Response::Error {
                code: "no-tenant",
                detail: "send `tenant <name>` and a header before rows".into(),
            });
            return;
        };
        let mut warnings = Vec::new();
        let mut enqueue_detect = false;
        {
            let mut tenants = lock(&self.tenants);
            let Some(state) = tenants.get_mut(&tenant) else {
                drop(tenants);
                (session.sink)(&Response::Error {
                    code: "no-header",
                    detail: format!("tenant {} has no schema yet", quote(&tenant)),
                });
                return;
            };
            let line_no = session.lines_seen;
            let Some((timestamp, cells)) =
                parse_line_lossy(state.ring.schema(), row, line_no, &mut warnings)
            else {
                drop(tenants);
                self.emit_warnings(&session.sink, &tenant, &warnings);
                return;
            };
            if let Some(prev) = state.last_timestamp {
                if timestamp <= prev {
                    warnings
                        .push(IngestWarning::NonMonotonicTimestamp { line: line_no, timestamp });
                }
            }
            state.last_timestamp = Some(state.last_timestamp.unwrap_or(f64::MIN).max(timestamp));
            let (_seq, evicted) = state.ring.push(timestamp, cells);
            self.stats.rows.fetch_add(1, Ordering::Relaxed);
            if evicted {
                self.stats.evicted.fetch_add(1, Ordering::Relaxed);
            }
            state.rows_since_detect += 1;
            if !state.quarantined
                && state.rows_since_detect >= self.cfg.detect_every
                && state.ring.len() >= self.cfg.min_detect_rows
            {
                state.rows_since_detect = 0;
                enqueue_detect = true;
            }
        }
        self.emit_warnings(&session.sink, &tenant, &warnings);
        if enqueue_detect {
            self.enqueue(&tenant, &session.sink);
        }
    }

    fn handle_detect(&self, session: &mut Session) {
        let Some(tenant) = session.tenant.clone() else {
            (session.sink)(&Response::Error {
                code: "no-tenant",
                detail: "send `tenant <name>` before `detect`".into(),
            });
            return;
        };
        let known = {
            let tenants = lock(&self.tenants);
            tenants.get(&tenant).map(|s| (s.quarantined, s.ring.is_empty()))
        };
        match known {
            None => (session.sink)(&Response::Error {
                code: "no-header",
                detail: format!("tenant {} has no schema yet", quote(&tenant)),
            }),
            Some((true, _)) => (session.sink)(&Response::Error {
                code: "quarantined",
                detail: format!("tenant {} is quarantined after a panic", quote(&tenant)),
            }),
            Some((_, true)) => (session.sink)(&Response::Error {
                code: "no-rows",
                detail: format!("tenant {} has no buffered rows", quote(&tenant)),
            }),
            Some((false, false)) => self.enqueue(&tenant, &session.sink),
        }
    }

    fn emit_warnings(&self, sink: &Sink, tenant: &str, warnings: &[IngestWarning]) {
        for warning in warnings {
            self.stats.warnings.fetch_add(1, Ordering::Relaxed);
            sink(&Response::from_warning(tenant, warning));
        }
    }

    /// Admit a diagnosis request into the bounded queue, shedding the
    /// oldest queued job (with a structured notice to its requester) when
    /// full. Requests for a tenant that already has a queued job coalesce.
    fn enqueue(&self, tenant: &str, sink: &Sink) {
        if self.is_draining() {
            (sink)(&Response::Error {
                code: "draining",
                detail: "daemon is draining; diagnosis not admitted".into(),
            });
            return;
        }
        let shed: Option<Job>;
        {
            let mut queue = lock(&self.queue);
            if queue.iter().any(|job| job.tenant == tenant) {
                return; // coalesce: one queued diagnosis per tenant
            }
            shed =
                if queue.len() >= self.cfg.max_pending.max(1) { queue.pop_front() } else { None };
            queue.push_back(Job { tenant: tenant.to_string(), sink: Arc::clone(sink) });
        }
        self.queue_cv.notify_one();
        // Notify the shed requester outside the lock: its sink may be a
        // slow socket, and the queue must not stall behind it.
        if let Some(old) = shed {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            let pending = lock(&self.queue).len();
            (old.sink)(&Response::Overloaded { tenant: old.tenant, pending });
        }
    }

    /// Worker body: pop → diagnose → answer, until drained. `in_flight` is
    /// incremented under the queue lock so drain's "queue empty and nothing
    /// in flight" check cannot race a job between pop and start.
    pub fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = lock(&self.queue);
                loop {
                    if let Some(job) = queue.pop_front() {
                        self.in_flight.fetch_add(1, Ordering::SeqCst);
                        break job;
                    }
                    if self.is_draining() {
                        return;
                    }
                    let (guard, _) = self
                        .queue_cv
                        .wait_timeout(queue, Duration::from_millis(100))
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    queue = guard;
                }
            };
            self.run_job(&job);
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Run one diagnosis behind the panic-isolation boundary. A panic
    /// quarantines the tenant; every other outcome is answered on the
    /// job's sink.
    fn run_job(&self, job: &Job) {
        let snapshot = {
            let tenants = lock(&self.tenants);
            match tenants.get(&job.tenant) {
                None => return, // tenant evaporated (re-headered away); nothing to do
                Some(state) if state.quarantined => return,
                Some(state) => (state.ring.to_dataset(), state.last_explained),
            }
        };
        let (snapshot, last_explained) = snapshot;
        let mut results = dbsherlock_core::try_par_map_indexed(
            ExecPolicy::Serial,
            "daemon-diagnose",
            &[()],
            |_, _| self.diagnose(&snapshot, last_explained),
        );
        match results.pop() {
            Some(Ok(Some(outcome))) => {
                {
                    let mut tenants = lock(&self.tenants);
                    if let Some(state) = tenants.get_mut(&job.tenant) {
                        state.last_explained = Some(outcome.seq_range);
                    }
                }
                self.stats.explanations.fetch_add(1, Ordering::Relaxed);
                (job.sink)(&Response::Explanation {
                    tenant: job.tenant.clone(),
                    seq_range: outcome.seq_range,
                    region_rows: outcome.region_rows,
                    predicates: outcome.predicates,
                    top_cause: outcome.top_cause,
                });
            }
            Some(Ok(None)) => {
                self.stats.quiet.fetch_add(1, Ordering::Relaxed);
            }
            Some(Err(SherlockError::TaskPanicked { message, .. })) => {
                {
                    let mut tenants = lock(&self.tenants);
                    if let Some(state) = tenants.get_mut(&job.tenant) {
                        state.quarantined = true;
                    }
                }
                self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                (job.sink)(&Response::Quarantined { tenant: job.tenant.clone(), reason: message });
            }
            Some(Err(err)) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                (job.sink)(&Response::from_error(&err));
            }
            None => {}
        }
    }

    /// Detect over the window snapshot; if a fresh anomalous region shows
    /// up, explain it. `Ok(None)` = nothing (new) to report.
    fn diagnose(
        &self,
        snapshot: &RingSnapshot,
        last_explained: Option<(u64, u64)>,
    ) -> Result<Option<ExplainOutcome>, SherlockError> {
        let Some(detection) = self.sherlock.try_detect(&snapshot.dataset)? else {
            return Ok(None);
        };
        let indices = detection.region.indices();
        let (Some(&first), Some(&last)) = (indices.first(), indices.last()) else {
            return Ok(None);
        };
        let (Some(&seq_start), Some(&seq_end)) =
            (snapshot.seqs.get(first), snapshot.seqs.get(last))
        else {
            return Ok(None);
        };
        // Dedup against the previous report: the window slides slowly, so
        // the same incident would otherwise be re-announced every
        // `detect_every` rows.
        if let Some((prev_start, prev_end)) = last_explained {
            let overlap =
                (seq_end.min(prev_end) as i64 - seq_start.max(prev_start) as i64 + 1).max(0) as f64;
            let span = (seq_end - seq_start + 1) as f64;
            if overlap / span > 0.5 {
                return Ok(None);
            }
        }
        let explanation = self.sherlock.try_explain(&snapshot.dataset, &detection.region, None)?;
        Ok(Some(ExplainOutcome {
            seq_range: (seq_start, seq_end),
            region_rows: indices.len(),
            predicates: explanation.predicates_display(),
            top_cause: explanation.top_cause().cloned(),
        }))
    }

    fn stats_body(&self) -> String {
        let (n_tenants, n_quarantined) = {
            let tenants = lock(&self.tenants);
            (tenants.len(), tenants.values().filter(|s| s.quarantined).count())
        };
        let queued = lock(&self.queue).len();
        format!(
            "tenants={n_tenants} quarantined={n_quarantined} rows={} evicted={} warnings={} \
             queued={queued} in_flight={} shed={} explanations={} quiet={} errors={} \
             dropped_responses={} models={} draining={}",
            self.stats.rows.load(Ordering::Relaxed),
            self.stats.evicted.load(Ordering::Relaxed),
            self.stats.warnings.load(Ordering::Relaxed),
            self.in_flight.load(Ordering::SeqCst),
            self.stats.shed.load(Ordering::Relaxed),
            self.stats.explanations.load(Ordering::Relaxed),
            self.stats.quiet.load(Ordering::Relaxed),
            self.stats.errors.load(Ordering::Relaxed),
            self.stats.dropped_responses.load(Ordering::Relaxed),
            self.n_models(),
            self.is_draining(),
        )
    }

    /// Stop admitting work (sessions and enqueues start refusing) and wake
    /// idle workers so they can observe the drain.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Drain: wait (up to the configured deadline) for the queue to empty
    /// and in-flight diagnoses to land, cancel cooperatively past the
    /// deadline, join the workers, then save and verify the model store.
    pub fn drain(&self, workers: Vec<JoinHandle<()>>) -> DrainReport {
        self.begin_drain();
        let deadline = Instant::now() + Duration::from_millis(self.cfg.drain_deadline_ms);
        let mut clean = true;
        loop {
            let idle = lock(&self.queue).is_empty() && self.in_flight.load(Ordering::SeqCst) == 0;
            if idle {
                break;
            }
            if Instant::now() >= deadline {
                clean = false;
                self.cancel.cancel();
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        for handle in workers {
            // Job panics are isolated per-job; a panic surfacing *here*
            // means the worker loop itself died — worth a trace.
            if handle.join().is_err() {
                eprintln!("sherlockd: a worker thread panicked outside the job boundary");
            }
        }
        let mut store_saved = None;
        let mut verify_warnings = Vec::new();
        let mut save_attempts = 0;
        if let Some(path) = &self.cfg.store_path {
            // Single-writer contract: workers are joined, so this is the
            // only writer touching the store path. Transient save/verify
            // failures (ENOSPC clearing, a backup agent briefly holding the
            // file, …) get a bounded, jittered, deadline-capped retry.
            let store = ModelStore::new(path);
            let (saved, warnings, attempts) =
                save_with_backoff(&store, self.sherlock.repository(), deadline, &mut |_| {});
            store_saved = Some(saved);
            verify_warnings = warnings;
            save_attempts = attempts;
        }
        DrainReport { clean, store_saved, verify_warnings, save_attempts }
    }
}

/// Drain-time store saves retry at most this many times before giving up —
/// SIGTERM must terminate, so the retry loop is bounded by attempts *and*
/// capped by the drain deadline.
pub const SAVE_ATTEMPTS: u32 = 3;

/// Base backoff between drain-save attempts, doubled per retry and spread
/// by deterministic jitter so a fleet draining together doesn't hammer
/// shared storage in lockstep.
const SAVE_BACKOFF_MS: u64 = 10;

/// splitmix64-style deterministic jitter in `0..SAVE_BACKOFF_MS` ms (no
/// unseeded RNG in daemon code).
fn backoff_jitter_ms(attempt: u32) -> u64 {
    let mut x = 0x5AFE_D8A1_u64 ^ ((attempt as u64) << 32);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) % SAVE_BACKOFF_MS
}

/// Save `repo` to `store` and verify the written generation by re-loading
/// it, with bounded exponential backoff on failure: up to [`SAVE_ATTEMPTS`]
/// attempts, sleeping `10ms·2^(attempt−1)` plus jitter between them, never
/// past `deadline`. An attempt succeeds only when the save, the verify
/// load, *and* the round-trip agree — a load that silently recovered (from
/// the previous generation or a fresh start) or came back with the wrong
/// model count is a failed save, not a success, even though `load()`
/// reports `Ok`.
///
/// `after_save` runs after each successful save, before its verify — the
/// fault-injection seam for tests (production passes a no-op).
///
/// Returns the last attempt's save result, its verify warnings (empty on
/// success), and the attempts spent.
pub fn save_with_backoff(
    store: &ModelStore,
    repo: &ModelRepository,
    deadline: Instant,
    after_save: &mut dyn FnMut(u32),
) -> (Result<StoreReport, SherlockError>, Vec<String>, u32) {
    let mut attempts = 0;
    loop {
        attempts += 1;
        let saved = store.save(repo);
        let mut warnings = Vec::new();
        match &saved {
            Ok(_) => {
                after_save(attempts);
                match store.load() {
                    Ok((loaded, report)) => {
                        warnings = report.warnings;
                        if report.recovered_from_backup {
                            warnings.push(
                                "verify: primary damaged; load recovered the previous generation"
                                    .to_string(),
                            );
                        }
                        if loaded.models().len() != repo.models().len() {
                            warnings.push(format!(
                                "verify: loaded {} models, expected {}",
                                loaded.models().len(),
                                repo.models().len()
                            ));
                        }
                    }
                    Err(e) => warnings.push(format!("verify load failed: {e}")),
                }
                if warnings.is_empty() {
                    return (saved, warnings, attempts);
                }
            }
            Err(e) => warnings.push(format!("save failed: {e}")),
        }
        if attempts >= SAVE_ATTEMPTS || Instant::now() >= deadline {
            return (saved, warnings, attempts);
        }
        let backoff = (SAVE_BACKOFF_MS << (attempts - 1)) + backoff_jitter_ms(attempts);
        let remaining = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(remaining.min(Duration::from_millis(backoff)));
    }
}

/// What one successful diagnosis produced (internal carrier between
/// [`Daemon::diagnose`] and the response).
struct ExplainOutcome {
    seq_range: (u64, u64),
    region_rows: usize,
    predicates: String,
    top_cause: Option<dbsherlock_core::RankedCause>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that appends rendered lines to a shared buffer.
    fn capture() -> (Sink, Arc<Mutex<Vec<String>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink_buf = Arc::clone(&buf);
        let sink: Sink = Arc::new(move |r: &Response| {
            sink_buf.lock().unwrap().push(r.render());
        });
        (sink, buf)
    }

    fn feed(daemon: &Daemon, session: &mut Session, lines: &[&str]) {
        for line in lines {
            daemon.handle_line(session, line);
        }
    }

    #[test]
    fn protocol_walkthrough_ingests_rows() {
        let (daemon, _) = Daemon::new(DaemonConfig::default()).unwrap();
        let (sink, buf) = capture();
        let mut session = Session::new(sink);
        feed(
            &daemon,
            &mut session,
            &["tenant t0", "timestamp,cpu:num", "0,1.5", "1,2.5", "garbage,here", "stats"],
        );
        let lines = buf.lock().unwrap().join("");
        assert!(lines.contains("ok cmd=tenant"));
        assert!(lines.contains("ok cmd=header"));
        // The garbage row degrades to a structured warning, not a dead session.
        assert!(lines.contains("warn tenant=\"t0\""), "{lines}");
        assert!(lines.contains("skipped row"), "{lines}");
        assert!(lines.contains("rows=2"), "{lines}");
        assert_eq!(daemon.stats.rows.load(Ordering::Relaxed), 2);
        assert_eq!(daemon.stats.warnings.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn rows_without_tenant_or_header_get_structured_errors() {
        let (daemon, _) = Daemon::new(DaemonConfig::default()).unwrap();
        let (sink, buf) = capture();
        let mut session = Session::new(sink);
        feed(&daemon, &mut session, &["0,1.0"]);
        session.tenant = Some("ghost".into());
        feed(&daemon, &mut session, &["0,1.0", "detect"]);
        let lines = buf.lock().unwrap().join("");
        assert!(lines.contains("code=no-tenant"));
        assert!(lines.contains("code=no-header"));
    }

    #[test]
    fn tenant_cap_rejects_with_structured_error() {
        let cfg = DaemonConfig { max_tenants: 1, ..DaemonConfig::default() };
        let (daemon, _) = Daemon::new(cfg).unwrap();
        let (sink, buf) = capture();
        let mut session = Session::new(sink);
        feed(
            &daemon,
            &mut session,
            &["tenant a", "timestamp,x:num", "tenant b", "timestamp,x:num"],
        );
        let lines = buf.lock().unwrap().join("");
        assert!(lines.contains("code=tenant-limit"), "{lines}");
    }

    #[test]
    fn queue_sheds_oldest_with_structured_overload() {
        let cfg = DaemonConfig { max_pending: 2, workers: 1, ..DaemonConfig::default() };
        let (daemon, _) = Daemon::new(cfg).unwrap();
        let (sink, buf) = capture();
        // Three tenants with buffered rows; no workers running, so jobs pile up.
        for name in ["a", "b", "c"] {
            let mut session = Session::new(Arc::clone(&sink));
            feed(
                &daemon,
                &mut session,
                &[&format!("tenant {name}"), "timestamp,x:num", "0,1.0", "detect"],
            );
        }
        let lines = buf.lock().unwrap().join("");
        assert!(lines.contains("overloaded tenant=\"a\""), "{lines}");
        assert!(lines.contains("action=shed-oldest"));
        assert_eq!(daemon.stats.shed.load(Ordering::Relaxed), 1);
        assert_eq!(lock(&daemon.queue).len(), 2);
    }

    #[test]
    fn duplicate_detect_requests_coalesce() {
        let cfg = DaemonConfig { max_pending: 8, ..DaemonConfig::default() };
        let (daemon, _) = Daemon::new(cfg).unwrap();
        let (sink, _buf) = capture();
        let mut session = Session::new(sink);
        feed(&daemon, &mut session, &["tenant a", "timestamp,x:num", "0,1.0"]);
        for _ in 0..5 {
            feed(&daemon, &mut session, &["detect"]);
        }
        assert_eq!(lock(&daemon.queue).len(), 1);
    }

    #[test]
    fn draining_refuses_new_work() {
        let (daemon, _) = Daemon::new(DaemonConfig::default()).unwrap();
        let (sink, buf) = capture();
        let mut session = Session::new(Arc::clone(&sink));
        feed(&daemon, &mut session, &["tenant a", "timestamp,x:num", "0,1.0"]);
        daemon.begin_drain();
        feed(&daemon, &mut session, &["detect", "timestamp,y:num"]);
        let lines = buf.lock().unwrap().join("");
        assert_eq!(lines.matches("code=draining").count(), 2, "{lines}");
    }

    #[test]
    fn worker_diagnoses_a_planted_anomaly_end_to_end() {
        let cfg = DaemonConfig {
            detect_every: 16,
            min_detect_rows: 48,
            ring_rows: 256,
            workers: 1,
            ..DaemonConfig::default()
        };
        let (daemon, _) = Daemon::new(cfg).unwrap();
        let daemon = Arc::new(daemon);
        let workers = daemon.spawn_workers();
        let (sink, buf) = capture();
        let mut session = Session::new(sink);
        feed(&daemon, &mut session, &["tenant t", "timestamp,signal:num,steady:num"]);
        for i in 0..96u32 {
            let anomalous = (60..75).contains(&i);
            let jitter = f64::from(i) * 0.37 % 1.0;
            let signal = if anomalous { 80.0 + jitter } else { 5.0 + jitter };
            daemon.handle_line(&mut session, &format!("{i},{signal},{}", 40.0 + jitter));
        }
        // Give the worker a moment, then drain (which waits for in-flight).
        let report = daemon.drain(workers);
        assert!(report.clean);
        let lines = buf.lock().unwrap().join("");
        assert!(lines.contains("event=explanation tenant=\"t\""), "{lines}");
        assert!(lines.contains("signal"), "{lines}");
        assert!(daemon.stats.explanations.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn quarantine_isolates_a_panicking_tenant() {
        // A stored model is needed for the rank stage to score anything;
        // the chaos tripwire (enabled for tests) then panics inside the
        // real scorer whenever the PANIC_ATTR attribute is present.
        let dir = std::env::temp_dir().join(format!("sherlockd-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.sherlock");
        let mut repo = dbsherlock_core::ModelRepository::default();
        repo.add(dbsherlock_core::CausalModel {
            cause: "any stored cause".into(),
            predicates: vec![dbsherlock_core::Predicate::lt("signal", -100.0)],
            merged_from: 1,
        });
        dbsherlock_core::ModelStore::new(&path).save(&repo).unwrap();

        let cfg = DaemonConfig {
            workers: 1,
            min_detect_rows: 4,
            store_path: Some(path),
            ..DaemonConfig::default()
        };
        let (daemon, _) = Daemon::new(cfg).unwrap();
        assert_eq!(daemon.n_models(), 1);
        let daemon = Arc::new(daemon);
        let (sink, buf) = capture();
        let mut session = Session::new(sink);
        let header = format!("timestamp,signal:num,{}:num", dbsherlock_core::chaos::PANIC_ATTR);
        feed(&daemon, &mut session, &["tenant bad", &header]);
        for i in 0..96u32 {
            // 15/96 anomalous rows: a sustained run longer than τ/2 (so the
            // median filter sees it) yet under the 20% cluster-size cap, so
            // the detector reports the region and the pipeline reaches the
            // rank stage where the tripwire lives.
            let jitter = f64::from(i) * 0.37 % 1.0;
            let signal = if (60..75).contains(&i) { 80.0 + jitter } else { 5.0 + jitter };
            daemon.handle_line(&mut session, &format!("{i},{signal},1.0"));
        }
        feed(&daemon, &mut session, &["detect"]);
        let workers = daemon.spawn_workers();
        dbsherlock_core::chaos::quiet_panics(|| {
            let report = daemon.drain(workers);
            assert!(report.clean);
        });
        let lines = buf.lock().unwrap().join("");
        assert!(lines.contains("event=quarantined tenant=\"bad\""), "{lines}");
        // Further detects answer with the quarantine error; the daemon lives.
        feed(&daemon, &mut session, &["detect"]);
        let lines = buf.lock().unwrap().join("");
        assert!(lines.contains("code=quarantined"), "{lines}");
        assert_eq!(daemon.stats.quarantined.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_saves_and_verifies_the_store() {
        let dir = std::env::temp_dir().join(format!("sherlockd-drain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.sherlock");
        let cfg = DaemonConfig { store_path: Some(path.clone()), ..DaemonConfig::default() };
        let (daemon, warnings) = Daemon::new(cfg).unwrap();
        assert!(warnings.is_empty());
        let daemon = Arc::new(daemon);
        let workers = daemon.spawn_workers();
        let report = daemon.drain(workers);
        assert!(report.clean);
        assert!(report.store_verified(), "{:?}", report.verify_warnings);
        assert_eq!(report.save_attempts, 1, "clean save must not retry");
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn backoff_repo(n: usize) -> ModelRepository {
        let mut repo = ModelRepository::new();
        for i in 0..n {
            repo.add(dbsherlock_core::CausalModel {
                cause: format!("cause-{i}"),
                predicates: vec![dbsherlock_core::Predicate::gt("signal", i as f64)],
                merged_from: 1,
            });
        }
        repo
    }

    fn backoff_store(tag: &str) -> (std::path::PathBuf, ModelStore) {
        let dir =
            std::env::temp_dir().join(format!("sherlockd-backoff-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = ModelStore::new(dir.join("models.bin"));
        (dir, store)
    }

    #[test]
    fn save_with_backoff_recovers_from_transient_store_faults() {
        let (dir, store) = backoff_store("transient");
        let repo = backoff_repo(2);
        let deadline = Instant::now() + Duration::from_secs(10);
        // The injector vanishes the freshly written primary on the first
        // two attempts; the third save lands clean.
        let mut faulted = 0;
        let (saved, warnings, attempts) =
            save_with_backoff(&store, &repo, deadline, &mut |attempt| {
                if attempt <= 2 {
                    faulted += 1;
                    dbsherlock_core::StoreFault::DeletePrimary.apply(store.path()).unwrap();
                }
            });
        assert!(saved.is_ok());
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(attempts, 3);
        assert_eq!(faulted, 2);
        // The surviving generation round-trips with the full model count.
        let (loaded, report) = store.load().unwrap();
        assert_eq!(loaded.models().len(), 2);
        assert!(report.warnings.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_with_backoff_gives_up_after_bounded_attempts() {
        let (dir, store) = backoff_store("persistent");
        let repo = backoff_repo(1);
        let deadline = Instant::now() + Duration::from_secs(10);
        // Every attempt's primary is truncated to a zero-length husk: the
        // verify load sees a fresh start (or recovery), never the saved
        // generation, so the loop must stop at the attempt bound — not spin
        // until the deadline.
        let (_, warnings, attempts) = save_with_backoff(&store, &repo, deadline, &mut |_| {
            dbsherlock_core::StoreFault::TruncateAt(0).apply(store.path()).unwrap();
        });
        assert_eq!(attempts, SAVE_ATTEMPTS);
        assert!(!warnings.is_empty(), "persistent fault must surface verify warnings");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_with_backoff_expired_deadline_means_one_attempt() {
        let (dir, store) = backoff_store("deadline");
        let repo = backoff_repo(1);
        // Deadline already in the past: one attempt, no sleeps, give up.
        let deadline = Instant::now();
        let started = Instant::now();
        let (_, warnings, attempts) = save_with_backoff(&store, &repo, deadline, &mut |_| {
            dbsherlock_core::StoreFault::DeletePrimary.apply(store.path()).unwrap();
        });
        assert_eq!(attempts, 1);
        assert!(!warnings.is_empty());
        assert!(started.elapsed() < Duration::from_millis(500), "must not back off past deadline");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_monotonic_timestamps_warn_but_ingest() {
        let (daemon, _) = Daemon::new(DaemonConfig::default()).unwrap();
        let (sink, buf) = capture();
        let mut session = Session::new(sink);
        feed(&daemon, &mut session, &["tenant t", "timestamp,x:num", "5,1.0", "3,2.0", "6,3.0"]);
        let lines = buf.lock().unwrap().join("");
        assert!(lines.contains("not after predecessor"), "{lines}");
        assert_eq!(daemon.stats.rows.load(Ordering::Relaxed), 3);
    }
}
