//! TCP and stdin transports for the daemon.
//!
//! Backpressure lives here: every connection reads through a **bounded**
//! line accumulator ([`LineReader`]) with a read deadline, so a client that
//! stalls mid-line, never sends a newline, or floods one giant line cannot
//! pin a thread or grow memory — oversized lines degrade to a structured
//! warning and a skip-to-newline, stalls trip the idle timeout, and the
//! accept loop polls a shutdown flag so SIGTERM can stop admission
//! promptly.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::daemon::{Daemon, LineOutcome, Session, Sink};
use crate::protocol::Response;

/// Transport knobs (distinct from [`crate::daemon::DaemonConfig`], which is
/// about diagnosis).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Hard cap on one protocol line; longer input is dropped to the next
    /// newline with a structured warning.
    pub max_line_bytes: usize,
    /// Read poll interval — also the latency bound on noticing shutdown.
    pub read_timeout_ms: u64,
    /// Close a connection that sends nothing for this long.
    pub idle_timeout_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { max_line_bytes: 64 * 1024, read_timeout_ms: 250, idle_timeout_ms: 30_000 }
    }
}

/// What one [`LineReader::next_line`] poll produced.
#[derive(Debug, PartialEq)]
pub enum ReadEvent {
    /// A complete line (without its newline).
    Line(String),
    /// No complete line yet; the read timed out (caller checks deadlines
    /// and shutdown, then polls again).
    WouldBlock,
    /// Peer closed the stream (any complete trailing data was already
    /// returned; a torn final fragment is discarded).
    Eof,
    /// A line exceeded the cap and was discarded up to the next newline.
    Oversize {
        /// Bytes discarded (so far) of the oversized line.
        dropped: usize,
    },
}

/// A bounded, deadline-friendly line accumulator over any [`Read`].
///
/// The buffer never grows past `max_line_bytes`: once a line crosses the
/// cap the reader switches to discard mode until the next newline and
/// reports the overflow instead of buffering it.
pub struct LineReader<R> {
    source: R,
    buf: Vec<u8>,
    pending: std::collections::VecDeque<ReadEvent>,
    max_line_bytes: usize,
    discarding: bool,
    discarded: usize,
}

impl<R: Read> LineReader<R> {
    /// Wrap `source` with a `max_line_bytes` cap (clamped to ≥ 16).
    pub fn new(source: R, max_line_bytes: usize) -> Self {
        LineReader {
            source,
            buf: Vec::new(),
            pending: std::collections::VecDeque::new(),
            max_line_bytes: max_line_bytes.max(16),
            discarding: false,
            discarded: 0,
        }
    }

    /// Pull the next event. Blocks at most one underlying read (which the
    /// transport bounds with a read timeout).
    pub fn next_line(&mut self) -> ReadEvent {
        if let Some(event) = self.pending.pop_front() {
            return event;
        }
        let mut chunk = [0u8; 4096];
        match self.source.read(&mut chunk) {
            Ok(0) => ReadEvent::Eof,
            Ok(n) => {
                // sherlock-lint: allow(panic-path): read() returns n <= chunk.len()
                self.ingest(&chunk[..n]);
                match self.pending.pop_front() {
                    Some(event) => event,
                    // Mid-discard with no completed events: keep the caller
                    // informed (it resets its idle timer, not the buffer).
                    None if self.discarding => ReadEvent::Oversize { dropped: self.discarded },
                    None => ReadEvent::WouldBlock,
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                ReadEvent::WouldBlock
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => ReadEvent::WouldBlock,
            Err(_) => ReadEvent::Eof,
        }
    }

    /// Split a chunk into complete-line / oversize events, never letting
    /// the internal buffer exceed the cap.
    fn ingest(&mut self, mut chunk: &[u8]) {
        while !chunk.is_empty() {
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    // `pos` indexes a found byte, so both splits are in
                    // bounds — split_at keeps that fact checker-visible.
                    let (head, rest) = chunk.split_at(pos);
                    if self.discarding {
                        self.discarded += pos;
                        self.pending.push_back(ReadEvent::Oversize { dropped: self.discarded });
                        self.discarding = false;
                        self.discarded = 0;
                    } else if self.buf.len() + pos > self.max_line_bytes {
                        self.pending
                            .push_back(ReadEvent::Oversize { dropped: self.buf.len() + pos });
                        self.buf.clear();
                    } else {
                        self.buf.extend_from_slice(head);
                        let line = String::from_utf8_lossy(&self.buf).into_owned();
                        self.pending.push_back(ReadEvent::Line(line));
                        self.buf.clear();
                    }
                    chunk = rest.get(1..).unwrap_or(&[]);
                }
                None => {
                    if self.discarding {
                        self.discarded += chunk.len();
                    } else if self.buf.len() + chunk.len() > self.max_line_bytes {
                        self.discarded = self.buf.len() + chunk.len();
                        self.buf.clear();
                        self.discarding = true;
                    } else {
                        self.buf.extend_from_slice(chunk);
                    }
                    return;
                }
            }
        }
    }
}

/// A sink writing rendered responses to a shared (mutex-guarded) writer.
/// A broken pipe must not take a worker down with it — but it must not
/// vanish either: every response lost to a failed write or flush ticks
/// `dropped` (surfaced daemon-wide as `dropped_responses` in `stats`).
pub fn writer_sink<W: Write + Send + 'static>(writer: W, dropped: Arc<AtomicU64>) -> Sink {
    let writer = Mutex::new(writer);
    Arc::new(move |response: &Response| {
        let mut guard = writer.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        // The mutex serializes *whole responses* onto one stream; releasing
        // it between write and flush would let concurrent workers interleave
        // partial frames. The transport's write timeout bounds how long a
        // stalled peer can pin the guard.
        // sherlock-lint: allow(guard-across-blocking): serialization contract — the guard must span the full framed write; the write timeout bounds the stall
        let wrote = guard.write_all(response.render().as_bytes());
        // sherlock-lint: allow(guard-across-blocking): same framed write; flush completes the frame before the guard drops
        let flushed = wrote.and_then(|()| guard.flush());
        drop(guard);
        if flushed.is_err() {
            dropped.fetch_add(1, Ordering::Relaxed);
        }
    })
}

/// Serve one established connection until quit, EOF, idle timeout, or
/// daemon shutdown. Returns the number of lines handled.
pub fn serve_connection(
    daemon: &Daemon,
    stream: TcpStream,
    cfg: &NetConfig,
    shutdown: &AtomicBool,
) -> usize {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(5_000)));
    let sink = match stream.try_clone() {
        Ok(writer) => writer_sink(writer, Arc::clone(&daemon.stats.dropped_responses)),
        Err(_) => return 0,
    };
    let mut session = Session::new(sink);
    let mut reader = LineReader::new(stream, cfg.max_line_bytes);
    let mut handled = 0usize;
    let idle = Duration::from_millis(cfg.idle_timeout_ms.max(1));
    let mut last_activity = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            (session.sink)(&Response::Error {
                code: "shutting-down",
                detail: "daemon is shutting down".into(),
            });
            return handled;
        }
        match reader.next_line() {
            ReadEvent::Line(line) => {
                last_activity = Instant::now();
                handled += 1;
                if daemon.handle_line(&mut session, &line) == LineOutcome::Quit {
                    return handled;
                }
            }
            ReadEvent::Oversize { dropped } => {
                last_activity = Instant::now();
                (session.sink)(&Response::Error {
                    code: "line-too-long",
                    detail: format!(
                        "line exceeded {} bytes ({dropped} dropped)",
                        cfg.max_line_bytes
                    ),
                });
            }
            ReadEvent::WouldBlock => {
                if last_activity.elapsed() >= idle {
                    (session.sink)(&Response::Error {
                        code: "idle-timeout",
                        detail: format!("no input for {}ms", cfg.idle_timeout_ms),
                    });
                    return handled;
                }
            }
            ReadEvent::Eof => return handled,
        }
    }
}

/// Accept loop: serve `listener` until `shutdown` flips, one thread per
/// connection. Returns the handles of still-running connection threads at
/// shutdown (they observe the flag within one read timeout).
pub fn serve(
    daemon: &Arc<Daemon>,
    listener: TcpListener,
    cfg: NetConfig,
    shutdown: &Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let _ = listener.set_nonblocking(true);
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let _ = stream.set_nonblocking(false);
                let daemon = Arc::clone(daemon);
                let cfg = cfg.clone();
                let shutdown = Arc::clone(shutdown);
                let spawned = std::thread::Builder::new()
                    .name("sherlockd-conn".to_string())
                    // sherlock-lint: allow(raw-spawn): one bounded-lifetime thread per accepted connection; it exits within one read timeout of shutdown and panics cannot cross the protocol boundary (handle_line isolates diagnosis panics)
                    .spawn(move || {
                        serve_connection(&daemon, stream, &cfg, &shutdown);
                    });
                if let Ok(handle) = spawned {
                    handles.push(handle);
                }
                handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    handles.retain(|h| !h.is_finished());
    handles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_splits_and_carries_partials() {
        let data: &[u8] = b"one\ntwo\nthr";
        let mut reader = LineReader::new(data, 64);
        assert_eq!(reader.next_line(), ReadEvent::Line("one".into()));
        assert_eq!(reader.next_line(), ReadEvent::Line("two".into()));
        // Torn trailing fragment: EOF, fragment discarded.
        assert_eq!(reader.next_line(), ReadEvent::Eof);
    }

    #[test]
    fn line_reader_caps_oversized_lines() {
        let big = vec![b'x'; 100];
        let mut data = big.clone();
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut reader = LineReader::new(&data[..], 16);
        // The 100-byte line overflows the 16-byte cap -> discarded.
        let mut saw_oversize = false;
        loop {
            match reader.next_line() {
                ReadEvent::Oversize { dropped } => {
                    saw_oversize = true;
                    assert!(dropped >= 16);
                }
                ReadEvent::Line(line) => {
                    assert_eq!(line, "ok");
                    break;
                }
                ReadEvent::WouldBlock => {}
                ReadEvent::Eof => panic!("lost the trailing line"),
            }
        }
        assert!(saw_oversize);
    }

    #[test]
    fn line_reader_handles_invalid_utf8_lossily() {
        let data: &[u8] = b"a,\xff\xfe,b\n";
        let mut reader = LineReader::new(data, 64);
        match reader.next_line() {
            ReadEvent::Line(line) => assert!(line.contains('\u{fffd}')),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn writer_sink_survives_a_closed_writer() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let dropped = Arc::new(AtomicU64::new(0));
        let sink = writer_sink(Broken, Arc::clone(&dropped));
        sink(&Response::Bye); // must not panic
        assert_eq!(dropped.load(Ordering::Relaxed), 1, "the lost response must be counted");
        sink(&Response::Bye);
        assert_eq!(dropped.load(Ordering::Relaxed), 2);
    }
}
