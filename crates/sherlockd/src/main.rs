//! The `sherlockd` binary: argument parsing, signal handling, and the
//! run-until-drained lifecycle around [`dbsherlock_sherlockd::Daemon`].
//!
//! ```text
//! sherlockd --listen 127.0.0.1:7455 --models models.sherlock
//! sherlockd --stdin < incident-stream.txt
//! ```
//!
//! SIGTERM/SIGINT begin a graceful drain: admission stops immediately,
//! in-flight diagnoses get `--drain-ms` to land, cooperative cancellation
//! cuts anything slower, and the model store is saved and verified before
//! exit. Exit code 0 means a clean drain with a verified store; 1 means the
//! drain was forced or the store failed verification; 2 means bad usage.

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dbsherlock_core::{ArgScan, ExecPolicy, SherlockParams};
use dbsherlock_sherlockd::daemon::{Daemon, DaemonConfig, Session};
use dbsherlock_sherlockd::net::{self, NetConfig};
use dbsherlock_sherlockd::{LineOutcome, LineReader, ReadEvent, Response};

/// Process-wide shutdown request flag, flipped by the signal handler.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Minimal signal hookup without a `libc` dependency: std already links the
/// platform C library on unix, so `signal(2)` is available to declare.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

const USAGE: &str = "\
sherlockd: streaming DBSherlock diagnosis daemon

USAGE:
  sherlockd (--listen ADDR | --stdin) [options]

TRANSPORT:
  --listen ADDR        accept line-protocol connections on ADDR (e.g. 127.0.0.1:7455)
  --stdin              read one session from stdin, answer on stdout

MODELS:
  --models PATH        crash-safe causal-model store to load at startup
                       and save (verified) on drain

DIAGNOSIS:
  --threads N|serial|auto   thread budget for the pipeline stages
  --deadline-ms N      per-diagnosis wall-clock deadline
  --max-rows N         reject diagnoses over datasets larger than N rows
  --max-partitions N   reject diagnoses with more than N partitions

DAEMON:
  --ring-rows N        rows buffered per tenant (default 512)
  --max-tenants N      tenant cap (default 1024)
  --detect-every N     run detection every N accepted rows (default 64)
  --min-detect-rows N  skip detection below N buffered rows (default 48)
  --max-pending N      diagnosis queue bound; oldest is shed beyond it (default 32)
  --workers N          diagnosis worker threads (default 2)
  --drain-ms N         drain grace period on shutdown (default 2000)
  --max-line-bytes N   per-line ingest cap (default 65536)
  --idle-timeout-ms N  close silent connections after N ms (default 30000)
";

fn config_from(scan: &ArgScan<'_>) -> Result<(DaemonConfig, NetConfig), String> {
    let mut params = SherlockParams::default();
    if let Some(exec) = scan.exec_policy()? {
        params = params.with_exec(exec);
    } else {
        params = params.with_exec(ExecPolicy::Serial); // workers are the parallelism
    }
    if let Some(budget) = scan.budget()? {
        params = params.with_budget(budget);
    }
    let defaults = DaemonConfig::default();
    let cfg = DaemonConfig {
        ring_rows: scan.parsed_or("--ring-rows", defaults.ring_rows)?,
        max_tenants: scan.parsed_or("--max-tenants", defaults.max_tenants)?,
        detect_every: scan.parsed_or("--detect-every", defaults.detect_every)?,
        min_detect_rows: scan.parsed_or("--min-detect-rows", defaults.min_detect_rows)?,
        max_pending: scan.parsed_or("--max-pending", defaults.max_pending)?,
        workers: scan.parsed_or("--workers", defaults.workers)?,
        drain_deadline_ms: scan.parsed_or("--drain-ms", defaults.drain_deadline_ms)?,
        params,
        store_path: scan.option("--models").map(Into::into),
    };
    let net_defaults = NetConfig::default();
    let net = NetConfig {
        max_line_bytes: scan.parsed_or("--max-line-bytes", net_defaults.max_line_bytes)?,
        read_timeout_ms: net_defaults.read_timeout_ms,
        idle_timeout_ms: scan.parsed_or("--idle-timeout-ms", net_defaults.idle_timeout_ms)?,
    };
    Ok((cfg, net))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scan = ArgScan::new(&args);
    if scan.flag("--help") || scan.flag("-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&scan) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("sherlockd: {message}");
            eprintln!("try `sherlockd --help`");
            ExitCode::from(2)
        }
    }
}

/// Run the daemon to completion. `Ok(true)` = clean drain + verified store.
fn run(scan: &ArgScan<'_>) -> Result<bool, String> {
    let listen = scan.option("--listen");
    let use_stdin = scan.flag("--stdin");
    if listen.is_none() && !use_stdin {
        return Err("need --listen ADDR or --stdin".into());
    }
    let (cfg, net_cfg) = config_from(scan)?;
    install_signal_handlers();

    let (daemon, startup_warnings) =
        Daemon::new(cfg).map_err(|e| format!("startup failed: {e}"))?;
    for warning in &startup_warnings {
        eprintln!("sherlockd: store warning: {warning}");
    }
    let daemon = Arc::new(daemon);
    let workers = daemon.spawn_workers();
    eprintln!(
        "sherlockd: up — {} models, {} workers, ring {} rows/tenant",
        daemon.n_models(),
        daemon.config().workers,
        daemon.config().ring_rows,
    );

    let shutdown = Arc::new(AtomicBool::new(false));
    let mut conn_handles = Vec::new();
    if let Some(addr) = listen {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        eprintln!("sherlockd: listening on {addr}");
        // The accept loop owns this thread; it polls SHUTDOWN via the
        // shared flag mirrored below.
        let mirror = Arc::clone(&shutdown);
        let watcher = std::thread::Builder::new()
            .name("sherlockd-signals".to_string())
            .spawn(move || {
                while !SHUTDOWN.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(50));
                }
                mirror.store(true, Ordering::SeqCst);
            })
            .map_err(|e| format!("cannot spawn signal watcher: {e}"))?;
        conn_handles = net::serve(&daemon, listener, net_cfg, &shutdown);
        let _ = watcher.join();
    } else {
        serve_stdin(&daemon, &net_cfg);
        shutdown.store(true, Ordering::SeqCst);
    }

    eprintln!("sherlockd: draining ({}ms grace)", daemon.config().drain_deadline_ms);
    let report = daemon.drain(workers);
    for handle in conn_handles {
        let _ = handle.join();
    }
    match &report.store_saved {
        Some(Ok(saved)) => {
            eprintln!("sherlockd: store saved at generation {}", saved.generation)
        }
        Some(Err(e)) => eprintln!("sherlockd: store save FAILED: {e}"),
        None => {}
    }
    for warning in &report.verify_warnings {
        eprintln!("sherlockd: store verify warning: {warning}");
    }
    let clean = report.clean && report.store_verified();
    eprintln!("sherlockd: drained ({})", if clean { "clean" } else { "forced" });
    Ok(clean)
}

/// One session over stdin/stdout, polled so SIGTERM still drains promptly.
fn serve_stdin(daemon: &Arc<Daemon>, net_cfg: &NetConfig) {
    let stdout = std::io::stdout();
    let sink = dbsherlock_sherlockd::writer_sink(
        stdout,
        std::sync::Arc::clone(&daemon.stats.dropped_responses),
    );
    let mut session = Session::new(sink);
    let mut reader = LineReader::new(std::io::stdin(), net_cfg.max_line_bytes);
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            return;
        }
        match reader.next_line() {
            ReadEvent::Line(line) => {
                if daemon.handle_line(&mut session, &line) == LineOutcome::Quit {
                    return;
                }
            }
            ReadEvent::Oversize { dropped } => {
                (session.sink)(&Response::Error {
                    code: "line-too-long",
                    detail: format!("line exceeded cap ({dropped} bytes dropped)"),
                });
            }
            // Blocking stdin read: WouldBlock only on exotic platforms.
            ReadEvent::WouldBlock => std::thread::sleep(Duration::from_millis(10)),
            ReadEvent::Eof => {
                let _ = std::io::stdout().flush();
                return;
            }
        }
    }
}
