#![warn(missing_docs)]
// A daemon must degrade, never panic: unwrap/expect are banned in library
// code (tests may use them freely). See sherlock-lint's panic-path rule.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! `sherlockd`: an overload-safe streaming diagnosis daemon.
//!
//! The batch tools diagnose an incident after the fact; `sherlockd` watches
//! it happen. Clients stream dbseer-style CSV telemetry over a line
//! protocol (TCP or stdin), the daemon keeps a bounded sliding window per
//! tenant, runs the paper's §7 anomaly detector as rows arrive, and fires
//! the full explanation pipeline automatically when a fresh anomalous
//! region appears — all under the robustness contract the rest of the
//! workspace established: bounded memory, explicit load shedding,
//! per-tenant panic quarantine, cooperative deadlines, and a crash-safe
//! model store saved exactly once on drain.
//!
//! Layering:
//!
//! * [`protocol`] — line commands in, structured `key=value` lines out;
//! * [`ring`] — bounded per-tenant history with absolute sequence numbers;
//! * [`daemon`] — tenants, the bounded diagnosis queue, shedding,
//!   quarantine, drain;
//! * [`net`] — TCP/stdin transports with read deadlines and bounded line
//!   buffers;
//! * [`chaos`] — deterministic ingest fault schedules for the tests and
//!   the overload bench.

pub mod chaos;
pub mod daemon;
pub mod net;
pub mod protocol;
pub mod ring;

pub use chaos::{apply_schedule, IngestFault, StreamEvent};
pub use daemon::{
    save_with_backoff, Daemon, DaemonConfig, DaemonStats, DrainReport, LineOutcome, Session, Sink,
    SAVE_ATTEMPTS,
};
pub use net::{serve, serve_connection, writer_sink, LineReader, NetConfig, ReadEvent};
pub use protocol::{parse_command, Command, Response};
pub use ring::{RingRow, RingSnapshot, TenantRing};
