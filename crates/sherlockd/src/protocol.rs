//! The `sherlockd` line protocol.
//!
//! Everything is newline-delimited UTF-8 text, both directions — pipeable
//! with `nc` and greppable in logs. Client → server lines are commands;
//! a CSV header (`timestamp,…`) declares the current tenant's schema and
//! any other line is a telemetry row in the same CSV dialect the batch
//! tools use, so `sherlockd < incident.csv` "just works" after a single
//! `tenant` line. Server → client lines are structured `key=value`
//! responses: every degradation — a repaired cell, a shed diagnosis, a
//! quarantined tenant — is reported explicitly; nothing is dropped
//! silently.

use dbsherlock_core::{RankedCause, SherlockError};
use dbsherlock_telemetry::IngestWarning;

/// One parsed client line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command<'a> {
    /// `tenant <name>` — select (creating if needed) the stream's tenant.
    Tenant(&'a str),
    /// A CSV header line (`timestamp,attr:num,…`): declare the schema.
    Header(&'a str),
    /// A CSV data row for the current tenant.
    Row(&'a str),
    /// `detect` — run detection over the current tenant's window now.
    Detect,
    /// `stats` — report daemon counters.
    Stats,
    /// `quit` — close the session.
    Quit,
    /// Blank line: ignored.
    Blank,
}

/// Classify one client line. Never fails: unrecognized input is a [`Row`]
/// (and will surface as per-cell ingest warnings, not a dead connection).
///
/// [`Row`]: Command::Row
pub fn parse_command(line: &str) -> Command<'_> {
    let trimmed = line.trim_end_matches(['\r', '\n']);
    let stripped = trimmed.trim();
    if stripped.is_empty() {
        return Command::Blank;
    }
    if let Some(rest) = stripped.strip_prefix("tenant ") {
        return Command::Tenant(rest.trim());
    }
    match stripped {
        "detect" => Command::Detect,
        "stats" => Command::Stats,
        "quit" => Command::Quit,
        _ => {
            if stripped.starts_with("timestamp") && stripped.contains(',') {
                Command::Header(trimmed)
            } else {
                Command::Row(trimmed)
            }
        }
    }
}

/// A server → client line. [`render`](Response::render) produces exactly
/// one newline-terminated line per response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Command acknowledged.
    Ok {
        /// What was acknowledged (e.g. `tenant`, `header`).
        what: &'static str,
        /// Free-form detail (tenant name, attribute count, …).
        detail: String,
    },
    /// A lossy-ingest repair on one line (connection stays up).
    Warn {
        /// Tenant the warning belongs to.
        tenant: String,
        /// The repair, rendered from [`IngestWarning`].
        detail: String,
    },
    /// A request that could not be served, with a machine-readable code.
    Error {
        /// Stable error code (`no-tenant`, `tenant-limit`, `draining`, …).
        code: &'static str,
        /// Human detail.
        detail: String,
    },
    /// Structured load-shed notice: a queued diagnosis was dropped to admit
    /// newer work (oldest first). Never silent.
    Overloaded {
        /// Tenant whose queued diagnosis was shed.
        tenant: String,
        /// Queue depth at the moment of shedding.
        pending: usize,
    },
    /// An automatic explanation for a detected anomalous window.
    Explanation {
        /// Tenant the anomaly belongs to.
        tenant: String,
        /// Absolute stream sequence range `[start, end]` of the region.
        seq_range: (u64, u64),
        /// Rows in the detected region.
        region_rows: usize,
        /// Rendered predicate conjunction.
        predicates: String,
        /// Best stored cause clearing the confidence threshold, if any.
        top_cause: Option<RankedCause>,
    },
    /// A tenant worker panicked; the tenant is quarantined, the daemon
    /// lives on.
    Quarantined {
        /// The quarantined tenant.
        tenant: String,
        /// The caught panic/failure, one line.
        reason: String,
    },
    /// Daemon counters (see [`crate::daemon::StatsSnapshot`]).
    Stats(String),
    /// Session closing.
    Bye,
}

impl Response {
    /// Render as one `\n`-terminated protocol line.
    pub fn render(&self) -> String {
        match self {
            Response::Ok { what, detail } => format!("ok cmd={what} {detail}\n"),
            Response::Warn { tenant, detail } => {
                format!("warn tenant={} detail={}\n", quote(tenant), quote(detail))
            }
            Response::Error { code, detail } => {
                format!("error code={code} detail={}\n", quote(detail))
            }
            Response::Overloaded { tenant, pending } => {
                format!(
                    "overloaded tenant={} pending={pending} action=shed-oldest\n",
                    quote(tenant)
                )
            }
            Response::Explanation { tenant, seq_range, region_rows, predicates, top_cause } => {
                let cause = match top_cause {
                    Some(c) => {
                        format!(" top_cause={} confidence={:.3}", quote(&c.cause), c.confidence)
                    }
                    None => String::new(),
                };
                format!(
                    "event=explanation tenant={} seq={}..{} rows={region_rows} predicates={}{cause}\n",
                    quote(tenant),
                    seq_range.0,
                    seq_range.1,
                    quote(predicates),
                )
            }
            Response::Quarantined { tenant, reason } => {
                format!("event=quarantined tenant={} reason={}\n", quote(tenant), quote(reason))
            }
            Response::Stats(body) => format!("stats {body}\n"),
            Response::Bye => "bye\n".to_string(),
        }
    }

    /// A [`Response::Warn`] from a lossy-ingest warning.
    pub fn from_warning(tenant: &str, warning: &IngestWarning) -> Response {
        Response::Warn { tenant: tenant.to_string(), detail: warning.to_string() }
    }

    /// A [`Response::Error`] from a diagnosis failure, with a stable code
    /// per error family so clients can react without parsing prose.
    pub fn from_error(err: &SherlockError) -> Response {
        let code = match err {
            SherlockError::DeadlineExceeded { .. } => "deadline",
            SherlockError::BudgetExceeded { .. } => "budget",
            SherlockError::Cancelled { .. } => "cancelled",
            SherlockError::TaskPanicked { .. } => "panicked",
            SherlockError::Store { .. } => "store",
            _ => "diagnosis",
        };
        Response::Error { code, detail: err.to_string() }
    }
}

/// Quote a free-text protocol value: always double-quoted, with `\`, `"`
/// and newlines escaped, so one response is always exactly one line.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_classification() {
        assert_eq!(parse_command("tenant shard-7\n"), Command::Tenant("shard-7"));
        assert_eq!(parse_command("  \r\n"), Command::Blank);
        assert_eq!(parse_command("detect"), Command::Detect);
        assert_eq!(parse_command("stats\n"), Command::Stats);
        assert_eq!(parse_command("quit"), Command::Quit);
        assert_eq!(
            parse_command("timestamp,cpu:num,io:num\n"),
            Command::Header("timestamp,cpu:num,io:num")
        );
        assert_eq!(parse_command("12,95.0,3.1\n"), Command::Row("12,95.0,3.1"));
        // A lone `timestamp` word without commas is telemetry garbage, not
        // a header.
        assert_eq!(parse_command("timestamp"), Command::Row("timestamp"));
    }

    #[test]
    fn responses_render_one_line_each() {
        let responses = [
            Response::Ok { what: "tenant", detail: "tenant=\"t\"".into() },
            Response::Warn { tenant: "t".into(), detail: "line 3: repaired \"x\"".into() },
            Response::Error { code: "no-tenant", detail: "say `tenant <name>` first".into() },
            Response::Overloaded { tenant: "t".into(), pending: 32 },
            Response::Quarantined { tenant: "t".into(), reason: "panicked at 'boom'".into() },
            Response::Stats("tenants=1 rows=2".into()),
            Response::Bye,
        ];
        for r in &responses {
            let line = r.render();
            assert!(line.ends_with('\n'), "{line:?}");
            assert_eq!(line.matches('\n').count(), 1, "{line:?}");
        }
    }

    #[test]
    fn quoting_escapes_breakers() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let explanation = Response::Explanation {
            tenant: "t\"0".into(),
            seq_range: (10, 42),
            region_rows: 33,
            predicates: "cpu > 90.0\nAND io < 2".into(),
            top_cause: None,
        };
        let line = explanation.render();
        assert_eq!(line.matches('\n').count(), 1);
        assert!(line.contains("seq=10..42"));
    }
}
