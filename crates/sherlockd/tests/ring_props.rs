//! Property tests for the per-tenant ring buffer: the daemon's memory
//! bound and — the one that matters for correctness — the guarantee that
//! running detection over a *wrapped* ring is bit-identical to running it
//! over a flat slice of the same trailing rows. The window sliding must be
//! invisible to the algorithm.

use dbsherlock_core::{detect_anomaly, SherlockParams};
use dbsherlock_sherlockd::TenantRing;
use dbsherlock_telemetry::{AttributeMeta, Dataset, RawCell, Schema, Value};
use proptest::prelude::*;

fn numeric_schema() -> Schema {
    Schema::from_attrs([AttributeMeta::numeric("signal"), AttributeMeta::numeric("steady")])
        .unwrap()
}

/// A synthetic stream: quiet baseline with an optional sustained step
/// anomaly, plus per-row jitter — the shape the §7 detector is built for.
fn stream(n: usize, anomaly_at: usize, anomaly_len: usize, jitter_seed: u64) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let jitter = ((i as u64).wrapping_mul(jitter_seed.max(1)) % 97) as f64 / 97.0;
            let anomalous = i >= anomaly_at && i < anomaly_at + anomaly_len;
            let signal = if anomalous { 80.0 + jitter } else { 5.0 + jitter };
            (signal, 40.0 + jitter)
        })
        .collect()
}

proptest! {
    /// The ring never exceeds its capacity, never loses the newest rows,
    /// and numbers rows by absolute stream position.
    #[test]
    fn bounded_with_oldest_first_eviction(
        capacity in 1usize..48,
        n in 0usize..160,
    ) {
        let mut ring = TenantRing::new(numeric_schema(), capacity);
        for i in 0..n {
            let (seq, evicted) = ring.push(i as f64, vec![
                RawCell::Num(i as f64),
                RawCell::Num(0.0),
            ]);
            prop_assert_eq!(seq, i as u64);
            prop_assert_eq!(evicted, i >= capacity);
            prop_assert!(ring.len() <= capacity);
        }
        prop_assert_eq!(ring.len(), n.min(capacity));
        prop_assert_eq!(ring.next_seq(), n as u64);
        // The survivors are exactly the trailing rows, in order.
        let expect_first = n.saturating_sub(capacity) as u64;
        let seqs: Vec<u64> = ring.rows().map(|r| r.seq).collect();
        let expect: Vec<u64> = (expect_first..n as u64).collect();
        prop_assert_eq!(seqs, expect);
    }

    /// Materializing a wrapped ring is bit-identical (timestamps, every
    /// numeric cell, and the detection outcome) to a dataset built flat
    /// from the same trailing rows.
    #[test]
    fn wrapped_ring_detection_matches_flat_slice(
        capacity in 48usize..120,
        overflow in 1usize..80,
        anomaly_at in 50usize..70,
        anomaly_len in 12usize..18,
        jitter_seed in 1u64..5000,
    ) {
        let n = capacity + overflow;
        let rows = stream(n, n - capacity + anomaly_at, anomaly_len, jitter_seed);

        let mut ring = TenantRing::new(numeric_schema(), capacity);
        for (i, (signal, steady)) in rows.iter().enumerate() {
            ring.push(i as f64, vec![RawCell::Num(*signal), RawCell::Num(*steady)]);
        }
        let snapshot = ring.to_dataset();
        prop_assert_eq!(snapshot.skipped, 0);
        prop_assert_eq!(snapshot.dataset.n_rows(), capacity);

        // The same trailing window, built flat with no ring in sight.
        let mut flat = Dataset::new(numeric_schema());
        for (i, (signal, steady)) in rows.iter().enumerate().skip(n - capacity) {
            flat.push_row(i as f64, &[Value::Num(*signal), Value::Num(*steady)]).unwrap();
        }

        prop_assert_eq!(snapshot.dataset.timestamps(), flat.timestamps());
        for attr_id in 0..2 {
            let ring_bits: Vec<u64> =
                snapshot.dataset.numeric(attr_id).unwrap().iter().map(|v| v.to_bits()).collect();
            let flat_bits: Vec<u64> =
                flat.numeric(attr_id).unwrap().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(ring_bits, flat_bits);
        }

        let params = SherlockParams::default();
        prop_assert_eq!(detect_anomaly(&snapshot.dataset, &params), detect_anomaly(&flat, &params));

        // The sequence map points at the right absolute rows.
        let expect: Vec<u64> = ((n - capacity) as u64..n as u64).collect();
        prop_assert_eq!(snapshot.seqs, expect);
    }

    /// Categorical cells survive the wrap too: labels intern in first-seen
    /// window order, identically to a flat build.
    #[test]
    fn wrapped_categorical_columns_match_flat_slice(
        capacity in 2usize..24,
        overflow in 1usize..40,
        labels in proptest::collection::vec("[a-c]", 8..64),
    ) {
        let schema = Schema::from_attrs([
            AttributeMeta::numeric("x"),
            AttributeMeta::categorical("job"),
        ]).unwrap();
        let n = (capacity + overflow).min(labels.len());
        let mut ring = TenantRing::new(schema.clone(), capacity);
        for (i, label) in labels.iter().take(n).enumerate() {
            ring.push(i as f64, vec![RawCell::Num(i as f64), RawCell::Label(label.clone())]);
        }
        let snapshot = ring.to_dataset();

        let mut flat = Dataset::new(schema);
        for (i, label) in labels.iter().take(n).enumerate().skip(n.saturating_sub(capacity)) {
            let value = flat.intern(1, label).unwrap();
            flat.push_row(i as f64, &[Value::Num(i as f64), value]).unwrap();
        }

        let (ring_codes, ring_dict) = snapshot.dataset.categorical(1).unwrap();
        let (flat_codes, flat_dict) = flat.categorical(1).unwrap();
        prop_assert_eq!(ring_codes, flat_codes);
        prop_assert_eq!(ring_dict.len(), flat_dict.len());
    }
}
