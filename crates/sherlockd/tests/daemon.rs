//! End-to-end daemon tests over real sockets: a clean tenant stream gets an
//! automatic explanation; chaos-scheduled streams (torn lines, floods,
//! garbage, skewed clocks, mid-stream disconnects) never crash the daemon;
//! and drain-under-load leaves a checksum-verified model store behind.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dbsherlock_sherlockd::chaos::{apply_schedule, IngestFault, StreamEvent};
use dbsherlock_sherlockd::daemon::{Daemon, DaemonConfig};
use dbsherlock_sherlockd::net::{self, NetConfig};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sherlockd-it-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A live daemon serving a loopback listener on its own threads.
struct Harness {
    daemon: Arc<Daemon>,
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<Vec<std::thread::JoinHandle<()>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

fn start(cfg: DaemonConfig) -> Harness {
    let (daemon, warnings) = Daemon::new(cfg).unwrap();
    assert!(warnings.is_empty(), "{warnings:?}");
    let daemon = Arc::new(daemon);
    let workers = daemon.spawn_workers();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let net_cfg = NetConfig { max_line_bytes: 4096, read_timeout_ms: 25, idle_timeout_ms: 10_000 };
    let accept_daemon = Arc::clone(&daemon);
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread =
        std::thread::spawn(move || net::serve(&accept_daemon, listener, net_cfg, &accept_shutdown));
    Harness { daemon, addr, shutdown, accept_thread, workers }
}

impl Harness {
    /// Stop admission, drain, join every transport thread, and return the
    /// drain report.
    fn stop(self) -> dbsherlock_sherlockd::daemon::DrainReport {
        self.shutdown.store(true, Ordering::SeqCst);
        let report = self.daemon.drain(self.workers);
        let conn_handles = self.accept_thread.join().unwrap();
        for handle in conn_handles {
            let _ = handle.join();
        }
        report
    }
}

/// The clean protocol stream for one tenant: header plus `n` rows with a
/// sustained anomaly in `anomaly` (stream positions, not counting the
/// header lines).
fn tenant_stream(tenant: &str, n: usize, anomaly: std::ops::Range<usize>) -> Vec<String> {
    let mut lines = vec![format!("tenant {tenant}"), "timestamp,signal:num,steady:num".to_string()];
    for i in 0..n {
        let jitter = (i as f64) * 0.37 % 1.0;
        let signal = if anomaly.contains(&i) { 80.0 + jitter } else { 5.0 + jitter };
        lines.push(format!("{i},{signal},{}", 40.0 + jitter));
    }
    lines
}

/// Read response lines until `pattern` shows up or the deadline passes.
/// Returns everything read.
fn read_until(reader: &mut BufReader<TcpStream>, pattern: &str, deadline_ms: u64) -> String {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    let mut seen = String::new();
    let mut line = String::new();
    while Instant::now() < deadline {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                seen.push_str(&line);
                if seen.contains(pattern) {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    seen
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

#[test]
fn tcp_stream_gets_an_automatic_explanation() {
    let dir = scratch_dir();
    let cfg = DaemonConfig {
        detect_every: 16,
        min_detect_rows: 48,
        workers: 2,
        store_path: Some(dir.join("models.sherlock")),
        ..DaemonConfig::default()
    };
    let harness = start(cfg);
    let (mut stream, mut reader) = connect(harness.addr);
    for line in tenant_stream("prod-shard-3", 96, 60..75) {
        writeln!(stream, "{line}").unwrap();
    }
    stream.flush().unwrap();
    let seen = read_until(&mut reader, "event=explanation", 10_000);
    assert!(seen.contains("event=explanation tenant=\"prod-shard-3\""), "{seen}");
    assert!(seen.contains("signal"), "{seen}");
    // seq range is absolute and sane (region inside the 96 rows sent).
    assert!(seen.contains("seq="), "{seen}");

    writeln!(stream, "quit").unwrap();
    let seen = read_until(&mut reader, "bye", 2_000);
    assert!(seen.contains("bye"), "{seen}");

    let report = harness.stop();
    assert!(report.clean, "drain should be idle-clean");
    assert!(report.store_verified(), "{:?}", report.verify_warnings);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_schedules_never_crash_the_daemon() {
    let cfg = DaemonConfig {
        detect_every: 32,
        min_detect_rows: 48,
        max_pending: 4,
        workers: 1,
        ring_rows: 128,
        ..DaemonConfig::default()
    };
    let harness = start(cfg);

    // Five tenants, each with a different transport-level catastrophe.
    let schedules: Vec<(&str, Vec<IngestFault>)> = vec![
        ("torn", vec![IngestFault::TornLine { at: 40, keep_bytes: 4 }]),
        ("flood", vec![IngestFault::Flood { at: 30, extra: 300 }]),
        (
            "skew",
            vec![
                IngestFault::ClockSkew { at: 20, to: -999.0 },
                IngestFault::Garbage { at: 25, payload: "\u{1}\u{2}%%,,,".into() },
            ],
        ),
        ("gone", vec![IngestFault::Disconnect { at: 35 }]),
        ("stall", vec![IngestFault::StallReader { at: 10, ms: 120 }]),
    ];
    let mut clients = Vec::new();
    for (tenant, faults) in &schedules {
        let lines = tenant_stream(tenant, 90, 55..70);
        let events = apply_schedule(&lines, faults);
        let addr = harness.addr;
        let tenant = tenant.to_string();
        clients.push(std::thread::spawn(move || {
            let (mut stream, _reader) = connect(addr);
            for event in events {
                match event {
                    StreamEvent::Send(payload) => {
                        if stream.write_all(payload.as_bytes()).is_err() {
                            return; // daemon-side close: acceptable under chaos
                        }
                    }
                    StreamEvent::Pause(ms) => std::thread::sleep(Duration::from_millis(ms)),
                    StreamEvent::Disconnect => {
                        drop(stream);
                        let _ = tenant; // connection gone; client ends here
                        return;
                    }
                }
            }
            let _ = stream.flush();
            // Linger briefly so the daemon can answer before we vanish.
            std::thread::sleep(Duration::from_millis(50));
        }));
    }
    for client in clients {
        client.join().unwrap();
    }

    // The daemon survived all of it: a fresh, healthy client still gets
    // served end to end.
    let (mut stream, mut reader) = connect(harness.addr);
    for line in tenant_stream("healthy", 96, 60..75) {
        writeln!(stream, "{line}").unwrap();
    }
    writeln!(stream, "detect").unwrap();
    stream.flush().unwrap();
    let seen = read_until(&mut reader, "event=explanation", 10_000);
    assert!(seen.contains("event=explanation tenant=\"healthy\""), "{seen}");

    writeln!(stream, "stats").unwrap();
    let seen = read_until(&mut reader, "stats ", 2_000);
    assert!(seen.contains("tenants="), "{seen}");

    let report = harness.stop();
    // Chaos may leave queued work that drains; either way no worker died
    // and no store was configured to corrupt.
    assert!(report.store_verified());
}

#[test]
fn drain_under_load_is_bounded_and_store_verifies() {
    let dir = scratch_dir();
    let cfg = DaemonConfig {
        detect_every: 8,
        min_detect_rows: 32,
        max_pending: 2,
        workers: 1,
        drain_deadline_ms: 1_500,
        store_path: Some(dir.join("models.sherlock")),
        ..DaemonConfig::default()
    };
    let harness = start(cfg);

    // Several tenants queue up diagnoses faster than one worker clears them.
    for t in 0..4 {
        let (mut stream, _reader) = connect(harness.addr);
        for line in tenant_stream(&format!("t{t}"), 80, 50..65) {
            writeln!(stream, "{line}").unwrap();
        }
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }

    let started = Instant::now();
    let report = harness.stop();
    let elapsed = started.elapsed();
    // The drain must respect its deadline with margin for joins.
    assert!(elapsed < Duration::from_secs(10), "drain took {elapsed:?}");
    assert!(report.store_verified(), "{:?}", report.verify_warnings);
    assert!(dir.join("models.sherlock").exists());
    std::fs::remove_dir_all(&dir).ok();
}
