#![warn(missing_docs)]
// The analyzer polices panic-paths in the rest of the workspace, so it holds
// itself to the same bar: no unwrap/expect in library code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! `sherlock-lint` — a zero-dependency static analyzer for domain invariants
//! the ordinary toolchain cannot express.
//!
//! DBSherlock's diagnosis quality rests on numerically delicate code:
//! predicate partitioning, the Eq. 3 confidence score, DBSCAN, and the
//! mutual-information filter. A single NaN-unsafe comparison, panicking
//! index, or unseeded RNG silently corrupts diagnoses or breaks bench
//! reproducibility. `clippy` covers the generic half of that surface; this
//! crate covers the domain half (see [`rules::RuleKind`]) in four layers.
//!
//! **Token rules** pattern-match the lexer's stream directly:
//!
//! * `panic-path` — `unwrap()` / `expect()` / `panic!` / `unreachable!` /
//!   `[]`-indexing in non-`#[cfg(test)]` library code.
//! * `nan-unsafe` — float `==` / `!=`, `partial_cmp(..).unwrap()`, and bare
//!   `partial_cmp` inside sort comparators (use `f64::total_cmp`).
//! * `unseeded-rng` — `thread_rng()` / `from_entropy()` / other
//!   entropy-seeded RNG construction (benches must be reproducible).
//! * `deny-header` — every crate root must carry the
//!   `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]`
//!   header so clippy enforces the panic policy at compile time.
//! * `raw-spawn` — bare `thread::spawn`/`thread::scope` outside the
//!   execution layer (parallelism routes through `par_map_indexed`).
//! * `raw-fs-write` — bare `fs::write` outside the crash-safe store.
//!
//! **Semantic rules** run on the [`syntax`] layer — a delimiter tree with
//! import resolution and a per-scope binding table — so they can reason
//! about *what a name is* rather than what it looks like ([`semantic`]):
//!
//! * `nondeterministic-iteration` — iterating a `HashMap`/`HashSet` into
//!   ordered output without a sort (threatens the bit-identical parallel
//!   diagnosis guarantee).
//! * `raw-panic-hook` — `panic::set_hook`/`take_hook` anywhere outside
//!   `chaos::quiet_panics` (hook swaps are process-global and race).
//! * `budget-blind-loop` — a loop in a budget-carrying pipeline stage that
//!   does real work but never polls the `ArmedBudget`/`CancelFlag`.
//! * `unsynced-store-write` — filesystem mutation (`fs::write`, `rename`,
//!   `File::create`, writable `OpenOptions`) outside `store.rs`.
//! * `unbounded-channel` — a `Vec`/`VecDeque` growing inside a loop in
//!   daemon (`crates/sherlockd`) library code with no capacity check,
//!   shed, or drain in reach (client-fed buffers must stay bounded).
//!
//! **Flow rules** run on the [`flow`] layer — per-function control-flow
//! graphs over the delimiter tree, a worklist gen/kill dataflow engine for
//! guard liveness, and a workspace-wide call graph resolved through the
//! import tables — so they can reason about *order and reach*, not just
//! names in a scope:
//!
//! * `lock-order-inversion` — two mutexes (think `tenants`/`queue`)
//!   acquired in opposite orders on different call paths, including one
//!   interprocedural step via call-graph summaries.
//! * `guard-across-blocking` — a live `MutexGuard` spanning a blocking
//!   call (`join`/`accept`/`read*`/`write_all`/`recv`/`sleep`); Condvar
//!   waits are exempt because they release the guard atomically.
//! * `swallowed-error` — `let _ =` / `.ok()` on fallible store/net/
//!   protocol writes outside shutdown paths.
//! * (upgrade) `budget-blind-loop` now accepts a loop whose *callees*
//!   poll the budget — the call-graph reachability fixpoint replaced the
//!   old file-wide mention heuristic.
//!
//! **Taint rules** run on the [`taint`] layer — an interprocedural
//! source/sanitizer/sink analysis with monotone fixed-point function
//! summaries over the same call graph, plus a panic-reachability pass —
//! so they can *certify* properties rather than spot-check them:
//!
//! * `taint-determinism` — a nondeterministic value (entropy RNG, wall
//!   clock, hash iteration order, thread id, pointer address) flows into
//!   a serialized output (`Explanation`/`Response` construction,
//!   ModelStore records) without a sanitizer (sort, order-free reduction,
//!   seed-derived stream). Findings carry a source→sanitizer-miss→sink
//!   trace, emitted as a SARIF `codeFlow`.
//! * `unisolated-panic` — a panic site reachable from a certified entry
//!   point (`explain_batch`, `try_explain_validated`, the sherlockd
//!   ingest loop) with no `catch_unwind`/`try_par_map_indexed` boundary
//!   on the path. The `--certify` CLI mode distills both rules into
//!   `tools/lint-certificate.json`, which CI diffs.
//!
//! The build is hermetic, so everything here is hand-rolled on `std`: a
//! token-level Rust lexer ([`lexer`]) instead of `syn`, a tiny JSON emitter
//! instead of `serde`, and a plain-text suppression baseline
//! ([`baseline`], checked in at `tools/lint-baseline.txt`) that freezes
//! historical findings so CI fails only on *new* violations.
//!
//! Per-line escapes: end a line (or the line above) with
//! `// sherlock-lint: allow(<rule>[, <rule>])` to acknowledge a finding in
//! place, with the justification in the same comment.

pub mod baseline;
pub mod flow;
pub mod lexer;
pub mod rules;
pub mod semantic;
pub mod syntax;
pub mod taint;
pub mod workspace;

pub use baseline::Baseline;
pub use rules::{FileClass, Finding, RuleKind, TraceKind, TraceStep};
pub use taint::{certify, Certificate, TaintIndex};
pub use workspace::{scan_workspace, scan_workspace_with_taint, ScanConfig};
