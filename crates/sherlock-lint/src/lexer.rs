//! A hand-rolled Rust token scanner.
//!
//! This is not a full parser: it produces a flat token stream that is exact
//! about the things static rules care about — comments (including nesting),
//! every string/char literal flavour, float vs. integer literals, and
//! multi-character operators — and deliberately ignores everything else
//! about the grammar. `rules` layers item-level context (attributes,
//! `#[cfg(test)]` spans, paren depth) on top of this stream.

use std::collections::HashMap;

/// What a token is, to the level of detail the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers are unescaped: `r#type` → `type`).
    Ident(String),
    /// Integer literal (any base, any suffix except `f32`/`f64`).
    Int,
    /// Float literal (`1.0`, `1.`, `1e5`, `1f64`, …).
    Float,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Character or byte literal: `'x'`, `'\''`, `b'x'`.
    Char,
    /// Lifetime or loop label: `'a`, `'outer`.
    Lifetime,
    /// Operator or punctuation, maximal-munch (`==`, `::`, `..=`, `[`, …).
    Op(&'static str),
}

/// One token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-indexed line number.
    pub line: u32,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Per-line `// sherlock-lint: allow(rule, …)` escapes: line → rule names.
    pub allows: HashMap<u32, Vec<String>>,
    /// Whole-file `// sherlock-lint: allow-file(rule, …)` escapes.
    pub file_allows: Vec<String>,
    /// Lines containing a string literal with `{:p}` / `{:#p}` pointer
    /// formatting. `Tok::Str` carries no payload, so the taint layer's
    /// address-source detection needs this side table.
    pub addr_fmt_lines: Vec<u32>,
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Single-character operators/punctuation we emit as-is.
const SINGLE_OPS: &str = "+-*/%^&|!<>=.,;:#?@$(){}[]~";

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn new(source: &str) -> Self {
        Cursor { chars: source.chars().collect(), pos: 0, line: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn cur(&self) -> Option<char> {
        self.peek(0)
    }

    /// Advance one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.cur()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// True if the upcoming chars match `s` exactly.
    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `source` into tokens plus allow-directives.
///
/// The lexer never fails: malformed input (unterminated strings/comments)
/// is consumed to end of file, which is the forgiving behaviour a linter
/// wants — rustc will report the real error.
pub fn lex(source: &str) -> LexOutput {
    let mut cur = Cursor::new(source);
    let mut out = LexOutput::default();

    while let Some(c) = cur.cur() {
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Line comment (also doc comments `///`, `//!`).
        if cur.starts_with("//") {
            let line = cur.line;
            let mut text = String::new();
            while let Some(c) = cur.cur() {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            record_allows(&text, line, &mut out);
            continue;
        }
        // Block comment, which Rust nests.
        if cur.starts_with("/*") {
            let line = cur.line;
            let mut depth = 0_usize;
            let mut text = String::new();
            while let Some(c) = cur.cur() {
                if cur.starts_with("/*") {
                    depth += 1;
                    cur.bump_n(2);
                    text.push_str("/*");
                } else if cur.starts_with("*/") {
                    depth -= 1;
                    cur.bump_n(2);
                    text.push_str("*/");
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    cur.bump();
                }
            }
            record_allows(&text, line, &mut out);
            continue;
        }
        // Raw strings / raw identifiers / byte strings: r", r#", br", b", b', r#ident.
        if c == 'r' || c == 'b' {
            if let Some(tok) = try_lex_prefixed_literal(&mut cur) {
                out.tokens.push(tok);
                continue;
            }
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let line = cur.line;
            let mut name = String::new();
            while let Some(c) = cur.cur() {
                if !is_ident_continue(c) {
                    break;
                }
                name.push(c);
                cur.bump();
            }
            out.tokens.push(Token { kind: Tok::Ident(name), line });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            out.tokens.push(lex_number(&mut cur));
            continue;
        }
        // Plain string.
        if c == '"' {
            let line = cur.line;
            cur.bump();
            let body = lex_quoted(&mut cur, '"');
            if body.contains("{:p}") || body.contains("{:#p}") {
                out.addr_fmt_lines.push(line);
            }
            out.tokens.push(Token { kind: Tok::Str, line });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            out.tokens.push(lex_quote_or_lifetime(&mut cur));
            continue;
        }
        // Operators: maximal munch.
        if let Some(op) = OPS.iter().find(|op| cur.starts_with(op)) {
            let line = cur.line;
            cur.bump_n(op.chars().count());
            out.tokens.push(Token { kind: Tok::Op(op), line });
            continue;
        }
        if let Some(idx) = SINGLE_OPS.find(c) {
            let line = cur.line;
            cur.bump();
            // Safe re-slice of the op table for a 'static str.
            let op = &SINGLE_OPS[idx..idx + c.len_utf8()];
            out.tokens.push(Token { kind: Tok::Op(op), line });
            continue;
        }
        // Anything else (stray unicode, shebang backslash, …): skip.
        cur.bump();
    }
    out
}

/// Parse `// sherlock-lint: allow(a, b)` / `allow-file(a)` out of a comment.
fn record_allows(comment: &str, line: u32, out: &mut LexOutput) {
    for (marker, file_wide) in
        [("sherlock-lint: allow-file(", true), ("sherlock-lint: allow(", false)]
    {
        let Some(start) = comment.find(marker) else { continue };
        let rest = &comment[start + marker.len()..];
        let Some(end) = rest.find(')') else { continue };
        let rules = rest[..end].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty());
        if file_wide {
            out.file_allows.extend(rules);
        } else {
            out.allows.entry(line).or_default().extend(rules);
        }
        return; // allow-file( also contains "allow(" — don't double-parse
    }
}

/// `r"…"`, `r#"…"#`, `br##"…"##`, `b"…"`, `b'…'`, `r#ident`. Returns `None`
/// when the `r`/`b` turns out to start a plain identifier.
fn try_lex_prefixed_literal(cur: &mut Cursor) -> Option<Token> {
    let line = cur.line;
    let (prefix_len, raw) = if cur.starts_with("br") {
        (2, true)
    } else if cur.starts_with("r") {
        (1, true)
    } else {
        (1, false) // 'b'
    };
    let mut ahead = prefix_len;
    let mut hashes = 0_usize;
    if raw {
        while cur.peek(ahead) == Some('#') {
            hashes += 1;
            ahead += 1;
        }
    }
    match cur.peek(ahead) {
        Some('"') => {
            cur.bump_n(ahead + 1);
            if raw {
                // Raw string: no escapes; ends at `"` + `hashes` hashes.
                let mut closer = String::from("\"");
                closer.push_str(&"#".repeat(hashes));
                while cur.cur().is_some() && !cur.starts_with(&closer) {
                    cur.bump();
                }
                cur.bump_n(closer.chars().count());
            } else {
                lex_quoted(cur, '"');
            }
            Some(Token { kind: Tok::Str, line })
        }
        Some('\'') if !raw && hashes == 0 => {
            // b'x' byte literal.
            cur.bump_n(ahead + 1);
            lex_quoted(cur, '\'');
            Some(Token { kind: Tok::Char, line })
        }
        Some(c) if raw && hashes == 1 && is_ident_start(c) => {
            // Raw identifier r#type: emit the unescaped name.
            cur.bump_n(ahead);
            let mut name = String::new();
            while let Some(c) = cur.cur() {
                if !is_ident_continue(c) {
                    break;
                }
                name.push(c);
                cur.bump();
            }
            Some(Token { kind: Tok::Ident(name), line })
        }
        _ => None, // plain identifier starting with r/b
    }
}

/// Consume a (non-raw) quoted literal body after the opening quote,
/// honouring backslash escapes, through the closing `quote`. Returns the
/// raw body text (escapes included) for content-sensitive side tables.
fn lex_quoted(cur: &mut Cursor, quote: char) -> String {
    let mut body = String::new();
    while let Some(c) = cur.bump() {
        if c == '\\' {
            body.push(c);
            if let Some(esc) = cur.bump() {
                body.push(esc); // escaped char, never a terminator
            }
        } else if c == quote {
            break;
        } else {
            body.push(c);
        }
    }
    body
}

/// Number starting at an ASCII digit. Distinguishes float from integer:
/// a `.` followed by a digit / end-of-expr, an exponent, or an `f32`/`f64`
/// suffix makes it a float. `0..n` and `x.0` stay integers.
fn lex_number(cur: &mut Cursor) -> Token {
    let line = cur.line;
    let mut is_float = false;
    let radix_prefix = cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b");
    if radix_prefix {
        cur.bump_n(2);
    }
    let mut text = String::new();
    while let Some(c) = cur.cur() {
        if c.is_ascii_alphanumeric() || c == '_' {
            // Exponent of a decimal float: `1e5`, `2E-3`.
            if !radix_prefix
                && (c == 'e' || c == 'E')
                && matches!(cur.peek(1), Some(d) if d.is_ascii_digit() || d == '-' || d == '+')
            {
                is_float = true;
                cur.bump();
                if matches!(cur.cur(), Some('-' | '+')) {
                    cur.bump();
                }
                continue;
            }
            text.push(c);
            cur.bump();
        } else if c == '.' && !radix_prefix && !is_float {
            match cur.peek(1) {
                // `0..n` is a range; `x.method()` can't start with a digit.
                Some('.') => break,
                Some(d) if d.is_ascii_digit() => {
                    is_float = true;
                    cur.bump();
                }
                Some(d) if is_ident_start(d) => break, // 1.max(2) — method on int
                // Trailing-dot float: `1.`
                _ => {
                    is_float = true;
                    cur.bump();
                    break;
                }
            }
        } else {
            break;
        }
    }
    if text.ends_with("f32") || text.ends_with("f64") {
        is_float = true;
    }
    Token { kind: if is_float { Tok::Float } else { Tok::Int }, line }
}

/// At a `'`: either a char literal (`'x'`, `'\n'`, `'"'`) or a
/// lifetime/label (`'a`, `'outer`).
fn lex_quote_or_lifetime(cur: &mut Cursor) -> Token {
    let line = cur.line;
    cur.bump(); // the opening '
    match (cur.cur(), cur.peek(1)) {
        // Escape: definitely a char literal.
        (Some('\\'), _) => {
            lex_quoted(cur, '\'');
            Token { kind: Tok::Char, line }
        }
        // 'x' — single char (possibly `'`-adjacent like '"' or '[').
        (Some(_), Some('\'')) => {
            cur.bump_n(2);
            Token { kind: Tok::Char, line }
        }
        // Lifetime or label: consume the identifier.
        (Some(c), _) if is_ident_start(c) => {
            while let Some(c) = cur.cur() {
                if !is_ident_continue(c) {
                    break;
                }
                cur.bump();
            }
            Token { kind: Tok::Lifetime, line }
        }
        _ => Token { kind: Tok::Op("'"), line },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_stream() {
        let out = lex("let x = v.unwrap();");
        let kinds: Vec<Tok> = out.tokens.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Op("="),
                Tok::Ident("v".into()),
                Tok::Op("."),
                Tok::Ident("unwrap".into()),
                Tok::Op("("),
                Tok::Op(")"),
                Tok::Op(";"),
            ]
        );
    }

    #[test]
    fn comments_hide_tokens_and_count_lines() {
        let out = lex("// x.unwrap()\n/* a\nb */ y");
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].kind, Tok::Ident("y".into()));
        assert_eq!(out.tokens[0].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still-comment */ real");
        assert_eq!(idents("/* outer /* inner */ still */ real"), vec!["real"]);
        assert_eq!(out.tokens.len(), 1);
    }

    #[test]
    fn raw_strings_and_hashes() {
        assert_eq!(
            idents(r####"let s = r#"contains "quotes" and unwrap()"#; after"####),
            vec!["let", "s", "after"]
        );
        assert_eq!(idents("let s = r\"plain raw\"; after"), vec!["let", "s", "after"]);
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("r#type"), vec!["type"]);
    }

    #[test]
    fn byte_literals() {
        assert_eq!(idents("b\"bytes with unwrap()\" tail"), vec!["tail"]);
        assert_eq!(idents("b'[' tail"), vec!["tail"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // '"' and '[' must lex as char literals, not open strings/brackets.
        let out = lex("let q = '\"'; let b = '['; &'a str; 'outer: loop {}");
        let chars = out.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        let lifetimes = out.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn escaped_char_literals() {
        let out = lex(r"let a = '\''; let b = '\\'; x");
        let chars = out.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!(chars, 2);
        assert_eq!(idents(r"let a = '\''; x"), vec!["let", "a", "x"]);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let kind_at = |src: &str, i: usize| lex(src).tokens[i].kind.clone();
        assert_eq!(kind_at("1.0", 0), Tok::Float);
        assert_eq!(kind_at("1.", 0), Tok::Float);
        assert_eq!(kind_at("1e5", 0), Tok::Float);
        assert_eq!(kind_at("2E-3", 0), Tok::Float);
        assert_eq!(kind_at("1f64", 0), Tok::Float);
        assert_eq!(kind_at("42", 0), Tok::Int);
        assert_eq!(kind_at("0xff", 0), Tok::Int);
        // `0..n` → Int, Op(..), Ident
        let out = lex("0..n");
        assert_eq!(out.tokens[0].kind, Tok::Int);
        assert_eq!(out.tokens[1].kind, Tok::Op(".."));
        // Tuple access `x.0` keeps the 0 an Int.
        let out = lex("x.0");
        assert_eq!(out.tokens[2].kind, Tok::Int);
        // Method call on an integer literal.
        let out = lex("1.max(2)");
        assert_eq!(out.tokens[0].kind, Tok::Int);
    }

    #[test]
    fn maximal_munch_ops() {
        let out = lex("a == b != c :: d ..= e");
        let ops: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                Tok::Op(o) => Some(o),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["==", "!=", "::", "..="]);
    }

    #[test]
    fn allow_directives() {
        let out = lex("x.unwrap(); // sherlock-lint: allow(panic-path): checked above\ny");
        assert_eq!(out.allows.get(&1).map(Vec::as_slice), Some(&["panic-path".to_string()][..]));
        let out = lex("// sherlock-lint: allow(a, b)\nz");
        assert_eq!(out.allows.get(&1).map(Vec::len), Some(2));
        let out = lex("// sherlock-lint: allow-file(nan-unsafe)\nz");
        assert_eq!(out.file_allows, vec!["nan-unsafe".to_string()]);
        assert!(out.allows.is_empty());
    }

    #[test]
    fn byte_string_variants() {
        // Raw byte strings, with and without hashes, must swallow their
        // contents — including fake findings and fake delimiters.
        assert_eq!(idents("br\"raw bytes unwrap()\" tail"), vec!["tail"]);
        assert_eq!(idents("br#\"with \"quotes\" and {braces}\"# tail"), vec!["tail"]);
        assert_eq!(idents("br##\"ends with \"# but not here\"## tail"), vec!["tail"]);
        // Escapes inside plain byte strings must not end the literal early.
        assert_eq!(idents(r#"b"esc \" quote" tail"#), vec!["tail"]);
        assert_eq!(idents(r#"b"trailing slash \\" tail"#), vec!["tail"]);
        // Escaped byte chars.
        let chars = |src: &str| lex(src).tokens.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!(chars(r"let nl = b'\n'; let q = b'\''; let bs = b'\\';"), 3);
        // A byte string never desyncs delimiter pairing for what follows.
        let out = lex("f(b\"{ ( [\"); g()");
        let opens =
            out.tokens.iter().filter(|t| matches!(t.kind, Tok::Op("(" | "[" | "{"))).count();
        let closes =
            out.tokens.iter().filter(|t| matches!(t.kind, Tok::Op(")" | "]" | "}"))).count();
        assert_eq!((opens, closes), (2, 2), "{:?}", out.tokens);
    }

    #[test]
    fn lifetime_variants() {
        let lifetimes =
            |src: &str| lex(src).tokens.iter().filter(|t| t.kind == Tok::Lifetime).count();
        // Generic positions, bounds, anonymous and static lifetimes.
        assert_eq!(lifetimes("fn f<'a, 'b: 'a>(x: &'a str, y: &'b mut [u8]) {}"), 5);
        assert_eq!(lifetimes("impl Foo<'_> for Bar<'static> {}"), 2);
        // Loop labels on both ends: definition and break/continue.
        assert_eq!(lifetimes("'outer: for x in v { break 'outer; continue 'outer; }"), 3);
        // A lifetime right before a char literal must not merge with it.
        let out = lex("f::<'a>('x')");
        assert_eq!(out.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count(), 1);
        assert_eq!(out.tokens.iter().filter(|t| t.kind == Tok::Char).count(), 1);
        // Lifetimes never eat the following identifier.
        assert_eq!(idents("&'a str"), vec!["str"]);
    }

    #[test]
    fn unterminated_input_does_not_hang() {
        let _ = lex("\"never closed");
        let _ = lex("/* never closed");
        let _ = lex("r#\"never closed");
    }
}
