//! The suppression baseline: a checked-in snapshot of historical findings
//! (`tools/lint-baseline.txt`) so the lint fails CI only on *new*
//! violations while the old ones are burned down over time.
//!
//! Entries are keyed `(rule, path, trimmed source line)` rather than by
//! line number, so unrelated edits that shift code up or down do not
//! invalidate the baseline. The key is a multiset: two identical lines in
//! one file need two baseline entries.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use crate::rules::Finding;

/// Multiset of suppressed findings.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    counts: HashMap<(String, String, String), usize>,
}

/// Result of diffing current findings against a baseline.
#[derive(Debug, Default)]
pub struct Diff<'a> {
    /// Findings not covered by the baseline — these fail the build.
    pub new: Vec<&'a Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
    /// Baseline entries that no longer match anything (fixed or moved) —
    /// candidates for `--update-baseline`.
    pub stale: usize,
}

impl Baseline {
    /// Parse the baseline file. A missing file is an empty baseline, so the
    /// tool bootstraps cleanly on a pristine tree.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(e),
        };
        let mut counts = HashMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(rule), Some(path), Some(snippet)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed baseline line (want rule\\tpath\\tsnippet): {line:?}"),
                ));
            };
            *counts
                .entry((rule.to_string(), path.to_string(), snippet.to_string()))
                .or_insert(0) += 1;
        }
        Ok(Baseline { counts })
    }

    /// Serialize `findings` as a fresh baseline file (sorted, stable).
    pub fn write(path: &Path, findings: &[Finding]) -> io::Result<()> {
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| format!("{}\t{}\t{}", f.rule.name(), f.path, f.snippet))
            .collect();
        lines.sort();
        let mut body = String::from(
            "# sherlock-lint suppression baseline.\n\
             # Frozen findings: the lint fails only on violations not listed here.\n\
             # Regenerate with `cargo run -p sherlock-lint -- --update-baseline`.\n\
             # Format: rule<TAB>path<TAB>trimmed source line.\n",
        );
        for line in &lines {
            body.push_str(line);
            body.push('\n');
        }
        std::fs::write(path, body)
    }

    /// Number of suppressed entries.
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// True when nothing is suppressed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Split `findings` into new vs. baselined, consuming baseline
    /// credit per (rule, path, snippet) occurrence.
    pub fn diff<'a>(&self, findings: &'a [Finding]) -> Diff<'a> {
        let mut remaining = self.counts.clone();
        let mut diff = Diff::default();
        for f in findings {
            let key = (f.rule.name().to_string(), f.path.clone(), f.snippet.clone());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    diff.baselined += 1;
                }
                _ => diff.new.push(f),
            }
        }
        diff.stale = remaining.values().sum();
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleKind;

    fn finding(rule: RuleKind, path: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sherlock-lint-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/baseline.txt")).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn roundtrip_and_diff() {
        let old = vec![
            finding(RuleKind::PanicPath, "a.rs", 3, "x.unwrap();"),
            finding(RuleKind::PanicPath, "a.rs", 9, "x.unwrap();"), // duplicate snippet
            finding(RuleKind::NanUnsafe, "b.rs", 1, "a == 0.0"),
        ];
        let path = tmp("roundtrip.txt");
        Baseline::write(&path, &old).unwrap();
        let b = Baseline::load(&path).unwrap();
        assert_eq!(b.len(), 3);

        // Same findings, different line numbers: fully baselined.
        let drifted = vec![
            finding(RuleKind::PanicPath, "a.rs", 13, "x.unwrap();"),
            finding(RuleKind::PanicPath, "a.rs", 29, "x.unwrap();"),
            finding(RuleKind::NanUnsafe, "b.rs", 5, "a == 0.0"),
        ];
        let d = b.diff(&drifted);
        assert!(d.new.is_empty());
        assert_eq!(d.baselined, 3);
        assert_eq!(d.stale, 0);

        // A third identical unwrap exceeds the multiset credit.
        let mut more = drifted.clone();
        more.push(finding(RuleKind::PanicPath, "a.rs", 40, "x.unwrap();"));
        let d = b.diff(&more);
        assert_eq!(d.new.len(), 1);

        // Fixing a finding leaves a stale entry.
        let fixed = &drifted[..2];
        let d = b.diff(fixed);
        assert!(d.new.is_empty());
        assert_eq!(d.stale, 1);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let path = tmp("malformed.txt");
        std::fs::write(&path, "panic-path only-two-fields\n").unwrap();
        assert!(Baseline::load(&path).is_err());
    }
}
