//! The suppression baseline: a checked-in snapshot of historical findings
//! (`tools/lint-baseline.txt`) so the lint fails CI only on *new*
//! violations while the old ones are burned down over time.
//!
//! Entries are keyed `(rule, path, trimmed source line, occurrence index)`
//! rather than by line number, so unrelated edits that shift code up or
//! down do not invalidate the baseline. The occurrence index
//! disambiguates identical snippets within one file (the same `x.unwrap()`
//! appearing twice — even twice on one line): each repetition is its own
//! entry, so fixing one occurrence leaves exactly one identifiable stale
//! entry instead of an anonymous multiset credit.
//!
//! File format is tab-separated `rule<TAB>path<TAB>occ<TAB>snippet`, with
//! the snippet last so embedded tabs in source lines cannot desync the
//! parse. The legacy three-field format (`rule<TAB>path<TAB>snippet`) is
//! still read, with occurrence indices assigned in file order.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;

use crate::rules::Finding;

/// `(rule, path, snippet, occurrence)` — one suppressed finding.
type Key = (String, String, String, usize);

/// Set of suppressed findings, occurrence-indexed per file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: HashSet<Key>,
}

/// Result of diffing current findings against a baseline.
#[derive(Debug, Default)]
pub struct Diff<'a> {
    /// Findings not covered by the baseline — these fail the build.
    pub new: Vec<&'a Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
    /// Baseline entries that no longer match anything (fixed or moved) —
    /// candidates for `--update-baseline`.
    pub stale: usize,
}

/// Assigns occurrence indices: the n-th identical `(rule, path, snippet)`
/// triple gets index n-1, in presentation order.
#[derive(Default)]
struct OccCounter {
    seen: HashMap<(String, String, String), usize>,
}

impl OccCounter {
    fn next(&mut self, rule: &str, path: &str, snippet: &str) -> usize {
        let slot =
            self.seen.entry((rule.to_string(), path.to_string(), snippet.to_string())).or_insert(0);
        let occ = *slot;
        *slot += 1;
        occ
    }
}

impl Baseline {
    /// Parse the baseline file. A missing file is an empty baseline, so the
    /// tool bootstraps cleanly on a pristine tree.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(e),
        };
        let mut entries = HashSet::new();
        let mut legacy = OccCounter::default();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, '\t');
            let (Some(rule), Some(file), Some(third)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed baseline line (want rule\\tpath\\tocc\\tsnippet): {line:?}"),
                ));
            };
            let key = match (third.parse::<usize>(), parts.next()) {
                // Current format: rule, path, occ, snippet.
                (Ok(occ), Some(snippet)) => {
                    (rule.to_string(), file.to_string(), snippet.to_string(), occ)
                }
                // Legacy format: rule, path, snippet — occ by file order.
                // (A non-numeric third field, or a numeric snippet with no
                // fourth field, both mean the third field IS the snippet.)
                _ => {
                    let snippet = match parts.next() {
                        // Third field numeric but trailing fields exist and
                        // were consumed above — unreachable; kept for the
                        // non-numeric-third case where the "snippet" may
                        // itself contain tabs.
                        Some(rest) => format!("{third}\t{rest}"),
                        None => third.to_string(),
                    };
                    let occ = legacy.next(rule, file, &snippet);
                    (rule.to_string(), file.to_string(), snippet, occ)
                }
            };
            entries.insert(key);
        }
        Ok(Baseline { entries })
    }

    /// Serialize `findings` as a fresh baseline file (sorted, stable).
    pub fn write(path: &Path, findings: &[Finding]) -> io::Result<()> {
        let mut occs = OccCounter::default();
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| {
                let occ = occs.next(f.rule.name(), &f.path, &f.snippet);
                format!("{}\t{}\t{}\t{}", f.rule.name(), f.path, occ, f.snippet)
            })
            .collect();
        lines.sort();
        let mut body = String::from(
            "# sherlock-lint suppression baseline.\n\
             # Frozen findings: the lint fails only on violations not listed here.\n\
             # Regenerate with `cargo run -p sherlock-lint -- --update-baseline`.\n\
             # Format: rule<TAB>path<TAB>occurrence-index<TAB>trimmed source line.\n",
        );
        for line in &lines {
            body.push_str(line);
            body.push('\n');
        }
        // sherlock-lint: allow(raw-fs-write, unsynced-store-write): the baseline is regenerated wholesale; a torn write just re-runs
        std::fs::write(path, body)
    }

    /// Number of suppressed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is suppressed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split `findings` into new vs. baselined. Each finding claims the
    /// next occurrence index for its `(rule, path, snippet)` triple, in
    /// order, and is baselined iff that exact indexed entry exists — so a
    /// line carrying the same snippet twice needs two entries, and fixing
    /// either occurrence surfaces as a stale entry rather than silently
    /// rebalancing a count.
    pub fn diff<'a>(&self, findings: &'a [Finding]) -> Diff<'a> {
        let mut occs = OccCounter::default();
        let mut used: HashSet<&Key> = HashSet::new();
        let mut diff = Diff::default();
        for f in findings {
            let occ = occs.next(f.rule.name(), &f.path, &f.snippet);
            let key = (f.rule.name().to_string(), f.path.clone(), f.snippet.clone(), occ);
            match self.entries.get(&key) {
                Some(entry) => {
                    used.insert(entry);
                    diff.baselined += 1;
                }
                None => diff.new.push(f),
            }
        }
        diff.stale = self.entries.len() - used.len();
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleKind;

    fn finding(rule: RuleKind, path: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            snippet: snippet.to_string(),
            message: String::new(),
            trace: Vec::new(),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sherlock-lint-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/baseline.txt")).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn roundtrip_and_diff() {
        let old = vec![
            finding(RuleKind::PanicPath, "a.rs", 3, "x.unwrap();"),
            finding(RuleKind::PanicPath, "a.rs", 9, "x.unwrap();"), // duplicate snippet
            finding(RuleKind::NanUnsafe, "b.rs", 1, "a == 0.0"),
        ];
        let path = tmp("roundtrip.txt");
        Baseline::write(&path, &old).unwrap();
        let b = Baseline::load(&path).unwrap();
        assert_eq!(b.len(), 3);

        // Same findings, different line numbers: fully baselined.
        let drifted = vec![
            finding(RuleKind::PanicPath, "a.rs", 13, "x.unwrap();"),
            finding(RuleKind::PanicPath, "a.rs", 29, "x.unwrap();"),
            finding(RuleKind::NanUnsafe, "b.rs", 5, "a == 0.0"),
        ];
        let d = b.diff(&drifted);
        assert!(d.new.is_empty());
        assert_eq!(d.baselined, 3);
        assert_eq!(d.stale, 0);

        // A third identical unwrap exceeds the per-occurrence entries.
        let mut more = drifted.clone();
        more.push(finding(RuleKind::PanicPath, "a.rs", 40, "x.unwrap();"));
        let d = b.diff(&more);
        assert_eq!(d.new.len(), 1);

        // Fixing a finding leaves a stale entry.
        let fixed = &drifted[..2];
        let d = b.diff(fixed);
        assert!(d.new.is_empty());
        assert_eq!(d.stale, 1);
    }

    #[test]
    fn duplicate_snippets_on_one_line_are_distinct_entries() {
        // `a.unwrap(); b.unwrap();` on a single line: two findings with
        // identical (rule, path, line, snippet). Each must be its own
        // occurrence-indexed entry.
        let twice = vec![
            finding(RuleKind::PanicPath, "a.rs", 7, "a.unwrap(); b.unwrap();"),
            finding(RuleKind::PanicPath, "a.rs", 7, "a.unwrap(); b.unwrap();"),
        ];
        let path = tmp("dup-line.txt");
        Baseline::write(&path, &twice).unwrap();
        let b = Baseline::load(&path).unwrap();
        assert_eq!(b.len(), 2, "one entry per occurrence, not a collapsed key");

        // Both present: fully absorbed.
        let d = b.diff(&twice);
        assert!(d.new.is_empty());
        assert_eq!((d.baselined, d.stale), (2, 0));

        // One occurrence fixed: the orphaned entry must surface as stale —
        // this is the regression the multiset keying missed.
        let d = b.diff(&twice[..1]);
        assert!(d.new.is_empty());
        assert_eq!((d.baselined, d.stale), (1, 1));

        // A third occurrence appearing is NEW, not absorbed.
        let mut three = twice.clone();
        three.push(twice[0].clone());
        let d = b.diff(&three);
        assert_eq!(d.new.len(), 1);
    }

    #[test]
    fn legacy_three_field_format_still_loads() {
        let path = tmp("legacy.txt");
        std::fs::write(
            &path,
            "# comment\n\
             panic-path\ta.rs\tx.unwrap();\n\
             panic-path\ta.rs\tx.unwrap();\n\
             nan-unsafe\tb.rs\ta == 0.0\n",
        )
        .unwrap();
        let b = Baseline::load(&path).unwrap();
        assert_eq!(b.len(), 3, "legacy duplicates get distinct occurrence indices");
        let current = vec![
            finding(RuleKind::PanicPath, "a.rs", 1, "x.unwrap();"),
            finding(RuleKind::PanicPath, "a.rs", 2, "x.unwrap();"),
            finding(RuleKind::NanUnsafe, "b.rs", 3, "a == 0.0"),
        ];
        let d = b.diff(&current);
        assert!(d.new.is_empty());
        assert_eq!((d.baselined, d.stale), (3, 0));
    }

    #[test]
    fn malformed_line_is_an_error() {
        let path = tmp("malformed.txt");
        std::fs::write(&path, "panic-path only-two-fields\n").unwrap();
        assert!(Baseline::load(&path).is_err());
    }
}
