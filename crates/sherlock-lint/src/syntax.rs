//! The syntax layer: just enough structure on top of the flat token stream
//! from [`crate::lexer`] for *semantic* rules to reason about scopes.
//!
//! This is deliberately not a Rust parser. It recovers four things the
//! [`crate::semantic`] rules need and nothing more:
//!
//! 1. **Delimiter tree** — every `()`/`[]`/`{}` group as a [`Group`] node
//!    with its token span and parent, plus an `enclosing` map from token
//!    index to innermost group. Malformed input never fails: stray closers
//!    stay plain tokens and unclosed groups close at end-of-file, so the
//!    tree always [reconstructs](FileSyntax::reconstruct) the exact token
//!    order (a property the proptest suite pins down).
//! 2. **Import resolution** — `use` items (groups, `as` renames, `self`)
//!    mapped to full paths, so `Map` after `use std::collections::HashMap
//!    as Map` is known to be a `HashMap`.
//! 3. **Item recognition** — `fn` signatures (name, parameter bindings,
//!    body span) and `struct` fields (name → type head).
//! 4. **Per-scope binding table** — `let` bindings and `fn` parameters
//!    mapped to a *type head* (the final path segment before any generics:
//!    `&mut std::collections::HashMap<K, V>` → `HashMap`), inferred from
//!    annotations, constructor paths (`HashMap::new()`), `collect::<T>()`
//!    turbofish, or cloning a typed field/binding.
//!
//! Everything is resolved best-effort: an unknown type is the empty string
//! and simply matches no rule, which is the right failure mode for a
//! linter — silence, not a false positive.

use std::collections::HashMap;

use crate::lexer::{Tok, Token};

/// Delimiter kind of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

impl Delim {
    /// Classify an operator token: `Some((delim, is_open))` for the six
    /// delimiter characters, `None` otherwise.
    fn classify(op: &str) -> Option<(Delim, bool)> {
        match op {
            "(" => Some((Delim::Paren, true)),
            ")" => Some((Delim::Paren, false)),
            "[" => Some((Delim::Bracket, true)),
            "]" => Some((Delim::Bracket, false)),
            "{" => Some((Delim::Brace, true)),
            "}" => Some((Delim::Brace, false)),
            _ => None,
        }
    }
}

/// One balanced (or EOF-recovered) delimiter group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Delimiter kind.
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter; `tokens.len()` when the group
    /// was never closed (recovered at end of file).
    pub close: usize,
    /// Index of the enclosing group in [`FileSyntax::groups`], if any.
    pub parent: Option<usize>,
    /// Child groups, in source order.
    pub children: Vec<usize>,
}

impl Group {
    /// Do the *interior* tokens of this group include `tok`?
    pub fn contains(&self, tok: usize) -> bool {
        self.open < tok && tok < self.close
    }
}

/// One recognised `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Token index of the name identifier.
    pub name_tok: usize,
    /// Parameter bindings: `(name, resolved type head)`.
    pub params: Vec<(String, String)>,
    /// Body span as `(open, close)` token indices of the `{ … }` group;
    /// `None` for bodyless trait-method signatures.
    pub body: Option<(usize, usize)>,
}

impl FnInfo {
    /// Is `tok` inside this function's body?
    pub fn body_contains(&self, tok: usize) -> bool {
        self.body.is_some_and(|(open, close)| open < tok && tok < close)
    }
}

/// One `let` binding (or desugared parameter) in the binding table.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound name.
    pub name: String,
    /// Resolved type head (`""` when unknown).
    pub ty: String,
    /// Token index where the binding becomes visible.
    pub tok: usize,
    /// Innermost group id the binding is scoped to; `None` = file scope.
    pub scope: Option<usize>,
}

/// The full syntax-layer analysis of one file.
#[derive(Debug, Default)]
pub struct FileSyntax {
    /// All delimiter groups, in open order.
    pub groups: Vec<Group>,
    /// Innermost group id per token index (`None` = file scope).
    pub enclosing: Vec<Option<usize>>,
    /// `use`-import map: local name → full path segments.
    pub imports: HashMap<String, Vec<String>>,
    /// Recognised functions, in source order.
    pub fns: Vec<FnInfo>,
    /// Struct fields seen anywhere in the file: field name → type head.
    /// (File-wide by design: rules use it only to type method receivers
    /// like `self.counts`, where a rare cross-struct name collision costs
    /// at most one allow-escape.)
    pub fields: HashMap<String, String>,
    /// `let`/parameter bindings, in source order.
    pub bindings: Vec<Binding>,
    n_tokens: usize,
}

impl FileSyntax {
    /// Analyze a token stream (from [`crate::lexer::lex`]).
    pub fn analyze(tokens: &[Token]) -> FileSyntax {
        let mut syn = FileSyntax {
            enclosing: Vec::with_capacity(tokens.len()),
            n_tokens: tokens.len(),
            ..FileSyntax::default()
        };
        syn.build_tree(tokens);
        syn.collect_imports(tokens);
        syn.collect_structs(tokens);
        syn.collect_fns(tokens);
        syn.collect_lets(tokens);
        syn
    }

    // ----- delimiter tree ---------------------------------------------

    fn build_tree(&mut self, tokens: &[Token]) {
        let mut stack: Vec<usize> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            let current = stack.last().copied();
            match &tok.kind {
                Tok::Op(op) => match Delim::classify(op) {
                    Some((delim, true)) => {
                        // The opener token itself belongs to the parent scope.
                        self.enclosing.push(current);
                        let id = self.groups.len();
                        self.groups.push(Group {
                            delim,
                            open: i,
                            close: tokens.len(),
                            parent: current,
                            children: Vec::new(),
                        });
                        if let Some(parent) = current {
                            self.groups[parent].children.push(id);
                        }
                        stack.push(id);
                    }
                    Some((delim, false)) => {
                        // A closer matching the innermost open group closes
                        // it; anything else (stray or mismatched) stays a
                        // plain token so the tree never desyncs.
                        match current {
                            Some(id) if self.groups[id].delim == delim => {
                                self.groups[id].close = i;
                                stack.pop();
                                self.enclosing.push(stack.last().copied());
                            }
                            _ => self.enclosing.push(current),
                        }
                    }
                    None => self.enclosing.push(current),
                },
                _ => self.enclosing.push(current),
            }
        }
        // Unclosed groups keep close == tokens.len() (EOF recovery).
    }

    /// Emit every token index by walking the tree (plain tokens in place,
    /// child groups recursively). Equal to `0..n` for any input — the
    /// round-trip invariant the proptest suite checks.
    pub fn reconstruct(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.n_tokens);
        let roots: Vec<usize> =
            (0..self.groups.len()).filter(|&g| self.groups[g].parent.is_none()).collect();
        self.emit_span(0, self.n_tokens, &roots, &mut out);
        out
    }

    fn emit_span(&self, from: usize, to: usize, groups: &[usize], out: &mut Vec<usize>) {
        let mut cursor = from;
        for &g in groups {
            let group = &self.groups[g];
            // Plain tokens before this child group.
            out.extend(cursor..group.open);
            out.push(group.open);
            let interior_end = group.close.min(self.n_tokens);
            self.emit_span(group.open + 1, interior_end, &group.children, out);
            if group.close < self.n_tokens {
                out.push(group.close);
                cursor = group.close + 1;
            } else {
                cursor = self.n_tokens;
            }
        }
        out.extend(cursor..to);
    }

    /// Innermost group containing token `i` (the group whose span strictly
    /// encloses it), if any.
    pub fn group_of(&self, i: usize) -> Option<&Group> {
        self.enclosing.get(i).copied().flatten().map(|id| &self.groups[id])
    }

    /// Id of the group whose opening delimiter is token `open`. (Every open
    /// delimiter creates a group, so this is total over openers; `None`
    /// means `open` is not an opener. Unlike `enclosing[open + 1]` this is
    /// correct for empty groups, where the next token is already the
    /// closer and belongs to the parent scope.)
    pub(crate) fn group_at_opener(&self, open: usize) -> Option<usize> {
        // `groups` is in opener order — binary search keeps this O(log n).
        self.groups.binary_search_by_key(&open, |g| g.open).ok()
    }

    // ----- imports -----------------------------------------------------

    fn collect_imports(&mut self, tokens: &[Token]) {
        let mut i = 0;
        while i < tokens.len() {
            if matches!(&tokens[i].kind, Tok::Ident(name) if name == "use") {
                i = self.parse_use_tree(tokens, i + 1, &[]);
            } else {
                i += 1;
            }
        }
    }

    /// Parse one use-tree starting at `i` with `prefix` segments already
    /// consumed; returns the index just past the tree.
    fn parse_use_tree(&mut self, tokens: &[Token], mut i: usize, prefix: &[String]) -> usize {
        let mut path: Vec<String> = prefix.to_vec();
        loop {
            match tokens.get(i).map(|t| &t.kind) {
                Some(Tok::Ident(seg)) if seg == "as" => {
                    // `path as Alias`
                    if let Some(Tok::Ident(alias)) = tokens.get(i + 1).map(|t| &t.kind) {
                        self.record_import(alias.clone(), path.clone());
                        return i + 2;
                    }
                    return i + 1;
                }
                Some(Tok::Ident(seg)) => {
                    if seg == "self" {
                        // `{self, …}`: binds the prefix's own last segment.
                        if let Some(last) = path.last().cloned() {
                            self.record_import(last, path.clone());
                        }
                    } else {
                        path.push(seg.clone());
                    }
                    i += 1;
                }
                Some(Tok::Op("::")) => {
                    i += 1;
                }
                Some(Tok::Op("{")) => {
                    // Group: parse each comma-separated subtree.
                    let close =
                        self.group_at_opener(i).map_or(tokens.len(), |id| self.groups[id].close);
                    let mut j = i + 1;
                    while j < close {
                        let next = self.parse_use_tree(tokens, j, &path);
                        // A subtree starting with a terminator (`;`, a stray
                        // op, …) parses to nothing and returns `j` unchanged;
                        // force progress so malformed input cannot loop.
                        j = next.max(j + 1);
                        while j < close && matches!(tokens[j].kind, Tok::Op(",")) {
                            j += 1;
                        }
                    }
                    return close.saturating_add(1);
                }
                Some(Tok::Op("*")) => return i + 1, // glob: nothing to bind
                _ => {
                    // End of tree (`;`, `,`, `}` or EOF): bind the leaf.
                    if let Some(last) = path.last().cloned() {
                        if path.len() > prefix.len() {
                            self.record_import(last, path.clone());
                        }
                    }
                    return i;
                }
            }
        }
    }

    fn record_import(&mut self, name: String, path: Vec<String>) {
        if !path.is_empty() {
            self.imports.insert(name, path);
        }
    }

    /// Resolve a bare identifier through the import map: the final path
    /// segment it refers to (`Map` → `HashMap` after an aliased import),
    /// or the identifier itself when unimported.
    pub fn resolve<'n>(&'n self, name: &'n str) -> &'n str {
        match self.imports.get(name).and_then(|path| path.last()) {
            Some(last) => last.as_str(),
            None => name,
        }
    }

    /// Does `name` resolve into the given module path? E.g.
    /// `resolves_into("write", &["std", "fs"])` is true after
    /// `use std::fs::write;`.
    pub fn resolves_into(&self, name: &str, module: &[&str]) -> bool {
        self.imports.get(name).is_some_and(|path| {
            path.len() == module.len() + 1
                && path.iter().zip(module).all(|(a, b)| a == b)
                && path.last().map(String::as_str) == Some(name)
        })
    }

    // ----- structs ------------------------------------------------------

    fn collect_structs(&mut self, tokens: &[Token]) {
        for i in 0..tokens.len() {
            if !matches!(&tokens[i].kind, Tok::Ident(k) if k == "struct") {
                continue;
            }
            let Some(Tok::Ident(_name)) = tokens.get(i + 1).map(|t| &t.kind) else { continue };
            // Skip generics, find the field brace group (tuple structs and
            // unit structs have none worth indexing).
            let mut j = i + 2;
            let mut angle = 0_i32;
            while let Some(tok) = tokens.get(j) {
                match &tok.kind {
                    Tok::Op("<") => angle += 1,
                    Tok::Op(">") => angle -= 1,
                    Tok::Op("<<") => angle += 2,
                    Tok::Op(">>") => angle -= 2,
                    Tok::Op(";") | Tok::Op("(") if angle <= 0 => break,
                    Tok::Op("{") if angle <= 0 => {
                        self.collect_fields_in(tokens, j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }

    /// Parse `field: Type` pairs at the top level of the brace group
    /// opening at token `open`.
    fn collect_fields_in(&mut self, tokens: &[Token], open: usize) {
        let Some(group_id) = self.group_at_opener(open) else { return };
        let close = self.groups[group_id].close;
        let mut i = open + 1;
        while i < close {
            // Only consider `name :` pairs directly inside the group.
            let at_top = self.enclosing.get(i).copied().flatten() == Some(group_id);
            if at_top {
                if let (Some(Tok::Ident(name)), Some(Tok::Op(":"))) =
                    (tokens.get(i).map(|t| &t.kind), tokens.get(i + 1).map(|t| &t.kind))
                {
                    if name != "pub" {
                        let ty = self.type_head(tokens, i + 2, close);
                        if !ty.is_empty() {
                            self.fields.insert(name.clone(), ty);
                        }
                        // Skip to the next top-level comma.
                        i = self.skip_to_comma(tokens, i + 2, close, group_id);
                        continue;
                    }
                }
            }
            i += 1;
        }
    }

    fn skip_to_comma(&self, tokens: &[Token], mut i: usize, end: usize, group: usize) -> usize {
        while i < end {
            if matches!(tokens[i].kind, Tok::Op(","))
                && self.enclosing.get(i).copied().flatten() == Some(group)
            {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    // ----- type heads ---------------------------------------------------

    /// Extract the *type head* of the type starting at token `from`: skip
    /// references, lifetimes, `mut`/`dyn`/`impl`, walk the path, and return
    /// the import-resolved final segment before any generics. Empty string
    /// when nothing path-like is found (tuples, slices, fn pointers, …).
    pub fn type_head(&self, tokens: &[Token], from: usize, end: usize) -> String {
        let mut i = from;
        while i < end {
            match tokens.get(i).map(|t| &t.kind) {
                Some(Tok::Op("&")) | Some(Tok::Op("&&")) | Some(Tok::Lifetime) => i += 1,
                Some(Tok::Ident(k)) if k == "mut" || k == "dyn" || k == "impl" => i += 1,
                _ => break,
            }
        }
        let mut segments: Vec<&str> = Vec::new();
        while i < end {
            match tokens.get(i).map(|t| &t.kind) {
                Some(Tok::Ident(seg)) => {
                    segments.push(seg.as_str());
                    match tokens.get(i + 1).map(|t| &t.kind) {
                        Some(Tok::Op("::")) => i += 2,
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        match segments.len() {
            0 => String::new(),
            1 => self.resolve(segments[0]).to_string(),
            _ => segments[segments.len() - 1].to_string(),
        }
    }

    // ----- fns ----------------------------------------------------------

    fn collect_fns(&mut self, tokens: &[Token]) {
        for i in 0..tokens.len() {
            if !matches!(&tokens[i].kind, Tok::Ident(k) if k == "fn") {
                continue;
            }
            let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) else { continue };
            let fn_scope = self.enclosing.get(i).copied().flatten();
            // Find the parameter parens (skipping generics).
            let mut j = i + 2;
            let mut angle = 0_i32;
            let params_open = loop {
                match tokens.get(j).map(|t| &t.kind) {
                    Some(Tok::Op("<")) => angle += 1,
                    Some(Tok::Op(">")) => angle -= 1,
                    Some(Tok::Op("<<")) => angle += 2,
                    Some(Tok::Op(">>")) => angle -= 2,
                    Some(Tok::Op("(")) if angle <= 0 => break Some(j),
                    Some(Tok::Op("{")) | Some(Tok::Op(";")) | None => break None,
                    _ => {}
                }
                j += 1;
            };
            let Some(params_open) = params_open else { continue };
            let Some(params_id) = self.group_at_opener(params_open) else { continue };
            self.push_fn(tokens, name.clone(), i + 1, params_id, fn_scope);
        }
    }

    fn push_fn(
        &mut self,
        tokens: &[Token],
        name: String,
        name_tok: usize,
        params_id: usize,
        fn_scope: Option<usize>,
    ) {
        let params_close = self.groups[params_id].close;
        let params = self.parse_params(tokens, params_id);
        // Body: the first brace group that is a *sibling* of the fn item
        // (same enclosing scope) after the parameter list, unless a `;`
        // at that scope ends the item first.
        let mut body = None;
        let mut k = params_close.saturating_add(1);
        while k < tokens.len() {
            let at_scope = self.enclosing.get(k).copied().flatten() == fn_scope;
            match &tokens[k].kind {
                Tok::Op(";") if at_scope => break,
                Tok::Op("{") if at_scope => {
                    let close =
                        self.group_at_opener(k).map_or(tokens.len(), |id| self.groups[id].close);
                    body = Some((k, close));
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let info = FnInfo { name, name_tok, params: params.clone(), body };
        // Parameters are bindings scoped to the body.
        if let Some((open, _)) = body {
            let scope = self.group_at_opener(open);
            for (pname, pty) in params {
                self.bindings.push(Binding { name: pname, ty: pty, tok: open, scope });
            }
        }
        self.fns.push(info);
    }

    /// Parse `name: Type` parameters at the top level of the params group.
    fn parse_params(&self, tokens: &[Token], params_id: usize) -> Vec<(String, String)> {
        let (open, close) = (self.groups[params_id].open, self.groups[params_id].close);
        let mut params = Vec::new();
        let mut i = open + 1;
        while i < close {
            let at_top = self.enclosing.get(i).copied().flatten() == Some(params_id);
            if at_top {
                // Skip leading `mut` in `mut name: Type`.
                let name_at = match tokens.get(i).map(|t| &t.kind) {
                    Some(Tok::Ident(k)) if k == "mut" => i + 1,
                    _ => i,
                };
                if let (Some(Tok::Ident(name)), Some(Tok::Op(":"))) =
                    (tokens.get(name_at).map(|t| &t.kind), tokens.get(name_at + 1).map(|t| &t.kind))
                {
                    if name != "self" {
                        let ty = self.type_head(tokens, name_at + 2, close);
                        params.push((name.clone(), ty));
                    }
                    i = self.skip_to_comma(tokens, name_at + 2, close, params_id);
                    continue;
                }
            }
            i += 1;
        }
        params
    }

    // ----- let bindings -------------------------------------------------

    fn collect_lets(&mut self, tokens: &[Token]) {
        for i in 0..tokens.len() {
            if !matches!(&tokens[i].kind, Tok::Ident(k) if k == "let") {
                continue;
            }
            let mut j = i + 1;
            if matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Ident(k)) if k == "mut") {
                j += 1;
            }
            let Some(Tok::Ident(name)) = tokens.get(j).map(|t| &t.kind) else { continue };
            let scope = self.enclosing.get(i).copied().flatten();
            let stmt_end = self.statement_end(tokens, j + 1, scope);
            // Explicit annotation?
            let mut ty = String::new();
            if matches!(tokens.get(j + 1).map(|t| &t.kind), Some(Tok::Op(":"))) {
                ty = self.type_head(tokens, j + 2, stmt_end);
            }
            if ty.is_empty() {
                // Infer from the right-hand side.
                if let Some(eq) = self.find_at_scope(tokens, j + 1, stmt_end, scope, "=") {
                    ty = self.infer_expr_head(tokens, eq + 1, stmt_end);
                }
            }
            self.bindings.push(Binding { name: name.clone(), ty, tok: i, scope });
        }
    }

    /// Index of the `;` ending the statement containing `from` (searching
    /// at `scope` level only), or the end of the scope.
    pub fn statement_end(&self, tokens: &[Token], from: usize, scope: Option<usize>) -> usize {
        let scope_close = scope.map_or(tokens.len(), |id| self.groups[id].close);
        self.find_at_scope(tokens, from, scope_close, scope, ";").unwrap_or(scope_close)
    }

    fn find_at_scope(
        &self,
        tokens: &[Token],
        from: usize,
        end: usize,
        scope: Option<usize>,
        op: &str,
    ) -> Option<usize> {
        (from..end.min(tokens.len())).find(|&k| {
            matches!(&tokens[k].kind, Tok::Op(o) if *o == op)
                && self.enclosing.get(k).copied().flatten() == scope
        })
    }

    /// Best-effort type head of an expression: constructor paths
    /// (`HashMap::new()`, `HashMap::from(…)`), `collect::<T>()` turbofish,
    /// or `x.clone()` of a typed binding/field.
    fn infer_expr_head(&self, tokens: &[Token], from: usize, end: usize) -> String {
        // Constructor path: Ident (:: Ident)* :: ctor (
        let mut segments: Vec<&str> = Vec::new();
        let mut i = from;
        while i < end {
            match tokens.get(i).map(|t| &t.kind) {
                Some(Tok::Ident(seg)) => {
                    segments.push(seg.as_str());
                    match tokens.get(i + 1).map(|t| &t.kind) {
                        Some(Tok::Op("::")) => {
                            i += 2;
                            // Skip turbofish generics in the path.
                            if matches!(tokens.get(i).map(|t| &t.kind), Some(Tok::Op("<"))) {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        const CTORS: &[&str] = &["new", "with_capacity", "default", "from", "from_iter"];
        if segments.len() >= 2 && CTORS.contains(segments.last().unwrap_or(&"")) {
            let head = segments[segments.len() - 2];
            return if segments.len() == 2 {
                self.resolve(head).to_string()
            } else {
                head.to_string()
            };
        }
        // collect::<Type<…>>() anywhere in the expression.
        for k in from..end.min(tokens.len()) {
            if matches!(&tokens[k].kind, Tok::Ident(id) if id == "collect")
                && matches!(tokens.get(k + 1).map(|t| &t.kind), Some(Tok::Op("::")))
                && matches!(tokens.get(k + 2).map(|t| &t.kind), Some(Tok::Op("<")))
            {
                return self.type_head(tokens, k + 3, end);
            }
        }
        // `x.clone()` / `self.field.clone()`: the receiver's type.
        if matches!(tokens.get(from).map(|t| &t.kind), Some(Tok::Ident(_))) {
            let mut k = from;
            while k + 2 < end
                && matches!(tokens.get(k + 1).map(|t| &t.kind), Some(Tok::Op(".")))
                && matches!(tokens.get(k + 2).map(|t| &t.kind), Some(Tok::Ident(_)))
            {
                if matches!(&tokens[k + 2].kind, Tok::Ident(m) if m == "clone") {
                    return self.receiver_type(tokens, k).unwrap_or_default().to_string();
                }
                k += 2;
            }
        }
        String::new()
    }

    // ----- lookups ------------------------------------------------------

    /// Type head of the binding named `name` visible at token `at`
    /// (innermost, latest declaration wins). `None` when unknown.
    pub fn binding_type(&self, name: &str, at: usize) -> Option<&str> {
        self.bindings
            .iter()
            .filter(|b| {
                b.name == name
                    && b.tok <= at
                    && match b.scope {
                        None => true,
                        Some(id) => self.groups[id].contains(at) || self.groups[id].open == b.tok,
                    }
            })
            .max_by_key(|b| b.tok)
            .map(|b| b.ty.as_str())
            .filter(|ty| !ty.is_empty())
    }

    /// Type head of the *receiver* identifier at token `i` — a local
    /// binding if one is visible, else a struct field of this file (for
    /// `self.field` / `other.field` receivers).
    pub fn receiver_type(&self, tokens: &[Token], i: usize) -> Option<&str> {
        let Tok::Ident(name) = &tokens.get(i)?.kind else { return None };
        // `self` / `Self` never name a container directly.
        if name == "self" || name == "Self" {
            return None;
        }
        // Field access (`x.field`) if the previous token is a dot —
        // otherwise prefer a visible local binding.
        let after_dot = i >= 1 && matches!(tokens[i - 1].kind, Tok::Op("."));
        if after_dot {
            return self.fields.get(name.as_str()).map(String::as_str);
        }
        self.binding_type(name, i).or_else(|| self.fields.get(name.as_str()).map(String::as_str))
    }

    /// The innermost recognised function whose body contains `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body_contains(tok))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(open, close)| close - open))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn syntax(src: &str) -> (Vec<Token>, FileSyntax) {
        let tokens = lex(src).tokens;
        let syn = FileSyntax::analyze(&tokens);
        (tokens, syn)
    }

    #[test]
    fn tree_reconstructs_balanced_input() {
        let (tokens, syn) = syntax("fn f(a: u8) { g([1, 2], (3, 4)); }");
        assert_eq!(syn.reconstruct(), (0..tokens.len()).collect::<Vec<_>>());
        assert!(syn.groups.len() >= 4);
    }

    #[test]
    fn tree_recovers_from_malformed_input() {
        for src in ["} stray close {", "open { never closed", "a ) b ] c }", "((("] {
            let (tokens, syn) = syntax(src);
            assert_eq!(syn.reconstruct(), (0..tokens.len()).collect::<Vec<_>>(), "{src}");
        }
    }

    #[test]
    fn malformed_use_groups_terminate() {
        // Regression (found by the syntax_props fuzz suite): a use-group
        // whose subtree starts with a terminator used to return the same
        // index from `parse_use_tree` and spin forever.
        for src in ["use { ; }", "use a::{;, b};", "use {{}, ::, x}; use ok::Fine;"] {
            let (_, syn) = syntax(src);
            let _ = syn; // completing analyze() at all is the assertion
        }
        let (_, syn) = syntax("use {;}; use std::fs::File;");
        assert!(syn.resolves_into("File", &["std", "fs"]));
    }

    #[test]
    fn imports_resolve_groups_aliases_and_self() {
        let (_, syn) = syntax(
            "use std::collections::{HashMap, HashSet};\n\
             use std::collections::BTreeMap as Sorted;\n\
             use std::fs::{self, File};\n\
             use std::panic::set_hook;\n",
        );
        assert_eq!(syn.resolve("HashMap"), "HashMap");
        assert_eq!(syn.resolve("Sorted"), "BTreeMap");
        assert_eq!(syn.imports.get("fs"), Some(&vec!["std".into(), "fs".into()]));
        assert_eq!(syn.imports.get("File"), Some(&vec!["std".into(), "fs".into(), "File".into()]));
        assert!(syn.resolves_into("set_hook", &["std", "panic"]));
        assert!(!syn.resolves_into("set_hook", &["std", "fs"]));
    }

    #[test]
    fn fn_signatures_bind_typed_params() {
        let (_, syn) = syntax(
            "use std::collections::HashMap;\n\
             fn f(map: &HashMap<String, u8>, mut n: usize, budget: &ArmedBudget) -> u8 { n }",
        );
        let f = &syn.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(
            f.params,
            vec![
                ("map".to_string(), "HashMap".to_string()),
                ("n".to_string(), "usize".to_string()),
                ("budget".to_string(), "ArmedBudget".to_string()),
            ]
        );
        assert!(f.body.is_some());
    }

    #[test]
    fn generic_fn_and_nested_fn_are_recognised() {
        let (tokens, syn) =
            syntax("fn outer<T: Ord>(v: Vec<T>) { fn inner(x: u8) -> u8 { x } let _ = inner(1); }");
        assert_eq!(syn.fns.len(), 2);
        let inner = syn.fns.iter().find(|f| f.name == "inner").unwrap();
        // inner's body must be the small brace group, not outer's.
        let (open, close) = inner.body.unwrap();
        assert!(close - open < tokens.len() / 2);
    }

    #[test]
    fn struct_fields_are_indexed() {
        let (_, syn) = syntax(
            "use std::collections::HashMap;\n\
             pub struct Baseline { counts: HashMap<(String, String), usize>, pub n: usize }",
        );
        assert_eq!(syn.fields.get("counts").map(String::as_str), Some("HashMap"));
        assert_eq!(syn.fields.get("n").map(String::as_str), Some("usize"));
    }

    #[test]
    fn let_bindings_infer_types() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   fn f() {\n\
                       let m = HashMap::new();\n\
                       let annotated: HashSet<u8> = Default::default();\n\
                       let collected = iter.collect::<HashMap<u8, u8>>();\n\
                       let unknown = helper();\n\
                   }";
        let (tokens, syn) = syntax(src);
        let end = tokens.len();
        assert_eq!(syn.binding_type("m", end - 2), Some("HashMap"));
        assert_eq!(syn.binding_type("annotated", end - 2), Some("HashSet"));
        assert_eq!(syn.binding_type("collected", end - 2), Some("HashMap"));
        assert_eq!(syn.binding_type("unknown", end - 2), None);
    }

    #[test]
    fn clone_of_typed_field_infers_type() {
        let src = "use std::collections::HashMap;\n\
                   struct S { counts: HashMap<String, usize> }\n\
                   fn f(s: &S) { let mut remaining = s.counts.clone(); let x = remaining; }";
        let (tokens, syn) = syntax(src);
        assert_eq!(syn.binding_type("remaining", tokens.len() - 2), Some("HashMap"));
    }

    #[test]
    fn binding_scope_and_shadowing() {
        let src = "fn f() { let x = HashMap::new(); { let x = 1; let _ = x; } let _ = x; }";
        let (tokens, syn) = syntax(src);
        // Inside the inner block the integer shadows the map…
        let inner_use = tokens.len() - 8;
        assert_eq!(syn.binding_type("x", inner_use), None); // `1` has no head
                                                            // …after it, the map is visible again.
        assert_eq!(syn.binding_type("x", tokens.len() - 2), Some("HashMap"));
    }

    #[test]
    fn enclosing_fn_finds_innermost() {
        let src = "fn outer() { fn inner() { let here = 1; } }";
        let (tokens, syn) = syntax(src);
        let here =
            tokens.iter().position(|t| matches!(&t.kind, Tok::Ident(n) if n == "here")).unwrap();
        assert_eq!(syn.enclosing_fn(here).map(|f| f.name.as_str()), Some("inner"));
        let _ = tokens;
    }

    #[test]
    fn receiver_type_prefers_field_after_dot() {
        let src = "use std::collections::HashMap;\n\
                   struct S { items: HashMap<u8, u8> }\n\
                   fn f(s: &S, items: Vec<u8>) { s.items.len(); items.len(); }";
        let (tokens, syn) = syntax(src);
        let uses: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.kind, Tok::Ident(n) if n == "items"))
            .map(|(i, _)| i)
            .collect();
        // Declaration, then `s.items` (field), then bare `items` (binding).
        let field_use = uses[uses.len() - 2];
        let binding_use = uses[uses.len() - 1];
        assert_eq!(syn.receiver_type(&tokens, field_use), Some("HashMap"));
        assert_eq!(syn.receiver_type(&tokens, binding_use), Some("Vec"));
    }
}
