//! Layer 3 of the analyzer: **flow**.
//!
//! The syntax layer ([`crate::syntax`]) gives every file a delimiter tree,
//! an import table, and a function list. This module builds on those three
//! to answer questions the statement-level rules cannot:
//!
//! 1. **Control-flow graphs** ([`Cfg`]) — one per function body, built by a
//!    single recursive walk over the delimiter tree. Nodes are contiguous
//!    token spans; `if`/`else if`/`else` chains, `match` arms, and the
//!    three loop forms become the usual diamond/back-edge shapes, and
//!    early exits (`return`, `?`, `break`, `continue`) get their own
//!    edges. Bare `{ … }` block expressions are linearized into the
//!    current node — precise enough for lock tracking, and it keeps the
//!    builder honest about what it models.
//! 2. **A worklist dataflow engine** ([`dataflow_in`]) — a forward
//!    may-analysis over up to 64 facts per function, each node's transfer
//!    function reduced to a `(surviving_mask, gen_set)` pair. Facts only
//!    ever turn on as the fixpoint iterates, so termination is by
//!    monotonicity, not by an iteration cap.
//! 3. **A workspace call-graph index** ([`FlowIndex`]) — per-function
//!    summaries (locks acquired, callees, budget polling) keyed by name
//!    and resolved through the `use`-import table, with one round of
//!    reachability fixpoints so rules can ask "does anything this loop
//!    calls poll the budget?" or "what does this callee lock?".
//!
//! Three rules live here — `lock-order-inversion`, `guard-across-blocking`
//! and `swallowed-error` — and the semantic layer's `budget-blind-loop`
//! consumes [`FlowIndex::polls_reachable`] for its interprocedural upgrade.

use std::collections::btree_map::{BTreeMap, Entry};
use std::collections::BTreeSet;

use crate::lexer::{Tok, Token};
use crate::rules::{FileClass, RuleKind};
use crate::syntax::{Delim, FileSyntax};

/// Calls that can block the calling thread on I/O, another thread, or a
/// timer. `Condvar::wait`/`wait_timeout` are deliberately **absent**: they
/// atomically release the guard they are handed, so holding a guard across
/// them is the intended pattern, not a bug.
const BLOCKING_CALLS: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "join",
    "read",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "sleep",
    "write_all",
    "write_fmt",
];

/// Fallible store/net/protocol operations whose `Err` must not be silently
/// discarded (`swallowed-error`). Method form only, so `fs::write(..)` free
/// functions stay out of scope.
const SWALLOWABLE: &[&str] =
    &["flush", "join", "save", "send", "spawn", "sync_all", "sync_data", "write_all", "write_fmt"];

/// The dataflow engine packs facts into a `u64`, so at most this many
/// guard slots are tracked per function (excess slots are ignored —
/// conservative in the "miss a finding" direction, never a false positive).
pub(crate) const MAX_SLOTS: usize = 64;

// ----- control-flow graph -----------------------------------------------

/// Entry node id of every [`Cfg`] (also the first real node: a straight-line
/// body is entirely the entry node).
pub const ENTRY: usize = 0;
/// Exit node id of every [`Cfg`]; `return` and `?` edges target it directly.
pub const EXIT: usize = 1;

/// One CFG node: a contiguous token span plus successor edges.
#[derive(Debug, Clone, Default)]
pub struct CfgNode {
    /// Token range `[start, end)` this node covers. Spans of distinct nodes
    /// do not overlap; construct keywords and delimiters may fall between
    /// spans (they carry no events).
    pub span: (usize, usize),
    /// Successor node ids, deduplicated, in insertion order.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph over the delimiter tree.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; index 0 is [`ENTRY`], index 1 is [`EXIT`].
    pub nodes: Vec<CfgNode>,
}

impl Cfg {
    /// Total number of (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.succs.len()).sum()
    }

    /// Set of node ids reachable from [`ENTRY`].
    pub fn reachable(&self) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![ENTRY];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if let Some(node) = self.nodes.get(id) {
                stack.extend(node.succs.iter().copied());
            }
        }
        seen
    }
}

/// Build the CFG for the function body whose `{` is at token `body_open`.
/// Returns `None` when the opener is not a brace group (malformed input).
pub fn build_cfg(toks: &[Token], syn: &FileSyntax, body_open: usize) -> Option<Cfg> {
    let gid = syn.group_at_opener(body_open)?;
    let mut b = Builder { toks, syn, nodes: Vec::new(), loops: Vec::new() };
    let entry = b.new_node(body_open + 1);
    let exit = b.new_node(toks.len());
    debug_assert_eq!((entry, exit), (ENTRY, EXIT));
    let end = b.build_block(ENTRY, gid);
    b.edge(end, EXIT);
    Some(Cfg { nodes: b.nodes })
}

struct Builder<'a> {
    toks: &'a [Token],
    syn: &'a FileSyntax,
    nodes: Vec<CfgNode>,
    /// Innermost-last stack of `(head, after)` targets for `continue`/`break`.
    loops: Vec<(usize, usize)>,
}

impl Builder<'_> {
    fn new_node(&mut self, start: usize) -> usize {
        self.nodes.push(CfgNode { span: (start, start), succs: Vec::new() });
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if let Some(node) = self.nodes.get_mut(from) {
            if !node.succs.contains(&to) {
                node.succs.push(to);
            }
        }
    }

    fn end_span(&mut self, node: usize, end: usize) {
        if let Some(n) = self.nodes.get_mut(node) {
            if end > n.span.1 {
                n.span.1 = end;
            }
        }
    }

    fn group_span(&self, gid: usize) -> (usize, usize) {
        self.syn.groups.get(gid).map(|g| (g.open, g.close.min(self.toks.len()))).unwrap_or((0, 0))
    }

    fn at_scope(&self, i: usize, gid: usize) -> bool {
        self.syn.enclosing.get(i).copied().flatten() == Some(gid)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn op(&self, i: usize, want: &str) -> bool {
        matches!(self.toks.get(i).map(|t| &t.kind), Some(Tok::Op(o)) if *o == want)
    }

    /// Walk the interior of brace group `gid`, threading `cur` through each
    /// control construct. Returns the node control falls out of.
    fn build_block(&mut self, mut cur: usize, gid: usize) -> usize {
        let (open, close) = self.group_span(gid);
        let mut i = open + 1;
        while i < close {
            if !self.at_scope(i, gid) {
                i += 1;
                continue;
            }
            match self.ident(i) {
                Some("if") => cur = self.build_if(cur, gid, &mut i, close),
                Some("match") => cur = self.build_match(cur, gid, &mut i, close),
                Some(kw @ ("for" | "while" | "loop")) => {
                    let bare_loop = kw == "loop";
                    cur = self.build_loop(cur, gid, &mut i, close, bare_loop);
                }
                Some("break") => {
                    if let Some(&(_, after)) = self.loops.last() {
                        self.edge(cur, after);
                    }
                    i += 1;
                }
                Some("continue") => {
                    if let Some(&(head, _)) = self.loops.last() {
                        self.edge(cur, head);
                    }
                    i += 1;
                }
                Some("return") => {
                    self.edge(cur, EXIT);
                    i += 1;
                }
                _ => {
                    if self.op(i, "?") {
                        self.edge(cur, EXIT);
                    }
                    i += 1;
                }
            }
            self.end_span(cur, i.min(close));
        }
        self.end_span(cur, close);
        cur
    }

    /// Scan from `from` for the next `{` at `gid` scope, folding condition
    /// tokens (and their `?` exits) into `cur`. `None` when a `;`/`}` at
    /// scope arrives first (no body: malformed or not a control construct).
    fn advance_to_brace(
        &mut self,
        cur: usize,
        from: usize,
        close: usize,
        gid: usize,
    ) -> Option<usize> {
        let mut k = from;
        while k < close {
            if self.at_scope(k, gid) {
                if self.op(k, "{") {
                    self.end_span(cur, k);
                    return Some(k);
                }
                if self.op(k, ";") || self.op(k, "}") {
                    return None;
                }
                if self.op(k, "?") {
                    self.edge(cur, EXIT);
                }
            }
            k += 1;
        }
        None
    }

    /// `if` / `else if` / `else` chain. With k arms total: k edges
    /// `cur -> arm`, k edges `arm_end -> join`, plus `cur -> join` iff the
    /// chain has no final `else`.
    fn build_if(&mut self, cur: usize, gid: usize, i: &mut usize, close: usize) -> usize {
        self.end_span(cur, *i);
        let mut arm_ends: Vec<usize> = Vec::new();
        let mut has_else = false;
        let mut pos = *i + 1;
        loop {
            let Some(brace) = self.advance_to_brace(cur, pos, close, gid) else {
                *i = pos.max(*i + 1);
                return cur;
            };
            let Some(arm_gid) = self.syn.group_at_opener(brace) else {
                *i = brace + 1;
                return cur;
            };
            let arm = self.new_node(brace + 1);
            self.edge(cur, arm);
            arm_ends.push(self.build_block(arm, arm_gid));
            pos = self.group_span(arm_gid).1.saturating_add(1);
            if pos < close && self.at_scope(pos, gid) && self.ident(pos) == Some("else") {
                if self.ident(pos + 1) == Some("if") {
                    pos += 2;
                    continue;
                }
                let Some(ebrace) = self.advance_to_brace(cur, pos + 1, close, gid) else {
                    break;
                };
                let Some(else_gid) = self.syn.group_at_opener(ebrace) else {
                    break;
                };
                let arm = self.new_node(ebrace + 1);
                self.edge(cur, arm);
                arm_ends.push(self.build_block(arm, else_gid));
                pos = self.group_span(else_gid).1.saturating_add(1);
                has_else = true;
            }
            break;
        }
        let join = self.new_node(pos.min(close));
        for end in arm_ends {
            self.edge(end, join);
        }
        if !has_else {
            self.edge(cur, join);
        }
        *i = pos;
        join
    }

    /// `for`/`while`/`loop`: head node (holding the header tokens), body,
    /// and an after node — exactly 4 edges (`cur->head`, `head->body`,
    /// `body_end->head`, `head->after`) plus any `break`/`continue`. The
    /// `head->after` edge is emitted even for bare `loop` so every node
    /// stays reachable from entry (dead-code precision is not this
    /// analyzer's job).
    fn build_loop(
        &mut self,
        cur: usize,
        gid: usize,
        i: &mut usize,
        close: usize,
        bare_loop: bool,
    ) -> usize {
        self.end_span(cur, *i);
        let head = self.new_node(*i);
        self.edge(cur, head);
        let brace = if bare_loop {
            self.op(*i + 1, "{").then(|| *i + 1)
        } else {
            self.advance_to_brace(head, *i + 1, close, gid)
        };
        let (Some(brace),) = (brace,) else {
            // Malformed: treat the keyword as plain tokens; `head` stays a
            // reachable dead end.
            *i += 1;
            return cur;
        };
        let Some(bgid) = self.syn.group_at_opener(brace) else {
            *i = brace + 1;
            return cur;
        };
        self.end_span(head, brace);
        let body = self.new_node(brace + 1);
        self.edge(head, body);
        let bclose = self.group_span(bgid).1;
        let after = self.new_node(bclose.saturating_add(1).min(close));
        self.loops.push((head, after));
        let body_end = self.build_block(body, bgid);
        self.loops.pop();
        self.edge(body_end, head);
        self.edge(head, after);
        *i = bclose.saturating_add(1);
        after
    }

    /// `match`: scrutinee tokens fold into `cur`; each top-level arm gets
    /// `cur -> arm` and `arm_end -> join` (2 edges per arm; `cur -> join`
    /// only for an empty match). Braced arm bodies recurse; expression arms
    /// span to the next top-level `,` with their own `?`/`return` edges.
    fn build_match(&mut self, cur: usize, gid: usize, i: &mut usize, close: usize) -> usize {
        self.end_span(cur, *i);
        let Some(brace) = self.advance_to_brace(cur, *i + 1, close, gid) else {
            *i += 1;
            return cur;
        };
        let Some(mgid) = self.syn.group_at_opener(brace) else {
            *i = brace + 1;
            return cur;
        };
        let (mopen, mclose) = self.group_span(mgid);
        let mut arm_ends: Vec<usize> = Vec::new();
        let mut k = mopen + 1;
        while k < mclose {
            if !(self.at_scope(k, mgid) && self.op(k, "=>")) {
                k += 1;
                continue;
            }
            let next = k + 1;
            if self.op(next, "{") && self.at_scope(next, mgid) {
                if let Some(agid) = self.syn.group_at_opener(next) {
                    let arm = self.new_node(next + 1);
                    self.edge(cur, arm);
                    arm_ends.push(self.build_block(arm, agid));
                    k = self.group_span(agid).1.saturating_add(1);
                    continue;
                }
            }
            // Expression arm: runs to the next `,` at match scope.
            let arm = self.new_node(next);
            self.edge(cur, arm);
            let mut e = next;
            while e < mclose {
                if self.at_scope(e, mgid) {
                    if self.op(e, ",") {
                        break;
                    }
                    if self.op(e, "?") || self.ident(e) == Some("return") {
                        self.edge(arm, EXIT);
                    } else if self.ident(e) == Some("break") {
                        if let Some(&(_, after)) = self.loops.last() {
                            self.edge(arm, after);
                        }
                    } else if self.ident(e) == Some("continue") {
                        if let Some(&(head, _)) = self.loops.last() {
                            self.edge(arm, head);
                        }
                    }
                }
                e += 1;
            }
            self.end_span(arm, e);
            arm_ends.push(arm);
            k = e + 1;
        }
        let join = self.new_node(mclose.saturating_add(1).min(close));
        if arm_ends.is_empty() {
            self.edge(cur, join);
        }
        for end in arm_ends {
            self.edge(end, join);
        }
        *i = mclose.saturating_add(1);
        join
    }
}

// ----- worklist dataflow engine -----------------------------------------

/// Forward may-analysis over `u64` fact sets. `transfer[n]` is the node's
/// `(surviving_mask, gen_set)`: `out = (in & surviving) | gen`. Returns the
/// fixpoint `in` state per node (entry starts empty). Both components of
/// every transfer are constants, so `out` is a monotone function of `in`
/// and the iteration terminates without a cap.
pub fn dataflow_in(cfg: &Cfg, transfer: &[(u64, u64)]) -> Vec<u64> {
    let n = cfg.nodes.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, node) in cfg.nodes.iter().enumerate() {
        for &s in &node.succs {
            if let Some(p) = preds.get_mut(s) {
                p.push(id);
            }
        }
    }
    let mut ins = vec![0u64; n];
    let mut outs: Vec<u64> = (0..n).map(|id| transfer.get(id).map_or(0, |&(_, gen)| gen)).collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            let in_new = preds.get(id).map_or(0u64, |ps| {
                ps.iter().fold(0u64, |acc, &p| acc | outs.get(p).copied().unwrap_or(0))
            });
            let (surv, gen) = transfer.get(id).copied().unwrap_or((u64::MAX, 0));
            let out_new = (in_new & surv) | gen;
            let stale =
                ins.get(id).copied() != Some(in_new) || outs.get(id).copied() != Some(out_new);
            if stale {
                if let (Some(i_slot), Some(o_slot)) = (ins.get_mut(id), outs.get_mut(id)) {
                    *i_slot = in_new;
                    *o_slot = out_new;
                    changed = true;
                }
            }
        }
        if !changed {
            return ins;
        }
    }
}

// ----- per-function facts -----------------------------------------------

/// A `let`-bound mutex guard tracked by the dataflow engine.
#[derive(Debug, Clone)]
pub struct GuardSlot {
    /// Binding name (`guard` in `let guard = lock(&self.tenants);`).
    pub name: String,
    /// Lock identity — the last path segment of the acquisition receiver
    /// (`tenants`, `queue`, the binding name of a local mutex, …).
    pub lock: String,
    /// Token index of the acquisition (the dataflow gen point).
    pub tok: usize,
    /// Innermost brace group of the `let`; the guard is dead outside it
    /// even without an explicit `drop` (lexical-scope kill).
    pub scope: Option<usize>,
}

/// A lock acquisition site with the guard set live on entry to it.
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// Lock identity being acquired.
    pub lock: String,
    /// Source line.
    pub line: u32,
    /// Lock identities already held here (possibly empty).
    pub held: Vec<String>,
}

/// A call site with the guard set live on entry to it.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// Callee name after `use`-import resolution.
    pub callee: String,
    /// Source line.
    pub line: u32,
    /// Lock identities held across the call.
    pub held: Vec<String>,
}

/// A potentially-blocking call made while at least zero guards are live.
#[derive(Debug, Clone)]
pub struct BlockEvent {
    /// The blocking call's name (`write_all`, `join`, `sleep`, …).
    pub call: String,
    /// Source line.
    pub line: u32,
    /// `(guard binding, lock identity)` pairs live across the call.
    pub guards: Vec<(String, String)>,
}

/// Flow facts for one function body.
#[derive(Debug, Clone)]
pub struct FlowFn {
    /// Function name (methods keyed by bare name).
    pub name: String,
    /// Its control-flow graph.
    pub cfg: Cfg,
    /// Every lock acquisition, with held-set context.
    pub acquires: Vec<LockEvent>,
    /// Every plausible call site, with held-set context.
    pub calls: Vec<CallEvent>,
    /// Every blocking call with the guards live across it.
    pub blocking: Vec<BlockEvent>,
    /// Does this function poll a budget/cancel handle directly
    /// (a budget-typed parameter or local followed by `.`)?
    pub polls_budget: bool,
}

/// Flow facts for every function in one file.
#[derive(Debug, Default)]
pub struct FileFlow {
    /// Per-function facts, in source order.
    pub fns: Vec<FlowFn>,
}

impl FileFlow {
    /// Analyze every function body in the file. Events at tokens covered by
    /// `test_mask` are not recorded (CFGs are still built), so `#[cfg(test)]`
    /// code never feeds the workspace index or the flow rules.
    pub fn analyze(toks: &[Token], syn: &FileSyntax, test_mask: &[bool]) -> FileFlow {
        let mut fns = Vec::new();
        for f in &syn.fns {
            let Some((body_open, body_close)) = f.body else { continue };
            let Some(cfg) = build_cfg(toks, syn, body_open) else { continue };
            let slots = collect_guards(toks, syn, body_open, body_close);
            let transfer = node_transfers(&cfg, toks, &slots);
            let ins = dataflow_in(&cfg, &transfer);
            let (acquires, calls, blocking) = walk_events(&cfg, toks, syn, &slots, &ins, test_mask);
            fns.push(FlowFn {
                name: f.name.clone(),
                cfg,
                acquires,
                calls,
                blocking,
                polls_budget: polls_directly(toks, syn, f, body_open, body_close),
            });
        }
        FileFlow { fns }
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn op_at(toks: &[Token], i: usize, want: &str) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Op(o)) if *o == want)
}

fn line_at(toks: &[Token], i: usize) -> u32 {
    toks.get(i).map_or(0, |t| t.line)
}

/// Recognise a lock acquisition at token `i` and name the lock:
/// the project-idiom free helper `lock(&self.tenants)` (poison-riding), or
/// a plain method call `writer.lock()`. The lock identity is the last path
/// segment of the receiver (`self.` is skipped).
fn detect_acquisition(toks: &[Token], i: usize) -> Option<String> {
    if ident_at(toks, i) != Some("lock") || !op_at(toks, i + 1, "(") {
        return None;
    }
    let method = i >= 1 && op_at(toks, i - 1, ".");
    if method {
        let recv = ident_at(toks, i.checked_sub(2)?)?;
        if recv == "self" || recv == "Self" {
            return None;
        }
        return Some(recv.to_string());
    }
    // Free-helper form: reject `fn lock(` definitions and type-qualified
    // paths (`Mutex::lock(`, `Self::lock(`) — but a module-qualified free
    // helper (`sync::lock(guarded)`) is an acquisition like the bare call.
    if i >= 1 && ident_at(toks, i - 1) == Some("fn") {
        return None;
    }
    if i >= 2 && op_at(toks, i - 1, "::") {
        let qualifier = ident_at(toks, i - 2);
        if qualifier.is_none_or(|q| q.starts_with(char::is_uppercase)) {
            return None;
        }
    }
    // Scan the argument path expression for its last identifier.
    let mut k = i + 2;
    let mut last: Option<&str> = None;
    while k < toks.len() {
        match toks.get(k).map(|t| &t.kind) {
            Some(Tok::Ident(name)) => {
                if name != "self" && name != "mut" {
                    last = Some(name.as_str());
                }
            }
            Some(Tok::Op("&" | "." | "::")) => {}
            _ => break,
        }
        k += 1;
    }
    last.map(str::to_string)
}

/// Collect the `let`-bound guard slots of one body: `let [mut] NAME = …;`
/// statements whose initializer contains a lock acquisition.
fn collect_guards(
    toks: &[Token],
    syn: &FileSyntax,
    body_open: usize,
    body_close: usize,
) -> Vec<GuardSlot> {
    let mut slots = Vec::new();
    let mut t = body_open + 1;
    let end = body_close.min(toks.len());
    while t < end && slots.len() < MAX_SLOTS {
        if ident_at(toks, t) != Some("let") {
            t += 1;
            continue;
        }
        let mut name_at = t + 1;
        if ident_at(toks, name_at) == Some("mut") {
            name_at += 1;
        }
        let (Some(name), true) = (ident_at(toks, name_at), op_at(toks, name_at + 1, "=")) else {
            t += 1;
            continue;
        };
        let scope = syn.enclosing.get(t).copied().flatten();
        let let_scope = brace_scope(syn, t);
        let stmt_end = syn.statement_end(toks, t, let_scope);
        if let Some(acq) = (name_at + 2..stmt_end.min(end))
            .find_map(|k| detect_acquisition(toks, k).map(|lock| (k, lock)))
        {
            // Two shapes that *contain* an acquisition but bind no guard:
            //  * `let known = { let g = lock(&m); … };` — the lock lives in
            //    a nested block and drops at its `}`, not with `known`;
            //  * `let idle = lock(&m).is_empty() && …;` — the temporary is
            //    consumed by the chained call and drops at the `;`.
            let at_let_scope = brace_scope(syn, acq.0) == let_scope;
            if at_let_scope && !chain_consumes(toks, syn, acq.0) {
                slots.push(GuardSlot {
                    name: name.to_string(),
                    lock: acq.1,
                    tok: acq.0,
                    scope: brace_scope_from(syn, scope),
                });
            }
        }
        t = stmt_end.max(t + 1);
    }
    slots
}

/// Does the method chain after the acquisition at `acq` *consume* the
/// guard? Poison-riding adapters (`unwrap` / `expect` / `unwrap_or_else`)
/// pass the guard through; any other chained call (`lock(&q).is_empty()`)
/// consumes the temporary, which then drops at the statement's `;`.
fn chain_consumes(toks: &[Token], syn: &FileSyntax, acq: usize) -> bool {
    const PASSTHROUGH: &[&str] = &["expect", "unwrap", "unwrap_or_else"];
    let mut close = match syn.group_at_opener(acq + 1).and_then(|id| syn.groups.get(id)) {
        Some(g) => g.close,
        None => return false,
    };
    while op_at(toks, close + 1, ".") {
        let Some(name) = ident_at(toks, close + 2) else { return false };
        if !op_at(toks, close + 3, "(") {
            // Field access / await — not a consuming call; stop here.
            return false;
        }
        if !PASSTHROUGH.contains(&name) {
            return true;
        }
        close = match syn.group_at_opener(close + 3).and_then(|id| syn.groups.get(id)) {
            Some(g) => g.close,
            None => return false,
        };
    }
    false
}

/// Innermost **brace** group containing token `t` (walking out of parens
/// and brackets), if any.
fn brace_scope(syn: &FileSyntax, t: usize) -> Option<usize> {
    brace_scope_from(syn, syn.enclosing.get(t).copied().flatten())
}

fn brace_scope_from(syn: &FileSyntax, mut g: Option<usize>) -> Option<usize> {
    while let Some(id) = g {
        let group = syn.groups.get(id)?;
        if group.delim == Delim::Brace {
            return Some(id);
        }
        g = group.parent;
    }
    None
}

/// Reduce each CFG node to its `(surviving_mask, gen_set)` transfer by a
/// linear walk of its span: a slot's acquisition token gens its bit, an
/// explicit `drop(NAME)` kills it.
fn node_transfers(cfg: &Cfg, toks: &[Token], slots: &[GuardSlot]) -> Vec<(u64, u64)> {
    cfg.nodes
        .iter()
        .map(|node| {
            let mut surv = u64::MAX;
            let mut gen = 0u64;
            for t in node.span.0..node.span.1.min(toks.len()) {
                for (b, slot) in slots.iter().enumerate() {
                    if slot.tok == t {
                        gen |= 1u64 << b;
                    }
                }
                if let Some(b) = explicit_drop(toks, t, slots) {
                    gen &= !(1u64 << b);
                    surv &= !(1u64 << b);
                }
            }
            (surv, gen)
        })
        .collect()
}

/// `drop(NAME)` where NAME is a tracked guard: returns the slot bit.
fn explicit_drop(toks: &[Token], t: usize, slots: &[GuardSlot]) -> Option<usize> {
    if ident_at(toks, t) != Some("drop") || !op_at(toks, t + 1, "(") {
        return None;
    }
    let name = ident_at(toks, t + 2)?;
    if !op_at(toks, t + 3, ")") {
        return None;
    }
    slots.iter().position(|s| s.name == name)
}

/// Does this function poll a budget handle directly? (A budget-typed
/// parameter or body-local binding followed by `.` — i.e. a method call on
/// the handle, not merely passing it along.)
fn polls_directly(
    toks: &[Token],
    syn: &FileSyntax,
    f: &crate::syntax::FnInfo,
    body_open: usize,
    body_close: usize,
) -> bool {
    let mut handles: BTreeSet<&str> = f
        .params
        .iter()
        .filter(|(_, ty)| crate::semantic::BUDGET_TYPES.contains(&ty.as_str()))
        .map(|(name, _)| name.as_str())
        .collect();
    handles.extend(
        syn.bindings
            .iter()
            .filter(|b| {
                b.tok > body_open
                    && b.tok < body_close
                    && crate::semantic::BUDGET_TYPES.contains(&b.ty.as_str())
            })
            .map(|b| b.name.as_str()),
    );
    if handles.is_empty() {
        return false;
    }
    (body_open + 1..body_close.min(toks.len()))
        .any(|t| ident_at(toks, t).is_some_and(|n| handles.contains(n)) && op_at(toks, t + 1, "."))
}

/// Replay each node's span against its dataflow in-state, recording lock,
/// call, and blocking events with held-guard context.
fn walk_events(
    cfg: &Cfg,
    toks: &[Token],
    syn: &FileSyntax,
    slots: &[GuardSlot],
    ins: &[u64],
    test_mask: &[bool],
) -> (Vec<LockEvent>, Vec<CallEvent>, Vec<BlockEvent>) {
    let mut events = (Vec::new(), Vec::new(), Vec::new());
    for (id, node) in cfg.nodes.iter().enumerate() {
        let mut state = ins.get(id).copied().unwrap_or(0);
        for t in node.span.0..node.span.1.min(toks.len()) {
            let masked = test_mask.get(t).copied().unwrap_or(false);
            if !masked {
                record_events(&mut events, toks, syn, slots, state, t);
            }
            for (b, slot) in slots.iter().enumerate() {
                if slot.tok == t {
                    state |= 1u64 << b;
                }
            }
            if let Some(b) = explicit_drop(toks, t, slots) {
                state &= !(1u64 << b);
            }
        }
    }
    events
}

fn record_events(
    (acquires, calls, blocking): &mut (Vec<LockEvent>, Vec<CallEvent>, Vec<BlockEvent>),
    toks: &[Token],
    syn: &FileSyntax,
    slots: &[GuardSlot],
    state: u64,
    t: usize,
) {
    let live = |at: usize| -> Vec<(String, String)> {
        slots
            .iter()
            .enumerate()
            .filter(|(b, slot)| {
                state & (1u64 << b) != 0
                    && slot
                        .scope
                        .is_none_or(|gid| syn.groups.get(gid).is_some_and(|g| g.contains(at)))
            })
            .map(|(_, slot)| (slot.name.clone(), slot.lock.clone()))
            .collect()
    };
    if let Some(lock) = detect_acquisition(toks, t) {
        let held: Vec<String> = live(t).into_iter().map(|(_, l)| l).collect();
        acquires.push(LockEvent { lock, line: line_at(toks, t), held });
    }
    let Some(name) = ident_at(toks, t) else { return };
    if !op_at(toks, t + 1, "(") {
        return;
    }
    if BLOCKING_CALLS.contains(&name)
        && (op_at(toks, t.wrapping_sub(1), ".") || op_at(toks, t.wrapping_sub(1), "::"))
        // `.join(` with arguments is `str`/`Path` join, not thread join.
        && (name != "join" || op_at(toks, t + 2, ")"))
    {
        let guards = live(t);
        if !guards.is_empty() {
            blocking.push(BlockEvent { call: name.to_string(), line: line_at(toks, t), guards });
        }
    }
    let lower = name.starts_with(|c: char| c.is_lowercase() || c == '_');
    let declaration = ident_at(toks, t.wrapping_sub(1)) == Some("fn");
    if lower && !declaration && !crate::semantic::NON_CALL_IDENTS.contains(&name) && name != "drop"
    {
        let held: Vec<String> = live(t).into_iter().map(|(_, l)| l).collect();
        // A path-qualified call (`Self::step(`, `crate::x::step(`, a method
        // re-exported through `prelude`) already names the item: running it
        // through the import-alias map would mangle `use a as b` aliases.
        let callee = if op_at(toks, t.wrapping_sub(1), "::") { name } else { syn.resolve(name) };
        calls.push(CallEvent { callee: callee.to_string(), line: line_at(toks, t), held });
    }
}

// ----- workspace call-graph index ---------------------------------------

/// Per-function summary after [`FlowIndex::finalize`]: `acquires` is the
/// *reachable* acquisition set (own plus callees', one fixpoint), `polls`
/// is reachable budget polling.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Locks acquired by this function or anything it (transitively) calls.
    pub acquires: BTreeSet<String>,
    /// Direct callees (resolved names).
    pub calls: BTreeSet<String>,
    /// Does this function (or anything it calls) poll a budget handle?
    pub polls: bool,
}

/// One observed lock-ordering fact: `first` was held while `second` was
/// acquired at `path:line` (possibly via one call-graph step).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderPair {
    /// Lock held on entry.
    pub first: String,
    /// Lock acquired while `first` was held.
    pub second: String,
    /// File the acquisition (or the call leading to it) is in.
    pub path: String,
    /// Line of the acquisition or call site.
    pub line: u32,
    /// `Some(callee)` when the second acquisition happens inside a callee.
    pub via: Option<String>,
}

/// The workspace-wide call-graph index: function summaries plus every
/// observed lock-ordering pair. Built once per scan (or per file for
/// single-file scans), then handed read-only to the rules.
#[derive(Debug, Default)]
pub struct FlowIndex {
    fns: BTreeMap<String, FnSummary>,
    pairs: Vec<OrderPair>,
    pending: Vec<PendingCall>,
    finalized: bool,
}

#[derive(Debug)]
struct PendingCall {
    callee: String,
    path: String,
    line: u32,
    held: Vec<String>,
}

impl FlowIndex {
    /// Fold one analyzed file into the index. Call [`FlowIndex::finalize`]
    /// once all files are in.
    pub fn add_file(&mut self, path: &str, flow: &FileFlow) {
        for f in &flow.fns {
            let summary = match self.fns.entry(f.name.clone()) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => e.insert(FnSummary::default()),
            };
            summary.polls |= f.polls_budget;
            for acq in &f.acquires {
                summary.acquires.insert(acq.lock.clone());
                for held in &acq.held {
                    if held != &acq.lock {
                        self.pairs.push(OrderPair {
                            first: held.clone(),
                            second: acq.lock.clone(),
                            path: path.to_string(),
                            line: acq.line,
                            via: None,
                        });
                    }
                }
            }
            for call in &f.calls {
                summary.calls.insert(call.callee.clone());
                if !call.held.is_empty() {
                    self.pending.push(PendingCall {
                        callee: call.callee.clone(),
                        path: path.to_string(),
                        line: call.line,
                        held: call.held.clone(),
                    });
                }
            }
        }
    }

    /// Run the reachability fixpoints (budget polling and lock acquisition
    /// summaries, one call-graph level at a time until stable) and expand
    /// held-across-call sites into interprocedural ordering pairs.
    pub fn finalize(&mut self) {
        // Propagate `polls` and `acquires` over the call graph.
        loop {
            let mut changed = false;
            let names: Vec<String> = self.fns.keys().cloned().collect();
            for name in &names {
                let Some(summary) = self.fns.get(name) else { continue };
                let mut polls = summary.polls;
                let mut acquires = summary.acquires.clone();
                for callee in summary.calls.clone() {
                    if let Some(cs) = self.fns.get(&callee) {
                        polls |= cs.polls;
                        acquires.extend(cs.acquires.iter().cloned());
                    }
                }
                let Some(summary) = self.fns.get_mut(name) else { continue };
                if polls != summary.polls || acquires != summary.acquires {
                    summary.polls = polls;
                    summary.acquires = acquires;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Held-across-call -> ordering pairs against the callee's
        // reachable acquisition set.
        for call in std::mem::take(&mut self.pending) {
            let Some(summary) = self.fns.get(&call.callee) else { continue };
            for second in &summary.acquires {
                for first in &call.held {
                    if first != second {
                        self.pairs.push(OrderPair {
                            first: first.clone(),
                            second: second.clone(),
                            path: call.path.clone(),
                            line: call.line,
                            via: Some(call.callee.clone()),
                        });
                    }
                }
            }
        }
        self.pairs.sort();
        self.pairs.dedup();
        self.finalized = true;
    }

    /// Single-file convenience: analyze, add, finalize.
    pub fn from_file(path: &str, flow: &FileFlow) -> FlowIndex {
        let mut index = FlowIndex::default();
        index.add_file(path, flow);
        index.finalize();
        index
    }

    /// Post-finalize summary lookup.
    pub fn summary(&self, name: &str) -> Option<&FnSummary> {
        self.fns.get(name)
    }

    /// Does `name` (or anything it transitively calls) poll a budget
    /// handle? The semantic layer's `budget-blind-loop` asks this per
    /// callee inside a loop.
    pub fn polls_reachable(&self, name: &str) -> bool {
        self.fns.get(name).is_some_and(|s| s.polls)
    }

    /// All ordering pairs observed in `path`.
    fn pairs_in<'i>(&'i self, path: &str) -> impl Iterator<Item = &'i OrderPair> {
        let path = path.to_string();
        self.pairs.iter().filter(move |p| p.path == path)
    }

    /// The first pair acquiring `first` then `second`, anywhere.
    fn find_pair(&self, first: &str, second: &str) -> Option<&OrderPair> {
        self.pairs.iter().find(|p| p.first == first && p.second == second)
    }
}

// ----- the flow rules ---------------------------------------------------

/// Run the flow-layer rules on one file. `flow` is this file's analysis;
/// `index` is the (workspace-wide or file-local) call-graph index.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_flow(
    path: &str,
    toks: &[Token],
    syn: &FileSyntax,
    flow: &FileFlow,
    class: FileClass,
    test_mask: &[bool],
    rules: &[RuleKind],
    index: &FlowIndex,
    emit: &mut dyn FnMut(RuleKind, u32, String),
) {
    if class != FileClass::Lib {
        return;
    }
    if rules.contains(&RuleKind::LockOrderInversion) {
        lock_order_inversion(path, index, emit);
    }
    if rules.contains(&RuleKind::GuardAcrossBlocking) {
        guard_across_blocking(flow, emit);
    }
    if rules.contains(&RuleKind::SwallowedError) {
        swallowed_error(toks, syn, test_mask, emit);
    }
}

fn lock_order_inversion(
    path: &str,
    index: &FlowIndex,
    emit: &mut dyn FnMut(RuleKind, u32, String),
) {
    let mut seen: BTreeSet<(u32, String, String)> = BTreeSet::new();
    let local: Vec<OrderPair> = index.pairs_in(path).cloned().collect();
    for pair in &local {
        let Some(counter) = index.find_pair(&pair.second, &pair.first) else { continue };
        if !seen.insert((pair.line, pair.first.clone(), pair.second.clone())) {
            continue;
        }
        let via = pair
            .via
            .as_deref()
            .map(|callee| format!(" (via call to `{callee}`)"))
            .unwrap_or_default();
        emit(
            RuleKind::LockOrderInversion,
            pair.line,
            format!(
                "lock `{}` is held while `{}` is acquired{via}, but {}:{} takes \
                 them in the opposite order; two threads on these paths can \
                 deadlock — pick one order and stick to it",
                pair.first, pair.second, counter.path, counter.line
            ),
        );
    }
}

fn guard_across_blocking(flow: &FileFlow, emit: &mut dyn FnMut(RuleKind, u32, String)) {
    for f in &flow.fns {
        for site in &f.blocking {
            let named: Vec<String> = site
                .guards
                .iter()
                .map(|(guard, lock)| format!("`{guard}` (lock `{lock}`)"))
                .collect();
            emit(
                RuleKind::GuardAcrossBlocking,
                site.line,
                format!(
                    "`{}` can block while guard {} is live; one stalled peer \
                     then pins every thread waiting on that lock — drop the \
                     guard before blocking",
                    site.call,
                    named.join(", "),
                ),
            );
        }
    }
}

fn swallowed_error(
    toks: &[Token],
    syn: &FileSyntax,
    test_mask: &[bool],
    emit: &mut dyn FnMut(RuleKind, u32, String),
) {
    let mut t = 0;
    while t < toks.len() {
        let Some(name) = ident_at(toks, t) else {
            t += 1;
            continue;
        };
        if !SWALLOWABLE.contains(&name)
            || !op_at(toks, t.wrapping_sub(1), ".")
            || !op_at(toks, t + 1, "(")
            // `.join("/")` on str/Path is infallible; thread join takes none.
            || (name == "join" && !op_at(toks, t + 2, ")"))
            || test_mask.get(t).copied().unwrap_or(false)
        {
            t += 1;
            continue;
        }
        // Shutdown/drain paths may legitimately best-effort their writes.
        if syn
            .enclosing_fn(t)
            .is_some_and(|f| f.name.contains("drain") || f.name.contains("shutdown"))
        {
            t += 1;
            continue;
        }
        let scope = brace_scope(syn, t);
        let start = stmt_start(toks, syn, t, scope);
        let end = syn.statement_end(toks, t, scope);
        if ident_at(toks, start) == Some("let")
            && ident_at(toks, start + 1) == Some("_")
            && op_at(toks, start + 2, "=")
        {
            emit(
                RuleKind::SwallowedError,
                line_at(toks, start),
                format!(
                    "`let _ =` discards the result of `{name}`; a failed \
                     store/net write must be counted, logged, or propagated"
                ),
            );
        } else if let Some(k) = find_ok_call(toks, start, end).or_else(|| {
            // The fallible call may sit inside a closure (`.map(|i| …spawn…)`)
            // while the swallow happens downstream in the same fn-body-level
            // statement (`.filter_map(|h| h.ok())`). Escalate the search to
            // the statement at the enclosing fn's body scope.
            let body_open = syn.enclosing_fn(t)?.body?.0;
            let fn_scope = syn.group_at_opener(body_open);
            if fn_scope == scope {
                return None;
            }
            let wide_end = syn.statement_end(toks, t, fn_scope);
            find_ok_call(toks, t, wide_end)
        }) {
            emit(
                RuleKind::SwallowedError,
                line_at(toks, k),
                format!(
                    "`.ok()` swallows the error from `{name}`; a failed \
                     store/net write must be counted, logged, or propagated"
                ),
            );
        }
        t = end.max(t + 1);
    }
}

/// First argument-less `.ok()` call in `[start, end)`.
fn find_ok_call(toks: &[Token], start: usize, end: usize) -> Option<usize> {
    (start..end.min(toks.len())).find(|&k| {
        ident_at(toks, k) == Some("ok")
            && op_at(toks, k.wrapping_sub(1), ".")
            && op_at(toks, k + 1, "(")
            && op_at(toks, k + 2, ")")
    })
}

/// Start of the statement containing `t`: the token after the previous
/// `;`, `{`, or `}` at the statement's brace scope.
fn stmt_start(toks: &[Token], syn: &FileSyntax, t: usize, scope: Option<usize>) -> usize {
    let lo = scope.and_then(|gid| syn.groups.get(gid)).map_or(0, |g| g.open + 1);
    let mut start = lo;
    for k in (lo..t).rev() {
        if syn.enclosing.get(k).copied().flatten() != scope {
            continue;
        }
        if op_at(toks, k, ";") || op_at(toks, k, "{") || op_at(toks, k, "}") {
            start = k + 1;
            break;
        }
    }
    start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn setup(src: &str) -> (Vec<Token>, FileSyntax) {
        let lexed = lex(src);
        let syn = FileSyntax::analyze(&lexed.tokens);
        (lexed.tokens, syn)
    }

    fn cfg_of(src: &str) -> Cfg {
        let (toks, syn) = setup(src);
        let f = syn.fns.first().expect("fn parsed");
        let (open, _) = f.body.expect("body");
        build_cfg(&toks, &syn, open).expect("cfg built")
    }

    fn flow_of(src: &str) -> FileFlow {
        let (toks, syn) = setup(src);
        let mask = vec![false; toks.len()];
        FileFlow::analyze(&toks, &syn, &mask)
    }

    fn findings_of(src: &str, rules: &[RuleKind]) -> Vec<(RuleKind, u32, String)> {
        let (toks, syn) = setup(src);
        let mask = vec![false; toks.len()];
        let flow = FileFlow::analyze(&toks, &syn, &mask);
        let index = FlowIndex::from_file("mem.rs", &flow);
        let mut out = Vec::new();
        scan_flow(
            "mem.rs",
            &toks,
            &syn,
            &flow,
            FileClass::Lib,
            &mask,
            rules,
            &index,
            &mut |rule, line, msg| out.push((rule, line, msg)),
        );
        out
    }

    #[test]
    fn straight_line_fn_is_entry_to_exit() {
        let cfg = cfg_of("fn f() { a(); b(); c(); }");
        assert_eq!(cfg.nodes.len(), 2);
        assert_eq!(cfg.edge_count(), 1);
        assert_eq!(cfg.reachable().len(), 2);
    }

    #[test]
    fn if_else_makes_a_diamond() {
        let cfg = cfg_of("fn f(x: bool) { if x { a(); } else { b(); } c(); }");
        // entry, exit, 2 arms, join.
        assert_eq!(cfg.nodes.len(), 5);
        // cur->arm x2, arm->join x2, join->exit.
        assert_eq!(cfg.edge_count(), 5);
        assert_eq!(cfg.reachable().len(), 5);
    }

    #[test]
    fn if_without_else_keeps_fallthrough_edge() {
        let cfg = cfg_of("fn f(x: bool) { if x { a(); } b(); }");
        assert_eq!(cfg.nodes.len(), 4);
        // cur->arm, arm->join, cur->join, join->exit.
        assert_eq!(cfg.edge_count(), 4);
    }

    #[test]
    fn loop_has_back_edge_and_break_edge() {
        let cfg = cfg_of("fn f() { loop { if done() { break; } step(); } tail(); }");
        // Every node reachable, including `after` via head->after.
        assert_eq!(cfg.reachable().len(), cfg.nodes.len());
        // entry->head, head->body, body_end->head, head->after,
        // if: body->arm, arm->join, body->join, arm->after (break),
        // after->exit.
        assert_eq!(cfg.edge_count(), 9);
    }

    #[test]
    fn question_mark_and_return_edge_to_exit() {
        let cfg = cfg_of("fn f() -> R { let x = g()?; if x { return h(); } k() }");
        let entry_succs = &cfg.nodes[ENTRY].succs;
        assert!(entry_succs.contains(&EXIT), "? should edge to exit: {entry_succs:?}");
        assert_eq!(cfg.reachable().len(), cfg.nodes.len());
    }

    #[test]
    fn match_arms_fan_out_and_rejoin() {
        let cfg =
            cfg_of("fn f(x: E) { match x { E::A => { a(); } E::B(v) => b(v), _ => {} } tail(); }");
        // entry, exit, 3 arms, join.
        assert_eq!(cfg.nodes.len(), 6);
        // cur->arm x3, arm->join x3, join->exit.
        assert_eq!(cfg.edge_count(), 7);
        assert_eq!(cfg.reachable().len(), 6);
    }

    #[test]
    fn dataflow_guard_survives_until_drop() {
        let src = "fn f(m: &Mutex<u32>) { let g = lock(m); use_it(&g); drop(g); after(); }";
        let flow = flow_of(src);
        let f = &flow.fns[0];
        // `use_it` called with the guard's lock held; `after` with it dropped.
        let use_call = f.calls.iter().find(|c| c.callee == "use_it").expect("use_it");
        assert_eq!(use_call.held, vec!["m".to_string()]);
        let after_call = f.calls.iter().find(|c| c.callee == "after").expect("after");
        assert!(after_call.held.is_empty(), "drop should kill the fact");
    }

    #[test]
    fn guard_dies_at_scope_exit() {
        let src = "fn f(m: &Mutex<u32>) { { let g = lock(m); use_it(&g); } after(); }";
        let flow = flow_of(src);
        let after_call = flow.fns[0].calls.iter().find(|c| c.callee == "after").expect("after");
        assert!(after_call.held.is_empty(), "guard scope ended before after()");
    }

    #[test]
    fn interprocedural_inversion_is_found() {
        let src = "
            fn forward(d: &D) { let t = lock(&d.tenants); let q = lock(&d.queue); work(&t, &q); }
            fn backward_outer(d: &D) { let q = lock(&d.queue); backward_inner(d); drop(q); }
            fn backward_inner(d: &D) { let t = lock(&d.tenants); touch(&t); }
        ";
        let findings = findings_of(src, &[RuleKind::LockOrderInversion]);
        assert!(
            findings.iter().any(|(_, _, m)| m.contains("tenants") && m.contains("queue")),
            "expected an inversion finding, got {findings:?}"
        );
        // Both directions are reported (one per conflicting site).
        assert!(findings.len() >= 2, "{findings:?}");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "
            fn one(d: &D) { let t = lock(&d.tenants); let q = lock(&d.queue); work(&t, &q); }
            fn two(d: &D) { let t = lock(&d.tenants); let q = lock(&d.queue); work(&t, &q); }
        ";
        assert!(findings_of(src, &[RuleKind::LockOrderInversion]).is_empty());
    }

    #[test]
    fn guard_across_blocking_fires_and_condvar_wait_is_exempt() {
        let hit = "fn f(m: &Mutex<W>) { let mut g = lock(m); g.write_all(b\"x\"); }";
        assert_eq!(findings_of(hit, &[RuleKind::GuardAcrossBlocking]).len(), 1);
        let wait = "fn f(d: &D) { let mut q = lock(&d.queue); let r = d.cv.wait_timeout(q, t); }";
        assert!(findings_of(wait, &[RuleKind::GuardAcrossBlocking]).is_empty());
        let dropped = "fn f(m: &Mutex<W>) { let g = lock(m); drop(g); sock.write_all(b\"x\"); }";
        assert!(findings_of(dropped, &[RuleKind::GuardAcrossBlocking]).is_empty());
    }

    #[test]
    fn block_result_binding_is_not_a_guard() {
        // `known` holds the *result* of the block; the lock drops at the
        // inner `}` (the daemon's handle_detect / worker_loop idiom).
        let src = "fn f(d: &D) {
            let known = { let t = lock(&d.tenants); t.len() };
            std::thread::sleep(dur);
        }";
        assert!(findings_of(src, &[RuleKind::GuardAcrossBlocking]).is_empty());
    }

    #[test]
    fn consumed_lock_temporary_is_not_a_guard() {
        // The temporary guard is consumed by `.is_empty()` and drops at the
        // `;` (the daemon's drain-idle probe).
        let src = "fn f(d: &D) {
            let idle = lock(&d.queue).is_empty();
            std::thread::sleep(dur);
        }";
        assert!(findings_of(src, &[RuleKind::GuardAcrossBlocking]).is_empty());
    }

    #[test]
    fn poison_riding_chain_is_still_a_guard() {
        // `unwrap` / `unwrap_or_else` pass the guard through — only
        // non-adapter chained calls consume it.
        let src = "fn f(m: &Mutex<W>) {
            let mut g = m.lock().unwrap_or_else(|p| p.into_inner());
            g.write_all(b\"x\");
        }";
        assert_eq!(findings_of(src, &[RuleKind::GuardAcrossBlocking]).len(), 1);
    }

    #[test]
    fn swallow_in_downstream_closure_is_found() {
        // The fallible `.spawn` sits inside a `.map` closure; the `.ok()`
        // swallow happens downstream in the same fn-body statement (the
        // daemon's spawn_workers shape).
        let src = "fn f(n: u32) -> Vec<H> {
            (0..n)
                .map(|i| { std::thread::Builder::new().spawn(move || work(i)) })
                .filter_map(|h| h.ok())
                .collect()
        }";
        let findings = findings_of(src, &[RuleKind::SwallowedError]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].2.contains("spawn"), "{findings:?}");
    }

    #[test]
    fn swallowed_error_let_underscore_and_ok() {
        let src = "
            fn f(w: &mut W) { let _ = w.write_all(b\"x\"); }
            fn g(w: &mut W) { w.flush().ok(); }
            fn propagate(w: &mut W) -> io::Result<()> { w.write_all(b\"x\")?; Ok(()) }
            fn drain(w: &mut W) { let _ = w.flush(); }
        ";
        let findings = findings_of(src, &[RuleKind::SwallowedError]);
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn path_join_is_not_thread_join() {
        let src = "fn f(dir: &Path) { let p = dir.join(\"model.bin\"); read(&p); }";
        assert!(findings_of(src, &[RuleKind::SwallowedError]).is_empty());
    }

    #[test]
    fn call_graph_resolves_renamed_imports() {
        let src = "
            use crate::util::{alpha, beta as gamma};
            fn caller() { alpha(); gamma(); }
        ";
        let (toks, syn) = setup(src);
        let mask = vec![false; toks.len()];
        let flow = FileFlow::analyze(&toks, &syn, &mask);
        let index = FlowIndex::from_file("mem.rs", &flow);
        let calls = &index.summary("caller").expect("caller summary").calls;
        assert!(calls.contains("alpha") && calls.contains("beta"), "{calls:?}");
    }

    #[test]
    fn polls_reachable_propagates_one_level_and_beyond() {
        let src = "
            fn poller(budget: &DiagnosisBudget) -> R { budget.check(\"stage\") }
            fn middle(budget: &DiagnosisBudget) -> R { poller(budget) }
            fn top(budget: &DiagnosisBudget) -> R { middle(budget) }
            fn blind(x: u32) -> u32 { x }
        ";
        let (toks, syn) = setup(src);
        let mask = vec![false; toks.len()];
        let flow = FileFlow::analyze(&toks, &syn, &mask);
        let index = FlowIndex::from_file("mem.rs", &flow);
        assert!(index.polls_reachable("poller"));
        assert!(index.polls_reachable("middle"));
        assert!(index.polls_reachable("top"));
        assert!(!index.polls_reachable("blind"));
    }

    #[test]
    fn test_mask_suppresses_events() {
        let src = "fn f(m: &Mutex<W>) { let mut g = lock(m); g.write_all(b\"x\"); }";
        let (toks, syn) = setup(src);
        let mask = vec![true; toks.len()];
        let flow = FileFlow::analyze(&toks, &syn, &mask);
        assert!(flow.fns[0].blocking.is_empty());
        assert!(flow.fns[0].acquires.is_empty());
    }
}
