//! The rule engine: token-level rules walk the stream from
//! [`crate::lexer`] with just enough structural context (attributes,
//! `#[cfg(test)]` item spans, paren depth); the semantic rules run on the
//! [`crate::syntax`] layer via [`crate::semantic`], sharing this module's
//! emit path so allow-escapes and baselining behave identically.

use std::fmt;

use crate::flow::{FileFlow, FlowIndex};
use crate::lexer::{lex, Tok, Token};
use crate::syntax::FileSyntax;
use crate::taint::TaintIndex;

/// The rules sherlock-lint knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleKind {
    /// `unwrap()` / `expect()` / `panic!` / `unreachable!` / `[]`-indexing
    /// in non-test library code.
    PanicPath,
    /// Float `==`/`!=`, `partial_cmp(..).unwrap()`, bare `partial_cmp` in
    /// sort comparators.
    NanUnsafe,
    /// Entropy-seeded RNG construction (`thread_rng()`, `from_entropy()`, …).
    UnseededRng,
    /// Crate roots must deny `clippy::unwrap_used`/`expect_used` outside tests.
    DenyHeader,
    /// Bare `thread::spawn` / `thread::scope` in library code outside the
    /// execution layer (`crates/core/src/exec.rs`). Parallelism must route
    /// through `par_map_indexed` so ordering and determinism stay centralised.
    RawSpawn,
    /// Bare `fs::write` in library code outside the crash-safe store
    /// (`crates/core/src/store.rs`). A plain truncating write torn by a
    /// crash destroys the artifact; repository/result persistence must go
    /// through `ModelStore` (temp + fsync + atomic rename).
    RawFsWrite,
    /// Semantic: iterating a binding the syntax layer resolves to a
    /// `HashMap`/`HashSet` into ordered output without an intervening
    /// sort. Arbitrary iteration order is the classic silent threat to
    /// the engine's bit-identical-at-any-thread-count guarantee.
    NondetIteration,
    /// Semantic: `panic::set_hook`/`take_hook` anywhere outside
    /// `chaos::quiet_panics`. Hook swaps mutate process-global state and
    /// race the parallel test harness — this rule applies to test code
    /// too, unlike the other panic rules.
    RawPanicHook,
    /// Semantic: a loop in a function holding an `ArmedBudget` /
    /// `DiagnosisBudget` / `CancelFlag` that does non-trivial work but
    /// never mentions the handle — deadlines and cancellation cannot
    /// interrupt it.
    BudgetBlindLoop,
    /// Semantic: filesystem mutation (`fs::write`/`rename`/…,
    /// `File::create`, writable `OpenOptions`) in library code outside
    /// `store.rs` — the scope-aware upgrade of `raw-fs-write`.
    UnsyncedStoreWrite,
    /// Semantic: `Vec`/`VecDeque` growth (`push`/`push_back`/`extend`)
    /// inside a loop in `sherlockd` library code with no capacity check on
    /// the same container. A daemon buffer that grows per iteration of a
    /// connection loop without a bound is how a flooding client pins the
    /// process — every accumulator must check, shed, or drain.
    UnboundedChannel,
    /// Semantic: a `loop`/`while` that sleeps between iterations (a retry
    /// or backoff loop) without an attempt counter or a deadline/shutdown
    /// poll in reach. A retry loop that can spin forever turns one
    /// persistent fault into a hung drain; every backoff must be bounded
    /// by attempts or by time.
    UnboundedRetry,
    /// Flow: the same two mutexes acquired in opposite orders on different
    /// paths (including one interprocedural call-graph step) — the classic
    /// deadlock recipe between `tenants` and `queue`.
    LockOrderInversion,
    /// Flow: a live `MutexGuard` spans a blocking call (`join`, `accept`,
    /// `read*`, `write_all`, `recv`, `sleep`, …) — one stalled peer then
    /// pins every thread waiting on that lock. Condvar waits are exempt
    /// (they release the guard atomically).
    GuardAcrossBlocking,
    /// Flow: `let _ =` / `.ok()` on a fallible store/net/protocol write
    /// outside shutdown paths — failures must be counted, logged, or
    /// propagated.
    SwallowedError,
    /// Semantic: per-cell `.value()` dispatch inside the columnar kernel
    /// files (`crates/core/src/{label,partition,separation,filter,
    /// predicate}.rs`). Those hot paths were rewritten to take typed
    /// column views from a `ColumnarSnapshot`; a row-wise access creeping
    /// back in silently reintroduces the per-cell enum match the rewrite
    /// removed. The `scalar` reference shim is deliberately out of scope.
    RowWiseHotPath,
    /// Taint: a nondeterministic value (entropy RNG, wall clock, hash
    /// iteration order, thread id, pointer address) flows into a
    /// serialized output (`Explanation`/`Response` construction,
    /// ModelStore records, bench JSON writers) without a sanitizer (sort,
    /// order-free reduction, seed-derived stream). Findings carry a
    /// source → sanitizer-miss → sink trace.
    TaintDeterminism,
    /// Taint: an `unwrap`/`expect`/`panic!`/`[]`-indexing site reachable
    /// from a certified entry point (`explain_batch`,
    /// `try_explain_validated`, the sherlockd ingest loop) along a call
    /// path that never crosses a `catch_unwind`/`try_par_map_indexed`
    /// isolation boundary. Findings carry the witness call chain.
    UnisolatedPanic,
}

impl RuleKind {
    /// All rules, in reporting order (token rules, then semantic rules,
    /// then flow rules).
    pub const ALL: [RuleKind; 18] = [
        RuleKind::PanicPath,
        RuleKind::NanUnsafe,
        RuleKind::UnseededRng,
        RuleKind::DenyHeader,
        RuleKind::RawSpawn,
        RuleKind::RawFsWrite,
        RuleKind::NondetIteration,
        RuleKind::RawPanicHook,
        RuleKind::BudgetBlindLoop,
        RuleKind::UnsyncedStoreWrite,
        RuleKind::UnboundedChannel,
        RuleKind::UnboundedRetry,
        RuleKind::RowWiseHotPath,
        RuleKind::LockOrderInversion,
        RuleKind::GuardAcrossBlocking,
        RuleKind::SwallowedError,
        RuleKind::TaintDeterminism,
        RuleKind::UnisolatedPanic,
    ];

    /// Stable kebab-case name (used in baselines and allow-escapes).
    pub fn name(self) -> &'static str {
        match self {
            RuleKind::PanicPath => "panic-path",
            RuleKind::NanUnsafe => "nan-unsafe",
            RuleKind::UnseededRng => "unseeded-rng",
            RuleKind::DenyHeader => "deny-header",
            RuleKind::RawSpawn => "raw-spawn",
            RuleKind::RawFsWrite => "raw-fs-write",
            RuleKind::NondetIteration => "nondeterministic-iteration",
            RuleKind::RawPanicHook => "raw-panic-hook",
            RuleKind::BudgetBlindLoop => "budget-blind-loop",
            RuleKind::UnsyncedStoreWrite => "unsynced-store-write",
            RuleKind::UnboundedChannel => "unbounded-channel",
            RuleKind::UnboundedRetry => "unbounded-retry",
            RuleKind::RowWiseHotPath => "row-wise-hot-path",
            RuleKind::LockOrderInversion => "lock-order-inversion",
            RuleKind::GuardAcrossBlocking => "guard-across-blocking",
            RuleKind::SwallowedError => "swallowed-error",
            RuleKind::TaintDeterminism => "taint-determinism",
            RuleKind::UnisolatedPanic => "unisolated-panic",
        }
    }

    /// One-line description (SARIF rule metadata; also the catalog hook).
    pub fn summary(self) -> &'static str {
        match self {
            RuleKind::PanicPath => "unwrap/expect/panic!/[]-indexing in non-test library code",
            RuleKind::NanUnsafe => {
                "NaN-unsafe float comparison or partial_cmp in a sort comparator"
            }
            RuleKind::UnseededRng => "entropy-seeded RNG construction breaks reproducibility",
            RuleKind::DenyHeader => "crate root missing the clippy panic-policy deny header",
            RuleKind::RawSpawn => "bare thread::spawn/scope outside the execution layer",
            RuleKind::RawFsWrite => "bare fs::write outside the crash-safe store",
            RuleKind::NondetIteration => {
                "HashMap/HashSet iteration feeding ordered output without a sort"
            }
            RuleKind::RawPanicHook => "panic hook swap outside chaos::quiet_panics",
            RuleKind::BudgetBlindLoop => {
                "loop in a budget-carrying stage that neither polls the budget \
                 nor calls anything that does"
            }
            RuleKind::UnsyncedStoreWrite => "filesystem mutation outside the store module",
            RuleKind::UnboundedChannel => "unbounded buffer growth in a daemon loop",
            RuleKind::UnboundedRetry => "retry/backoff loop with no attempt bound or deadline poll",
            RuleKind::RowWiseHotPath => "per-cell .value() dispatch inside a columnar kernel file",
            RuleKind::LockOrderInversion => {
                "two mutexes acquired in opposite orders on different call paths"
            }
            RuleKind::GuardAcrossBlocking => "a live MutexGuard spans a blocking call",
            RuleKind::SwallowedError => "let _ = / .ok() discards a fallible store/net write",
            RuleKind::TaintDeterminism => {
                "nondeterministic value reaches a serialized output without a sanitizer"
            }
            RuleKind::UnisolatedPanic => {
                "panic site reachable from a certified entry point without an \
                 isolation boundary"
            }
        }
    }

    /// Parse a rule name.
    pub fn from_name(name: &str) -> Option<RuleKind> {
        RuleKind::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a file is classified for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code of a workspace crate: every rule applies.
    Lib,
    /// Tests, benches, examples, binaries: `panic-path` is waived (panicking
    /// on violated test expectations or bad CLI input is fine), the
    /// numeric/determinism rules still apply.
    Other,
}

/// What a [`TraceStep`] represents along a taint or panic witness path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Where the nondeterministic value is produced.
    Source,
    /// An intermediate hop (a binding, a callee's return value).
    Propagation,
    /// Where a sanitizer was expected but missing.
    SanitizerMiss,
    /// The serialization boundary the value crosses.
    Sink,
    /// A certified entry point (panic traces).
    Entry,
    /// An unisolated call edge (panic traces).
    Call,
    /// The panic site itself.
    Panic,
}

impl TraceKind {
    /// Stable kebab-case label (SARIF step messages, annotations).
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Source => "source",
            TraceKind::Propagation => "propagation",
            TraceKind::SanitizerMiss => "sanitizer-miss",
            TraceKind::Sink => "sink",
            TraceKind::Entry => "entry",
            TraceKind::Call => "call",
            TraceKind::Panic => "panic",
        }
    }
}

/// One hop in a finding's witness path (taint flow or panic call chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Workspace-relative path of the hop.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Role of this hop.
    pub kind: TraceKind,
    /// Short human note (`entropy-seeded thread_rng()`, `via binding x`).
    pub note: String,
}

/// One violation, anchored to `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Violated rule.
    pub rule: RuleKind,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Trimmed source line (the baseline key, robust to line drift).
    pub snippet: String,
    /// Human explanation.
    pub message: String,
    /// Witness path for the taint rules (empty for the other layers):
    /// source → sanitizer-miss → sink, or entry → calls → panic site.
    pub trace: Vec<TraceStep>,
}

impl Finding {
    /// `path:line: [rule] message` — the human report line, with the
    /// witness path indented below it when one exists.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}: [{}] {} — `{}`",
            self.path, self.line, self.rule, self.message, self.snippet
        );
        for step in &self.trace {
            out.push_str(&format!(
                "\n    ↳ {}:{} {}: {}",
                step.path,
                step.line,
                step.kind.label(),
                step.note
            ));
        }
        out
    }

    /// GitHub Actions workflow-command annotation:
    /// `::error file=…,line=…,title=sherlock-lint[rule]::message`.
    /// GitHub surfaces these inline on the PR diff when printed to stdout
    /// inside a workflow step. The trace rides along in the message body;
    /// workflow commands are single-line, so every metacharacter in the
    /// (potentially multi-line) trace notes is %-escaped.
    pub fn render_github(&self) -> String {
        let trace = if self.trace.is_empty() {
            String::new()
        } else {
            let steps: Vec<String> = self
                .trace
                .iter()
                .map(|s| format!("{} {}:{} ({})", s.kind.label(), s.path, s.line, s.note))
                .collect();
            format!(" — trace: {}", steps.join(" -> "))
        };
        format!(
            "::error file={},line={},title=sherlock-lint[{}]::{} — `{}`{}",
            github_escape_property(&self.path),
            self.line,
            self.rule,
            github_escape_data(&self.message),
            github_escape_data(&self.snippet),
            github_escape_data(&trace),
        )
    }
}

/// Escape the free-text part of a workflow command (`%`, CR, LF).
fn github_escape_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escape a workflow-command property value (data escapes plus `:`, `,`).
fn github_escape_property(s: &str) -> String {
    github_escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// Keywords that may directly precede a `[` without it being an index
/// expression (`let [a, b] = …`, `for x in [..]`, `return [0; 4]`).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "do", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "type", "union", "unsafe",
    "use", "where", "while", "yield",
];

/// Methods whose comparator closure must be total over floats.
const SORTERS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "select_nth_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
];

/// Idents that construct entropy-seeded (irreproducible) RNGs.
const ENTROPY_RNGS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "try_from_os_rng"];

/// Float constants whose `==` comparison is a NaN/∞ smell.
const FLOAT_CONSTS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY"];

/// The flow-layer rules (plus `budget-blind-loop`, whose interprocedural
/// poll check consumes the same index): any of these forces the flow
/// analysis on.
pub(crate) const FLOW: [RuleKind; 4] = [
    RuleKind::LockOrderInversion,
    RuleKind::GuardAcrossBlocking,
    RuleKind::SwallowedError,
    RuleKind::BudgetBlindLoop,
];

/// The taint-layer rules: any of these forces the layer-4 analysis on.
pub(crate) const TAINT: [RuleKind; 2] = [RuleKind::TaintDeterminism, RuleKind::UnisolatedPanic];

/// Scan one file's source. `path` is only used to label findings. Flow
/// and taint rules run against file-local call-graph indexes; workspace
/// scans use [`scan_source_indexed`] with the shared indexes instead.
pub fn scan_source(path: &str, source: &str, class: FileClass, rules: &[RuleKind]) -> Vec<Finding> {
    scan_source_indexed(path, source, class, rules, None, None)
}

/// [`scan_source`] with optional pre-built workspace indexes
/// ([`FlowIndex`], [`TaintIndex`]) so interprocedural facts cross file
/// boundaries.
pub fn scan_source_indexed(
    path: &str,
    source: &str,
    class: FileClass,
    rules: &[RuleKind],
    index: Option<&FlowIndex>,
    taint: Option<&TaintIndex>,
) -> Vec<Finding> {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let lines: Vec<&str> = source.lines().collect();
    let (attr_mask, test_mask) = structure_masks(toks);

    let mut findings = Vec::new();
    // The single filtered push path every layer funnels through: rule
    // selection, allow-escapes, snippet extraction.
    let mut push = |rule: RuleKind, line: u32, message: String, trace: Vec<TraceStep>| {
        if !rules.contains(&rule) {
            return;
        }
        if lexed.file_allows.iter().any(|a| a == rule.name()) {
            return;
        }
        // A `// sherlock-lint: allow(rule)` on the finding's line or the
        // line above acknowledges it.
        for l in [line, line.saturating_sub(1)] {
            if lexed.allows.get(&l).is_some_and(|rs| rs.iter().any(|a| a == rule.name())) {
                return;
            }
        }
        let snippet = line
            .checked_sub(1)
            .and_then(|l| lines.get(l as usize))
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        findings.push(Finding { rule, path: path.to_string(), line, snippet, message, trace });
    };
    let mut emit =
        |rule: RuleKind, line: u32, message: String| push(rule, line, message, Vec::new());

    let ident = |i: usize| match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(name)) => Some(name.as_str()),
        _ => None,
    };
    let op =
        |i: usize, s: &str| matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Op(o)) if *o == s);
    let is_float_operand = |mut i: usize| -> bool {
        // Walk path prefixes (`f64::NAN`, `std::f64::INFINITY`): the
        // interesting segment is the last one.
        while ident(i).is_some() && op(i + 1, "::") {
            i += 2;
        }
        match toks.get(i).map(|t| &t.kind) {
            Some(Tok::Float) => true,
            Some(Tok::Ident(name)) => FLOAT_CONSTS.contains(&name.as_str()),
            _ => false,
        }
    };

    let mut paren_depth = 0_usize;
    // Paren depths at which a SORTERS call opened: non-empty ⇒ we are
    // lexically inside a sort comparator.
    let mut cmp_stack: Vec<usize> = Vec::new();

    for (i, tok) in toks.iter().enumerate() {
        let in_attr = attr_mask.get(i).copied().unwrap_or(false);
        let in_test = test_mask.get(i).copied().unwrap_or(false);
        let prev_kind = i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.kind);
        match &tok.kind {
            Tok::Op("(") => {
                if !in_attr {
                    if let Some(Tok::Ident(name)) = prev_kind {
                        if SORTERS.contains(&name.as_str()) {
                            cmp_stack.push(paren_depth);
                        }
                    }
                }
                paren_depth += 1;
            }
            Tok::Op(")") => {
                paren_depth = paren_depth.saturating_sub(1);
                while cmp_stack.last().is_some_and(|&d| d >= paren_depth) {
                    cmp_stack.pop();
                }
            }
            Tok::Op("[") if !in_attr && class == FileClass::Lib && !in_test => {
                let indexing = match prev_kind {
                    Some(Tok::Ident(name)) => !KEYWORDS.contains(&name.as_str()),
                    Some(Tok::Op(o)) => matches!(*o, ")" | "]" | "?"),
                    _ => false,
                };
                if indexing {
                    emit(
                        RuleKind::PanicPath,
                        tok.line,
                        "`[]`-indexing can panic; use .get()/.get_mut() or an iterator".to_string(),
                    );
                }
            }
            Tok::Op(eq @ ("==" | "!=")) if !in_attr => {
                let lhs = i.checked_sub(1).is_some_and(|p| is_float_operand_ending_at(toks, p));
                let rhs_at = if op(i + 1, "-") { i + 2 } else { i + 1 };
                if lhs || is_float_operand(rhs_at) {
                    emit(
                        RuleKind::NanUnsafe,
                        tok.line,
                        format!(
                            "float `{eq}` is NaN-unsafe; compare with a tolerance or total_cmp"
                        ),
                    );
                }
            }
            Tok::Ident(name) => {
                let prev_dot = matches!(prev_kind, Some(Tok::Op(".")));
                match name.as_str() {
                    "unwrap"
                        if class == FileClass::Lib
                            && !in_test
                            && prev_dot
                            && op(i + 1, "(")
                            && op(i + 2, ")") =>
                    {
                        emit(
                            RuleKind::PanicPath,
                            tok.line,
                            "`.unwrap()` in library code; propagate the error or handle None"
                                .to_string(),
                        );
                    }
                    "expect"
                        if class == FileClass::Lib && !in_test && prev_dot && op(i + 1, "(") =>
                    {
                        emit(
                            RuleKind::PanicPath,
                            tok.line,
                            "`.expect()` in library code; propagate the error or handle None"
                                .to_string(),
                        );
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if class == FileClass::Lib && !in_test && !in_attr && op(i + 1, "!") =>
                    {
                        emit(
                            RuleKind::PanicPath,
                            tok.line,
                            format!("`{name}!` in library code; return an error instead"),
                        );
                    }
                    "partial_cmp" if prev_dot => {
                        if !cmp_stack.is_empty() {
                            emit(
                                RuleKind::NanUnsafe,
                                tok.line,
                                "`partial_cmp` inside a sort comparator; use f64::total_cmp"
                                    .to_string(),
                            );
                        } else if let Some(close) = matching_paren(toks, i + 1) {
                            if op(close + 1, ".") && ident(close + 2) == Some("unwrap") {
                                emit(
                                    RuleKind::NanUnsafe,
                                    tok.line,
                                    "`partial_cmp(..).unwrap()` panics on NaN; use f64::total_cmp"
                                        .to_string(),
                                );
                            }
                        }
                    }
                    "spawn" | "scope"
                        if class == FileClass::Lib
                            && !in_test
                            && matches!(prev_kind, Some(Tok::Op("::")))
                            && i >= 2
                            && ident(i - 2) == Some("thread") =>
                    {
                        emit(
                            RuleKind::RawSpawn,
                            tok.line,
                            format!(
                                "bare `thread::{name}` outside the execution layer; \
                                 route work through dbsherlock_core::par_map_indexed"
                            ),
                        );
                    }
                    "write"
                        if class == FileClass::Lib
                            && !in_test
                            && matches!(prev_kind, Some(Tok::Op("::")))
                            && i >= 2
                            && ident(i - 2) == Some("fs") =>
                    {
                        emit(
                            RuleKind::RawFsWrite,
                            tok.line,
                            "bare `fs::write` outside the store module; a crash mid-write \
                             tears the artifact — persist through \
                             dbsherlock_core::store::ModelStore"
                                .to_string(),
                        );
                    }
                    rng if ENTROPY_RNGS.contains(&rng) => {
                        emit(
                            RuleKind::UnseededRng,
                            tok.line,
                            format!("`{rng}` is entropy-seeded; thread an explicit seed instead"),
                        );
                    }
                    "rng" | "random" => {
                        // The free functions `rand::rng()` / `rand::random()`.
                        let qualified = matches!(prev_kind, Some(Tok::Op("::")))
                            && i >= 2
                            && ident(i - 2) == Some("rand");
                        if qualified {
                            emit(
                                RuleKind::UnseededRng,
                                tok.line,
                                format!(
                                    "`rand::{name}` is entropy-seeded; thread an explicit seed instead"
                                ),
                            );
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    // The semantic layer: built only when a semantic rule is requested —
    // the syntax analysis costs another pass over the tokens.
    const SEMANTIC: [RuleKind; 7] = [
        RuleKind::NondetIteration,
        RuleKind::RawPanicHook,
        RuleKind::BudgetBlindLoop,
        RuleKind::UnsyncedStoreWrite,
        RuleKind::UnboundedChannel,
        RuleKind::UnboundedRetry,
        RuleKind::RowWiseHotPath,
    ];
    let needs_semantic = rules.iter().any(|r| SEMANTIC.contains(r));
    let needs_flow = rules.iter().any(|r| FLOW.contains(r));
    let needs_taint = rules.iter().any(|r| TAINT.contains(r));
    let syntax = (needs_semantic || needs_flow || needs_taint).then(|| FileSyntax::analyze(toks));
    if let Some(syntax) = syntax.as_ref().filter(|_| needs_semantic || needs_flow) {
        let flow = needs_flow.then(|| FileFlow::analyze(toks, syntax, &test_mask));
        // No workspace index supplied: fall back to a file-local one so
        // single-file scans (fixtures, tests) still get call-graph facts.
        let local = match (&flow, index) {
            (Some(f), None) => Some(FlowIndex::from_file(path, f)),
            _ => None,
        };
        let idx = index.or(local.as_ref());
        if needs_semantic {
            crate::semantic::scan_semantic(
                path, toks, syntax, class, &test_mask, rules, idx, &mut emit,
            );
        }
        if let (Some(flow), Some(idx)) = (&flow, idx) {
            crate::flow::scan_flow(
                path, toks, syntax, flow, class, &test_mask, rules, idx, &mut emit,
            );
        }
    }
    // Layer 4: taint + panic reachability. Uses the traced push path
    // directly (the other layers' findings carry no trace).
    if let Some(syntax) = syntax.as_ref().filter(|_| needs_taint) {
        let local = taint.is_none().then(|| {
            crate::taint::TaintIndex::from_file(path, &lexed, syntax, &test_mask, &attr_mask)
        });
        if let Some(idx) = taint.or(local.as_ref()) {
            crate::taint::scan_taint(
                path, &lexed, syntax, class, &test_mask, &attr_mask, rules, idx, &mut push,
            );
        }
    }
    findings
}

/// Like the `is_float_operand` forward walk, but for the token *ending* a
/// left-hand operand: `f64::NAN == x` has `NAN` directly before `==`.
fn is_float_operand_ending_at(toks: &[Token], i: usize) -> bool {
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Float) => true,
        Some(Tok::Ident(name)) => FLOAT_CONSTS.contains(&name.as_str()),
        _ => false,
    }
}

/// `deny-header` check for a crate root (`lib.rs`): the file must carry the
/// clippy panic-policy header. Returns at most one finding.
pub fn check_deny_header(path: &str, source: &str) -> Option<Finding> {
    let squashed: String = source.chars().filter(|c| !c.is_whitespace()).collect();
    let header = "#![cfg_attr(not(test),deny(clippy::unwrap_used,clippy::expect_used";
    if squashed.contains(header) {
        return None;
    }
    Some(Finding {
        rule: RuleKind::DenyHeader,
        path: path.to_string(),
        line: 1,
        snippet: "(crate root)".to_string(),
        message: "missing `#![cfg_attr(not(test), deny(clippy::unwrap_used, \
                  clippy::expect_used))]` header"
            .to_string(),
        trace: Vec::new(),
    })
}

/// Index of the `)` matching the `(` expected at `open`; `None` when
/// `toks[open]` is not `(` or the stream ends first.
pub(crate) fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    if !matches!(toks.get(open).map(|t| &t.kind), Some(Tok::Op("("))) {
        return None;
    }
    let mut depth = 0_usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Op("(") => depth += 1,
            Tok::Op(")") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Per-token masks: (inside an attribute, inside `#[cfg(test)]`-gated code).
pub(crate) fn structure_masks(toks: &[Token]) -> (Vec<bool>, Vec<bool>) {
    let mut attr_mask = vec![false; toks.len()];
    let mut test_mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if parse_attr(toks, i).is_none() {
            i += 1;
            continue;
        }
        // Consume the whole attribute stack on this item, OR-ing the
        // cfg(test) gates so `#[allow(..)] #[cfg(test)] mod t` works in any
        // attribute order.
        let mut outer_gate = false;
        let mut inner_gate = false;
        let mut next = i;
        while let Some(attr) = parse_attr(toks, next) {
            mark(&mut attr_mask, next, attr.end);
            let content = toks.get(attr.content.0..attr.content.1).unwrap_or_default();
            if cfg_contains_test(content) {
                if attr.inner {
                    inner_gate = true;
                } else {
                    outer_gate = true;
                }
            }
            next = attr.end + 1;
        }
        if inner_gate {
            // `#![cfg(test)]`: the whole file is test code.
            test_mask.iter_mut().for_each(|m| *m = true);
            return (attr_mask, test_mask);
        }
        if outer_gate {
            let end = item_end(toks, next);
            mark(&mut test_mask, next, end);
            i = end + 1;
        } else {
            i = next;
        }
    }
    (attr_mask, test_mask)
}

fn mark(mask: &mut [bool], from: usize, to: usize) {
    for m in mask.iter_mut().take(to + 1).skip(from) {
        *m = true;
    }
}

struct AttrSpan {
    /// Index of the closing `]`.
    end: usize,
    /// `#![…]` (inner) vs `#[…]` (outer).
    inner: bool,
    /// Token range strictly inside the brackets.
    content: (usize, usize),
}

/// Parse an attribute starting at `toks[i] == '#'`; `None` if not an attribute.
fn parse_attr(toks: &[Token], i: usize) -> Option<AttrSpan> {
    if !matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Op("#"))) {
        return None;
    }
    let (inner, open) = match toks.get(i + 1).map(|t| &t.kind) {
        Some(Tok::Op("!")) => (true, i + 2),
        _ => (false, i + 1),
    };
    if !matches!(toks.get(open).map(|t| &t.kind), Some(Tok::Op("["))) {
        return None;
    }
    let mut depth = 0_usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Op("[") => depth += 1,
            Tok::Op("]") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(AttrSpan { end: j, inner, content: (open + 1, j) });
                }
            }
            _ => {}
        }
    }
    None
}

/// Does a `cfg(…)` attribute body enable the code under `test`? True for
/// `cfg(test)`, `cfg(any(test, feature = "x"))`; false for `cfg(not(test))`
/// and non-cfg attributes.
fn cfg_contains_test(content: &[Token]) -> bool {
    if !matches!(content.first().map(|t| &t.kind), Some(Tok::Ident(name)) if name == "cfg") {
        return false;
    }
    // Track whether each open paren group is a `not(…)` group; `test` only
    // counts outside every `not`.
    let mut stack: Vec<bool> = Vec::new();
    let mut prev_ident: Option<&str> = None;
    for t in content {
        match &t.kind {
            Tok::Op("(") => {
                stack.push(prev_ident == Some("not"));
                prev_ident = None;
            }
            Tok::Op(")") => {
                stack.pop();
                prev_ident = None;
            }
            Tok::Ident(name) => {
                if name == "test" && !stack.iter().any(|&n| n) {
                    return true;
                }
                prev_ident = Some(name);
            }
            _ => prev_ident = None,
        }
    }
    false
}

/// Index of the last token of the item starting at `start`: either a `;`
/// before any brace, or the brace matching the item's first `{`.
fn item_end(toks: &[Token], start: usize) -> usize {
    let mut depth = 0_usize;
    let mut seen_brace = false;
    for (i, t) in toks.iter().enumerate().skip(start) {
        match t.kind {
            Tok::Op("{") => {
                depth += 1;
                seen_brace = true;
            }
            Tok::Op("}") => {
                depth = depth.saturating_sub(1);
                if seen_brace && depth == 0 {
                    return i;
                }
            }
            Tok::Op(";") if !seen_brace => return i,
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[RuleKind] = &RuleKind::ALL;

    fn rules_of(src: &str, class: FileClass) -> Vec<(RuleKind, u32)> {
        scan_source("test.rs", src, class, ALL).into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn unwrap_expect_panics_flagged_in_lib() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); unreachable!(); }";
        let got = rules_of(src, FileClass::Lib);
        assert_eq!(got.iter().filter(|(r, _)| *r == RuleKind::PanicPath).count(), 4);
        // …but not in test/bench/bin code.
        assert!(rules_of(src, FileClass::Other).is_empty());
    }

    #[test]
    fn unwrap_or_and_similar_not_flagged() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }";
        assert!(rules_of(src, FileClass::Lib).is_empty());
    }

    #[test]
    fn indexing_heuristics() {
        let flagged = ["fn f() { v[0] }", "fn f() { g()[1] }", "fn f() { m[k] += 1; }"];
        for src in flagged {
            assert_eq!(rules_of(src, FileClass::Lib).len(), 1, "{src}");
        }
        let clean = [
            "fn f() { let [a, b] = pair; }",
            "fn f() { for x in [1, 2] {} }",
            "fn f(x: [u8; 4]) -> Vec<[u8; 2]> { vec![] }",
            "#[derive(Clone)] struct S;",
            "fn f() { return [0; 4]; }",
            "fn f() { match x { [a] => a, _ => 0 } }",
        ];
        for src in clean {
            assert!(rules_of(src, FileClass::Lib).is_empty(), "{src}");
        }
    }

    #[test]
    fn cfg_test_items_are_exempt_from_panic_path() {
        let src = r#"
pub fn lib_code(v: &[u8]) -> u8 { v[0] }
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); v[0]; panic!(); }
}
pub fn more_lib(v: &[u8]) -> u8 { v[1] }
"#;
        let got = rules_of(src, FileClass::Lib);
        assert_eq!(got, vec![(RuleKind::PanicPath, 2), (RuleKind::PanicPath, 7)]);
    }

    #[test]
    fn cfg_not_test_is_still_live_code() {
        let src = "#[cfg(not(test))] fn f() { x.unwrap(); }";
        assert_eq!(rules_of(src, FileClass::Lib).len(), 1);
    }

    #[test]
    fn cfg_any_test_is_exempt() {
        let src = "#[cfg(any(test, feature = \"x\"))] fn f() { x.unwrap(); }";
        assert!(rules_of(src, FileClass::Lib).is_empty());
    }

    #[test]
    fn stacked_attributes_before_test_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn f() { x.unwrap(); } }";
        assert!(rules_of(src, FileClass::Lib).is_empty());
        let src = "#[allow(dead_code)]\n#[cfg(test)]\nmod t { fn f() { x.unwrap(); } }";
        assert!(rules_of(src, FileClass::Lib).is_empty());
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn f() { x.unwrap(); v[0]; }";
        assert!(rules_of(src, FileClass::Lib).is_empty());
    }

    #[test]
    fn float_eq_flagged_everywhere() {
        for src in [
            "fn f() { a == 0.0 }",
            "fn f() { 1.5 != b }",
            "fn f() { x == -1.0 }",
            "fn f() { x == f64::NAN }",
            "fn f() { f64::NAN == x }",
        ] {
            assert_eq!(rules_of(src, FileClass::Other), vec![(RuleKind::NanUnsafe, 1)], "{src}");
        }
        // Integer comparison and epsilon-style code are fine.
        assert!(rules_of("fn f() { a == 0 }", FileClass::Other).is_empty());
        assert!(rules_of("fn f() { (a - b).abs() < 1e-9 }", FileClass::Other).is_empty());
    }

    #[test]
    fn partial_cmp_patterns() {
        let unwrap = "fn f() { a.partial_cmp(&b).unwrap() }";
        assert_eq!(rules_of(unwrap, FileClass::Other), vec![(RuleKind::NanUnsafe, 1)]);
        let in_sort = "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); }";
        assert_eq!(rules_of(in_sort, FileClass::Other), vec![(RuleKind::NanUnsafe, 1)]);
        let total = "fn f() { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(rules_of(total, FileClass::Other).is_empty());
        // partial_cmp with an explicit policy outside comparators is fine.
        let policy = "fn f() { a.partial_cmp(&b).unwrap_or(Ordering::Less) }";
        assert!(rules_of(policy, FileClass::Other).is_empty());
        // Comparator context closes with its parens.
        let after = "fn f() { v.sort_by(key); a.partial_cmp(&b); }";
        assert!(rules_of(after, FileClass::Other).is_empty());
    }

    #[test]
    fn unseeded_rng_patterns() {
        for src in [
            "fn f() { let mut r = thread_rng(); }",
            "fn f() { let r = StdRng::from_entropy(); }",
            "fn f() { let r = SmallRng::from_os_rng(); }",
            "fn f() { let r = rand::rng(); }",
            "fn f() { let x: u8 = rand::random(); }",
            "use rand::rng;",
        ] {
            assert_eq!(rules_of(src, FileClass::Other), vec![(RuleKind::UnseededRng, 1)], "{src}");
        }
        for src in [
            "fn f() { let r = StdRng::seed_from_u64(7); }",
            "fn f() { use rand::rngs::StdRng; }",
            "fn f(rng: &mut StdRng) { rng.random_range(0..4); }",
        ] {
            assert!(rules_of(src, FileClass::Other).is_empty(), "{src}");
        }
    }

    #[test]
    fn raw_spawn_patterns() {
        let spawn = "fn f() { std::thread::spawn(|| work()); }";
        assert_eq!(rules_of(spawn, FileClass::Lib), vec![(RuleKind::RawSpawn, 1)]);
        let scope = "fn f() { thread::scope(|s| { s.spawn(|| work()); }); }";
        assert_eq!(rules_of(scope, FileClass::Lib), vec![(RuleKind::RawSpawn, 1)]);
        // Test, bench, example, and bin code may spawn freely.
        assert!(rules_of(spawn, FileClass::Other).is_empty());
        let in_test = "#[cfg(test)]\nmod t { fn f() { std::thread::spawn(|| ()); } }";
        assert!(rules_of(in_test, FileClass::Lib).is_empty());
        // Handle methods and unrelated idents are not `thread::` paths.
        for src in [
            "fn f(s: &Scope) { s.spawn(|| ()); }",
            "fn f() { let scope = 1; }",
            "fn f() { tracing::span!(); }",
        ] {
            assert!(rules_of(src, FileClass::Lib).is_empty(), "{src}");
        }
        // The in-band escape acknowledges the sanctioned site.
        let allowed =
            "fn f() { std::thread::scope(|s| ()) } // sherlock-lint: allow(raw-spawn): exec layer";
        assert!(rules_of(allowed, FileClass::Lib).is_empty());
    }

    #[test]
    fn raw_fs_write_patterns() {
        // Scope to the token rule: the semantic `unsynced-store-write`
        // upgrade fires on these sites too and has its own tests.
        let only = |src: &str, class| {
            scan_source("test.rs", src, class, &[RuleKind::RawFsWrite])
                .into_iter()
                .map(|f| (f.rule, f.line))
                .collect::<Vec<_>>()
        };
        let qualified = "fn f() { std::fs::write(path, body); }";
        assert_eq!(only(qualified, FileClass::Lib), vec![(RuleKind::RawFsWrite, 1)]);
        let bare = "fn f() { fs::write(path, body); }";
        assert_eq!(only(bare, FileClass::Lib), vec![(RuleKind::RawFsWrite, 1)]);
        // Bin/bench/test code may write freely; so do other fs calls and
        // writer *methods*.
        assert!(only(qualified, FileClass::Other).is_empty());
        for src in [
            "fn f() { fs::read(path); fs::rename(a, b); }",
            "fn f() { file.write(buf); w.write_all(buf); }",
            "#[cfg(test)]\nmod t { fn f() { std::fs::write(p, b); } }",
        ] {
            assert!(only(src, FileClass::Lib).is_empty(), "{src}");
        }
        let allowed =
            "fn f() { fs::write(p, b) } // sherlock-lint: allow(raw-fs-write): store internals";
        assert!(only(allowed, FileClass::Lib).is_empty());
    }

    #[test]
    fn allow_escapes() {
        let same_line = "fn f() { v[0] } // sherlock-lint: allow(panic-path): bounds checked";
        assert!(rules_of(same_line, FileClass::Lib).is_empty());
        let line_above = "// sherlock-lint: allow(panic-path): bounds checked\nfn f() { v[0] }";
        assert!(rules_of(line_above, FileClass::Lib).is_empty());
        let wrong_rule = "fn f() { v[0] } // sherlock-lint: allow(nan-unsafe)";
        assert_eq!(rules_of(wrong_rule, FileClass::Lib).len(), 1);
        let file_wide = "// sherlock-lint: allow-file(panic-path)\nfn f() { v[0]; w.unwrap(); }";
        assert!(rules_of(file_wide, FileClass::Lib).is_empty());
    }

    #[test]
    fn deny_header_check() {
        let ok = "#![warn(missing_docs)]\n#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\n";
        assert!(check_deny_header("lib.rs", ok).is_none());
        let missing = "#![warn(missing_docs)]\n";
        let f = check_deny_header("lib.rs", missing);
        assert_eq!(f.map(|f| f.rule), Some(RuleKind::DenyHeader));
    }

    #[test]
    fn findings_carry_anchors_and_snippets() {
        let src = "fn f() {\n    x.unwrap();\n}";
        let got = scan_source("crates/x/src/lib.rs", src, FileClass::Lib, ALL);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
        assert_eq!(got[0].snippet, "x.unwrap();");
        assert!(got[0].render().starts_with("crates/x/src/lib.rs:2: [panic-path]"));
    }
}
