//! Layer 4: interprocedural taint analysis and panic-reachability
//! certification.
//!
//! Two question this layer answers statically, rather than by sampling:
//!
//! 1. **Determinism** — can a nondeterministic value (entropy-seeded RNG,
//!    wall-clock reading, hash-map iteration order, thread id, pointer
//!    address) reach a serialized output (`Explanation` construction,
//!    `ModelStore` records, sherlockd protocol responses, bench JSON
//!    writers) without passing a sanitizer (an explicit sort, an
//!    order-free reduction, a seed-derived stream)?
//! 2. **Panic isolation** — which `unwrap`/`expect`/`panic!`/`[]`-indexing
//!    sites are reachable from the certified public entry points
//!    (`explain_batch`, `try_explain_validated`, the sherlockd ingest
//!    loop) along a path that never crosses a `catch_unwind` /
//!    `try_par_map_indexed` isolation boundary?
//!
//! The analysis reuses the flow layer's machinery: intra-function taint
//! rides the CFG + bitset dataflow engine ([`crate::flow::build_cfg`],
//! [`crate::flow::dataflow_in`]); interprocedural facts are monotone
//! fixed-point summaries over the same bare-name call graph the
//! [`crate::flow::FlowIndex`] uses. Both directions over-approximate:
//! names merge across impls, closures passed as values are invisible as
//! edges, and a call site inside an isolation wrapper's argument list is
//! treated as isolated whether it runs inside the `catch_unwind` closure
//! or while building its arguments. See DESIGN §15 for the soundness
//! caveats.

use std::collections::{BTreeMap, BTreeSet};

use crate::flow::{build_cfg, dataflow_in, MAX_SLOTS};
use crate::lexer::{LexOutput, Tok, Token};
use crate::rules::{FileClass, RuleKind, TraceKind, TraceStep, KEYWORDS};
use crate::semantic::{
    HASH_TYPES, ITER_HEADS, NON_CALL_IDENTS, ORDER_FREE_SINKS, REDUCERS, SORTERS,
};
use crate::syntax::FileSyntax;

// ----- the lattice ------------------------------------------------------

/// Taint kinds, one bit each; a taint set is the bitwise OR of its kinds,
/// so lattice join is `|` (monotone, idempotent, commutative — the
/// properties `tests/taint_props.rs` checks).
pub type TaintSet = u8;

/// Entropy-seeded RNG output.
pub const RNG: TaintSet = 1;
/// Wall-clock reading used beyond a deadline check.
pub const CLOCK: TaintSet = 1 << 1;
/// `HashMap`/`HashSet` iteration order.
pub const HASH_ORDER: TaintSet = 1 << 2;
/// Thread identity.
pub const THREAD_ID: TaintSet = 1 << 3;
/// Pointer/address values (raw-pointer casts, `{:p}` formatting).
pub const ADDRESS: TaintSet = 1 << 4;

/// Human-readable name per kind, for messages and traces.
pub fn kind_names(set: TaintSet) -> String {
    const NAMES: &[(TaintSet, &str)] = &[
        (RNG, "rng-entropy"),
        (CLOCK, "wall-clock"),
        (HASH_ORDER, "hash-order"),
        (THREAD_ID, "thread-id"),
        (ADDRESS, "address"),
    ];
    let picked: Vec<&str> = NAMES.iter().filter(|(k, _)| (set & k) != 0).map(|(_, n)| *n).collect();
    picked.join("+")
}

/// What would have cleared this taint, for the sanitizer-miss trace step.
fn expected_sanitizer(set: TaintSet) -> &'static str {
    if set & HASH_ORDER != 0 {
        "a sort, an order-free reduction, or collecting into an ordered container"
    } else if set & RNG != 0 {
        "a seed-derived stream (seed_from_u64 / splitmix64)"
    } else if set & CLOCK != 0 {
        "no sanitizer exists — wall-clock values must not be serialized"
    } else {
        "no sanitizer exists for this kind"
    }
}

// ----- source / sanitizer / sink tables ---------------------------------

/// Entropy-seeded RNG constructors (mirrors the `unseeded-rng` token rule).
const ENTROPY_SOURCES: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "try_from_os_rng"];

/// Types whose `::now()` is a wall-clock source.
const CLOCK_TYPES: &[&str] = &["SystemTime", "Instant"];

/// A `::now()` whose statement mentions one of these is a deadline /
/// duration computation, not a serialized value: `let deadline = Instant::
/// now() + budget`, `started: Instant::now()`. Substring match, like
/// `RETRY_GUARDS` in the semantic layer.
const DEADLINE_HINTS: &[&str] = &[
    "deadline",
    "elapsed",
    "timeout",
    "budget",
    "expire",
    "remaining",
    "uptime",
    "start",
    "since",
    "epoch",
    "tick",
    "wait",
    "backoff",
    "t0",
];

/// Idents that derive a reproducible stream from an explicit seed: seeing
/// one in an expression clears RNG taint.
const SEED_SANITIZERS: &[&str] = &["seed_from_u64", "from_seed", "splitmix64", "derive_stream"];

/// Order-free folds: with `REDUCERS`, these clear HASH_ORDER. `fold` is
/// trusted to be order-free here — order-sensitive folds over hash maps
/// are the `nondet-iteration` rule's business.
const ORDER_FREE_FOLDS: &[&str] = &["fold", "try_fold"];

/// Construction of one of these types is a serialization sink: the value
/// crosses a reproducibility boundary (`Explanation` is diffed across
/// runs; `Response` goes out the sherlockd socket).
const SINK_TYPES: &[&str] = &["Explanation", "Response"];

/// Calls whose arguments are persisted: ModelStore records and the bench
/// JSON report writers.
const SINK_CALLS: &[&str] = &["save", "save_with_backoff", "write_json", "write_report"];

/// Calls whose argument span isolates panics: everything lexically inside
/// their parens converts a panic into an `Err`/`None` instead of
/// unwinding further. `par_map_indexed` is deliberately absent — it
/// *propagates* worker panics.
const ISOLATION_WRAPPERS: &[&str] = &["catch_unwind", "try_par_map_indexed", "quiet_panics"];

/// The certified entry points (bare fn names, workspace-wide): the public
/// explain/diagnose surface plus the sherlockd ingest loop. A missing
/// name fails certification — renaming an entry must be a loud event.
pub const ENTRY_POINTS: &[&str] = &[
    "explain_batch",
    "explain_batch_validated",
    "try_explain",
    "try_explain_validated",
    "handle_line",
    "ingest",
    "worker_loop",
];

// ----- token helpers ----------------------------------------------------

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(name)) => Some(name.as_str()),
        _ => None,
    }
}

fn op_at(toks: &[Token], i: usize, want: &str) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Op(o)) if *o == want)
}

/// Line of token `i` (0 when out of range — callers pass verified indices).
fn line_of(toks: &[Token], i: usize) -> u32 {
    toks.get(i).map_or(0, |t| t.line)
}

/// `(open, close)` token span of delimiter group `id`.
fn group_bounds(syn: &FileSyntax, id: usize) -> Option<(usize, usize)> {
    syn.groups.get(id).map(|g| (g.open, g.close))
}

/// Resolve a callee name: `a::b::name(` keeps the literal name (the path
/// already picked the item — running it through the import-alias map
/// would misresolve `use x as y` aliases), a bare `name(` goes through
/// the file's import aliases.
fn resolve_callee<'a>(toks: &[Token], syn: &'a FileSyntax, i: usize, name: &'a str) -> &'a str {
    if i >= 1 && op_at(toks, i - 1, "::") {
        name
    } else {
        syn.resolve(name)
    }
}

/// Is the ident at `i` a call head (`name(` not preceded by `fn`/`.`-less
/// non-call)? Returns the resolved callee name.
fn call_at<'a>(toks: &'a [Token], syn: &'a FileSyntax, i: usize) -> Option<&'a str> {
    let name = ident_at(toks, i)?;
    if !op_at(toks, i + 1, "(") {
        return None;
    }
    if !name.starts_with(|c: char| c.is_lowercase() || c == '_') {
        return None; // tuple-struct / enum-variant construction
    }
    if NON_CALL_IDENTS.contains(&name) || KEYWORDS.contains(&name) {
        return None;
    }
    if i >= 1 && ident_at(toks, i - 1) == Some("fn") {
        return None; // a definition, not a call
    }
    Some(resolve_callee(toks, syn, i, name))
}

// ----- site detection ---------------------------------------------------

/// A nondeterminism source at token `i`, if any: `(kind, description)`.
fn source_at(
    toks: &[Token],
    syn: &FileSyntax,
    i: usize,
    addr_fmt_lines: &[u32],
) -> Option<(TaintSet, String)> {
    let tok = toks.get(i)?;
    // `{:p}` / `{:#p}` inside a format string: the lexer records the line.
    if matches!(tok.kind, Tok::Str) && addr_fmt_lines.contains(&tok.line) {
        return Some((ADDRESS, "`{:p}` pointer formatting".to_string()));
    }
    let name = ident_at(toks, i)?;
    // Entropy-seeded RNG: `thread_rng()`, `rand::rng()`, `rand::random()`.
    if ENTROPY_SOURCES.contains(&name) && op_at(toks, i + 1, "(") {
        return Some((RNG, format!("entropy-seeded `{name}()`")));
    }
    if matches!(name, "rng" | "random")
        && op_at(toks, i + 1, "(")
        && i >= 2
        && op_at(toks, i - 1, "::")
        && ident_at(toks, i - 2) == Some("rand")
    {
        return Some((RNG, format!("entropy-seeded `rand::{name}()`")));
    }
    // Wall clock: `SystemTime::now()` / `Instant::now()` outside a
    // deadline-ish statement.
    if name == "now" && op_at(toks, i + 1, "(") && i >= 2 && op_at(toks, i - 1, "::") {
        if let Some(ty) = ident_at(toks, i - 2) {
            if CLOCK_TYPES.contains(&ty) && !deadline_context(toks, syn, i) {
                return Some((CLOCK, format!("wall-clock `{ty}::now()`")));
            }
        }
    }
    // Hash iteration order: `map.iter()`, `set.keys()`, … on a hash type.
    if ITER_HEADS.contains(&name)
        && i >= 2
        && op_at(toks, i - 1, ".")
        && (op_at(toks, i + 1, "(") || (op_at(toks, i + 1, "::") && op_at(toks, i + 2, "<")))
    {
        if let Some(ty) = syn.receiver_type(toks, i - 2) {
            if HASH_TYPES.contains(&ty) {
                return Some((HASH_ORDER, format!("`.{name}()` on a `{ty}`")));
            }
        }
    }
    // Thread identity: `thread::current()`.
    if name == "current"
        && op_at(toks, i + 1, "(")
        && i >= 2
        && op_at(toks, i - 1, "::")
        && ident_at(toks, i - 2) == Some("thread")
    {
        return Some((THREAD_ID, "`thread::current()`".to_string()));
    }
    // Address: raw-pointer cast `x as *const T` / `as *mut T`.
    if name == "as"
        && op_at(toks, i + 1, "*")
        && matches!(ident_at(toks, i + 2), Some("const" | "mut"))
    {
        return Some((ADDRESS, "raw-pointer cast".to_string()));
    }
    None
}

/// Does the statement containing token `i` look like deadline/duration
/// arithmetic rather than a serialized timestamp?
fn deadline_context(toks: &[Token], syn: &FileSyntax, i: usize) -> bool {
    let scope = syn.enclosing.get(i).copied().flatten();
    let end = syn.statement_end(toks, i, scope);
    let mut start = i;
    while start > 0
        && !matches!(toks.get(start - 1).map(|t| &t.kind), Some(Tok::Op(";" | "{" | "}")))
    {
        start -= 1;
    }
    (start..end.min(toks.len())).any(|k| {
        ident_at(toks, k).is_some_and(|n| {
            let lower = n.to_ascii_lowercase();
            DEADLINE_HINTS.iter().any(|h| lower.contains(h))
        })
    })
}

/// A sanitizer at token `i`: `(kinds cleared, description)`.
fn sanitizer_at(toks: &[Token], syn: &FileSyntax, i: usize) -> Option<(TaintSet, String)> {
    let name = ident_at(toks, i)?;
    let call_like =
        op_at(toks, i + 1, "(") || (op_at(toks, i + 1, "::") && op_at(toks, i + 2, "<"));
    if !call_like {
        return None;
    }
    if SORTERS.contains(&name) {
        return Some((HASH_ORDER, format!("`.{name}()` sort")));
    }
    if REDUCERS.contains(&name) || ORDER_FREE_FOLDS.contains(&name) {
        return Some((HASH_ORDER, format!("order-free `.{name}()`")));
    }
    // `collect::<BTreeMap<…>>()` — collecting into an ordered/order-free
    // container re-establishes a canonical order.
    if name == "collect" && op_at(toks, i + 1, "::") && op_at(toks, i + 2, "<") {
        let scope = syn.enclosing.get(i).copied().flatten();
        let end = syn.statement_end(toks, i, scope);
        let head = syn.type_head(toks, i + 3, end);
        if ORDER_FREE_SINKS.contains(&head.as_str()) {
            return Some((HASH_ORDER, format!("collect into `{head}`")));
        }
    }
    if SEED_SANITIZERS.contains(&name) {
        return Some((RNG, format!("seed-derived `{name}`")));
    }
    None
}

/// A serialization sink whose argument span starts at token `i`:
/// `(args_open, args_close, description)`. The span is the brace group of
/// a struct-literal construction or the paren group of a sink call.
fn sink_at(toks: &[Token], syn: &FileSyntax, i: usize) -> Option<(usize, usize, String)> {
    let name = ident_at(toks, i)?;
    let group_span =
        |open: usize| -> Option<(usize, usize)> { group_bounds(syn, syn.group_at_opener(open)?) };
    if SINK_TYPES.contains(&name) {
        // `Explanation { … }` — but not the `struct Explanation {` item
        // definition or an `impl Explanation {` block.
        if op_at(toks, i + 1, "{")
            && i >= 1
            && !matches!(ident_at(toks, i - 1), Some("struct" | "impl" | "enum" | "union" | "for"))
        {
            let (open, close) = group_span(i + 1)?;
            return Some((open, close, format!("`{name} {{ .. }}` construction")));
        }
        // `Response::Variant { … }` / `Response::ctor( … )`.
        if op_at(toks, i + 1, "::") {
            if let Some(variant) = ident_at(toks, i + 2) {
                if op_at(toks, i + 3, "{") {
                    let (open, close) = group_span(i + 3)?;
                    return Some((open, close, format!("`{name}::{variant}` construction")));
                }
                if op_at(toks, i + 3, "(") {
                    let (open, close) = group_span(i + 3)?;
                    return Some((open, close, format!("`{name}::{variant}(..)`")));
                }
            }
        }
        return None;
    }
    if SINK_CALLS.contains(&name) && op_at(toks, i + 1, "(") {
        let (open, close) = group_span(i + 1)?;
        return Some((open, close, format!("`{name}(..)` persisted record")));
    }
    None
}

/// A panic site at token `i` (the same heuristics as the `panic-path`
/// token rule): `(description)`.
fn panic_site_at(toks: &[Token], i: usize) -> Option<&'static str> {
    match &toks.get(i)?.kind {
        Tok::Ident(name) => match name.as_str() {
            "unwrap"
                if i >= 1
                    && op_at(toks, i - 1, ".")
                    && op_at(toks, i + 1, "(")
                    && op_at(toks, i + 2, ")") =>
            {
                Some("`.unwrap()`")
            }
            "expect" if i >= 1 && op_at(toks, i - 1, ".") && op_at(toks, i + 1, "(") => {
                Some("`.expect()`")
            }
            "panic" if op_at(toks, i + 1, "!") => Some("`panic!`"),
            "unreachable" if op_at(toks, i + 1, "!") => Some("`unreachable!`"),
            "todo" if op_at(toks, i + 1, "!") => Some("`todo!`"),
            "unimplemented" if op_at(toks, i + 1, "!") => Some("`unimplemented!`"),
            _ => None,
        },
        Tok::Op("[") => {
            let indexing = match i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.kind) {
                Some(Tok::Ident(name)) => !KEYWORDS.contains(&name.as_str()),
                Some(Tok::Op(o)) => matches!(*o, ")" | "]" | "?"),
                _ => false,
            };
            indexing.then_some("`[]`-indexing")
        }
        _ => None,
    }
}

// ----- the interprocedural index ----------------------------------------

/// One unisolated panic site, kept with its own location because
/// same-named fns merge across files.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// File the site lives in.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// `` `.unwrap()` `` etc.
    pub desc: &'static str,
}

/// Per-function facts gathered file-by-file; same-named fns (other impls,
/// other files) merge conservatively.
#[derive(Debug, Default, Clone)]
struct FnNode {
    /// Declaration site of the first-seen definition (for trace steps).
    path: String,
    line: u32,
    /// Body line spans of every merged definition, for mapping findings
    /// back to functions: `(path, first_line, last_line)`.
    spans: Vec<(String, u32, u32)>,
    /// Taint kinds produced directly in the body.
    sources: TaintSet,
    /// Kinds a sanitizer clears somewhere in the body (coarse: clearing
    /// anywhere is assumed to cover the returned value).
    sanitized: TaintSet,
    /// Every resolved callee.
    calls: BTreeSet<String>,
    /// Callees with at least one call site outside all isolation spans.
    un_calls: BTreeSet<String>,
    /// Callees that receive one of this fn's parameters as an argument
    /// (the edge along which caller taint can reach a callee's sink).
    param_forwards: BTreeSet<String>,
    /// A parameter flows directly into a local serialization sink.
    has_param_sink: bool,
    /// Unisolated local panic sites.
    panics: Vec<PanicSite>,
    /// Count of locally isolated panic sites.
    isolated_panics: usize,
}

/// How an exposed function is reached: the entry point and the bare-name
/// witness chain `entry → … → fn`.
#[derive(Debug, Clone)]
pub struct Exposure {
    /// The certified entry the BFS started from.
    pub entry: String,
    /// Call chain, entry first, the exposed fn last.
    pub chain: Vec<String>,
}

/// Workspace-wide taint facts: per-function summaries plus the two
/// fixed-points (may-return taint, sink reachability) and the panic
/// exposure map.
#[derive(Debug, Default)]
pub struct TaintIndex {
    fns: BTreeMap<String, FnNode>,
    /// Fixed-point may-return taint per fn.
    returns: BTreeMap<String, TaintSet>,
    /// Fns whose parameters can transitively reach a serialization sink.
    sink_reach: BTreeSet<String>,
    /// Fn name → how it is reached unisolated from a certified entry.
    exposed: BTreeMap<String, Exposure>,
    finalized: bool,
}

impl TaintIndex {
    /// Harvest per-function facts from one lexed+analyzed file. Only
    /// library files should be fed in (tests and binaries may panic and
    /// may be nondeterministic).
    pub fn add_file(
        &mut self,
        path: &str,
        lexed: &LexOutput,
        syn: &FileSyntax,
        test_mask: &[bool],
        attr_mask: &[bool],
    ) {
        let toks = &lexed.tokens;
        let site_allowed = |line: u32| {
            let name = RuleKind::UnisolatedPanic.name();
            lexed.file_allows.iter().any(|a| a == name)
                || [line, line.saturating_sub(1)]
                    .iter()
                    .any(|l| lexed.allows.get(l).is_some_and(|rs| rs.iter().any(|a| a == name)))
        };
        for f in &syn.fns {
            let Some((body_open, body_close)) = f.body else { continue };
            if test_mask.get(f.name_tok).copied().unwrap_or(false) {
                continue;
            }
            let decl_line = line_of(toks, f.name_tok);
            let node = self.fns.entry(f.name.clone()).or_default();
            if node.spans.is_empty() {
                node.path = path.to_string();
                node.line = decl_line;
            }
            let last_line = toks.get(body_close).or(toks.last()).map_or(0, |t| t.line);
            node.spans.push((path.to_string(), decl_line, last_line));

            let iso = isolation_spans(toks, body_open, body_close);
            let in_iso = |i: usize| iso.iter().any(|&(o, c)| i > o && i < c);
            let params: Vec<&str> = f.params.iter().map(|(n, _)| n.as_str()).collect();

            for i in body_open + 1..body_close.min(toks.len()) {
                if test_mask.get(i).copied().unwrap_or(false)
                    || attr_mask.get(i).copied().unwrap_or(false)
                {
                    continue;
                }
                if let Some((kind, _)) = source_at(toks, syn, i, &lexed.addr_fmt_lines) {
                    node.sources |= kind;
                }
                if let Some((kind, _)) = sanitizer_at(toks, syn, i) {
                    node.sanitized |= kind;
                }
                if let Some(callee) = call_at(toks, syn, i) {
                    node.calls.insert(callee.to_string());
                    if !in_iso(i) {
                        node.un_calls.insert(callee.to_string());
                    }
                    // Does a parameter ride along as an argument?
                    if let Some((o, c)) =
                        syn.group_at_opener(i + 1).and_then(|id| group_bounds(syn, id))
                    {
                        let forwards = (o + 1..c.min(toks.len())).any(|k| {
                            !op_at(toks, k.wrapping_sub(1), ".")
                                && ident_at(toks, k).is_some_and(|n| params.contains(&n))
                        });
                        if forwards {
                            node.param_forwards.insert(callee.to_string());
                        }
                    }
                }
                if let Some((o, c, _)) = sink_at(toks, syn, i) {
                    let direct = (o + 1..c.min(toks.len())).any(|k| {
                        !op_at(toks, k.wrapping_sub(1), ".")
                            && ident_at(toks, k).is_some_and(|n| params.contains(&n))
                    });
                    if direct {
                        node.has_param_sink = true;
                    }
                }
                if let Some(desc) = panic_site_at(toks, i) {
                    let line = line_of(toks, i);
                    if in_iso(i) {
                        node.isolated_panics += 1;
                    } else if !site_allowed(line) {
                        node.panics.push(PanicSite { path: path.to_string(), line, desc });
                    }
                }
            }
        }
        self.finalized = false;
    }

    /// Run the two interprocedural fixed points and the entry-point BFS.
    /// Both fixed points are monotone over finite lattices (a u8 bitset
    /// per fn; a growing set of fn names), so they terminate.
    pub fn finalize(&mut self) {
        // May-return taint: what a call to `f` can hand back, after the
        // fn's own sanitizers.
        self.returns =
            self.fns.iter().map(|(n, f)| (n.clone(), f.sources & !f.sanitized)).collect();
        loop {
            let mut changed = false;
            for (name, node) in &self.fns {
                let mut set = node.sources;
                for callee in &node.calls {
                    set |= self.returns.get(callee).copied().unwrap_or(0);
                }
                set &= !node.sanitized;
                let slot = self.returns.entry(name.clone()).or_insert(0);
                if *slot != set {
                    *slot = set;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Sink reachability: a param of `f` can reach a serialization
        // sink, directly or through a param-forwarding call.
        self.sink_reach =
            self.fns.iter().filter(|(_, f)| f.has_param_sink).map(|(n, _)| n.clone()).collect();
        loop {
            let before = self.sink_reach.len();
            let grown: Vec<String> = self
                .fns
                .iter()
                .filter(|(n, f)| {
                    !self.sink_reach.contains(*n)
                        && f.param_forwards.iter().any(|c| self.sink_reach.contains(c))
                })
                .map(|(n, _)| n.clone())
                .collect();
            self.sink_reach.extend(grown);
            if self.sink_reach.len() == before {
                break;
            }
        }
        // Panic exposure: BFS from each certified entry over unisolated
        // call edges, recording a witness chain per reached fn.
        self.exposed.clear();
        for entry in ENTRY_POINTS {
            if !self.fns.contains_key(*entry) {
                continue;
            }
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(vec![entry.to_string()]);
            while let Some(chain) = queue.pop_front() {
                let name = chain.last().cloned().unwrap_or_default();
                if self.exposed.contains_key(&name) {
                    continue;
                }
                self.exposed.insert(
                    name.clone(),
                    Exposure { entry: entry.to_string(), chain: chain.clone() },
                );
                if let Some(node) = self.fns.get(&name) {
                    for callee in &node.un_calls {
                        if !self.exposed.contains_key(callee) && self.fns.contains_key(callee) {
                            let mut next = chain.clone();
                            next.push(callee.clone());
                            queue.push_back(next);
                        }
                    }
                }
            }
        }
        self.finalized = true;
    }

    /// File-local index for single-file scans (fixtures, tests).
    pub fn from_file(
        path: &str,
        lexed: &LexOutput,
        syn: &FileSyntax,
        test_mask: &[bool],
        attr_mask: &[bool],
    ) -> TaintIndex {
        let mut index = TaintIndex::default();
        index.add_file(path, lexed, syn, test_mask, attr_mask);
        index.finalize();
        index
    }

    /// May-return taint of `name` (0 for unknown / std fns).
    pub fn returns(&self, name: &str) -> TaintSet {
        debug_assert!(self.finalized, "query before finalize()");
        self.returns.get(name).copied().unwrap_or(0)
    }

    /// Can a value passed to `name` reach a serialization sink?
    pub fn sink_reaching(&self, name: &str) -> bool {
        self.sink_reach.contains(name)
    }

    /// How `name` is reached unisolated from a certified entry, if it is.
    pub fn exposure(&self, name: &str) -> Option<&Exposure> {
        self.exposed.get(name)
    }

    /// Location of a fn's first-seen definition.
    fn decl(&self, name: &str) -> Option<(&str, u32)> {
        self.fns.get(name).map(|f| (f.path.as_str(), f.line))
    }
}

/// Paren-group spans of isolation-wrapper calls in `[body_open, body_close]`.
fn isolation_spans(toks: &[Token], body_open: usize, body_close: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = body_open;
    while i < body_close.min(toks.len()) {
        if let Some(name) = ident_at(toks, i) {
            if ISOLATION_WRAPPERS.contains(&name) && op_at(toks, i + 1, "(") {
                if let Some(close) = crate::rules::matching_paren(toks, i + 1) {
                    spans.push((i + 1, close));
                }
            }
        }
        i += 1;
    }
    spans
}

// ----- the per-file scan ------------------------------------------------

/// Run the taint rules over one file, reporting through `emit(rule, line,
/// message, trace)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_taint(
    path: &str,
    lexed: &LexOutput,
    syn: &FileSyntax,
    class: FileClass,
    test_mask: &[bool],
    attr_mask: &[bool],
    rules: &[RuleKind],
    index: &TaintIndex,
    emit: &mut dyn FnMut(RuleKind, u32, String, Vec<TraceStep>),
) {
    if class != FileClass::Lib {
        return;
    }
    let toks = &lexed.tokens;
    if rules.contains(&RuleKind::TaintDeterminism) {
        for f in &syn.fns {
            if test_mask.get(f.name_tok).copied().unwrap_or(false) {
                continue;
            }
            scan_fn_determinism(path, lexed, syn, f, test_mask, attr_mask, index, emit);
        }
    }
    if rules.contains(&RuleKind::UnisolatedPanic) {
        for f in &syn.fns {
            let Some(exposure) = index.exposure(&f.name) else { continue };
            let Some(node) = index.fns.get(&f.name) else { continue };
            let decl_line = toks.get(f.name_tok).map_or(0, |t| t.line);
            for site in &node.panics {
                // Same-named fns merge; only report the sites that live in
                // this file *and* this definition's span.
                if site.path != path {
                    continue;
                }
                let in_this_def = node.spans.iter().any(|(p, lo, hi)| {
                    p == path && *lo == decl_line && site.line >= *lo && site.line <= *hi
                });
                if !in_this_def {
                    continue;
                }
                let mut trace = Vec::new();
                for (step, name) in exposure.chain.iter().enumerate() {
                    let (p, l) = index.decl(name).unwrap_or((path, site.line));
                    let kind = if step == 0 { TraceKind::Entry } else { TraceKind::Call };
                    trace.push(TraceStep {
                        path: p.to_string(),
                        line: l,
                        kind,
                        note: format!(
                            "`{name}` ({})",
                            if step == 0 { "certified entry" } else { "unisolated call" }
                        ),
                    });
                }
                trace.push(TraceStep {
                    path: site.path.clone(),
                    line: site.line,
                    kind: TraceKind::Panic,
                    note: format!("{} panics here", site.desc),
                });
                emit(
                    RuleKind::UnisolatedPanic,
                    site.line,
                    format!(
                        "{} is reachable from certified entry `{}` (via {}) without an \
                         isolation boundary; wrap the call path in try_par_map_indexed/\
                         catch_unwind or make this site infallible",
                        site.desc,
                        exposure.entry,
                        exposure.chain.join(" → "),
                    ),
                    trace,
                );
            }
        }
    }
}

/// A taint-carrying local binding.
struct Slot {
    name: String,
    /// Token index of the binding name (its definition site).
    tok: usize,
    /// Expression token range `(after '=', statement end)`.
    expr: (usize, usize),
    taint: TaintSet,
    /// First contributing source, for the trace.
    origin: Option<TraceStep>,
}

/// Determinism scan of one function: compute per-binding taint to a local
/// fixed point, run reaching-definitions over the CFG, and check every
/// serialization sink in the body.
#[allow(clippy::too_many_arguments)]
fn scan_fn_determinism(
    path: &str,
    lexed: &LexOutput,
    syn: &FileSyntax,
    f: &crate::syntax::FnInfo,
    test_mask: &[bool],
    attr_mask: &[bool],
    index: &TaintIndex,
    emit: &mut dyn FnMut(RuleKind, u32, String, Vec<TraceStep>),
) {
    let toks = &lexed.tokens;
    let Some((body_open, body_close)) = f.body else { return };

    // Collect taintable bindings: `let [mut] name … = expr;`.
    let mut slots: Vec<Slot> = Vec::new();
    for b in &syn.bindings {
        if b.tok <= body_open || b.tok >= body_close || slots.len() >= MAX_SLOTS - 2 {
            continue;
        }
        let scope = syn.enclosing.get(b.tok).copied().flatten();
        let end = syn.statement_end(toks, b.tok, scope);
        // Find the `=` introducing the initializer.
        let Some(eq) = (b.tok..end.min(toks.len())).find(|&k| op_at(toks, k, "=")) else {
            continue;
        };
        slots.push(Slot {
            name: b.name.clone(),
            tok: b.tok,
            expr: (eq + 1, end),
            taint: 0,
            origin: None,
        });
    }

    // A binding annotated with an ordered/order-free container type
    // canonicalizes iteration order on its own: `let m: BTreeMap<…> = …`.
    let annotated: Vec<bool> = slots
        .iter()
        .map(|s| {
            syn.bindings
                .iter()
                .find(|b| b.tok == s.tok)
                .is_some_and(|b| ORDER_FREE_SINKS.contains(&b.ty.as_str()))
        })
        .collect();

    // Statement-level sanitizers: `names.sort();` between a slot's
    // definition and a later use cleans the slot at that use. Recorded as
    // `(slot name, sanitizer token, kinds cleared)`; only the direct
    // `slot.sanitizer(..)` receiver form counts.
    let mut stmt_sans: Vec<(String, usize, TaintSet)> = Vec::new();
    for k in body_open + 1..body_close.min(toks.len()) {
        let Some(name) = ident_at(toks, k) else { continue };
        if op_at(toks, k.wrapping_sub(1), ".") || !op_at(toks, k + 1, ".") {
            continue;
        }
        if !slots.iter().any(|s| s.name == name) {
            continue;
        }
        if let Some((kind, _)) = sanitizer_at(toks, syn, k + 2) {
            stmt_sans.push((name.to_string(), k + 2, kind));
        }
    }

    // Taint of an expression token range: direct sources + referenced
    // slot taint + callee may-return taint, minus sanitizers in range.
    let stmt_sans = &stmt_sans;
    let expr_taint = |range: (usize, usize),
                      slots: &[Slot],
                      live: Option<&dyn Fn(&str) -> bool>|
     -> (TaintSet, Option<TraceStep>) {
        let (start, end) = range;
        let mut set: TaintSet = 0;
        let mut cleared: TaintSet = 0;
        let mut origin: Option<TraceStep> = None;
        for k in start..end.min(toks.len()) {
            if test_mask.get(k).copied().unwrap_or(false)
                || attr_mask.get(k).copied().unwrap_or(false)
            {
                continue;
            }
            if let Some((kind, desc)) = source_at(toks, syn, k, &lexed.addr_fmt_lines) {
                set |= kind;
                if origin.is_none() {
                    origin = Some(TraceStep {
                        path: path.to_string(),
                        line: line_of(toks, k),
                        kind: TraceKind::Source,
                        note: desc,
                    });
                }
            }
            if let Some((kind, _)) = sanitizer_at(toks, syn, k) {
                cleared |= kind;
            }
            if let Some(name) = ident_at(toks, k) {
                // Another binding referenced by value (not a field/method
                // name after `.`).
                if !op_at(toks, k.wrapping_sub(1), ".") {
                    if let Some(s) =
                        slots.iter().find(|s| s.name == name && s.tok != k && s.taint != 0)
                    {
                        let mut carried = s.taint;
                        for (sn, stok, kinds) in stmt_sans.iter() {
                            if sn == &s.name && *stok > s.tok && *stok < k {
                                carried &= !kinds;
                            }
                        }
                        if carried != 0 && live.is_none_or(|alive| alive(&s.name)) {
                            set |= carried;
                            if origin.is_none() {
                                origin = s.origin.clone().or(Some(TraceStep {
                                    path: path.to_string(),
                                    line: line_of(toks, s.tok),
                                    kind: TraceKind::Propagation,
                                    note: format!("via binding `{}`", s.name),
                                }));
                            }
                        }
                    }
                }
                if let Some(callee) = call_at(toks, syn, k) {
                    let ret = index.returns(callee);
                    if ret != 0 {
                        set |= ret;
                        if origin.is_none() {
                            origin = Some(TraceStep {
                                path: path.to_string(),
                                line: line_of(toks, k),
                                kind: TraceKind::Propagation,
                                note: format!("returned by `{callee}()`"),
                            });
                        }
                    }
                }
            }
        }
        (set & !cleared, origin)
    };

    // Local fixed point over binding taints (loops can feed a binding
    // back into itself; the join is monotone so this converges).
    loop {
        let mut changed = false;
        for idx in 0..slots.len() {
            let Some(expr) = slots.get(idx).map(|s| s.expr) else { continue };
            let (mut set, origin) = expr_taint(expr, &slots, None);
            if annotated.get(idx).copied().unwrap_or(false) {
                set &= !HASH_ORDER;
            }
            let Some(slot) = slots.get_mut(idx) else { continue };
            if set != slot.taint {
                slot.taint = set;
                slot.origin = origin;
                changed = true;
            } else if slot.origin.is_none() {
                slot.origin = origin;
            }
        }
        if !changed {
            break;
        }
    }

    // Reaching definitions over the CFG: bit k ⇔ slot k's definition has
    // executed. No kills — taint is a may-analysis.
    let cfg = build_cfg(toks, syn, body_open);
    let reach: Option<(Vec<u64>, &crate::flow::Cfg)> = cfg.as_ref().map(|cfg| {
        let transfers: Vec<(u64, u64)> = cfg
            .nodes
            .iter()
            .map(|n| {
                let mut gen: u64 = 0;
                for (k, s) in slots.iter().enumerate() {
                    if s.tok >= n.span.0 && s.tok < n.span.1 {
                        gen |= 1 << k;
                    }
                }
                (u64::MAX, gen)
            })
            .collect();
        (dataflow_in(cfg, &transfers), cfg)
    });
    let slot_live_at = |tok: usize, name: &str| -> bool {
        let Some((ins, cfg)) = &reach else { return true };
        let Some(k) = slots.iter().position(|s| s.name == name) else { return true };
        // Smallest node span containing the sink token.
        let node = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.span.0 <= tok && tok < n.span.1)
            .min_by_key(|(_, n)| n.span.1 - n.span.0);
        let def_tok = slots.get(k).map_or(0, |s| s.tok);
        match node {
            Some((id, n)) => {
                ins.get(id).copied().unwrap_or(0) & (1 << k) != 0
                    || (def_tok >= n.span.0 && def_tok < tok)
            }
            None => true, // outside any node (fn signature) — be safe
        }
    };

    // Check every sink in the body.
    for i in body_open + 1..body_close.min(toks.len()) {
        if test_mask.get(i).copied().unwrap_or(false) || attr_mask.get(i).copied().unwrap_or(false)
        {
            continue;
        }
        let site = sink_at(toks, syn, i).or_else(|| {
            // Interprocedural: an argument handed to a sink-reaching fn.
            call_at(toks, syn, i).filter(|c| index.sink_reaching(c)).and_then(|c| {
                let (open, close) = group_bounds(syn, syn.group_at_opener(i + 1)?)?;
                Some((open, close, format!("call to sink-reaching `{c}()`")))
            })
        });
        let Some((open, close, desc)) = site else { continue };
        let live = |name: &str| slot_live_at(open, name);
        let (set, origin) = expr_taint((open + 1, close), &slots, Some(&live));
        if set == 0 {
            continue;
        }
        let line = line_of(toks, i);
        let mut trace = Vec::new();
        if let Some(o) = origin {
            trace.push(o);
        }
        trace.push(TraceStep {
            path: path.to_string(),
            line,
            kind: TraceKind::SanitizerMiss,
            note: format!("not cleared by {}", expected_sanitizer(set)),
        });
        trace.push(TraceStep {
            path: path.to_string(),
            line,
            kind: TraceKind::Sink,
            note: desc.clone(),
        });
        emit(
            RuleKind::TaintDeterminism,
            line,
            format!(
                "nondeterministic value ({}) flows into {desc} without a sanitizer; \
                 outputs must be reproducible across runs",
                kind_names(set),
            ),
            trace,
        );
    }
}

// ----- certification ----------------------------------------------------

/// Per-entry-point certification facts.
#[derive(Debug, Default, Clone)]
pub struct EntryReport {
    /// The entry fn exists in the workspace.
    pub present: bool,
    /// Fns reachable over *any* call edge (isolated or not).
    pub reachable_fns: usize,
    /// `taint-determinism` findings inside the reachable set.
    pub tainted_sink_findings: usize,
    /// Panic sites in the reachable set that sit behind an isolation
    /// boundary (locally wrapped, or only reachable through one).
    pub panic_sites_isolated: usize,
    /// Panic sites reachable without ever crossing a boundary.
    pub panic_sites_unisolated: usize,
}

impl EntryReport {
    /// Both certification clauses hold for this entry.
    pub fn clean(&self) -> bool {
        self.present && self.tainted_sink_findings == 0 && self.panic_sites_unisolated == 0
    }
}

/// The machine-readable certificate `--certify` emits.
#[derive(Debug, Default)]
pub struct Certificate {
    /// Entry name → report, in `ENTRY_POINTS` order (BTreeMap for stable
    /// serialization).
    pub entries: BTreeMap<String, EntryReport>,
    /// Workspace-wide `taint-determinism` finding count.
    pub taint_findings: usize,
    /// Workspace-wide `unisolated-panic` finding count.
    pub panic_findings: usize,
    /// All entries present and clean.
    pub certified: bool,
}

/// Evaluate the certificate against a finalized index and the workspace
/// findings (post allow-filtering, pre baseline).
pub fn certify(index: &TaintIndex, findings: &[crate::rules::Finding]) -> Certificate {
    let taint_findings = findings.iter().filter(|f| f.rule == RuleKind::TaintDeterminism).count();
    let panic_findings = findings.iter().filter(|f| f.rule == RuleKind::UnisolatedPanic).count();
    let mut entries = BTreeMap::new();

    for entry in ENTRY_POINTS {
        let mut report = EntryReport::default();
        if index.fns.contains_key(*entry) {
            report.present = true;
            // Reachability over all edges (for determinism + isolated
            // counts)…
            let all = bfs(index, entry, false);
            // …and over unisolated edges only.
            let un = bfs(index, entry, true);
            report.reachable_fns = all.len();
            for name in &all {
                let Some(node) = index.fns.get(name) else { continue };
                report.panic_sites_isolated += node.isolated_panics;
                if un.contains(name) {
                    report.panic_sites_unisolated += node.panics.len();
                } else {
                    report.panic_sites_isolated += node.panics.len();
                }
                report.tainted_sink_findings += findings
                    .iter()
                    .filter(|f| {
                        f.rule == RuleKind::TaintDeterminism
                            && node
                                .spans
                                .iter()
                                .any(|(p, lo, hi)| *p == f.path && f.line >= *lo && f.line <= *hi)
                    })
                    .count();
            }
        }
        entries.insert(entry.to_string(), report);
    }
    let certified = entries.values().all(EntryReport::clean);
    Certificate { entries, taint_findings, panic_findings, certified }
}

/// Deterministic BFS over the call graph from `entry`; `unisolated_only`
/// restricts traversal to edges outside isolation spans.
fn bfs(index: &TaintIndex, entry: &str, unisolated_only: bool) -> BTreeSet<String> {
    let mut seen = BTreeSet::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(entry.to_string());
    while let Some(name) = queue.pop_front() {
        if !seen.insert(name.clone()) {
            continue;
        }
        if let Some(node) = index.fns.get(&name) {
            let edges = if unisolated_only { &node.un_calls } else { &node.calls };
            for callee in edges {
                if !seen.contains(callee) && index.fns.contains_key(callee) {
                    queue.push_back(callee.clone());
                }
            }
        }
    }
    seen
}

impl Certificate {
    /// Render as deterministic JSON (sorted keys, no timestamps) — the
    /// file CI diffs.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"sherlock-lint-certificate/v1\",\n");
        out.push_str(&format!("  \"certified\": {},\n", self.certified));
        out.push_str("  \"rules\": [\"taint-determinism\", \"unisolated-panic\"],\n");
        out.push_str(&format!(
            "  \"workspace\": {{\"taint_determinism_findings\": {}, \
             \"unisolated_panic_findings\": {}}},\n",
            self.taint_findings, self.panic_findings
        ));
        out.push_str("  \"entry_points\": {\n");
        let n = self.entries.len();
        for (i, (name, r)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"present\": {}, \"determinism_clean\": {}, \
                 \"reachable_fns\": {}, \"tainted_sink_findings\": {}, \
                 \"panic_sites_isolated\": {}, \"panic_sites_unisolated\": {}}}{}\n",
                name,
                r.present,
                r.present && r.tainted_sink_findings == 0,
                r.reachable_fns,
                r.tainted_sink_findings,
                r.panic_sites_isolated,
                r.panic_sites_unisolated,
                if i + 1 < n { "," } else { "" },
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::structure_masks;

    fn setup(src: &str) -> (LexOutput, FileSyntax, Vec<bool>, Vec<bool>) {
        let lexed = lex(src);
        let syn = FileSyntax::analyze(&lexed.tokens);
        let (attr_mask, test_mask) = structure_masks(&lexed.tokens);
        (lexed, syn, test_mask, attr_mask)
    }

    fn findings_of(src: &str) -> Vec<(RuleKind, u32, String)> {
        let (lexed, syn, test_mask, attr_mask) = setup(src);
        let index =
            TaintIndex::from_file("crates/core/src/x.rs", &lexed, &syn, &test_mask, &attr_mask);
        let mut got = Vec::new();
        scan_taint(
            "crates/core/src/x.rs",
            &lexed,
            &syn,
            FileClass::Lib,
            &test_mask,
            &attr_mask,
            &[RuleKind::TaintDeterminism, RuleKind::UnisolatedPanic],
            &index,
            &mut |rule, line, msg, _trace| got.push((rule, line, msg)),
        );
        got
    }

    #[test]
    fn hash_iteration_into_sink_fires() {
        let got = findings_of(
            "fn build(map: &HashMap<String, f64>) -> Explanation {\n\
             let names: Vec<String> = map.keys().cloned().collect();\n\
             Explanation { causes: names }\n\
             }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, RuleKind::TaintDeterminism);
        assert_eq!(got[0].1, 3);
    }

    #[test]
    fn sorted_hash_iteration_is_clean() {
        let got = findings_of(
            "fn build(map: &HashMap<String, f64>) -> Explanation {\n\
             let mut names: Vec<String> = map.keys().cloned().collect();\n\
             names.sort();\n\
             Explanation { causes: names }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn closure_sanitizer_is_honored() {
        // The satellite regression: a comparator inside a closure still
        // counts as the sanitizing sort.
        let got = findings_of(
            "fn build(map: &HashMap<String, f64>) -> Explanation {\n\
             let scores: Vec<f64> = map.values().cloned().collect();\n\
             let top = scores.iter().cloned().fold(0.0f64, f64::max);\n\
             let mut names: Vec<String> = map.keys().cloned().collect();\n\
             names.sort_by(|a, b| a.total_cmp(b));\n\
             Explanation { causes: names, score: top }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn clock_now_without_deadline_hint_fires() {
        let got = findings_of(
            "fn stamp() -> Response {\n\
             let when = SystemTime::now();\n\
             Response::Stats { when }\n\
             }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, RuleKind::TaintDeterminism);
    }

    #[test]
    fn deadline_arithmetic_is_exempt() {
        let got = findings_of(
            "fn arm(&self) -> Response {\n\
             let deadline = Instant::now() + self.budget;\n\
             let ok = check(deadline);\n\
             Response::Ready { ok }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn callee_summary_carries_taint_across_fns() {
        let got = findings_of(
            "fn pick(map: &HashMap<u32, f64>) -> Vec<u32> {\n\
             map.keys().cloned().collect()\n\
             }\n\
             fn publish(map: &HashMap<u32, f64>) -> Explanation {\n\
             let ks = pick(map);\n\
             Explanation { causes: ks }\n\
             }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].1, 6);
    }

    #[test]
    fn sanitizing_callee_clears_summary() {
        let got = findings_of(
            "fn pick(map: &HashMap<u32, f64>) -> Vec<u32> {\n\
             let mut ks: Vec<u32> = map.keys().cloned().collect();\n\
             ks.sort_unstable();\n\
             ks\n\
             }\n\
             fn publish(map: &HashMap<u32, f64>) -> Explanation {\n\
             let ks = pick(map);\n\
             Explanation { causes: ks }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn unisolated_panic_reachable_from_entry() {
        let got = findings_of(
            "fn worker_loop(&self) {\n\
             step();\n\
             }\n\
             fn step() {\n\
             helper().unwrap();\n\
             }\n",
        );
        let panics: Vec<_> =
            got.iter().filter(|(r, _, _)| *r == RuleKind::UnisolatedPanic).collect();
        assert_eq!(panics.len(), 1, "{got:?}");
        assert_eq!(panics[0].1, 5);
    }

    #[test]
    fn isolated_panic_is_exempt() {
        let got = findings_of(
            "fn worker_loop(&self) {\n\
             let out = try_par_map_indexed(policy, \"stage\", &items, |_, it| step(it));\n\
             drop(out);\n\
             }\n\
             fn step(it: &Item) -> Result<(), E> {\n\
             it.value().unwrap();\n\
             Ok(())\n\
             }\n",
        );
        let panics: Vec<_> =
            got.iter().filter(|(r, _, _)| *r == RuleKind::UnisolatedPanic).collect();
        assert!(panics.is_empty(), "{got:?}");
    }

    #[test]
    fn certificate_reports_unisolated_sites() {
        let (lexed, syn, test_mask, attr_mask) = setup(
            "fn explain_batch(&self) {\n\
             inner();\n\
             }\n\
             fn inner() {\n\
             x.unwrap();\n\
             }\n",
        );
        let index =
            TaintIndex::from_file("crates/core/src/d.rs", &lexed, &syn, &test_mask, &attr_mask);
        let cert = certify(&index, &[]);
        let report = &cert.entries["explain_batch"];
        assert!(report.present);
        assert_eq!(report.panic_sites_unisolated, 1);
        assert!(!cert.certified);
        // JSON is stable and parseable-ish.
        let json = cert.render_json();
        assert!(json.contains("\"certified\": false"), "{json}");
        assert_eq!(json, certify(&index, &[]).render_json());
    }

    #[test]
    fn qualified_calls_resolve_without_alias_mangling() {
        // `use x::step as other;` must not divert the qualified call
        // `stages::step()` through the alias map.
        let got = findings_of(
            "use crate::other as step;\n\
             fn worker_loop(&self) {\n\
             stages::step();\n\
             }\n\
             fn step() {\n\
             x.unwrap();\n\
             }\n",
        );
        let panics: Vec<_> =
            got.iter().filter(|(r, _, _)| *r == RuleKind::UnisolatedPanic).collect();
        assert_eq!(panics.len(), 1, "{got:?}");
    }
}
