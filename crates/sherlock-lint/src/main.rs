//! `sherlock-lint` CLI.
//!
//! ```text
//! cargo run -p sherlock-lint --                 # lint the workspace vs the baseline
//! cargo run -p sherlock-lint -- --update-baseline
//! cargo run -p sherlock-lint -- --json
//! cargo run -p sherlock-lint -- --rule nan-unsafe --no-baseline
//! cargo run -p sherlock-lint -- --github       # CI annotations
//! cargo run -p sherlock-lint -- --sarif        # SARIF 2.1.0 (code scanning upload)
//! cargo run -p sherlock-lint -- --certify      # write tools/lint-certificate.json
//! ```
//!
//! Exit codes: `0` clean, `1` new findings, `2` usage or I/O error.
//! Under `--certify`, `0` means certified, `1` means a clause failed.

use std::path::PathBuf;
use std::process::ExitCode;

use sherlock_lint::rules::RuleKind;
use sherlock_lint::workspace::{find_workspace_root, scan_workspace_with_taint, ScanConfig};
use sherlock_lint::Baseline;

const USAGE: &str = "\
sherlock-lint — domain-invariant static analyzer for the dbsherlock workspace

USAGE:
    sherlock-lint [OPTIONS]

OPTIONS:
    --root <DIR>        workspace root (default: auto-detected from cwd)
    --baseline <FILE>   baseline file (default: <root>/tools/lint-baseline.txt)
    --update-baseline   rewrite the baseline to the current findings and exit 0
    --no-baseline       report every finding, ignoring the baseline
    --rule <NAME>       run only this rule (repeatable); default: all rules
    --json              machine-readable output
    --github            GitHub Actions `::error` annotations for new findings
    --sarif             SARIF 2.1.0 output for new findings (code scanning)
    --certify           run the full rule set, write <root>/tools/lint-certificate.json,
                        print it, and exit 0 iff every certified entry point is clean
    --list-rules        print the rule names and exit
    -h, --help          this help
";

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    no_baseline: bool,
    rules: Vec<RuleKind>,
    json: bool,
    github: bool,
    sarif: bool,
    certify: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        update_baseline: false,
        no_baseline: false,
        rules: Vec::new(),
        json: false,
        github: false,
        sarif: false,
        certify: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(iter.next().ok_or("--root needs a value")?));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(iter.next().ok_or("--baseline needs a value")?));
            }
            "--update-baseline" => args.update_baseline = true,
            "--no-baseline" => args.no_baseline = true,
            "--json" => args.json = true,
            "--github" => args.github = true,
            "--sarif" => args.sarif = true,
            "--certify" => args.certify = true,
            "--rule" => {
                let name = iter.next().ok_or("--rule needs a value")?;
                let rule = RuleKind::from_name(&name)
                    .ok_or_else(|| format!("unknown rule {name:?}; try --list-rules"))?;
                args.rules.push(rule);
            }
            "--list-rules" => {
                for rule in RuleKind::ALL {
                    println!("{rule}");
                }
                return Ok(None);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Args) -> Result<bool, String> {
    let root = match args.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };
    if args.certify {
        // Certification always runs the full rule set: a certificate
        // derived from a partial scan would assert clauses never checked.
        let config = ScanConfig::all_rules(root.clone());
        let (findings, index) = scan_workspace_with_taint(&config)
            .map_err(|e| format!("scanning {}: {e}", root.display()))?;
        let index = index.ok_or("taint index missing from full-rule scan")?;
        let cert = sherlock_lint::certify(&index, &findings);
        let json = cert.render_json();
        let cert_path = root.join("tools").join("lint-certificate.json");
        std::fs::write(&cert_path, &json)
            .map_err(|e| format!("writing {}: {e}", cert_path.display()))?;
        print!("{json}");
        eprintln!(
            "sherlock-lint: certificate {} — {}",
            if cert.certified { "CLEAN" } else { "FAILED" },
            cert_path.display()
        );
        return Ok(cert.certified);
    }

    let rules = if args.rules.is_empty() { RuleKind::ALL.to_vec() } else { args.rules.clone() };
    let config = ScanConfig { root: root.clone(), rules };
    let (findings, _) = scan_workspace_with_taint(&config)
        .map_err(|e| format!("scanning {}: {e}", root.display()))?;

    let baseline_path =
        args.baseline.unwrap_or_else(|| root.join("tools").join("lint-baseline.txt"));

    if args.update_baseline {
        Baseline::write(&baseline_path, &findings)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "baseline updated: {} findings frozen in {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = if args.no_baseline {
        Baseline::default()
    } else {
        Baseline::load(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?
    };
    let diff = baseline.diff(&findings);

    if args.sarif {
        print!("{}", render_sarif(&diff));
    } else if args.json {
        print!("{}", render_json(&diff, &findings));
    } else {
        for finding in &diff.new {
            if args.github {
                println!("{}", finding.render_github());
            } else {
                println!("{}", finding.render());
            }
        }
        eprintln!(
            "sherlock-lint: {} finding(s): {} new, {} baselined, {} stale baseline entr{}",
            findings.len(),
            diff.new.len(),
            diff.baselined,
            diff.stale,
            if diff.stale == 1 { "y" } else { "ies" },
        );
        if diff.stale > 0 {
            eprintln!(
                "sherlock-lint: run with --update-baseline to drop entries for fixed findings"
            );
        }
        if !diff.new.is_empty() {
            eprintln!(
                "sherlock-lint: fix the new findings, add a `// sherlock-lint: allow(<rule>): \
                 <why>` escape, or (last resort) --update-baseline"
            );
        }
    }
    Ok(diff.new.is_empty())
}

/// Hand-rolled JSON (the crate is dependency-free by design).
fn render_json(diff: &sherlock_lint::baseline::Diff<'_>, all: &[sherlock_lint::Finding]) -> String {
    let mut out = String::from("{\n  \"new\": [\n");
    for (i, f) in diff.new.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"rule\": {}, \"path\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}",
            json_str(f.rule.name()),
            json_str(&f.path),
            f.line,
            json_str(&f.snippet),
            json_str(&f.message),
        ));
        out.push('}');
        if i + 1 < diff.new.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"total\": {}, \"new_count\": {}, \"baselined\": {}, \"stale\": {}\n}}\n",
        all.len(),
        diff.new.len(),
        diff.baselined,
        diff.stale
    ));
    out
}

/// SARIF 2.1.0, one run: rule metadata from [`RuleKind`], one `result` with
/// a physical location per *new* finding (baselined findings are accepted
/// history, not alerts). Consumed by `github/codeql-action/upload-sarif`.
fn render_sarif(diff: &sherlock_lint::baseline::Diff<'_>) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"sherlock-lint\",\n          \
         \"informationUri\": \"https://github.com/dbsherlock\",\n          \"rules\": [\n",
    );
    for (i, rule) in RuleKind::ALL.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_str(rule.name()),
            json_str(rule.summary()),
            if i + 1 < RuleKind::ALL.len() { "," } else { "" },
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in diff.new.iter().enumerate() {
        let rule_index = RuleKind::ALL.iter().position(|r| *r == f.rule).unwrap_or(0);
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"ruleIndex\": {rule_index}, \"level\": \"error\", \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": \
             {}}}}}}}]{}}}{}\n",
            json_str(f.rule.name()),
            json_str(&f.message),
            json_str(&f.path),
            f.line.max(1),
            render_code_flow(f),
            if i + 1 < diff.new.len() { "," } else { "" },
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// A SARIF `codeFlow` for a finding that carries a taint/reachability
/// trace: one threadFlow whose locations walk source → sanitizer-miss →
/// sink (or entry → call → panic). Empty string when there is no trace.
fn render_code_flow(f: &sherlock_lint::Finding) -> String {
    if f.trace.is_empty() {
        return String::new();
    }
    let mut steps = String::new();
    for (i, step) in f.trace.iter().enumerate() {
        steps.push_str(&format!(
            "{{\"location\": {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}, \"message\": {{\"text\": {}}}}}}}{}",
            json_str(&step.path),
            step.line.max(1),
            json_str(&format!("{}: {}", step.kind.label(), step.note)),
            if i + 1 < f.trace.len() { ", " } else { "" },
        ));
    }
    format!(", \"codeFlows\": [{{\"threadFlows\": [{{\"locations\": [{steps}]}}]}}]")
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
