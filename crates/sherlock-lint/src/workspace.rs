//! Workspace traversal and per-file rule scoping.

use std::io;
use std::path::{Path, PathBuf};

use crate::flow::{FileFlow, FlowIndex};
use crate::lexer::lex;
use crate::rules::{check_deny_header, scan_source_indexed, FileClass, Finding, RuleKind};
use crate::syntax::FileSyntax;
use crate::taint::TaintIndex;

/// Directory names never scanned, wherever they appear.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    ".claude",
    // Vendored stand-ins for crates.io deps: external code, not ours.
    "offline-deps",
    // Lint-test fixtures intentionally contain violations.
    "fixtures",
];

/// What to scan and with which rules.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Workspace root (the directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// Rules to run.
    pub rules: Vec<RuleKind>,
}

impl ScanConfig {
    /// All rules over `root`.
    pub fn all_rules(root: PathBuf) -> Self {
        ScanConfig { root, rules: RuleKind::ALL.to_vec() }
    }
}

/// Classify a workspace-relative path (forward slashes). `None` ⇒ skip.
///
/// * `Lib` — library code of a workspace crate (`crates/*/src/**`, root
///   `src/**`), excluding `src/bin/` and `main.rs`: the full rule set.
/// * `Other` — tests, benches, examples, binaries: `panic-path` waived.
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let in_crate_src =
        (rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/");
    let is_binary = rel.contains("/bin/") || rel.ends_with("/main.rs") || rel == "src/main.rs";
    if in_crate_src && !is_binary {
        Some(FileClass::Lib)
    } else {
        Some(FileClass::Other)
    }
}

/// Is `rel` a crate root that must carry the clippy deny-header?
/// Covers every `crates/*/src/lib.rs` plus the workspace facade `src/lib.rs`.
pub fn needs_deny_header(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let mut parts = rel.split('/');
    matches!(
        (parts.next(), parts.next(), parts.next(), parts.next(), parts.next()),
        (Some("crates"), Some(_), Some("src"), Some("lib.rs"), None)
    )
}

/// Walk the workspace and run the configured rules over every `.rs` file.
/// Findings come back sorted by `(path, line, rule name)` — a documented,
/// enum-order-independent total order, so output is byte-identical across
/// runs and across refactors that reorder `RuleKind`.
///
/// When any flow rule is requested the scan is **two-pass**: pass 1 builds
/// the workspace-wide [`FlowIndex`] (call graph, lock-order pairs, budget
/// summaries) from every library file, pass 2 runs the rules with that
/// index so interprocedural facts cross file boundaries.
pub fn scan_workspace(config: &ScanConfig) -> io::Result<Vec<Finding>> {
    scan_workspace_with_taint(config).map(|(findings, _)| findings)
}

/// [`scan_workspace`] that also hands back the workspace-wide
/// [`TaintIndex`] (when any taint rule was requested), so callers like
/// `--certify` can derive the certificate from the same pass-1 facts the
/// findings came from.
pub fn scan_workspace_with_taint(
    config: &ScanConfig,
) -> io::Result<(Vec<Finding>, Option<TaintIndex>)> {
    let mut files = Vec::new();
    collect_rs_files(&config.root, &config.root, &mut files)?;
    files.sort();

    let mut classified: Vec<(String, FileClass, String)> = Vec::new();
    for rel in &files {
        let Some(class) = classify(rel) else { continue };
        let source = std::fs::read_to_string(config.root.join(rel))?;
        classified.push((rel.clone(), class, source));
    }

    let needs_flow = config.rules.iter().any(|r| crate::rules::FLOW.contains(r));
    let needs_taint = config.rules.iter().any(|r| crate::rules::TAINT.contains(r));

    let (flow_index, taint_index) = if needs_flow || needs_taint {
        let mut flow_index = needs_flow.then(FlowIndex::default);
        let mut taint_index = needs_taint.then(TaintIndex::default);
        for (rel, class, source) in &classified {
            // Test/bench/binary code never feeds the interprocedural
            // facts — only library code can deadlock the daemon or taint
            // a serialized diagnosis.
            if *class != FileClass::Lib {
                continue;
            }
            let lexed = lex(source);
            let syn = FileSyntax::analyze(&lexed.tokens);
            let (attr_mask, test_mask) = crate::rules::structure_masks(&lexed.tokens);
            if let Some(index) = flow_index.as_mut() {
                let flow = FileFlow::analyze(&lexed.tokens, &syn, &test_mask);
                index.add_file(rel, &flow);
            }
            if let Some(index) = taint_index.as_mut() {
                index.add_file(rel, &lexed, &syn, &test_mask, &attr_mask);
            }
        }
        if let Some(index) = flow_index.as_mut() {
            index.finalize();
        }
        if let Some(index) = taint_index.as_mut() {
            index.finalize();
        }
        (flow_index, taint_index)
    } else {
        (None, None)
    };

    let mut findings = Vec::new();
    for (rel, class, source) in &classified {
        findings.extend(scan_source_indexed(
            rel,
            source,
            *class,
            &config.rules,
            flow_index.as_ref(),
            taint_index.as_ref(),
        ));
        if config.rules.contains(&RuleKind::DenyHeader) && needs_deny_header(rel) {
            findings.extend(check_deny_header(rel, source));
        }
    }
    findings.sort_by(|a, b| {
        a.path.cmp(&b.path).then(a.line.cmp(&b.line)).then(a.rule.name().cmp(b.rule.name()))
    });
    Ok((findings, taint_index))
}

/// Recursively collect workspace-relative forward-slash paths of `.rs` files.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/core/src/predicate.rs"), Some(FileClass::Lib));
        assert_eq!(classify("src/lib.rs"), Some(FileClass::Lib));
        assert_eq!(classify("crates/bench/src/bin/run_all.rs"), Some(FileClass::Other));
        assert_eq!(classify("src/bin/dbsherlock-cli.rs"), Some(FileClass::Other));
        assert_eq!(classify("crates/sherlock-lint/src/main.rs"), Some(FileClass::Other));
        assert_eq!(classify("crates/core/tests/integration.rs"), Some(FileClass::Other));
        assert_eq!(classify("tests/end_to_end.rs"), Some(FileClass::Other));
        assert_eq!(classify("examples/quickstart.rs"), Some(FileClass::Other));
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn deny_header_scope() {
        assert!(needs_deny_header("crates/core/src/lib.rs"));
        assert!(needs_deny_header("src/lib.rs"));
        assert!(!needs_deny_header("crates/core/src/predicate.rs"));
        assert!(!needs_deny_header("crates/core/src/sub/lib.rs"));
        assert!(!needs_deny_header("tests/lib.rs"));
    }

    #[test]
    fn finds_own_workspace_root() {
        let here = std::env::current_dir().unwrap();
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("crates").is_dir());
    }
}
