//! Scope-aware rules over the [`crate::syntax`] layer.
//!
//! Token rules ask "does this *look* like a violation"; semantic rules ask
//! "is this name *actually* a `HashMap` / an `ArmedBudget` / a hook swap
//! outside the sanctioned wrapper". Each rule here walks the
//! [`FileSyntax`] binding and import tables instead of raw tokens, which
//! is what lets the baselines for `nondeterministic-iteration` and
//! `raw-panic-hook` stay *empty*: the rules are precise enough that every
//! real site is either fixed or carries an inline justification.
//!
//! Findings are funneled through the same emit path as the token rules
//! (`rules::scan_source`), so allow-escapes, file allows, rule selection
//! and baselining behave identically for both layers.

use crate::lexer::{Tok, Token};
use crate::rules::{FileClass, RuleKind};
use crate::syntax::FileSyntax;

/// Container types whose iteration order is arbitrary.
pub(crate) const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Containers whose *contents* are order-insensitive: collecting a hash
/// iteration into one of these launders no ordering into the output.
pub(crate) const ORDER_FREE_SINKS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Iterator-producing methods on the hash containers.
pub(crate) const ITER_HEADS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Chain methods that impose an order downstream of the iteration.
pub(crate) const SORTERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "sorted_by",
    "sorted_by_key",
];

/// Terminal reducers whose result does not depend on iteration order.
pub(crate) const REDUCERS: &[&str] = &[
    "count",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "any",
    "all",
];

/// Budget/cancellation handle types a pipeline stage is expected to poll.
pub(crate) const BUDGET_TYPES: &[&str] = &["ArmedBudget", "DiagnosisBudget", "CancelFlag"];

/// Calls too cheap to make a loop "real work" for `budget-blind-loop`:
/// pure collection plumbing, as in the ubiquitous result-collector loops
/// (`for slot in slots { out.push(slot?); }`).
const TRIVIAL_CALLS: &[&str] = &[
    "push",
    "extend",
    "insert",
    "append",
    "pop",
    "push_str",
    "clone",
    "cloned",
    "copied",
    "to_string",
];

/// Identifiers followed by `(` that are not function calls doing work:
/// control keywords heading parenthesised conditions. Capitalized
/// identifiers (`Some(`, `Label::Cluster(`) are excluded separately —
/// they are enum-variant patterns or tuple-struct construction, not work.
pub(crate) const NON_CALL_IDENTS: &[&str] =
    &["if", "while", "for", "match", "return", "in", "let", "loop", "move", "else"];

/// `std::fs` free functions that mutate the filesystem.
const FS_MUTATORS: &[&str] =
    &["write", "rename", "remove_file", "remove_dir_all", "copy", "set_permissions"];

/// Methods that grow a container (`unbounded-channel`).
const GROWERS: &[&str] = &["push", "push_back", "push_front", "extend", "append"];

/// The columnar kernel files: diagnosis hot paths rewritten to take typed
/// column views. Per-cell `value()` dispatch is banned here — the `scalar`
/// reference shim (scalar.rs) is deliberately absent from this list.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/label.rs",
    "crates/core/src/partition.rs",
    "crates/core/src/separation.rs",
    "crates/core/src/filter.rs",
    "crates/core/src/predicate.rs",
];

/// Container types whose unbounded growth is the daemon hazard.
const GROWABLE_TYPES: &[&str] = &["Vec", "VecDeque"];

/// Blocking waits that mark a loop as a retry/backoff loop
/// (`unbounded-retry`): a loop that sleeps between iterations is waiting
/// for something external to change, and must bound how long it waits.
const RETRY_SLEEPS: &[&str] = &["sleep", "sleep_ms", "park_timeout"];

/// Identifier substrings that show a retry loop is bounded: an attempt
/// counter, a deadline/elapsed-time poll, a budget handle, or a
/// shutdown/cancellation flag. Matched case-insensitively as substrings so
/// `max_attempts`, `save_attempts`, `n_retries`, `drain_deadline_ms` all
/// count. False negatives are the safe direction here — the rule must
/// hold the workspace at zero findings without baseline support.
const RETRY_GUARDS: &[&str] = &[
    "attempt",
    "tries",
    "retr",
    "deadline",
    "elapsed",
    "budget",
    "timeout",
    "instant",
    "shutdown",
    "cancel",
    "stop",
    "remaining",
    "expire",
];

/// Methods that bound, shed, or drain a container: seeing one of these on
/// the growth receiver means the author is managing capacity.
const BOUNDERS: &[&str] = &[
    "len",
    "capacity",
    "is_empty",
    "truncate",
    "clear",
    "drain",
    "pop",
    "pop_front",
    "pop_back",
    "retain",
    "remove",
    "swap_remove",
];

/// Run every requested semantic rule over one file, reporting through
/// `emit(rule, line, message)` (the same closure the token rules use, so
/// allow-escapes and baselining apply uniformly).
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_semantic(
    path: &str,
    toks: &[Token],
    syn: &FileSyntax,
    class: FileClass,
    test_mask: &[bool],
    rules: &[RuleKind],
    index: Option<&crate::flow::FlowIndex>,
    emit: &mut dyn FnMut(RuleKind, u32, String),
) {
    let ctx = Ctx { toks, syn, test_mask };
    if rules.contains(&RuleKind::NondetIteration) && class == FileClass::Lib {
        nondet_iteration(&ctx, emit);
    }
    if rules.contains(&RuleKind::RawPanicHook) {
        raw_panic_hook(&ctx, emit);
    }
    if rules.contains(&RuleKind::BudgetBlindLoop) && class == FileClass::Lib {
        budget_blind_loop(&ctx, index, emit);
    }
    if rules.contains(&RuleKind::UnsyncedStoreWrite)
        && class == FileClass::Lib
        && !path.ends_with("store.rs")
    {
        unsynced_store_write(&ctx, emit);
    }
    // Scoped to the daemon crate: batch tools build unbounded vectors all
    // the time (and are bounded by their finite inputs); only code sitting
    // behind a socket accumulates attacker-paced input.
    if rules.contains(&RuleKind::UnboundedChannel)
        && class == FileClass::Lib
        && path.contains("crates/sherlockd/")
    {
        unbounded_channel(&ctx, emit);
    }
    // Library-wide (unlike `unbounded-channel`): a retry loop that can
    // spin forever is a hang wherever it lives — store saves, drains,
    // intervention trials. Binaries and tests may poll freely.
    if rules.contains(&RuleKind::UnboundedRetry) && class == FileClass::Lib {
        unbounded_retry(&ctx, emit);
    }
    // Scoped to the columnar kernel files: `value()` is a fine API
    // everywhere else (the scalar shim and cold paths use it on purpose);
    // only inside the rewritten hot loops is a row-wise access a
    // regression.
    if rules.contains(&RuleKind::RowWiseHotPath)
        && class == FileClass::Lib
        && HOT_PATH_FILES.iter().any(|f| path.ends_with(f))
    {
        row_wise_hot_path(&ctx, emit);
    }
}

struct Ctx<'a> {
    toks: &'a [Token],
    syn: &'a FileSyntax,
    test_mask: &'a [bool],
}

impl Ctx<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(name)) => Some(name.as_str()),
            _ => None,
        }
    }

    fn op(&self, i: usize, s: &str) -> bool {
        matches!(self.toks.get(i).map(|t| &t.kind), Some(Tok::Op(o)) if *o == s)
    }

    fn in_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Is token `i` a method call `.name(` or `.name::<…>(`?
    fn is_method_call(&self, i: usize, names: &[&str]) -> bool {
        i >= 1
            && self.op(i - 1, ".")
            && (self.op(i + 1, "(") || (self.op(i + 1, "::") && self.op(i + 2, "<")))
            && self.ident(i).is_some_and(|n| names.contains(&n))
    }

    /// Nearest enclosing *brace* group of token `i` — paren/bracket groups
    /// are sub-expressions, not statement scopes.
    fn stmt_scope(&self, i: usize) -> Option<usize> {
        let mut scope = self.syn.enclosing.get(i).copied().flatten();
        while let Some(id) = scope {
            if self.syn.groups[id].delim == crate::syntax::Delim::Brace {
                break;
            }
            scope = self.syn.groups[id].parent;
        }
        scope
    }

    /// `[start, end)` token span of the statement containing `i`: bounded
    /// by `;`/`{`/`}` at the nearest brace scope (nested groups — including
    /// the call parens `i` may sit inside — stay inside the span).
    fn stmt_span(&self, i: usize) -> (usize, usize) {
        let scope = self.stmt_scope(i);
        let (scope_open, scope_close) = match scope {
            Some(id) => (self.syn.groups[id].open, self.syn.groups[id].close),
            None => (0, self.toks.len()),
        };
        let at_scope = |k: usize| self.syn.enclosing.get(k).copied().flatten() == scope;
        let boundary = |k: usize| matches!(self.toks[k].kind, Tok::Op(";" | "{" | "}"));
        let mut start = i;
        while start > scope_open + usize::from(scope.is_some()) {
            if at_scope(start - 1) && boundary(start - 1) {
                break;
            }
            start -= 1;
        }
        let mut end = i;
        while end < scope_close.min(self.toks.len()) {
            if at_scope(end) && boundary(end) {
                break;
            }
            end += 1;
        }
        (start, end)
    }

    /// End of the statement scope (nearest brace group) containing `i`.
    fn scope_close(&self, i: usize) -> usize {
        match self.stmt_scope(i) {
            Some(id) => self.syn.groups[id].close,
            None => self.toks.len(),
        }
    }
}

// ----- nondeterministic-iteration --------------------------------------

fn nondet_iteration(ctx: &Ctx<'_>, emit: &mut dyn FnMut(RuleKind, u32, String)) {
    for i in 0..ctx.toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        // Method-chain iteration: `recv.iter()`, `self.field.keys()`, ….
        if ctx.is_method_call(i, ITER_HEADS) && i >= 2 {
            if let Some(ty) = ctx.syn.receiver_type(ctx.toks, i - 2) {
                if HASH_TYPES.contains(&ty) && !iteration_is_ordered_safe(ctx, i) {
                    let ty = ty.to_string();
                    let head = ctx.ident(i).unwrap_or_default();
                    emit(
                        RuleKind::NondetIteration,
                        ctx.toks[i].line,
                        format!(
                            "`.{head}()` on a `{ty}` yields arbitrary order; sort the \
                             results or use a BTreeMap/BTreeSet"
                        ),
                    );
                }
            }
        }
        // Bare for-loop iteration: `for x in &set`, `for (k, v) in self.map`.
        if ctx.ident(i) == Some("for") {
            if let Some((recv, ty)) = for_loop_hash_source(ctx, i) {
                emit(
                    RuleKind::NondetIteration,
                    ctx.toks[i].line,
                    format!(
                        "`for` over `{recv}` (a `{ty}`) visits entries in arbitrary \
                         order; iterate a sorted copy or use a BTreeMap/BTreeSet"
                    ),
                );
            }
        }
    }
}

/// Does anything in (or after) the statement make the iteration at `i`
/// order-safe? Checks, in rough cost order: an ordering/sorting call or an
/// order-insensitive reducer in the same statement, collecting into an
/// order-free container (turbofish or `let` annotation), feeding an
/// `.extend()` of an order-free container, or a later `name.sort*()` on
/// the `let`-bound result within the same scope.
fn iteration_is_ordered_safe(ctx: &Ctx<'_>, i: usize) -> bool {
    let (start, end) = ctx.stmt_span(i);
    for k in start..end {
        if ctx.is_method_call(k, SORTERS) || ctx.is_method_call(k, REDUCERS) {
            return true;
        }
        // `collect::<Sink<…>>()`
        if ctx.ident(k) == Some("collect") && ctx.op(k + 1, "::") && ctx.op(k + 2, "<") {
            let sink = ctx.syn.type_head(ctx.toks, k + 3, end);
            if ORDER_FREE_SINKS.contains(&sink.as_str()) {
                return true;
            }
        }
        // `order_free.extend(map.iter())`
        if ctx.is_method_call(k, &["extend"]) && k >= 2 {
            if let Some(recv_ty) = ctx.syn.receiver_type(ctx.toks, k - 2) {
                if ORDER_FREE_SINKS.contains(&recv_ty) {
                    return true;
                }
            }
        }
    }
    // `let [mut] name [: Sink] = …` — annotation sink, or a later sort.
    if ctx.ident(start) == Some("let") {
        let mut n = start + 1;
        if ctx.ident(n) == Some("mut") {
            n += 1;
        }
        if let Some(name) = ctx.ident(n) {
            if ctx.op(n + 1, ":") {
                let sink = ctx.syn.type_head(ctx.toks, n + 2, end);
                if ORDER_FREE_SINKS.contains(&sink.as_str()) {
                    return true;
                }
            }
            // `name.sort*()` later in the same scope.
            for k in end..ctx.scope_close(i) {
                if ctx.ident(k) == Some(name)
                    && ctx.op(k + 1, ".")
                    && ctx.toks.get(k + 2).map(|t| &t.kind).is_some_and(
                        |kind| matches!(kind, Tok::Ident(m) if SORTERS.contains(&m.as_str())),
                    )
                {
                    return true;
                }
            }
        }
    }
    false
}

/// If token `i` starts a `for … in <place> {` loop whose source place is a
/// hash-typed binding or field (no method calls in the expression), return
/// `(rendered place, type head)`.
fn for_loop_hash_source(ctx: &Ctx<'_>, i: usize) -> Option<(String, &'static str)> {
    let scope = ctx.syn.enclosing.get(i).copied().flatten();
    let at_scope = |k: usize| ctx.syn.enclosing.get(k).copied().flatten() == scope;
    // Find `in` at the loop's own scope, before the body `{`.
    let mut k = i + 1;
    loop {
        match ctx.toks.get(k).map(|t| &t.kind) {
            None | Some(Tok::Op("{" | ";" | "}")) if at_scope(k) => return None,
            Some(Tok::Ident(name)) if name == "in" && at_scope(k) => break,
            Some(_) => k += 1,
            None => return None,
        }
    }
    // Source expression: `[&][mut] ident(.ident)*` directly followed by `{`.
    let mut j = k + 1;
    while ctx.op(j, "&") || ctx.ident(j) == Some("mut") {
        j += 1;
    }
    let first = j;
    let mut last = None;
    while ctx.ident(j).is_some() {
        last = Some(j);
        if ctx.op(j + 1, ".") && ctx.ident(j + 2).is_some() {
            j += 2;
        } else {
            j += 1;
            break;
        }
    }
    let last = last?;
    if !ctx.op(j, "{") {
        return None; // method calls / ranges / richer expressions
    }
    let ty = ctx.syn.receiver_type(ctx.toks, last)?;
    let ty = HASH_TYPES.iter().find(|t| **t == ty)?;
    let place: Vec<&str> = (first..=last).filter_map(|t| ctx.ident(t)).collect();
    Some((place.join("."), ty))
}

// ----- raw-panic-hook ---------------------------------------------------

fn raw_panic_hook(ctx: &Ctx<'_>, emit: &mut dyn FnMut(RuleKind, u32, String)) {
    for i in 0..ctx.toks.len() {
        let Some(name @ ("set_hook" | "take_hook")) = ctx.ident(i) else { continue };
        if !ctx.op(i + 1, "(") {
            continue;
        }
        // Qualified `panic::set_hook(` / `std::panic::take_hook(`, or the
        // bare name imported from `std::panic`.
        let qualified = i >= 2 && ctx.op(i - 1, "::") && ctx.ident(i - 2) == Some("panic");
        let imported =
            !ctx.op(i.wrapping_sub(1), "::") && ctx.syn.resolves_into(name, &["std", "panic"]);
        if !qualified && !imported {
            continue;
        }
        // The one sanctioned home for hook swaps (applies in tests too:
        // the hook is process-global and the test harness is parallel).
        if ctx.syn.enclosing_fn(i).is_some_and(|f| f.name == "quiet_panics") {
            continue;
        }
        emit(
            RuleKind::RawPanicHook,
            ctx.toks[i].line,
            format!(
                "`panic::{name}` swaps process-global state and races concurrent \
                 tests; wrap the region in chaos::quiet_panics instead"
            ),
        );
    }
}

// ----- budget-blind-loop ------------------------------------------------

fn budget_blind_loop(
    ctx: &Ctx<'_>,
    index: Option<&crate::flow::FlowIndex>,
    emit: &mut dyn FnMut(RuleKind, u32, String),
) {
    for f in &ctx.syn.fns {
        let Some((body_open, body_close)) = f.body else { continue };
        // Handles this stage is expected to poll: budget-typed parameters
        // plus budget-typed local bindings inside the body.
        let mut handles: Vec<&str> = f
            .params
            .iter()
            .filter(|(_, ty)| BUDGET_TYPES.contains(&ty.as_str()))
            .map(|(name, _)| name.as_str())
            .collect();
        handles.extend(
            ctx.syn
                .bindings
                .iter()
                .filter(|b| {
                    b.tok > body_open && b.tok < body_close && BUDGET_TYPES.contains(&b.ty.as_str())
                })
                .map(|b| b.name.as_str()),
        );
        if handles.is_empty() {
            continue;
        }
        for i in body_open + 1..body_close.min(ctx.toks.len()) {
            if ctx.in_test(i) {
                continue;
            }
            let Some(kw @ ("for" | "while" | "loop")) = ctx.ident(i) else { continue };
            let Some((lb_open, lb_close)) = loop_body(ctx, i, kw) else { continue };
            let body = lb_open + 1..lb_close.min(ctx.toks.len());
            // A *direct* poll is a method call on the handle (`budget.check(…)`,
            // `!cancel.is_set()`) — in the loop body or its header. Merely
            // passing the handle along as an argument no longer counts; what
            // it is passed *to* is judged by the call-graph check below.
            let polls = (i + 1..lb_close.min(ctx.toks.len()))
                .any(|k| ctx.ident(k).is_some_and(|n| handles.contains(&n)) && ctx.op(k + 1, "."));
            if polls {
                continue;
            }
            // Interprocedural: the loop is safe if anything it calls
            // (transitively, via the flow index's reachability fixpoint)
            // polls a budget handle.
            let delegates = index.is_some_and(|idx| {
                body.clone().any(|k| {
                    ctx.op(k + 1, "(")
                        && ctx.ident(k).is_some_and(|n| {
                            // Path-qualified callees keep their literal name
                            // (the alias map only governs bare imports).
                            let callee = if ctx.op(k.wrapping_sub(1), "::") {
                                n
                            } else {
                                ctx.syn.resolve(n)
                            };
                            !NON_CALL_IDENTS.contains(&n) && idx.polls_reachable(callee)
                        })
                })
            });
            if delegates {
                continue;
            }
            let works = body.clone().any(|k| {
                ctx.op(k + 1, "(")
                    && ctx.ident(k).is_some_and(|n| {
                        !TRIVIAL_CALLS.contains(&n)
                            && !NON_CALL_IDENTS.contains(&n)
                            && !n.starts_with(|c: char| c.is_uppercase())
                    })
            });
            if works {
                emit(
                    RuleKind::BudgetBlindLoop,
                    ctx.toks[i].line,
                    format!(
                        "`{kw}` loop in a budget-carrying stage never polls `{}`; \
                         check the budget (or CancelFlag) each iteration so \
                         deadlines and cancellation can interrupt it",
                        handles.join("`/`")
                    ),
                );
            }
        }
    }
}

/// Body brace group of the loop keyword at `i`, if recognisable: for
/// `loop` the very next token must open it; for `for`/`while` it is the
/// first `{` at the keyword's own scope.
fn loop_body(ctx: &Ctx<'_>, i: usize, kw: &str) -> Option<(usize, usize)> {
    let scope = ctx.syn.enclosing.get(i).copied().flatten();
    if kw == "loop" {
        if !ctx.op(i + 1, "{") {
            return None;
        }
        let id = ctx.syn.group_at_opener(i + 1)?;
        return Some((ctx.syn.groups[id].open, ctx.syn.groups[id].close));
    }
    let mut k = i + 1;
    while k < ctx.toks.len() {
        let at_scope = ctx.syn.enclosing.get(k).copied().flatten() == scope;
        match &ctx.toks[k].kind {
            Tok::Op("{") if at_scope => {
                let id = ctx.syn.group_at_opener(k)?;
                return Some((ctx.syn.groups[id].open, ctx.syn.groups[id].close));
            }
            Tok::Op(";" | "}") if at_scope => return None,
            _ => k += 1,
        }
    }
    None
}

// ----- unbounded-channel --------------------------------------------------

fn unbounded_channel(ctx: &Ctx<'_>, emit: &mut dyn FnMut(RuleKind, u32, String)) {
    // Loop-body spans, computed once: a growth site is "in a loop" when any
    // span contains it.
    let mut loops: Vec<(usize, usize)> = Vec::new();
    for i in 0..ctx.toks.len() {
        if let Some(kw @ ("for" | "while" | "loop")) = ctx.ident(i) {
            if let Some(span) = loop_body(ctx, i, kw) {
                loops.push(span);
            }
        }
    }
    for i in 0..ctx.toks.len() {
        if ctx.in_test(i) || !ctx.is_method_call(i, GROWERS) || i < 2 {
            continue;
        }
        if !loops.iter().any(|&(open, close)| i > open && i < close) {
            continue;
        }
        let Some(recv) = ctx.ident(i - 2) else { continue };
        let Some(ty) = ctx.syn.receiver_type(ctx.toks, i - 2) else { continue };
        if !GROWABLE_TYPES.contains(&ty) {
            continue;
        }
        // Where must the capacity management live? A field (`self.queue`)
        // may legitimately drain in a sibling method of the same type, so
        // fields are checked file-wide; a local binding must be bounded
        // inside its own function.
        let field = i >= 4 && ctx.op(i - 3, ".");
        let (start, end) = if field {
            (0, ctx.toks.len())
        } else {
            match ctx.syn.enclosing_fn(i).and_then(|f| f.body) {
                Some((open, close)) => (open, close.min(ctx.toks.len())),
                None => (0, ctx.toks.len()),
            }
        };
        let bounded = (start..end).any(|k| {
            k != i - 2
                && ctx.ident(k) == Some(recv)
                && ctx.op(k + 1, ".")
                && ctx.toks.get(k + 2).map(|t| &t.kind).is_some_and(
                    |kind| matches!(kind, Tok::Ident(m) if BOUNDERS.contains(&m.as_str())),
                )
        });
        if !bounded {
            let grower = ctx.ident(i).unwrap_or_default();
            emit(
                RuleKind::UnboundedChannel,
                // sherlock-lint: allow(panic-path): i is a scanned token index
                ctx.toks[i].line,
                format!(
                    "`{recv}.{grower}` grows a `{ty}` every loop iteration with no \
                     capacity check on `{recv}`; daemon buffers fed by clients must \
                     bound, shed, or drain (check len()/pop/truncate) before growing"
                ),
            );
        }
    }
}

// ----- unbounded-retry ----------------------------------------------------

fn unbounded_retry(ctx: &Ctx<'_>, emit: &mut dyn FnMut(RuleKind, u32, String)) {
    for i in 0..ctx.toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        // Only `loop` and `while`: a `for` loop is bounded by its iterator.
        let Some(kw @ ("while" | "loop")) = ctx.ident(i) else { continue };
        // `while` heads a condition before its body; skip `.loop(` /
        // `while`-as-ident false positives by requiring a recognisable body.
        let Some((open, close)) = loop_body(ctx, i, kw) else { continue };
        // The scanned span runs from the keyword so a `while attempts < N`
        // condition or a `while !shutdown.load(..)` poll counts as a guard.
        let span = i..close.min(ctx.toks.len());
        let sleep_line = span.clone().find_map(|k| {
            // The sleep must be *inside the body*: a sleep in the
            // condition is not this pattern.
            (k > open
                && ctx.ident(k).is_some_and(|n| RETRY_SLEEPS.contains(&n))
                && ctx.op(k + 1, "("))
            .then(|| ctx.toks[k].line) // sherlock-lint: allow(panic-path): scanned index
        });
        let Some(line) = sleep_line else { continue };
        let guarded = span.clone().any(|k| {
            ctx.ident(k).is_some_and(|n| {
                let lower = n.to_ascii_lowercase();
                RETRY_GUARDS.iter().any(|g| lower.contains(g))
            })
        });
        if !guarded {
            emit(
                RuleKind::UnboundedRetry,
                line,
                format!(
                    "`{kw}` loop sleeps between iterations with no attempt bound or \
                     deadline in reach; a persistent fault spins it forever — count \
                     attempts, poll a deadline/budget, or check a shutdown flag"
                ),
            );
        }
    }
}

// ----- row-wise-hot-path --------------------------------------------------

fn row_wise_hot_path(ctx: &Ctx<'_>, emit: &mut dyn FnMut(RuleKind, u32, String)) {
    for i in 0..ctx.toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        // Only the method form `.value(` / `.value::<T>(` — a free
        // function or an unrelated `values()` chain is not the per-cell
        // Dataset accessor.
        if ctx.is_method_call(i, &["value"]) {
            emit(
                RuleKind::RowWiseHotPath,
                // sherlock-lint: allow(panic-path): i is a scanned token index
                ctx.toks[i].line,
                "per-cell `.value()` dispatch in a columnar kernel file; take a \
                 typed column view (NumericView/CategoricalView via \
                 ColumnarSnapshot) and loop over the slice instead"
                    .to_string(),
            );
        }
    }
}

// ----- unsynced-store-write ---------------------------------------------

fn unsynced_store_write(ctx: &Ctx<'_>, emit: &mut dyn FnMut(RuleKind, u32, String)) {
    for i in 0..ctx.toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        let Some(name) = ctx.ident(i) else { continue };
        if !ctx.op(i + 1, "(") {
            continue;
        }
        let qualified_by =
            |module: &str| i >= 2 && ctx.op(i - 1, "::") && ctx.ident(i - 2) == Some(module);
        // `fs::write(…)` & friends, or the bare import from std::fs.
        if FS_MUTATORS.contains(&name) {
            let bare_import =
                !ctx.op(i.wrapping_sub(1), "::") && ctx.syn.resolves_into(name, &["std", "fs"]);
            if qualified_by("fs") || bare_import {
                emit(
                    RuleKind::UnsyncedStoreWrite,
                    ctx.toks[i].line,
                    format!(
                        "`fs::{name}` mutates the filesystem outside the store module; \
                         a crash mid-operation tears the artifact — persist through \
                         dbsherlock_core::store::ModelStore"
                    ),
                );
            }
            continue;
        }
        // `File::create(…)` — creation truncates.
        if name == "create" && qualified_by("File") {
            let is_fs_file = ctx.syn.resolves_into("File", &["std", "fs"])
                || (i >= 4 && ctx.op(i - 3, "::") && ctx.ident(i - 4) == Some("fs"))
                || !ctx.syn.imports.contains_key("File");
            if is_fs_file {
                emit(
                    RuleKind::UnsyncedStoreWrite,
                    ctx.toks[i].line,
                    "`File::create` truncates in place outside the store module; \
                     persist through dbsherlock_core::store::ModelStore"
                        .to_string(),
                );
            }
            continue;
        }
        // `OpenOptions::new()…` with a write/append/truncate/create flag in
        // the same statement.
        if name == "new" && qualified_by("OpenOptions") {
            let (start, end) = ctx.stmt_span(i);
            let writable = (start..end).any(|k| {
                ctx.is_method_call(k, &["write", "append", "truncate", "create", "create_new"])
            });
            if writable {
                emit(
                    RuleKind::UnsyncedStoreWrite,
                    ctx.toks[i].line,
                    "writable `OpenOptions` outside the store module; persist through \
                     dbsherlock_core::store::ModelStore"
                        .to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{scan_source, FileClass, RuleKind};

    fn hits(src: &str, rule: RuleKind, class: FileClass) -> Vec<u32> {
        scan_source("crates/x/src/a.rs", src, class, &[rule]).into_iter().map(|f| f.line).collect()
    }

    // ----- nondeterministic-iteration -----------------------------------

    const USE_MAPS: &str = "use std::collections::{HashMap, HashSet};\n";

    #[test]
    fn nondet_flags_hash_iteration_into_ordered_output() {
        let src = format!(
            "{USE_MAPS}fn f(m: &HashMap<String, u8>) -> Vec<String> {{\n\
             let v: Vec<String> = m.keys().cloned().collect();\n\
             v\n}}"
        );
        assert_eq!(hits(&src, RuleKind::NondetIteration, FileClass::Lib), vec![3]);
    }

    #[test]
    fn nondet_flags_bare_for_loop_over_hash() {
        let src = format!(
            "{USE_MAPS}fn f(set: &HashSet<u8>, out: &mut Vec<u8>) {{\n\
             for x in set {{ out.push(*x); }}\n}}"
        );
        assert_eq!(hits(&src, RuleKind::NondetIteration, FileClass::Lib), vec![3]);
        // Fields too: `for (k, v) in &self.map`.
        let src = format!(
            "{USE_MAPS}struct S {{ map: HashMap<u8, u8> }}\n\
             impl S {{ fn g(&self, out: &mut Vec<u8>) {{\n\
             for (k, _v) in &self.map {{ out.push(*k); }}\n}} }}"
        );
        assert_eq!(hits(&src, RuleKind::NondetIteration, FileClass::Lib), vec![4]);
    }

    #[test]
    fn nondet_sorted_in_chain_is_clean() {
        let src = format!(
            "{USE_MAPS}fn f(m: &HashMap<String, u8>) -> Vec<String> {{\n\
             let mut v: Vec<String> = m.keys().cloned().collect();\n\
             v.sort();\n\
             v\n}}"
        );
        assert!(hits(&src, RuleKind::NondetIteration, FileClass::Lib).is_empty());
    }

    #[test]
    fn nondet_order_free_sinks_are_clean() {
        for stmt in [
            // Order-insensitive reducers.
            "let n = m.values().copied().sum::<u64>();",
            "let c = m.keys().count();",
            // Collecting into an order-free container.
            "let s = m.keys().cloned().collect::<std::collections::BTreeSet<String>>();",
            "let s: HashSet<String> = m.keys().cloned().collect();",
            // Feeding an order-free extend.
            "acc.extend(m.keys().cloned());",
        ] {
            let src = format!(
                "{USE_MAPS}fn f(m: &HashMap<String, u64>, acc: &mut HashSet<String>) {{\n{stmt}\n}}"
            );
            assert!(hits(&src, RuleKind::NondetIteration, FileClass::Lib).is_empty(), "{stmt}");
        }
    }

    #[test]
    fn nondet_needs_a_hash_type_not_just_a_method_name() {
        // Same method names on a Vec / unknown receiver: no finding.
        let src = "fn f(v: &Vec<u8>) -> Vec<u8> { v.iter().copied().collect() }";
        assert!(hits(src, RuleKind::NondetIteration, FileClass::Lib).is_empty());
        let src = "fn f() { for x in items() { use_it(x); } }";
        assert!(hits(src, RuleKind::NondetIteration, FileClass::Lib).is_empty());
    }

    #[test]
    fn nondet_respects_allow_and_class() {
        let src = format!(
            "{USE_MAPS}fn f(m: &HashMap<u8, u8>, out: &mut Vec<u8>) {{\n\
             // sherlock-lint: allow(nondeterministic-iteration): commutative fold\n\
             for (k, _) in m {{ out.push(*k); }}\n}}"
        );
        assert!(hits(&src, RuleKind::NondetIteration, FileClass::Lib).is_empty());
        let unallowed = format!(
            "{USE_MAPS}fn f(m: &HashMap<u8, u8>, out: &mut Vec<u8>) {{\n\
             for (k, _) in m {{ out.push(*k); }}\n}}"
        );
        // Tests/benches/bins are exempt: ordering there fails loudly.
        assert!(hits(&unallowed, RuleKind::NondetIteration, FileClass::Other).is_empty());
        assert_eq!(hits(&unallowed, RuleKind::NondetIteration, FileClass::Lib).len(), 1);
    }

    // ----- raw-panic-hook ------------------------------------------------

    #[test]
    fn panic_hook_flagged_qualified_and_imported() {
        let qualified = "fn f() { let h = std::panic::take_hook(); std::panic::set_hook(h); }";
        assert_eq!(hits(qualified, RuleKind::RawPanicHook, FileClass::Lib).len(), 2);
        let imported = "use std::panic::set_hook;\nfn f() { set_hook(Box::new(|_| {})); }";
        assert_eq!(hits(imported, RuleKind::RawPanicHook, FileClass::Lib), vec![2]);
        // Applies to test code and non-lib files too: hooks are process-global.
        let in_test = "#[cfg(test)]\nmod t { fn f() { std::panic::set_hook(Box::new(|_| {})); } }";
        assert_eq!(hits(in_test, RuleKind::RawPanicHook, FileClass::Other).len(), 1);
    }

    #[test]
    fn panic_hook_quiet_panics_is_the_sanctioned_home() {
        let src = "pub fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {\n\
                   let hook = std::panic::take_hook();\n\
                   std::panic::set_hook(Box::new(|_| {}));\n\
                   let out = f();\n\
                   std::panic::set_hook(hook);\n\
                   out\n}";
        assert!(hits(src, RuleKind::RawPanicHook, FileClass::Lib).is_empty());
        // Unrelated `set_hook` methods (no panic path, no import) are not ours.
        let method = "fn f(reg: &mut Registry) { reg.set_hook(h); }";
        assert!(hits(method, RuleKind::RawPanicHook, FileClass::Lib).is_empty());
    }

    // ----- budget-blind-loop ---------------------------------------------

    #[test]
    fn budget_blind_loop_flags_working_loop_without_poll() {
        let src = "fn stage(parts: &[P], budget: &ArmedBudget) -> Result<Vec<R>, E> {\n\
                   let mut out = Vec::new();\n\
                   for p in parts {\n\
                   out.push(expensive_transform(p));\n\
                   }\n\
                   Ok(out)\n}";
        assert_eq!(hits(src, RuleKind::BudgetBlindLoop, FileClass::Lib), vec![3]);
    }

    #[test]
    fn budget_blind_loop_polling_loop_is_clean() {
        let src = "fn stage(parts: &[P], budget: &ArmedBudget) -> Result<Vec<R>, E> {\n\
                   let mut out = Vec::new();\n\
                   for p in parts {\n\
                   budget.check(\"stage\")?;\n\
                   out.push(expensive_transform(p));\n\
                   }\n\
                   Ok(out)\n}";
        assert!(hits(src, RuleKind::BudgetBlindLoop, FileClass::Lib).is_empty());
    }

    #[test]
    fn budget_blind_loop_ignores_trivial_collectors_and_unbudgeted_fns() {
        // The ubiquitous result-collector loop: only trivial calls.
        let collector = "fn gather(slots: Vec<Result<R, E>>, budget: &ArmedBudget)\n\
                         -> Result<Vec<R>, E> {\n\
                         let mut out = Vec::new();\n\
                         for slot in slots {\n\
                         out.push(slot?);\n\
                         }\n\
                         Ok(out)\n}";
        assert!(hits(collector, RuleKind::BudgetBlindLoop, FileClass::Lib).is_empty());
        // No budget handle in scope: not a pipeline stage.
        let unbudgeted = "fn f(parts: &[P]) { for p in parts { expensive(p); } }";
        assert!(hits(unbudgeted, RuleKind::BudgetBlindLoop, FileClass::Lib).is_empty());
    }

    #[test]
    fn budget_blind_loop_sees_local_cancel_flags_and_while_loops() {
        let src = "fn stage(parts: &[P]) {\n\
                   let cancel = CancelFlag::new();\n\
                   while has_more() {\n\
                   expensive_step();\n\
                   }\n}";
        assert_eq!(hits(src, RuleKind::BudgetBlindLoop, FileClass::Lib), vec![3]);
        let polls = "fn stage(parts: &[P]) {\n\
                     let cancel = CancelFlag::new();\n\
                     while !cancel.is_set() {\n\
                     expensive_step();\n\
                     }\n}";
        // The poll is in the condition — outside the body braces — so the
        // body scan alone must not flag it… the condition mention counts.
        assert!(hits(polls, RuleKind::BudgetBlindLoop, FileClass::Lib).is_empty());
    }

    #[test]
    fn budget_blind_loop_accepts_polling_through_a_callee() {
        // The loop never touches `budget.` itself, but `helper` does: the
        // call-graph summary marks it polling and the loop is safe.
        let src = "fn helper(budget: &ArmedBudget) -> Result<(), E> { budget.check(\"stage\") }\n\
                   fn stage(parts: &[P], budget: &ArmedBudget) -> Result<(), E> {\n\
                   for p in parts {\n\
                   helper(budget)?;\n\
                   expensive_transform(p);\n\
                   }\n\
                   Ok(())\n}";
        assert!(hits(src, RuleKind::BudgetBlindLoop, FileClass::Lib).is_empty());
    }

    #[test]
    fn budget_blind_loop_rejects_blind_delegation() {
        // Passing the handle to a callee that never polls it used to count
        // as a poll under the file-wide mention heuristic; it must not.
        let src = "fn helper(budget: &ArmedBudget) -> Result<(), E> { noop() }\n\
                   fn stage(parts: &[P], budget: &ArmedBudget) -> Result<(), E> {\n\
                   for p in parts {\n\
                   helper(budget)?;\n\
                   expensive_transform(p);\n\
                   }\n\
                   Ok(())\n}";
        assert_eq!(hits(src, RuleKind::BudgetBlindLoop, FileClass::Lib), vec![3]);
    }

    // ----- unbounded-channel ----------------------------------------------

    const DAEMON_PATH: &str = "crates/sherlockd/src/conn.rs";

    fn daemon_hits(src: &str, class: FileClass) -> Vec<u32> {
        scan_source(DAEMON_PATH, src, class, &[RuleKind::UnboundedChannel])
            .into_iter()
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn unbounded_channel_flags_growth_in_connection_loops() {
        let src = "fn serve(lines: Lines) {\n\
                   let mut backlog: Vec<String> = Vec::new();\n\
                   for line in lines {\n\
                   backlog.push(line);\n\
                   }\n}";
        assert_eq!(daemon_hits(src, FileClass::Lib), vec![4]);
        let deque = "fn pump(events: Events) {\n\
                     let mut queue = std::collections::VecDeque::new();\n\
                     while has_more() {\n\
                     queue.push_back(next_event());\n\
                     }\n}";
        assert_eq!(daemon_hits(deque, FileClass::Lib), vec![4]);
    }

    #[test]
    fn unbounded_channel_capacity_checks_are_clean() {
        // Shed-oldest before growing: the daemon's enqueue pattern.
        let shed = "fn pump(events: Events) {\n\
                    let mut queue = std::collections::VecDeque::new();\n\
                    loop {\n\
                    if queue.len() >= MAX_PENDING { queue.pop_front(); }\n\
                    queue.push_back(next_event());\n\
                    }\n}";
        assert!(daemon_hits(shed, FileClass::Lib).is_empty());
        // Pruning with retain counts too (the accept loop's pattern).
        let retain = "fn accept(listener: L) {\n\
                      let mut handles = Vec::new();\n\
                      loop {\n\
                      handles.push(spawn_conn());\n\
                      handles.retain(|h| !h.is_finished());\n\
                      }\n}";
        assert!(daemon_hits(retain, FileClass::Lib).is_empty());
    }

    #[test]
    fn unbounded_channel_fields_may_drain_in_sibling_methods() {
        let src = "struct Reader { pending: std::collections::VecDeque<Event> }\n\
                   impl Reader {\n\
                   fn ingest(&mut self, chunk: &[u8]) {\n\
                   while let Some(e) = split(chunk) {\n\
                   self.pending.push_back(e);\n\
                   }\n}\n\
                   fn next(&mut self) -> Option<Event> { self.pending.pop_front() }\n\
                   }";
        assert!(daemon_hits(src, FileClass::Lib).is_empty());
        // …but a field nobody ever drains is still a leak.
        let leak = "struct Reader { pending: std::collections::VecDeque<Event> }\n\
                    impl Reader {\n\
                    fn ingest(&mut self, chunk: &[u8]) {\n\
                    while let Some(e) = split(chunk) {\n\
                    self.pending.push_back(e);\n\
                    }\n}\n\
                    }";
        assert_eq!(daemon_hits(leak, FileClass::Lib), vec![5]);
    }

    #[test]
    fn unbounded_channel_scoping_and_exemptions() {
        let src = "fn serve(lines: Lines) {\n\
                   let mut backlog: Vec<String> = Vec::new();\n\
                   for line in lines {\n\
                   backlog.push(line);\n\
                   }\n}";
        // Only sherlockd library code is in scope: batch tools build
        // unbounded vectors from finite inputs all the time.
        assert!(scan_source(
            "crates/core/src/predicate.rs",
            src,
            FileClass::Lib,
            &[RuleKind::UnboundedChannel]
        )
        .is_empty());
        assert!(daemon_hits(src, FileClass::Other).is_empty());
        // Growth outside any loop is one bounded allocation, not a channel.
        let straightline = "fn f() { let mut v = Vec::new(); v.push(1); v.push(2); }";
        assert!(daemon_hits(straightline, FileClass::Lib).is_empty());
        // Unknown receiver types (String, custom ring) are not ours.
        let string = "fn f(cs: Chars) { let mut s = String::new(); for c in cs { s.push(c); } }";
        assert!(daemon_hits(string, FileClass::Lib).is_empty());
        // The escape hatch documents a genuinely bounded accumulator.
        let allowed = "fn f(rows: Rows) {\n\
                       let mut seqs = Vec::with_capacity(rows.len());\n\
                       for row in rows {\n\
                       // sherlock-lint: allow(unbounded-channel): one per buffered row\n\
                       seqs.push(row.seq);\n\
                       }\n}";
        assert!(daemon_hits(allowed, FileClass::Lib).is_empty());
    }

    // ----- unbounded-retry ------------------------------------------------

    #[test]
    fn unbounded_retry_flags_sleep_loops_without_bounds() {
        let forever = "fn f(store: &Store) {\n\
                       loop {\n\
                       if store.save().is_ok() { break; }\n\
                       std::thread::sleep(Duration::from_millis(10));\n\
                       }\n}";
        assert_eq!(hits(forever, RuleKind::UnboundedRetry, FileClass::Lib), vec![4]);
        let poll = "fn f(peer: &Peer) {\n\
                    while !peer.is_ready() {\n\
                    thread::sleep(POLL_INTERVAL);\n\
                    }\n}";
        assert_eq!(hits(poll, RuleKind::UnboundedRetry, FileClass::Lib), vec![3]);
    }

    #[test]
    fn unbounded_retry_bounded_loops_are_clean() {
        // An attempt counter anywhere in the loop (condition or body).
        let counted = "fn f() {\n\
                       let mut attempts = 0;\n\
                       loop {\n\
                       attempts += 1;\n\
                       if attempts >= MAX { break; }\n\
                       std::thread::sleep(BACKOFF);\n\
                       }\n}";
        assert!(hits(counted, RuleKind::UnboundedRetry, FileClass::Lib).is_empty());
        // A deadline poll; `Instant::now() >= deadline` counts twice over.
        let deadline = "fn f(deadline: Instant) {\n\
                        while Instant::now() < deadline {\n\
                        std::thread::sleep(TICK);\n\
                        }\n}";
        assert!(hits(deadline, RuleKind::UnboundedRetry, FileClass::Lib).is_empty());
        // A shutdown-flag poll marks a service loop, not a runaway retry.
        let service = "fn f(shutdown: &AtomicBool) {\n\
                       while !shutdown.load(Ordering::SeqCst) {\n\
                       std::thread::sleep(IDLE);\n\
                       }\n}";
        assert!(hits(service, RuleKind::UnboundedRetry, FileClass::Lib).is_empty());
        // Guard substrings match inside longer names (`n_retries`).
        let retries = "fn f() {\n\
                       let mut n_retries = 0;\n\
                       while n_retries < 3 {\n\
                       n_retries += 1;\n\
                       std::thread::sleep(BACKOFF);\n\
                       }\n}";
        assert!(hits(retries, RuleKind::UnboundedRetry, FileClass::Lib).is_empty());
    }

    #[test]
    fn unbounded_retry_scoping_and_exemptions() {
        // `for` loops are bounded by their iterator.
        let staged = "fn f(xs: &[S]) { for x in xs { x.go(); std::thread::sleep(GAP); } }";
        assert!(hits(staged, RuleKind::UnboundedRetry, FileClass::Lib).is_empty());
        // No sleep, no retry loop — spins belong to other rules.
        let busy = "fn f(s: &mut Stack) { while let Some(x) = s.pop() { work(x); } }";
        assert!(hits(busy, RuleKind::UnboundedRetry, FileClass::Lib).is_empty());
        // A sleep in the *condition* (exotic, but possible via a helper
        // chain) is not a body sleep.
        let cond = "fn f() { while sleep_then_probe() { tick(); } }";
        assert!(hits(cond, RuleKind::UnboundedRetry, FileClass::Lib).is_empty());
        // Binaries/tests may poll freely.
        let forever = "fn f() { loop { std::thread::sleep(T); } }";
        assert!(hits(forever, RuleKind::UnboundedRetry, FileClass::Other).is_empty());
        let in_test = "#[cfg(test)]\nmod t { fn f() { loop { std::thread::sleep(T); } } }";
        assert!(hits(in_test, RuleKind::UnboundedRetry, FileClass::Lib).is_empty());
        // The escape documents externally-bounded waits.
        let allowed = "fn f(gate: &Gate) {\n\
                       while gate.is_closed() {\n\
                       // sherlock-lint: allow(unbounded-retry): watchdog-bounded\n\
                       std::thread::sleep(TICK);\n\
                       }\n}";
        assert!(hits(allowed, RuleKind::UnboundedRetry, FileClass::Lib).is_empty());
        // An unguarded inner retry inside a guarded service loop still
        // fires — the outer flag cannot interrupt the inner spin.
        let nested = "fn f(shutdown: &Flag) {\n\
                      while !shutdown.get() {\n\
                      loop {\n\
                      if save().is_ok() { break; }\n\
                      std::thread::sleep(B);\n\
                      }\n\
                      }\n}";
        assert_eq!(hits(nested, RuleKind::UnboundedRetry, FileClass::Lib), vec![5]);
    }

    // ----- row-wise-hot-path ----------------------------------------------

    const KERNEL_PATH: &str = "crates/core/src/predicate.rs";

    fn kernel_hits(src: &str, path: &str, class: FileClass) -> Vec<u32> {
        scan_source(path, src, class, &[RuleKind::RowWiseHotPath])
            .into_iter()
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn row_wise_hot_path_flags_value_calls_in_kernel_files() {
        let src = "fn f(d: &Dataset, r: usize, a: usize) -> Value {\n\
                   d.value(r, a)\n}";
        assert_eq!(kernel_hits(src, KERNEL_PATH, FileClass::Lib), vec![2]);
        // Turbofish form too.
        let turbo = "fn f(d: &D) { d.value::<f64>(0, 1); }";
        assert_eq!(kernel_hits(turbo, KERNEL_PATH, FileClass::Lib), vec![1]);
        // Every scoped kernel file fires.
        for file in ["label.rs", "partition.rs", "separation.rs", "filter.rs", "predicate.rs"] {
            let path = format!("crates/core/src/{file}");
            assert_eq!(kernel_hits(src, &path, FileClass::Lib), vec![2], "{path}");
        }
    }

    #[test]
    fn row_wise_hot_path_is_scoped_and_escapable() {
        let src = "fn f(d: &Dataset, r: usize, a: usize) -> Value {\n\
                   d.value(r, a)\n}";
        // The scalar shim and everything outside the kernel files is fine.
        for path in [
            "crates/core/src/scalar.rs",
            "crates/core/src/diagnose.rs",
            "crates/baselines/src/perfxplain/features.rs",
        ] {
            assert!(kernel_hits(src, path, FileClass::Lib).is_empty(), "{path}");
        }
        // Tests, benches and bins may use the row-wise API.
        assert!(kernel_hits(src, KERNEL_PATH, FileClass::Other).is_empty());
        let in_test = "#[cfg(test)]\nmod t { fn f(d: &D) { d.value(0, 1); } }";
        assert!(kernel_hits(in_test, KERNEL_PATH, FileClass::Lib).is_empty());
        // Non-method uses and similar names are not the Dataset accessor.
        for clean in [
            "fn f() { let v = value(0, 1); }",
            "fn f(m: &M) { m.values(); }",
            "fn f(e: &Entry) { e.key_value(); }",
            "fn f(d: &D) { d.numeric(a); }",
        ] {
            assert!(kernel_hits(clean, KERNEL_PATH, FileClass::Lib).is_empty(), "{clean}");
        }
        // The escape hatch documents a sanctioned cold-path access.
        let allowed = "fn f(d: &D) {\n\
                       // sherlock-lint: allow(row-wise-hot-path): cold error path\n\
                       d.value(0, 1);\n}";
        assert!(kernel_hits(allowed, KERNEL_PATH, FileClass::Lib).is_empty());
    }

    // ----- unsynced-store-write ------------------------------------------

    #[test]
    fn unsynced_store_write_flags_fs_mutation_family() {
        let src = "fn save(p: &Path) {\n\
                   std::fs::write(p, b\"x\");\n\
                   std::fs::rename(p, q);\n\
                   std::fs::remove_file(p);\n}";
        assert_eq!(hits(src, RuleKind::UnsyncedStoreWrite, FileClass::Lib), vec![2, 3, 4]);
        let imported = "use std::fs::write;\nfn save(p: &Path) { write(p, b\"x\"); }";
        assert_eq!(hits(imported, RuleKind::UnsyncedStoreWrite, FileClass::Lib), vec![2]);
        let file = "use std::fs::File;\nfn save(p: &Path) { let f = File::create(p); }";
        assert_eq!(hits(file, RuleKind::UnsyncedStoreWrite, FileClass::Lib), vec![2]);
        let oo = "use std::fs::OpenOptions;\n\
                  fn save(p: &Path) { let f = OpenOptions::new().append(true).open(p); }";
        assert_eq!(hits(oo, RuleKind::UnsyncedStoreWrite, FileClass::Lib), vec![2]);
    }

    #[test]
    fn unsynced_store_write_exemptions() {
        let src = "fn save(p: &Path) { std::fs::write(p, b\"x\"); }";
        // store.rs is the sanctioned writer.
        assert!(scan_source(
            "crates/core/src/store.rs",
            src,
            FileClass::Lib,
            &[RuleKind::UnsyncedStoreWrite]
        )
        .is_empty());
        // Reads, read-only OpenOptions, bins/benches/tests: all clean.
        let reads = "use std::fs::OpenOptions;\nfn load(p: &Path) {\n\
                     let t = std::fs::read_to_string(p);\n\
                     let f = OpenOptions::new().read(true).open(p);\n}";
        assert!(hits(reads, RuleKind::UnsyncedStoreWrite, FileClass::Lib).is_empty());
        assert!(hits(src, RuleKind::UnsyncedStoreWrite, FileClass::Other).is_empty());
        let allowed = "fn save(p: &Path) {\n\
                       // sherlock-lint: allow(unsynced-store-write): lint baseline file\n\
                       std::fs::write(p, b\"x\");\n}";
        assert!(hits(allowed, RuleKind::UnsyncedStoreWrite, FileClass::Lib).is_empty());
    }
}
