//! Property-based tests for the syntax layer: whatever garbage the lexer
//! hands over — unbalanced delimiters, stray closers, comments, lifetimes,
//! raw and byte strings — the delimiter tree must stay a faithful overlay
//! on the token stream.

use proptest::prelude::*;
use sherlock_lint::lexer::lex;
use sherlock_lint::syntax::FileSyntax;

/// Render one fragment of pseudo-Rust from a `(selector, identifier)`
/// pair. The table deliberately over-represents delimiters (including
/// lone, unmatched ones) to stress EOF recovery and stray-closer
/// handling, and mixes in every literal family the lexer knows.
fn fragment(selector: u8, ident: &str) -> String {
    let ident = if ident.is_empty() { "x" } else { ident };
    match selector % 30 {
        0 => "{ ".to_string(),
        1 => "} ".to_string(),
        2 => "( ".to_string(),
        3 => ") ".to_string(),
        4 => "[ ".to_string(),
        5 => "] ".to_string(),
        6 => format!("{ident} "),
        7 => "fn ".to_string(),
        8 => "use ".to_string(),
        9 => "let ".to_string(),
        10 => ":: ".to_string(),
        11 => ". ".to_string(),
        12 => "; ".to_string(),
        13 => "-> ".to_string(),
        14 => "< ".to_string(),
        15 => "> ".to_string(),
        16 => ">> ".to_string(),
        17 => "\"string literal\" ".to_string(),
        18 => "'a ".to_string(),
        19 => "b\"bytes\" ".to_string(),
        20 => "'x' ".to_string(),
        21 => "// line comment\n".to_string(),
        22 => "/* block */ ".to_string(),
        23 => format!("#[{ident}] "),
        24 => "123 ".to_string(),
        25 => "1.5 ".to_string(),
        26 => "r#\"raw\"# ".to_string(),
        27 => ", ".to_string(),
        28 => "= ".to_string(),
        _ => "& ".to_string(),
    }
}

fn fragments_strategy() -> impl Strategy<Value = Vec<(u8, String)>> {
    proptest::collection::vec((0u8..30, "[a-zA-Z0-9_]{0,6}"), 0..60)
}

proptest! {
    /// `FileSyntax::reconstruct` must emit exactly `0..n` in order for ANY
    /// token stream — balanced, unbalanced, or pathological. This is the
    /// invariant that makes the tree safe to navigate during rule scans:
    /// no token is ever orphaned or double-assigned by the group overlay.
    #[test]
    fn brace_tree_reconstruction_round_trips(frags in fragments_strategy()) {
        let mut source = String::new();
        for (selector, ident) in &frags {
            source.push_str(&fragment(*selector, ident));
        }
        let lexed = lex(&source);
        let syn = FileSyntax::analyze(&lexed.tokens);
        let expected: Vec<usize> = (0..lexed.tokens.len()).collect();
        prop_assert_eq!(syn.reconstruct(), expected, "source: {:?}", source);
    }

    /// Structural sanity of the `enclosing` table on the same inputs:
    /// every token's innermost group strictly contains it, and group
    /// openers/closers belong to the *parent* scope, never their own.
    #[test]
    fn enclosing_table_is_consistent(frags in fragments_strategy()) {
        let mut source = String::new();
        for (selector, ident) in &frags {
            source.push_str(&fragment(*selector, ident));
        }
        let lexed = lex(&source);
        let syn = FileSyntax::analyze(&lexed.tokens);
        for i in 0..lexed.tokens.len() {
            if let Some(g) = syn.group_of(i) {
                prop_assert!(
                    g.contains(i),
                    "token {} claims group [{}, {}] that does not contain it (source {:?})",
                    i, g.open, g.close, source
                );
            }
        }
    }
}
